"""F2 - the dimensionality crossover between the atomic and tiled strategies.

Reproduces the abstract's claim 3: "w-KNNG atomic is more successful when
applied to a smaller number of dimensions, while the tiled w-KNNG approach
was successful in general scenarios for higher dimensional points."

The series reports the atomic/tiled modeled-cycle ratio across
dimensionality (ratio < 1: atomic wins; > 1: tiled wins) plus the tile-size
ablation called out in DESIGN.md.  The mechanism (see
repro.bench.costmodel): at low d the direct schedule's leaf working set is
cache-resident and sub-warp packed, so atomic's one-compare insertion wins;
once the working set overflows cache, tiled's shared-memory staging takes
over.
"""


from conftest import publish
from repro.baselines.bruteforce import BruteForceKNN
from repro.bench.sweep import run_wknng
from repro.core.config import BuildConfig
from repro.data.synthetic import gaussian_mixture
from repro.metrics.records import RecordSet

DIMS = (4, 8, 16, 32, 64, 128, 256, 512, 960)
TILE_SIZES = (8, 32, 128)
N = 3000
K = 16


def _dataset(d):
    x = gaussian_mixture(N, d, n_clusters=64, cluster_std=1.5,
                         center_scale=4.0, seed=3)
    gt, _ = BruteForceKNN(x).search(x, K, exclude_self=True)
    return x, gt


def test_f2_crossover_series(benchmark, results_dir):
    records = RecordSet()
    ratios = {}
    for d in DIMS:
        x, gt = _dataset(d)
        cycles = {}
        for strategy in ("atomic", "tiled"):
            cfg = BuildConfig(k=K, strategy=strategy, n_trees=4, leaf_size=64,
                              refine_iters=2, seed=0)
            cycles[strategy] = run_wknng(x, gt, cfg).modeled_cycles
        ratios[d] = cycles["atomic"] / cycles["tiled"]
        records.add("F2", {"dim": d},
                    {"atomic_mcycles": cycles["atomic"] / 1e6,
                     "tiled_mcycles": cycles["tiled"] / 1e6,
                     "atomic_over_tiled": ratios[d]})
    publish(results_dir, "F2_crossover", records)

    from repro.bench.plots import Series, ascii_plot

    ratio_series = Series("atomic / tiled modeled cycles")
    unity = Series("parity (1.0)")
    for d in DIMS:
        ratio_series.add(d, ratios[d])
        unity.add(d, 1.0)
    fig = ascii_plot([ratio_series, unity],
                     title="F2: strategy cost ratio vs dimensionality",
                     xlabel="dim (log)", ylabel="atomic/tiled", logx=True)
    publish(results_dir, "F2_crossover_figure", fig)

    # the reproduction criterion: atomic wins at the low end, tiled at the top
    assert ratios[min(DIMS)] < 1.0, "atomic should win at low dimensionality"
    assert ratios[max(DIMS)] > 1.0, "tiled should win at high dimensionality"

    x, gt = _dataset(64)
    cfg = BuildConfig(k=K, strategy="atomic", n_trees=4, leaf_size=64,
                      refine_iters=2, seed=0)
    benchmark.pedantic(lambda: run_wknng(x, gt, cfg), rounds=1, iterations=1)


def test_f2_tile_size_ablation(benchmark, results_dir):
    records = RecordSet()
    x, gt = _dataset(128)
    for tile in TILE_SIZES:
        cfg = BuildConfig(k=K, strategy="tiled",
                          strategy_kwargs={"tile_size": tile},
                          n_trees=4, leaf_size=64, refine_iters=2, seed=0)
        res = run_wknng(x, gt, cfg)
        records.add("F2-ablation", {"tile_size": tile},
                    {"recall": res.recall,
                     "modeled_mcycles": res.modeled_cycles / 1e6,
                     "merge_rounds": res.detail["counters"]["merge_rounds"]})
    publish(results_dir, "F2_tile_ablation", records)

    cfg = BuildConfig(k=K, strategy="tiled", strategy_kwargs={"tile_size": 32},
                      n_trees=4, leaf_size=64, refine_iters=2, seed=0)
    benchmark.pedantic(lambda: run_wknng(x, gt, cfg), rounds=1, iterations=1)
