"""T9 - downstream workloads: COO edge-building and KNN-DBSCAN.

The :mod:`repro.neighbors` subsystem turns the index into the two
consumers GNN pipelines and density clustering actually run:

* **edge throughput** - ``knn_graph`` COO edges/s.  The headline path
  serves edges from the graph the index already maintains (corpus
  queries never search - the graph rows ARE the answer), vs the same
  API over :class:`BruteForceKNN` recomputing them.  Build time is
  amortised (a GNN training run re-derives edges every epoch against
  one build) and published alongside for one-shot break-even
  arithmetic; the engine-query path - what out-of-corpus queries pay -
  is measured and published too, ungated;
* **clustering quality** - :class:`KNNDBSCAN` labels vs the O(n^2)
  :func:`exact_dbscan` reference at matched ``eps``/``min_pts``,
  scored by adjusted Rand index (and cross-checked against sklearn
  when that happens to be importable - it is not a dependency);
* **frontend identity** - the same COO, bitwise, whether edges are
  pulled through the engine, a :class:`DirectClient`, a micro-batching
  :class:`KNNServer`, or a 2-shard :class:`ClusterClient` (exhaustive
  search recipe, the precondition cluster parity already relies on).

Full-scale gates (``WKNNG_BENCH_SCALE >= 1``): edge throughput >= 5x
bruteforce, DBSCAN ARI >= 0.95 vs the exact reference.  The identity
invariant asserts at every scale.
"""

import time

import numpy as np
import pytest

from conftest import BENCH_SCALE, publish, publish_summary
from repro.apps.search import GraphSearchIndex, SearchConfig
from repro.baselines.bruteforce import BruteForceKNN
from repro.core.config import BuildConfig
from repro.data.synthetic import gaussian_mixture, make_dataset
from repro.metrics import adjusted_rand_index
from repro.metrics.records import RecordSet
from repro.neighbors import DBSCANConfig, KNNDBSCAN, exact_dbscan, knn_graph
from repro.serve import (
    AdmissionPolicy,
    ClusterClient,
    ClusterConfig,
    DirectClient,
    KNNServer,
    ServeConfig,
    ShedPolicy,
)

FULL_SCALE = BENCH_SCALE >= 1.0

#: edge-building workload (at scale 1.0)
N_POINTS = 20_000
DIM = 64
EDGE_K = 12
EF = 96

#: clustering workload (at scale 1.0): separated-but-overlapping blobs,
#: eps matched to the within-cluster squared-distance scale
N_CLUSTER = 12_000
CLUSTER_DIM = 8
N_BLOBS = 10
CLUSTER_STD = 0.4
DBSCAN_EPS = 2.0
DBSCAN_MIN_PTS = 5

SUMMARY: dict = {
    "edges": {"n": None, "dim": DIM, "k": EDGE_K, "ef": EF},
    "dbscan": {"n": None, "dim": CLUSTER_DIM, "eps": DBSCAN_EPS,
               "min_pts": DBSCAN_MIN_PTS},
}


def _scaled(n: int, floor: int = 512) -> int:
    return max(floor, int(n * BENCH_SCALE))


def _best_of(fn, repeats: int = 3):
    """Return ``(result, seconds)`` for the fastest of ``repeats`` runs."""
    best = np.inf
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def test_t9_edge_throughput(results_dir):
    n = _scaled(N_POINTS)
    x = make_dataset("gaussian", n, seed=0, dim=DIM)

    t0 = time.perf_counter()
    index = GraphSearchIndex.build(
        x, build_config=BuildConfig(k=16, strategy="tiled", seed=0),
        search_config=SearchConfig(ef=EF), seed=0,
    )
    build_seconds = time.perf_counter() - t0
    bf = BruteForceKNN(x)

    # warm all three code paths off the timed section
    knn_graph(x[:64], EDGE_K, backend=index)
    knn_graph(None, EDGE_K, backend=index.graph,
              query_mask=np.arange(64))
    knn_graph(x[:64], EDGE_K, backend=bf)

    # headline: the graph the index maintains already holds the corpus
    # k-NN rows - edge extraction is a filter + reshape, no search
    edges_graph, graph_seconds = _best_of(
        lambda: knn_graph(None, EDGE_K, backend=index.graph), repeats=3)
    # context: the engine-query path, what out-of-corpus queries pay
    edges_idx, idx_seconds = _best_of(
        lambda: knn_graph(x, EDGE_K, backend=index), repeats=3)
    edges_bf, bf_seconds = _best_of(
        lambda: knn_graph(x, EDGE_K, backend=bf), repeats=3)

    assert edges_graph.shape == edges_bf.shape == (2, n * EDGE_K)
    assert edges_idx.shape == (2, n * EDGE_K)
    # approximation quality of the headline path, edge-set recall vs exact
    overlap = np.intersect1d(
        edges_graph[0] * n + edges_graph[1], edges_bf[0] * n + edges_bf[1]
    ).size
    edge_recall = overlap / edges_bf.shape[1]

    graph_eps = edges_graph.shape[1] / graph_seconds
    idx_eps = edges_idx.shape[1] / idx_seconds
    bf_eps = edges_bf.shape[1] / bf_seconds
    speedup = bf_seconds / graph_seconds
    SUMMARY["edges"].update({
        "n": int(n),
        "speedup": speedup,
        "edge_recall": edge_recall,
        "graph_edges_per_s": graph_eps,
        "query_edges_per_s": idx_eps,
        "query_speedup": bf_seconds / idx_seconds,
        "bruteforce_edges_per_s": bf_eps,
        "index_build_seconds": build_seconds,
    })
    records = RecordSet()
    for backend, eps, seconds in (("graph", graph_eps, graph_seconds),
                                  ("query", idx_eps, idx_seconds),
                                  ("bruteforce", bf_eps, bf_seconds)):
        records.add(
            "T9",
            {"section": "edges", "backend": backend, "n": n, "k": EDGE_K},
            {"edges_per_s": eps, "seconds": seconds},
        )
    publish(results_dir, "T9_workloads_edges", records)
    publish_summary(results_dir, "T9", SUMMARY)

    # structural invariant at every scale: the fast path must stay a
    # usable approximation of the exact edge set
    assert edge_recall >= 0.80, (
        f"index-backed edge recall {edge_recall:.3f} below 0.80"
    )
    if FULL_SCALE:
        assert speedup >= 5.0, (
            f"edge-building speedup {speedup:.2f}x below 5x vs bruteforce "
            f"at n={n}"
        )
        assert edge_recall >= 0.95, (
            f"index-backed edge recall {edge_recall:.3f} below 0.95"
        )


def test_t9_dbscan_ari(results_dir):
    n = _scaled(N_CLUSTER)
    x = gaussian_mixture(
        n, CLUSTER_DIM, n_clusters=N_BLOBS, cluster_std=CLUSTER_STD,
        center_scale=6.0, seed=3,
    )
    cfg = DBSCANConfig(eps=DBSCAN_EPS, min_pts=DBSCAN_MIN_PTS, knn_k=24)

    model = KNNDBSCAN(cfg)
    (labels, ), knn_seconds = _best_of(
        lambda: (model.fit_predict(x),), repeats=1)
    t0 = time.perf_counter()
    ref = exact_dbscan(x, DBSCAN_EPS, DBSCAN_MIN_PTS)
    exact_seconds = time.perf_counter() - t0
    ari = adjusted_rand_index(ref, labels)

    sklearn_ari = None
    try:  # optional cross-check only; sklearn is NOT a dependency
        from sklearn.cluster import DBSCAN as SkDBSCAN

        sk = SkDBSCAN(eps=float(np.sqrt(DBSCAN_EPS)),
                      min_samples=DBSCAN_MIN_PTS).fit_predict(x)
        sklearn_ari = float(adjusted_rand_index(sk, labels))
    except ImportError:
        pass

    SUMMARY["dbscan"].update({
        "n": int(n),
        "ari": float(ari),
        "n_clusters": int(model.n_clusters_),
        "noise_points": int((labels == -1).sum()),
        "knn_seconds": knn_seconds,
        "exact_seconds": exact_seconds,
        "sklearn_ari": sklearn_ari,
    })
    records = RecordSet()
    records.add(
        "T9",
        {"section": "dbscan", "n": n, "eps": DBSCAN_EPS,
         "min_pts": DBSCAN_MIN_PTS},
        {"ari": float(ari), "n_clusters": model.n_clusters_,
         "knn_seconds": knn_seconds, "exact_seconds": exact_seconds},
    )
    publish(results_dir, "T9_workloads_dbscan", records)
    publish_summary(results_dir, "T9", SUMMARY)

    # the blobs are separated: both implementations must find real
    # structure at any scale
    assert model.n_clusters_ >= 2
    assert ari >= 0.5, f"ARI {ari:.3f} vs exact DBSCAN below sanity floor"
    if FULL_SCALE:
        assert ari >= 0.95, (
            f"KNN-DBSCAN ARI {ari:.3f} vs exact reference below 0.95 at "
            f"n={n} (eps={DBSCAN_EPS}, min_pts={DBSCAN_MIN_PTS})"
        )


def test_t9_frontend_identity(results_dir):
    """One COO, four frontends, bitwise.

    Small fixed n with the exhaustive-search recipe from the cluster
    parity tests (beam covers every point), so engine, DirectClient,
    KNNServer and a 2-shard ClusterClient all return the same rows and
    the assembled edge lists must match to the last bit.
    """
    n, dim, k, ef = 240, 16, 8, 480
    rng = np.random.default_rng(11)
    x = rng.standard_normal((n, dim), dtype=np.float32)
    search_cfg = SearchConfig(ef=ef, max_expansions=8 * n, seeds_per_tree=16)
    build_cfg = BuildConfig(k=24, strategy="tiled", seed=7)
    index = GraphSearchIndex.build(
        x, build_config=build_cfg, search_config=search_cfg, seed=7)

    def coo(backend):
        return knn_graph(x, k, backend=backend, ef=ef, return_dists=True)

    ref_edges, ref_dists = coo(index)
    serve_cfg = ServeConfig(
        admission=AdmissionPolicy(max_batch=32, max_wait_ms=1.0,
                                  queue_limit=512),
        ef=ef, shed=ShedPolicy(enabled=False),
    )
    frontends = {"direct": DirectClient(index, ef=ef)}
    results = {}
    for name, client in frontends.items():
        with client:
            results[name] = coo(client)
    with KNNServer(index, serve_cfg) as server:
        results["server"] = coo(server)
    with ClusterClient.build(
        x, build_config=build_cfg, search_config=search_cfg, seed=7,
        config=ClusterConfig(n_shards=2, backend="thread", serve=serve_cfg),
    ) as cluster:
        results["cluster_2shard"] = coo(cluster)

    for name, (edges, dists) in results.items():
        assert np.array_equal(edges, ref_edges), (
            f"{name} edge_index diverges from the engine path"
        )
        assert np.array_equal(dists, ref_dists), (
            f"{name} edge dists diverge from the engine path"
        )
    SUMMARY["frontend_identity"] = {
        "n": n, "k": k,
        "frontends": ["engine", *results.keys()],
        "bitwise_equal": True,
        "edges": int(ref_edges.shape[1]),
    }
    publish_summary(results_dir, "T9", SUMMARY)
