"""F8 - end-to-end application: the K-NN graph stage inside t-SNE.

The paper motivates w-KNNG with t-SNE, whose affinity stage consumes a
K-NN graph.  This bench runs the full t-SNE pipeline on a clustered
dataset and reports the stage breakdown (graph build vs affinity
calibration vs gradient descent) plus the embedding quality proxy
(intra/inter-cluster distance ratio).  Expected shape: the graph stage is
a modest fraction of total time thanks to the approximate builder, and an
exact-brute-force graph stage is substantially slower at equal embedding
quality.
"""

import time

import numpy as np
import pytest

from conftest import publish
from repro.apps.tsne import TSNE, TSNEConfig
from repro.baselines.bruteforce import BruteForceKNN
from repro.metrics.records import RecordSet

N = 1200
DIM = 50
CLUSTERS = 8


@pytest.fixture(scope="module")
def labeled_data():
    rng = np.random.default_rng(8)
    centers = rng.standard_normal((CLUSTERS, DIM)) * 8
    labels = rng.integers(0, CLUSTERS, N)
    x = (centers[labels] + rng.standard_normal((N, DIM))).astype(np.float32)
    return x, labels


def _separation(emb, labels):
    d = np.sqrt(((emb[:, None, :] - emb[None, :, :]) ** 2).sum(-1))
    same = labels[:, None] == labels[None, :]
    np.fill_diagonal(same, False)
    return float(d[~same].mean() / max(d[same].mean(), 1e-9))


def test_f8_tsne_pipeline(benchmark, labeled_data, results_dir):
    x, labels = labeled_data
    records = RecordSet()

    model = TSNE(TSNEConfig(perplexity=20, n_iter=250, exaggeration_iters=100,
                            seed=0))
    t0 = time.perf_counter()
    emb = model.fit_transform(x)
    total = time.perf_counter() - t0
    graph_seconds = sum(
        model.knn_graph.meta["report"]["phase_seconds"].values()
    )
    records.add(
        "F8",
        {"graph_stage": "w-knng"},
        {
            "total_seconds": total,
            "knng_seconds": graph_seconds,
            "knng_share": graph_seconds / total,
            "kl": model.kl_divergence_,
            "cluster_separation": _separation(emb, labels),
        },
    )

    # exact-graph comparison point: time the brute-force graph stage alone
    t0 = time.perf_counter()
    BruteForceKNN(x).knn_graph(model.config.effective_k())
    exact_graph_seconds = time.perf_counter() - t0
    records.add("F8", {"graph_stage": "bruteforce"},
                {"knng_seconds": exact_graph_seconds})

    publish(results_dir, "F8_tsne", records)

    assert _separation(emb, labels) > 2.0, "embedding must separate clusters"

    benchmark.pedantic(
        lambda: TSNE(TSNEConfig(perplexity=20, n_iter=50,
                                exaggeration_iters=25, seed=0)).fit_transform(x),
        rounds=1, iterations=1,
    )
