"""F4 - sensitivity to the neighbour count K.

Insertion work grows with K for every strategy, but differently: the
atomic strategy's accept count (one CAS + re-scan each) grows ~linearly in
K, while the tiled strategy's bulk merges amortise the K-sized list access
over a whole tile.  The series reports modeled cycles and the insertion
share per strategy across K - the figure behind the paper's guidance that
the lock-free path is most attractive at small K.
"""


from conftest import publish
from repro.baselines.bruteforce import BruteForceKNN
from repro.bench.sweep import run_wknng
from repro.core.config import BuildConfig
from repro.data.synthetic import gaussian_mixture
from repro.metrics.records import RecordSet

KS = (4, 8, 16, 32, 64)
N = 3000
DIM = 64


def test_f4_scaling_with_k(benchmark, results_dir):
    x = gaussian_mixture(N, DIM, n_clusters=64, cluster_std=1.5,
                         center_scale=4.0, seed=5)
    bf = BruteForceKNN(x)
    records = RecordSet()
    for k in KS:
        gt, _ = bf.search(x, k, exclude_self=True)
        for strategy in ("atomic", "tiled"):
            cfg = BuildConfig(k=k, strategy=strategy, n_trees=4,
                              leaf_size=max(2 * k + 2, 64),
                              refine_iters=2, seed=0)
            res = run_wknng(x, gt, cfg)
            cyc = res.detail["cycles"]
            records.add(
                "F4",
                {"k": k, "strategy": strategy},
                {
                    "recall": res.recall,
                    "modeled_mcycles": res.modeled_cycles / 1e6,
                    "insertion_share": cyc["insertion_cycles"] / max(1, cyc["total_cycles"]),
                    "attempts": res.detail["counters"]["atomic_attempts"],
                },
            )
    publish(results_dir, "F4_scaling_k", records)

    # insertion share of the atomic strategy must grow with K
    atomic_rows = [r for r in records if r.params["strategy"] == "atomic"]
    assert atomic_rows[-1].results["insertion_share"] > atomic_rows[0].results["insertion_share"]

    gt, _ = bf.search(x, 16, exclude_self=True)
    cfg = BuildConfig(k=16, strategy="atomic", n_trees=4, leaf_size=64,
                      refine_iters=2, seed=0)
    benchmark.pedantic(lambda: run_wknng(x, gt, cfg), rounds=1, iterations=1)
