"""T1 - headline table: w-KNNG vs FAISS-like IVF-Flat at equivalent recall.

Reproduces the paper's central claim ("up to 639% faster execution when
compared to the state-of-the-art FAISS library, considering an equivalent
accuracy of approximate K-NNG"): for each dataset and target recall, both
systems are tuned to the target (IVF via nprobe, w-KNNG via forest size),
then compared in modeled GPU cycles (the apples-to-apples currency; see
repro.bench.costmodel) and wall-clock.

Expected shape: the speedup factor grows with the recall target - IVF's
single space partition forces wide multi-probing for the hard neighbour
pairs that the forest + local-join refinement finds cheaply - and w-KNNG
wins clearly at the >= 0.95-recall operating points the paper targets.
"""

import pytest

from conftest import publish, publish_summary
from repro.baselines import BruteForceKNN, IVFFlatIndex, NNDescent
from repro.baselines.ivf import IVFConfig
from repro.bench.match import match_ivf_recall, match_wknng_recall
from repro.core.config import BuildConfig
from repro.errors import BenchmarkError
from repro.metrics.records import RecordSet

#: (workload, strategy, recall targets).  The mix spans the regimes that
#: matter: clustered data (IVF's best case at low targets), structure-free
#: uniform data and manifold data (where cell boundaries hurt IVF at any
#: density), and the dimensionality extremes.
CASES = [
    ("clustered-16d", "atomic", (0.90, 0.99)),
    ("clustered-128d", "tiled", (0.90, 0.99, 0.995)),
    ("sift-like-128d", "tiled", (0.95, 0.99)),
    ("uniform-16d", "atomic", (0.90, 0.95)),
    ("manifold-256d", "tiled", (0.99,)),
    ("gist-like-960d", "tiled", (0.90,)),
]


def _one_case(workbench, workload, strategy, target):
    x, gt = workbench.load(workload)
    # high-dimensional manifolds need bigger leaves for the forest phase;
    # a generous refinement budget is safe (convergence-based stopping)
    leaf = 128 if "960d" in workload else 64
    base = BuildConfig(
        k=16, strategy=strategy, n_trees=1, leaf_size=leaf,
        refine_iters=8, refine_fanout=2, seed=0,
    )
    wk = match_wknng_recall(x, gt, base, target)
    ivf = match_ivf_recall(x, gt, 16, target, IVFConfig(seed=7))
    return wk.achieved, ivf.achieved


@pytest.mark.parametrize("workload,strategy,targets", CASES)
def test_t1_matched_recall_speedup(benchmark, workbench, results_dir,
                                   workload, strategy, targets):
    records = RecordSet()
    rows = []
    for target in targets:
        try:
            wk, ivf = _one_case(workbench, workload, strategy, target)
        except BenchmarkError as exc:
            records.add("T1", {"workload": workload, "target": target},
                        {"status": f"unmatchable: {exc}"})
            continue
        speedup_model = ivf.modeled_cycles / max(1, wk.modeled_cycles)
        rows.append((target, wk, ivf, speedup_model))
        records.add(
            "T1",
            {"workload": workload, "strategy": strategy, "target": target},
            {
                "wknng_trees": wk.params["n_trees"],
                "wknng_recall": wk.recall,
                "wknng_mcycles": wk.modeled_cycles / 1e6,
                "wknng_seconds": wk.seconds,
                "ivf_nprobe": ivf.params["nprobe"],
                "ivf_recall": ivf.recall,
                "ivf_mcycles": ivf.modeled_cycles / 1e6,
                "ivf_seconds": ivf.seconds,
                "modeled_speedup": speedup_model,
            },
        )
    # exact GPU brute force as the cost ceiling for context
    from repro.bench.costmodel import bruteforce_cycles

    x, _ = workbench.load(workload)
    bf = bruteforce_cycles(len(x), dim=x.shape[1], k=16)
    records.add("T1", {"workload": workload, "target": "exact"},
                {"system": "bruteforce", "modeled_mcycles": bf.total / 1e6})
    publish(results_dir, f"T1_{workload}", records)
    publish_summary(results_dir, f"T1_{workload}", {
        "workload": {"name": workload, "strategy": strategy,
                     "n": int(x.shape[0]), "dim": int(x.shape[1])},
        "cases": [
            {"target": target, "wknng_recall": wk.recall,
             "wknng_seconds": wk.seconds, "ivf_recall": ivf.recall,
             "ivf_seconds": ivf.seconds, "modeled_speedup": spd}
            for target, wk, ivf, spd in rows
        ],
    })

    if rows:
        # time the winning w-KNNG configuration as the benchmark payload
        target, wk, _, _ = rows[-1]
        x, gt = workbench.load(workload)
        from repro.bench.sweep import run_wknng

        cfg = BuildConfig(
            k=16, strategy=strategy, n_trees=wk.params["n_trees"],
            leaf_size=64, refine_iters=3, seed=0,
        )
        result = benchmark.pedantic(
            lambda: run_wknng(x, gt, cfg), rounds=1, iterations=1
        )
        benchmark.extra_info["recall"] = result.recall
        benchmark.extra_info["modeled_mcycles"] = result.modeled_cycles / 1e6


def test_t1_engine_comparison(workbench, results_dir):
    """All baseline engines, driven through the one KNNIndex interface.

    Complements the matched-recall table above: fixed default-ish
    configurations, one protocol-generic code path
    (:func:`repro.bench.sweep.run_index`), so adding an engine to the
    comparison is one line.
    """
    from repro.bench.sweep import run_index

    x, gt = workbench.load("clustered-16d")
    k = 10
    engines = [
        BruteForceKNN(),
        IVFFlatIndex(IVFConfig(nprobe=8, seed=7)),
        NNDescent(k=16, seed=0),
    ]
    records = RecordSet()
    results = []
    for engine in engines:
        res = run_index(x, gt, k, engine)
        results.append(res)
        records.add(
            "T1-engines",
            {"engine": res.system, "k": k},
            {
                "recall": res.recall,
                "seconds": res.seconds,
                "fit_seconds": res.detail["fit_seconds"],
                "query_seconds": res.detail["query_seconds"],
                **{f"stat_{key}": value
                   for key, value in sorted(res.detail["stats"].items())
                   if isinstance(value, (int, float))},
            },
        )
    publish(results_dir, "T1_engine_comparison", records)
    exact = next(r for r in results if r.system == "bruteforce")
    assert exact.recall == pytest.approx(1.0), "exact engine must have recall 1"
    for res in results:
        assert res.recall > 0.5, f"{res.system} recall collapsed: {res.recall}"
