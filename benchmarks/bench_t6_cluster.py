"""T6 - sharded cluster serving: scale-out throughput and fault tolerance.

T5 measured one engine behind one micro-batching server; T6 measures the
sharded scatter-gather cluster (:class:`~repro.serve.ClusterClient`).
Points are partitioned across ``S`` shards, each served by ``R`` replica
workers, and per-shard top-k lists are merged by packed ``(dist, id)``
keys - by construction the merged answer is bitwise identical to a flat
single-index search at the same search settings.

Two measurements:

* **shard scaling** - closed-loop QPS for S in {1, 2, 4} shards with the
  ``scaled`` shard-ef policy (each shard searches ``ef/S``-wide beams, so
  total beam work stays roughly constant while shards run concurrently).
  Gate at full scale *and* >= 4 usable cores *and* the process backend:
  QPS(S=4) >= 2.5x QPS(S=1).  On a starved container the sweep still
  runs and publishes numbers; only the gate is skipped.
* **kill a replica mid-run** - an S=2, R=2 cluster serves a steady
  closed-loop stream; one replica of shard 0 is killed cold.  Because
  every replica of a shard is built from the same index, failover can
  never change an answer: every post-kill response must match the
  cluster's own pre-kill answer bit-for-bit (zero wrong answers, at any
  scale).  At full scale the p99 of the post-kill phase must stay within
  3x the steady-state p99, and the health loop must have ejected the
  corpse.

The wrong-answer and server-stays-up invariants assert at every scale;
throughput magnitude gates only at ``WKNNG_BENCH_SCALE >= 1``.
"""

import time

import numpy as np
import pytest

from conftest import BENCH_SCALE, publish, publish_summary
from repro.core.config import BuildConfig
from repro.data.synthetic import make_dataset
from repro.metrics.records import RecordSet
from repro.serve import (
    AdmissionPolicy,
    ClusterClient,
    ClusterConfig,
    ServeConfig,
    ShedPolicy,
    closed_loop,
)
from repro.utils.parallel import fork_available, usable_cpus

FULL_SCALE = BENCH_SCALE >= 1.0

#: headline workload (at scale 1.0)
N_POINTS = 8_000
N_QUERIES = 256
DIM = 32
EF = 64
TOP_K = 10
GRAPH_K = 16

SUMMARY: dict = {
    "workload": {"n": None, "dim": DIM, "queries": None, "ef": EF,
                 "topk": TOP_K, "graph_k": GRAPH_K},
    "env": {"usable_cpus": usable_cpus(), "fork_available": fork_available()},
}


def _scaled(n: int, floor: int = 256) -> int:
    return max(floor, int(n * BENCH_SCALE))


def _backend() -> str:
    return "process" if fork_available() else "thread"


def _serve_cfg() -> ServeConfig:
    # shedding off: every request is served at full ef so answers are
    # deterministic and phases are comparable at equal quality
    return ServeConfig(
        admission=AdmissionPolicy(max_batch=64, max_wait_ms=2.0,
                                  queue_limit=1024),
        ef=EF, shed=ShedPolicy(enabled=False),
    )


def _build_cluster(points: np.ndarray, n_shards: int, n_replicas: int,
                   **cfg_kw) -> ClusterClient:
    return ClusterClient.build(
        points,
        build_config=BuildConfig(k=GRAPH_K, strategy="tiled", seed=0),
        config=ClusterConfig(
            n_shards=n_shards, n_replicas=n_replicas, backend=_backend(),
            serve=_serve_cfg(), **cfg_kw,
        ),
    )


@pytest.fixture(scope="module")
def corpus():
    x = make_dataset("gaussian", _scaled(N_POINTS), seed=0, dim=DIM)
    rng = np.random.default_rng(1)
    q = x[rng.choice(x.shape[0], size=min(_scaled(N_QUERIES, floor=64),
                                          x.shape[0]), replace=False)]
    SUMMARY["workload"]["n"] = int(x.shape[0])
    SUMMARY["workload"]["queries"] = int(q.shape[0])
    return x, q


def test_t6_shard_scaling(corpus, results_dir):
    x, q = corpus
    sweep = []
    for n_shards in (1, 2, 4):
        client = _build_cluster(x, n_shards, 1, shard_ef_policy="scaled")
        with client:
            report = closed_loop(client, q, TOP_K, clients=16, repeat=2,
                                 deadline_ms=10_000.0)
            stats = client.stats()
        assert report.errors == 0, f"S={n_shards}: {report.errors} errors"
        assert report.deadline_violations == 0
        assert report.ok == 2 * q.shape[0], f"S={n_shards} dropped requests"
        sweep.append({
            "shards": n_shards,
            "qps": report.throughput_qps,
            "p50_ms": report.percentile_ms(0.5),
            "p99_ms": report.percentile_ms(0.99),
            "shard_ef": client.config.shard_ef(EF, TOP_K),
            "shard_calls": stats["router"]["shard_calls"],
        })

    base_qps = sweep[0]["qps"]
    records = RecordSet()
    for row in sweep:
        records.add(
            "T6", {"shards": row["shards"], "replicas": 1,
                   "backend": _backend(), "policy": "scaled"},
            {"qps": row["qps"], "p50_ms": row["p50_ms"],
             "p99_ms": row["p99_ms"],
             "speedup_vs_s1": row["qps"] / base_qps},
        )
    publish(results_dir, "T6_shard_scaling", records)
    SUMMARY["shard_scaling"] = {
        "backend": _backend(),
        "policy": "scaled",
        "sweep": [{"shards": r["shards"], "qps": r["qps"],
                   "p99_ms": r["p99_ms"],
                   "speedup_vs_s1": r["qps"] / base_qps} for r in sweep],
    }
    publish_summary(results_dir, "T6", SUMMARY)

    if FULL_SCALE and usable_cpus() >= 4 and _backend() == "process":
        speedup = sweep[-1]["qps"] / base_qps
        assert speedup >= 2.5, (
            f"4 shards only {speedup:.2f}x over 1 shard "
            f"({sweep[-1]['qps']:.0f} vs {base_qps:.0f} q/s)"
        )


def test_t6_kill_replica_mid_run(corpus, results_dir):
    x, q = corpus
    client = _build_cluster(x, 2, 2, heartbeat_interval_s=0.1,
                            heartbeat_timeout_s=0.5)
    with client:
        # ground truth from the cluster itself: replicas of a shard are
        # forks of one built index, so failover must reproduce these bits
        expected = {i: client.query(q[i], TOP_K, timeout=30.0).ids
                    for i in range(q.shape[0])}

        steady = closed_loop(client, q, TOP_K, clients=16, repeat=1,
                             deadline_ms=10_000.0)
        assert steady.errors == 0 and steady.deadline_violations == 0

        client.kill_replica(0, 0)
        post = closed_loop(client, q, TOP_K, clients=16, repeat=2,
                           deadline_ms=10_000.0)
        # give the heartbeat a beat to observe the corpse
        deadline = time.monotonic() + 5.0
        while (client.router.counters["ejections"] == 0
               and time.monotonic() < deadline):
            time.sleep(0.05)
        stats = client.stats()

    # zero wrong answers, at any scale
    assert post.errors == 0, f"{post.errors} errors after replica kill"
    assert post.ok == 2 * q.shape[0], "replica kill dropped requests"
    wrong = sum(
        0 if np.array_equal(ids, expected[qi]) else 1
        for qi, ids in post.ids.items()
    )
    assert wrong == 0, f"{wrong} queries changed answers after the kill"
    assert stats["router"]["healthy_replicas"] == 3
    assert stats["router"]["ejections"] >= 1, "corpse was never ejected"

    p99_ratio = post.percentile_ms(0.99) / max(steady.percentile_ms(0.99),
                                               1e-3)
    records = RecordSet()
    for phase, rep in (("steady", steady), ("post_kill", post)):
        records.add(
            "T6-kill", {"phase": phase, "shards": 2, "replicas": 2,
                        "backend": _backend()},
            {"qps": rep.throughput_qps, "p50_ms": rep.percentile_ms(0.5),
             "p99_ms": rep.percentile_ms(0.99), "ok": rep.ok,
             "errors": rep.errors},
        )
    publish(results_dir, "T6_kill_replica", records)
    SUMMARY["kill_replica"] = {
        "backend": _backend(),
        "steady_p99_ms": steady.percentile_ms(0.99),
        "post_kill_p99_ms": post.percentile_ms(0.99),
        "p99_ratio": p99_ratio,
        "wrong_answers": wrong,
        "failovers": stats["router"]["failovers"],
        "ejections": stats["router"]["ejections"],
        "healthy_replicas": stats["router"]["healthy_replicas"],
    }
    publish_summary(results_dir, "T6", SUMMARY)

    if FULL_SCALE:
        assert p99_ratio <= 3.0, (
            f"post-kill p99 blew up {p99_ratio:.1f}x over steady state"
        )
