"""F3 - build-cost scaling with dataset size.

The forest method's per-point work is set by (trees x leaf size) +
refinement, independent of n, so total work grows near-linearly - unlike
exact brute force's O(n^2).  The series reports total and per-point work
for w-KNNG and brute force across n, and the wall-clock of each build.
"""

import time


from conftest import publish
from repro.baselines.bruteforce import BruteForceKNN
from repro.bench.sweep import run_wknng
from repro.core.config import BuildConfig
from repro.data.synthetic import gaussian_mixture
from repro.metrics.records import RecordSet

SIZES = (1000, 2000, 4000, 8000, 16000)
DIM = 64
K = 16


def test_f3_scaling_with_n(benchmark, results_dir):
    records = RecordSet()
    for n in SIZES:
        x = gaussian_mixture(n, DIM, n_clusters=max(8, n // 100), seed=4)
        t0 = time.perf_counter()
        bf = BruteForceKNN(x)
        gt, _ = bf.search(x, K, exclude_self=True)
        bf_seconds = time.perf_counter() - t0

        cfg = BuildConfig(k=K, strategy="tiled", n_trees=4, leaf_size=64,
                          refine_iters=2, seed=0)
        res = run_wknng(x, gt, cfg)
        evals = res.detail["counters"]["distance_evals"]
        records.add(
            "F3",
            {"n": n},
            {
                "wknng_recall": res.recall,
                "wknng_seconds": res.seconds,
                "wknng_evals_per_point": evals / n,
                "wknng_mcycles": res.modeled_cycles / 1e6,
                "bruteforce_seconds": bf_seconds,
                "bruteforce_evals_per_point": n - 1,
            },
        )
    publish(results_dir, "F3_scaling_n", records)

    rows = list(records)
    first, last = rows[0], rows[-1]
    growth = last.results["wknng_evals_per_point"] / first.results["wknng_evals_per_point"]
    assert growth < 2.0, "w-KNNG per-point work should stay near-flat in n"

    x = gaussian_mixture(SIZES[1], DIM, n_clusters=20, seed=4)
    gt, _ = BruteForceKNN(x).search(x, K, exclude_self=True)
    cfg = BuildConfig(k=K, strategy="tiled", n_trees=4, leaf_size=64,
                      refine_iters=2, seed=0)
    benchmark.pedantic(lambda: run_wknng(x, gt, cfg), rounds=1, iterations=1)
