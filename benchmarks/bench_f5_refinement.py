"""F5 - refinement (NN-descent local join) rounds vs recall.

The ablation behind the pipeline's second phase: starting from a small
forest, each local-join round adds candidates along neighbour-of-neighbour
paths.  The series reports recall, cumulative work and per-round
insertions across refinement budgets - expected shape: steep recall gains
in the first 2-3 rounds, then convergence (insertions -> 0), the signature
of NN-descent.
"""


from conftest import publish
from repro.bench.sweep import run_wknng
from repro.core.config import BuildConfig
from repro.metrics.records import RecordSet

ITER_BUDGETS = (0, 1, 2, 3, 4, 6)
WORKLOAD = "clustered-128d"


def test_f5_refinement_rounds(benchmark, workbench, results_dir):
    x, gt = workbench.load(WORKLOAD)
    records = RecordSet()
    recalls = []
    for iters in ITER_BUDGETS:
        cfg = BuildConfig(k=16, strategy="tiled", n_trees=2, leaf_size=64,
                          refine_iters=iters, seed=0)
        res = run_wknng(x, gt, cfg)
        recalls.append(res.recall)
        records.add(
            "F5",
            {"refine_iters": iters},
            {
                "recall": res.recall,
                "modeled_mcycles": res.modeled_cycles / 1e6,
                "seconds": res.seconds,
                "insertions_per_round": res.detail["report"]["refine_insertions"],
            },
        )
    publish(results_dir, "F5_refinement", records)

    assert recalls[0] < recalls[-1], "refinement must improve recall"
    assert recalls[-1] > 0.9, "refined graph should be accurate"

    cfg = BuildConfig(k=16, strategy="tiled", n_trees=2, leaf_size=64,
                      refine_iters=3, seed=0)
    benchmark.pedantic(lambda: run_wknng(x, gt, cfg), rounds=1, iterations=1)
