"""Compare BENCH_T*.json headline metrics between two bench runs.

CI's ``perf-compare`` job feeds this the latest ``perf-trajectory-*``
artifact from ``main`` (the baseline) and the PR's freshly produced
``benchmarks/results`` directory, both run at the same reduced
``WKNNG_BENCH_SCALE``.  Each tier contributes a small set of headline
metrics (one dotted path each into its summary JSON); a metric that
moves against its preferred direction by more than ``--threshold``
(default 20%, sized for shared-runner noise) fails the job.

Safety rails: a tier missing from the baseline is reported as skipped -
never failed - so new benches land cleanly, and summaries whose
``bench_scale`` stamps disagree are refused rather than silently
compared across workload sizes.

Usage::

    python compare_perf.py --baseline DIR --current DIR \
        [--threshold 0.20] [--output report.md]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True)
class Metric:
    """One headline metric: a dotted path and a preferred direction."""

    path: str
    lower_is_better: bool = False


#: headline metrics per tier prefix (``BENCH_T1_<workload>.json`` files
#: all resolve through the ``T1`` entry)
HEADLINES: dict[str, list[Metric]] = {
    "T1": [Metric("cases.-1.wknng_seconds", lower_is_better=True)],
    "T3": [Metric("batched_qps")],
    "T4": [Metric("speedup")],
    "T5": [Metric("closed_loop.serving_qps")],
    "T6": [Metric("shard_scaling.sweep.-1.qps")],
    "T7": [
        Metric("churn.qps"),
        Metric("quant_churn.end_recall"),
        Metric("quant_churn.memory_reduction"),
    ],
    # T8 headlines are deterministic (seeded data, exact code paths):
    # wall-clock kernel ratios there are bimodal with host memory state
    # and would false-alarm at any useful threshold
    "T8": [
        Metric("pq.recall"),
        Metric("pq.memory_reduction"),
    ],
    # T9: edge-extraction speedup over bruteforce and DBSCAN agreement
    # with the exact reference - the workload-facing headlines
    "T9": [
        Metric("edges.speedup"),
        Metric("dbscan.ari"),
    ],
}


def lookup(payload: dict, path: str):
    """Resolve a dotted path; integer segments index lists (negatives ok).

    Returns ``None`` when any segment is missing, so callers can treat
    schema drift as "skip" rather than crash on old baselines.
    """
    node = payload
    for seg in path.split("."):
        try:
            if isinstance(node, list):
                node = node[int(seg)]
            elif isinstance(node, dict):
                node = node[seg]
            else:
                return None
        except (KeyError, IndexError, ValueError):
            return None
    return node if isinstance(node, (int, float)) else None


def load_summaries(directory: Path) -> dict[str, dict]:
    """Map ``BENCH_<tier>.json`` file stems to their parsed payloads."""
    out = {}
    for f in sorted(directory.glob("BENCH_*.json")):
        try:
            out[f.stem] = json.loads(f.read_text())
        except (OSError, json.JSONDecodeError):
            continue
    return out


def compare(
    baseline_dir: Path, current_dir: Path, threshold: float
) -> tuple[list[dict], int]:
    """Diff every current summary against its baseline counterpart.

    Returns ``(rows, n_regressions)``; each row carries ``status`` in
    ``{"ok", "regression", "skip"}`` plus display fields.
    """
    baseline = load_summaries(baseline_dir)
    current = load_summaries(current_dir)
    rows: list[dict] = []
    regressions = 0
    for stem, cur in current.items():
        tier = str(cur.get("tier", stem.removeprefix("BENCH_")))
        prefix = tier.split("_")[0]
        metrics = HEADLINES.get(prefix)
        if not metrics:
            continue
        base = baseline.get(stem)
        if base is None:
            rows.append(
                {
                    "tier": tier,
                    "metric": "-",
                    "status": "skip",
                    "note": "no baseline (new tier?)",
                }
            )
            continue
        if base.get("bench_scale") != cur.get("bench_scale"):
            rows.append(
                {
                    "tier": tier,
                    "metric": "-",
                    "status": "skip",
                    "note": (
                        f"bench_scale mismatch (baseline "
                        f"{base.get('bench_scale')}, current "
                        f"{cur.get('bench_scale')})"
                    ),
                }
            )
            continue
        for metric in metrics:
            b, c = lookup(base, metric.path), lookup(cur, metric.path)
            if b is None or c is None or b == 0:
                rows.append(
                    {
                        "tier": tier,
                        "metric": metric.path,
                        "status": "skip",
                        "note": "metric missing in baseline or current",
                    }
                )
                continue
            delta = (c - b) / abs(b)
            worse = delta > threshold if metric.lower_is_better else delta < -threshold
            status = "regression" if worse else "ok"
            regressions += worse
            arrow = "lower=better" if metric.lower_is_better else "higher=better"
            rows.append(
                {
                    "tier": tier,
                    "metric": metric.path,
                    "status": status,
                    "baseline": b,
                    "current": c,
                    "delta_pct": 100.0 * delta,
                    "note": arrow,
                }
            )
    return rows, regressions


def render_markdown(rows: list[dict], threshold: float) -> str:
    lines = [
        "## Perf comparison vs `main`",
        "",
        f"Regression threshold: {threshold:.0%} against each metric's "
        "preferred direction.",
        "",
        "| tier | metric | baseline | current | delta | status |",
        "|---|---|---|---|---|---|",
    ]
    for r in rows:
        if r["status"] == "skip":
            lines.append(
                f"| {r['tier']} | {r['metric']} | - | - | - | "
                f"skipped: {r['note']} |"
            )
        else:
            mark = ":x: regression" if r["status"] == "regression" else ":white_check_mark:"
            lines.append(
                f"| {r['tier']} | `{r['metric']}` | {r['baseline']:.4g} "
                f"| {r['current']:.4g} | {r['delta_pct']:+.1f}% | {mark} |"
            )
    if not rows:
        lines.append("| - | - | - | - | - | nothing to compare |")
    return "\n".join(lines) + "\n"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", type=Path, required=True)
    parser.add_argument("--current", type=Path, required=True)
    parser.add_argument("--threshold", type=float, default=0.20)
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="append the markdown report here (default: $GITHUB_STEP_SUMMARY "
        "when set, else stdout only)",
    )
    args = parser.parse_args(argv)

    if not args.baseline.is_dir():
        print(f"perf-compare: no baseline directory at {args.baseline}; skipping")
        return 0
    rows, regressions = compare(args.baseline, args.current, args.threshold)
    report = render_markdown(rows, args.threshold)
    print(report)
    output = args.output
    if output is None and os.environ.get("GITHUB_STEP_SUMMARY"):
        output = Path(os.environ["GITHUB_STEP_SUMMARY"])
    if output is not None:
        with open(output, "a") as fh:
            fh.write(report)
    if regressions:
        print(f"perf-compare: {regressions} metric(s) regressed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
