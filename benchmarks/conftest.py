"""Shared fixtures for the experiment benchmarks.

Every bench target draws datasets and exact ground truth through the
session-scoped :func:`workbench` fixture so expensive brute-force ground
truth is computed once per (workload, scale).

Scale: set ``WKNNG_BENCH_SCALE`` (default ``0.25``) to shrink/grow every
workload's ``n``; the canonical sizes in ``repro.bench.workloads`` are the
paper-like targets, the default scale keeps the full suite to a few
minutes on a laptop.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.baselines.bruteforce import BruteForceKNN
from repro.bench.workloads import get_workload

BENCH_SCALE = float(os.environ.get("WKNNG_BENCH_SCALE", "0.25"))
RESULTS_DIR = Path(__file__).parent / "results"


class Workbench:
    """Caches materialised workloads and their exact KNN ground truth."""

    def __init__(self) -> None:
        self._cache: dict[tuple[str, float], tuple[np.ndarray, np.ndarray]] = {}

    def load(self, name: str, scale: float = BENCH_SCALE, k: int | None = None):
        key = (name, scale)
        if key not in self._cache:
            w = get_workload(name)
            x = w.materialize(scale)
            gt, _ = BruteForceKNN(x).search(x, k or w.k, exclude_self=True)
            self._cache[key] = (x, gt)
        return self._cache[key]


@pytest.fixture(scope="session")
def workbench():
    return Workbench()


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: Path, experiment: str, records) -> None:
    """Print an experiment table and persist it under benchmarks/results/.

    Pass a :class:`~repro.metrics.records.RecordSet` to get both the
    human-readable aligned table (``<experiment>.txt``) and the
    machine-readable JSON-lines file (``<experiment>.jsonl``, one record
    per line, schema-tagged).  A plain pre-rendered table string still
    works but only produces the ``.txt``.
    """
    from repro.metrics.records import RecordSet
    from repro.obs.export import SCHEMA_VERSION, write_jsonl

    if isinstance(records, RecordSet):
        table = records.to_table()
        rows = [{"type": "record", "schema": SCHEMA_VERSION, **rec.flat()}
                for rec in records]
        write_jsonl(results_dir / f"{experiment}.jsonl", rows)
    else:
        table = str(records)
    banner = f"\n=== {experiment} ===\n{table}\n"
    print(banner)
    (results_dir / f"{experiment}.txt").write_text(table + "\n")


def publish_summary(results_dir: Path, tier: str, payload: dict) -> None:
    """Persist one bench tier's headline summary as ``BENCH_<tier>.json``.

    These are the perf-trajectory artifacts CI uploads from ``main``:
    one self-describing JSON per tier (workload parameters, wall times,
    recall/speedup figures) so the trajectory accumulates run over run.
    The bench scale is stamped in *after* the payload so every summary
    records the true ``WKNNG_BENCH_SCALE`` of its run - a payload key can
    never shadow it, and the perf-compare job refuses to diff summaries
    whose scales disagree rather than comparing them silently.
    """
    from repro.obs.export import write_json_summary

    write_json_summary(
        results_dir / f"BENCH_{tier}.json",
        {"tier": tier, **payload, "bench_scale": BENCH_SCALE},
    )
