"""T4 - build throughput: process-parallel construction vs the serial build.

The whole point of the paper is saturating a many-core processor during
graph *construction*; the CPU reproduction's analogue is the fork-sharded
build (``BuildConfig(n_jobs=...)``): the RP-forest, the leaf all-pairs
phase (leaf batches sharded across workers, per-worker lists merged in
fixed shard order) and the refinement rounds (sharded by point ranges)
all scale with worker count while producing a graph **bitwise identical**
to the serial build (see ``docs/parallel.md``).

Two measurements on the headline workload (n=50k, d=64, k=16 at scale
1.0):

* end-to-end wall clock, serial vs ``n_jobs=4``, with the bitwise
  graph-equality check (always asserted, at any scale);
* per-phase wall clock from the build reports, so a scaling regression
  is attributable to a phase.

The >=3x speedup gate only fires at ``WKNNG_BENCH_SCALE >= 1`` *and* with
at least 4 usable CPUs: on fewer cores (or at smoke scale, where fork
overhead dominates the shrunken work) the ratio is meaningless.  CI runs
this file as a reduced-scale smoke, which still exercises the sharded
code paths and the equality assertion.
"""

import time

import numpy as np

from conftest import BENCH_SCALE, publish, publish_summary
from repro.core.builder import WKNNGBuilder
from repro.core.config import BuildConfig
from repro.data.synthetic import make_dataset
from repro.metrics.records import RecordSet
from repro.utils.parallel import fork_available, usable_cpus

FULL_SCALE = BENCH_SCALE >= 1.0

#: headline workload (at scale 1.0): the ISSUE's acceptance operating point
N_POINTS = 50_000
DIM = 64
K = 16
N_JOBS = 4
STRATEGY = "tiled"
#: hard gate on capable machines: parallel build must be >= this much faster
MIN_SPEEDUP = 3.0


def _scaled(n: int, floor: int = 512) -> int:
    return max(floor, int(n * BENCH_SCALE))


def _build(x: np.ndarray, n_jobs: int):
    cfg = BuildConfig(k=K, strategy=STRATEGY, n_trees=8, leaf_size=128,
                      refine_iters=2, seed=0, n_jobs=n_jobs)
    t0 = time.perf_counter()
    graph, report = WKNNGBuilder(cfg).build(x, return_report=True)
    return time.perf_counter() - t0, graph, report


def test_t4_parallel_build_speedup(results_dir):
    n = _scaled(N_POINTS)
    x = make_dataset("gaussian", n, seed=0, dim=DIM)
    cpus = usable_cpus()

    t_serial, g_serial, rep_serial = _build(x, n_jobs=1)
    t_parallel, g_parallel, rep_parallel = _build(x, n_jobs=N_JOBS)
    speedup = t_serial / t_parallel

    records = RecordSet()
    for mode, seconds, rep in (("serial", t_serial, rep_serial),
                               (f"n_jobs={N_JOBS}", t_parallel, rep_parallel)):
        records.add(
            "T4",
            {"mode": mode, "n": n, "dim": DIM, "k": K, "strategy": STRATEGY},
            {
                "seconds": seconds,
                "points_per_s": n / seconds,
                "speedup_vs_serial": t_serial / seconds,
                **{f"{phase}_s": secs
                   for phase, secs in rep.phase_seconds.items()},
            },
        )
    publish(results_dir, "T4_build_throughput", records)
    publish_summary(results_dir, "T4", {
        "workload": {"n": n, "dim": DIM, "k": K, "strategy": STRATEGY,
                     "n_jobs": N_JOBS},
        "usable_cpus": cpus,
        "serial_seconds": t_serial,
        "parallel_seconds": t_parallel,
        "speedup": speedup,
        "graphs_bitwise_identical": True,  # asserted below; job fails otherwise
        "parallel_report": rep_parallel.parallel,
    })

    # the determinism contract holds at every scale and every core count
    assert np.array_equal(g_serial.ids, g_parallel.ids), \
        "parallel build diverged from serial (ids)"
    assert np.array_equal(g_serial.dists, g_parallel.dists), \
        "parallel build diverged from serial (dists)"
    assert rep_parallel.parallel["n_jobs"] == N_JOBS
    if fork_available():
        assert "leaf" in rep_parallel.parallel, \
            "parallel build did not shard the leaf phase"

    if FULL_SCALE and cpus >= N_JOBS:
        assert speedup >= MIN_SPEEDUP, (
            f"parallel build only {speedup:.2f}x over serial "
            f"({t_parallel:.2f}s vs {t_serial:.2f}s) with {cpus} CPUs"
        )
