"""F6 - warp-level microarchitecture metrics per strategy (SIMT simulator).

Runs the actual warp-centric kernels on the event-level simulator for one
leaf workload per dimensionality and reports the counters that *explain*
the strategy behaviour:

* global-memory transactions (the tiled kernel's shared staging slashes
  them at high d);
* shared-memory traffic + bank conflicts (tiled pays these instead);
* atomic operations (baseline's locks vs atomic's accepts-only CAS);
* divergence and barrier counts.

This is the mechanism evidence for the F2 crossover.
"""

import numpy as np

from conftest import publish
from repro.data.synthetic import gaussian_mixture
from repro.metrics.records import RecordSet
from repro.simt_kernels import simt_leaf_metrics

DIMS = (8, 64, 256)
LEAF = 24
K = 8


def test_f6_leaf_kernel_metrics(benchmark, results_dir):
    records = RecordSet()
    per_dim = {}
    for d in DIMS:
        x = gaussian_mixture(LEAF, d, n_clusters=4, seed=6)
        leaf = np.arange(LEAF)
        for strategy in ("baseline", "atomic", "tiled"):
            m = simt_leaf_metrics(x, leaf, k=K, strategy=strategy)
            per_dim[(d, strategy)] = m
            records.add(
                "F6",
                {"dim": d, "strategy": strategy},
                {
                    "global_ld_tx": m.global_load_transactions,
                    "cache_hit_rate": round(
                        m.global_cache_hits
                        / max(1, m.global_cache_hits + m.global_cache_misses),
                        3,
                    ),
                    "global_st_tx": m.global_store_transactions,
                    "shared_accesses": m.shared_accesses,
                    "bank_conflicts": m.shared_bank_conflicts,
                    "atomic_ops": m.atomic_ops,
                    "divergent_branches": m.divergent_branches,
                    "barriers": m.barriers,
                },
            )
    publish(results_dir, "F6_simt_metrics", records)

    # mechanism checks
    for d in DIMS:
        assert per_dim[(d, "baseline")].atomic_ops > per_dim[(d, "atomic")].atomic_ops
        assert per_dim[(d, "tiled")].atomic_ops == 0
    hi = max(DIMS)
    assert (per_dim[(hi, "tiled")].global_load_transactions
            < per_dim[(hi, "atomic")].global_load_transactions)

    x = gaussian_mixture(LEAF, 64, n_clusters=4, seed=6)
    benchmark.pedantic(
        lambda: simt_leaf_metrics(x, np.arange(LEAF), k=K, strategy="tiled"),
        rounds=1, iterations=1,
    )
