"""T5 - online serving: micro-batched service vs one-request-per-call.

The offline tiers (T1-T4) measure the engine as a library; T5 measures it
as a *service*.  A :class:`~repro.serve.KNNServer` coalesces concurrent
single-vector requests into micro-batches, so serving throughput should
approach the batched engine's offline rate instead of the one-at-a-time
rate a naive request-per-call deployment gets.

Three measurements:

* **closed loop** - many synchronous clients vs a sequential
  one-request-per-call baseline over the same query stream.  Results are
  checked for exact parity (the lock-step engine is batch-composition
  independent), so the speedup is at *equal recall* by construction.
  Gate at full scale: serving >= 5x the sequential baseline.
* **open loop at 2x capacity** - requests arrive on a wall-clock schedule
  at twice the measured closed-loop capacity.  The server must stay up
  and degrade gracefully: shed ``ef`` and/or reject with
  ``ServerOverloaded``, never return a success past its deadline, and
  keep the p99 of *accepted* requests bounded (zero deadline violations
  implies p99 <= the deadline).  Recall-under-load of what was served is
  reported against exact ground truth.
* **result cache** - a repeated query stream through the LRU cache;
  hits must bypass the engine and answer bit-identically.

The zero-deadline-violation and server-stays-up invariants are asserted
at every scale; throughput/shedding magnitude gates only at
``WKNNG_BENCH_SCALE >= 1``.
"""

import time

import numpy as np
import pytest

from conftest import BENCH_SCALE, publish, publish_summary
from repro.apps.search import GraphSearchIndex, SearchConfig
from repro.baselines.bruteforce import BruteForceKNN
from repro.core.config import BuildConfig
from repro.data.synthetic import make_dataset
from repro.metrics.records import RecordSet
from repro.serve import (
    AdmissionPolicy,
    CachePolicy,
    KNNServer,
    ServeConfig,
    ShedPolicy,
    closed_loop,
    open_loop,
    recall_against,
)

FULL_SCALE = BENCH_SCALE >= 1.0

#: headline workload (at scale 1.0): the offline tiers' operating point
N_POINTS = 20_000
N_QUERIES = 512
DIM = 32
EF = 64
TOP_K = 10

#: accumulated across the tests in file order; the last writer publishes
#: the complete BENCH_T5.json
SUMMARY: dict = {
    "workload": {"n": None, "dim": DIM, "queries": None, "ef": EF,
                 "topk": TOP_K},
}


def _scaled(n: int, floor: int = 256) -> int:
    return max(floor, int(n * BENCH_SCALE))


@pytest.fixture(scope="module")
def corpus():
    x = make_dataset("gaussian", _scaled(N_POINTS), seed=0, dim=DIM)
    rng = np.random.default_rng(1)
    q = x[rng.choice(x.shape[0], size=min(_scaled(N_QUERIES, floor=64),
                                          x.shape[0]), replace=False)]
    SUMMARY["workload"]["n"] = int(x.shape[0])
    SUMMARY["workload"]["queries"] = int(q.shape[0])
    return x, q


@pytest.fixture(scope="module")
def index(corpus):
    x, _ = corpus
    return GraphSearchIndex.build(
        x,
        build_config=BuildConfig(k=16, strategy="tiled", seed=0),
        search_config=SearchConfig(ef=EF),
    )


@pytest.fixture(scope="module")
def gt_ids(corpus):
    x, q = corpus
    ids, _ = BruteForceKNN(x).search(q, TOP_K)
    return ids


def test_t5_serving_vs_sequential(index, corpus, gt_ids, results_dir):
    _, q = corpus
    direct_ids, direct_dists = index.search(q, TOP_K)

    # baseline: one request per engine call, no batching, one caller
    t0 = time.perf_counter()
    for i in range(q.shape[0]):
        seq_ids, _ = index.search(q[i:i + 1], TOP_K)
        assert np.array_equal(seq_ids[0], direct_ids[i])
    seq_seconds = time.perf_counter() - t0
    seq_qps = q.shape[0] / seq_seconds

    # serving: concurrent clients through the micro-batching server
    server = KNNServer(index, ServeConfig(
        admission=AdmissionPolicy(max_batch=64, max_wait_ms=2.0,
                                  queue_limit=512),
        ef=EF,
        shed=ShedPolicy(enabled=False),   # equal-quality comparison
    ))
    with server:
        report = closed_loop(server, q, TOP_K, clients=32, repeat=2,
                             deadline_ms=2000.0)
    speedup = report.throughput_qps / seq_qps

    # zero late successes, at any scale: the core serving invariant
    assert report.deadline_violations == 0
    assert report.errors == 0 and report.rejected == 0
    # equal recall is exact parity: every answered request matches the
    # offline batched result for its query bit-for-bit
    assert report.ids, "closed loop collected no results"
    for qi, ids in report.ids.items():
        assert np.array_equal(ids, direct_ids[qi]), f"parity broke at {qi}"

    recall = recall_against(report, gt_ids, TOP_K)
    records = RecordSet()
    for mode, qps, seconds in (
        ("sequential", seq_qps, seq_seconds),
        ("serving", report.throughput_qps, report.wall_seconds),
    ):
        records.add(
            "T5", {"mode": mode, "n": SUMMARY["workload"]["n"],
                   "queries": q.shape[0], "ef": EF},
            {"qps": qps, "seconds": seconds,
             "speedup_vs_sequential": qps / seq_qps},
        )
    publish(results_dir, "T5_serving_throughput", records)
    SUMMARY["closed_loop"] = {
        "sequential_qps": seq_qps,
        "serving_qps": report.throughput_qps,
        "speedup": speedup,
        "latency_ms": report.latency_summary(),
        "recall": recall,
        "timeouts": report.timeouts,
        "deadline_violations": report.deadline_violations,
    }
    publish_summary(results_dir, "T5", SUMMARY)

    if FULL_SCALE:
        assert speedup >= 5.0, (
            f"serving only {speedup:.1f}x over one-request-per-call "
            f"({report.throughput_qps:.0f} vs {seq_qps:.0f} q/s)"
        )
        assert recall > 0.8, f"recall under serving collapsed: {recall:.3f}"


def test_t5_overload_graceful(index, corpus, gt_ids, results_dir):
    _, q = corpus
    deadline_ms = 150.0

    # measure sustainable capacity with a short closed loop
    cal = KNNServer(index, ServeConfig(
        admission=AdmissionPolicy(max_batch=32, max_wait_ms=2.0,
                                  queue_limit=256),
        ef=EF))
    with cal:
        cal_report = closed_loop(cal, q, TOP_K, clients=16, repeat=1,
                                 collect_ids=False)
    capacity_qps = max(cal_report.throughput_qps, 1.0)

    # offer 2x capacity, open loop, against a deliberately small queue
    server = KNNServer(index, ServeConfig(
        admission=AdmissionPolicy(max_batch=32, max_wait_ms=2.0,
                                  queue_limit=64),
        ef=EF,
        shed=ShedPolicy(high_water=0.4, low_water=0.1, step_up_after=1,
                        step_down_after=4, factor=0.5, min_ef=16),
    ))
    duration_s = 1.0 + 2.0 * min(1.0, BENCH_SCALE)
    with server:
        report = open_loop(server, q, TOP_K, rate_qps=2.0 * capacity_qps,
                           duration_s=duration_s, deadline_ms=deadline_ms,
                           collect_ids=True, seed=5)
        # the server is still up and answering after the storm
        post = server.query(q[0], TOP_K, timeout=30.0)
    assert post.ids.shape == (TOP_K,)
    stats = server.stats()

    # graceful-degradation invariants, at any scale
    assert report.deadline_violations == 0, "late success returned"
    assert report.errors == 0, f"{report.errors} unexpected errors"
    assert report.ok > 0, "overloaded server answered nothing"
    # zero violations means every accepted success beat its deadline:
    # the p99 of accepted requests is bounded by construction
    assert report.percentile_ms(0.99) <= deadline_ms

    recall = recall_against(report, gt_ids, TOP_K)
    records = RecordSet()
    records.add(
        "T5-overload",
        {"rate_qps": round(2.0 * capacity_qps), "deadline_ms": deadline_ms,
         "queue_limit": 64},
        {"offered_qps": report.offered_qps, "ok": report.ok,
         "rejected": report.rejected, "timeouts": report.timeouts,
         "shed_served": report.shed_served, "recall_under_load": recall,
         "p99_ms": report.percentile_ms(0.99)},
    )
    publish(results_dir, "T5_overload", records)
    SUMMARY["open_loop_2x"] = {
        "capacity_qps": capacity_qps,
        "offered_qps": report.offered_qps,
        "ok": report.ok,
        "rejected": report.rejected,
        "timeouts": report.timeouts,
        "shed_served": report.shed_served,
        "shed_transitions": stats["shed_transitions"],
        "deadline_violations": report.deadline_violations,
        "deadline_ms": deadline_ms,
        "latency_ms": report.latency_summary(),
        "recall_under_load": recall,
    }
    publish_summary(results_dir, "T5", SUMMARY)

    if FULL_SCALE:
        # the overload must actually have engaged a defence: shed and/or
        # rejected and/or deadline-dropped work
        defended = report.shed_served + report.rejected + report.timeouts
        assert defended > 0, "2x load triggered no shedding or rejection"
        assert recall > 0.5, f"recall under overload collapsed: {recall:.3f}"


def test_t5_cache_effectiveness(index, corpus, results_dir):
    _, q = corpus
    server = KNNServer(index, ServeConfig(
        admission=AdmissionPolicy(max_batch=64, max_wait_ms=2.0,
                                  queue_limit=512),
        ef=EF, cache=CachePolicy(size=2 * q.shape[0]),
        shed=ShedPolicy(enabled=False)))
    with server:
        cold = closed_loop(server, q, TOP_K, clients=16, repeat=1,
                           collect_ids=False)
        warm = closed_loop(server, q, TOP_K, clients=16, repeat=1,
                           collect_ids=True)
    assert warm.cached == q.shape[0], (
        f"expected every warm request cached, got {warm.cached}"
    )
    # cache hits answer bit-identically to the engine
    direct_ids, _ = index.search(q, TOP_K)
    for qi, ids in warm.ids.items():
        assert np.array_equal(ids, direct_ids[qi])

    records = RecordSet()
    for phase, rep in (("cold", cold), ("warm", warm)):
        records.add("T5-cache", {"phase": phase, "queries": q.shape[0]},
                    {"qps": rep.throughput_qps, "cached": rep.cached,
                     "p50_ms": rep.percentile_ms(0.5)})
    publish(results_dir, "T5_cache", records)
    SUMMARY["cache"] = {
        "cold_qps": cold.throughput_qps,
        "warm_qps": warm.throughput_qps,
        "warm_hit_rate": warm.cached / max(1, warm.ok),
        "warm_p50_ms": warm.percentile_ms(0.5),
    }
    publish_summary(results_dir, "T5", SUMMARY)
    if FULL_SCALE:
        assert warm.throughput_qps > cold.throughput_qps, (
            "cache made serving slower"
        )
