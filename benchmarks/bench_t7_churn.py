"""T7 - online churn: mutable-index serving under sustained insert/delete.

T5 measured the serving envelope over a *frozen* index.  T7 measures the
same envelope while the index is being mutated underneath it: a writer
thread applies insert/delete batches through
:class:`~repro.core.mutable.MutableIndex` (epoch-versioned copy-on-write
snapshots, atomic flips) while closed-loop clients query through a
:class:`~repro.serve.KNNServer` with the epoch-keyed result cache on.

Two measurements:

* **static baseline** - the same corpus, server configuration and query
  stream with zero churn.  Its throughput / p99 / recall are the
  reference the churn run is gated against.
* **churn run** - closed-loop clients + a probe thread + the churn
  writer.  The probe couples every response to the epoch it reports:

  - **zero stale reads**: no response (cached or not) may contain an id
    whose deletion was published at or before the response's epoch;
  - **zero torn reads**: when a probe's pinned snapshot epoch matches
    the response's epoch, re-running the query on that snapshot must
    reproduce the response bit-for-bit (epochs are monotone and never
    reused, so equal epoch == same immutable snapshot);
  - **zero late successes / errors** - the T5 invariants, unchanged by
    churn.

At full scale (``WKNNG_BENCH_SCALE >= 1``) the run additionally gates:
end-state recall (against exact ground truth over the *final* live set)
within 0.05 of the static baseline recall, and churn-run p99 <= 3x the
static p99.  The consistency invariants assert at every scale.

A second, **quantized** pass repeats both measurements with the
compressed tier on (``quantization="sq8"``): inserts encode against the
frozen codebooks, compaction retrains, and one flip publishes graph +
forest + store together.  The same zero-stale / zero-torn probe runs
(the torn-read replay doubles as an epoch-pinned quantized-parity
check), end-state recall is gated within 0.05 of the *quantized*-static
baseline at full scale, and after the churn run two forced compactions
verify the memory reduction is sustained across retrains (>= 3.9x at
full scale, >= 3x at any scale where the parameter overhead is not yet
amortised).
"""

import threading
import time

import numpy as np
import pytest

from conftest import BENCH_SCALE, publish, publish_summary
from repro.apps.search import SearchConfig
from repro.baselines.bruteforce import BruteForceKNN
from repro.core import BuildConfig, MutableConfig, MutableIndex
from repro.data.synthetic import make_dataset
from repro.metrics.records import RecordSet
from repro.serve import (
    AdmissionPolicy,
    CachePolicy,
    ChurnReport,
    KNNServer,
    ServeConfig,
    ShedPolicy,
    churn_loop,
    closed_loop,
    recall_against,
)

FULL_SCALE = BENCH_SCALE >= 1.0

#: headline workload (at scale 1.0)
N_POINTS = 20_000
N_QUERIES = 256
DIM = 32
EF = 64
TOP_K = 10
DEADLINE_MS = 2000.0

SUMMARY: dict = {
    "workload": {"n": None, "dim": DIM, "queries": None, "ef": EF,
                 "topk": TOP_K},
}


def _scaled(n: int, floor: int = 256) -> int:
    return max(floor, int(n * BENCH_SCALE))


def _server_config() -> ServeConfig:
    return ServeConfig(
        admission=AdmissionPolicy(max_batch=64, max_wait_ms=2.0,
                                  queue_limit=512),
        cache=CachePolicy(size=1024),
        ef=EF,
        shed=ShedPolicy(enabled=False),   # equal-quality comparison
    )


@pytest.fixture(scope="module")
def corpus():
    n = _scaled(N_POINTS)
    x = make_dataset("gaussian", 2 * n, seed=0, dim=DIM)
    base, pool = x[:n], x[n:]
    rng = np.random.default_rng(1)
    q = base[rng.choice(base.shape[0],
                        size=min(_scaled(N_QUERIES, floor=64), base.shape[0]),
                        replace=False)]
    SUMMARY["workload"]["n"] = int(base.shape[0])
    SUMMARY["workload"]["queries"] = int(q.shape[0])
    return base, pool, q


def _build_mutable(base, quantization: str = "none") -> MutableIndex:
    return MutableIndex.build(
        base,
        BuildConfig(k=16, strategy="tiled", seed=0),
        SearchConfig(ef=EF, quantization=quantization),
        MutableConfig(compact_threshold=0.25),
    )


def _serve_static(mut, corpus):
    """Serve the unchurned index; returns (report, recall, gt_ids)."""
    base, _, q = corpus
    gt_ids, _ = BruteForceKNN(base).search(q, TOP_K)
    with KNNServer(mut, _server_config()) as server:
        report = closed_loop(server, q, TOP_K, clients=16, repeat=2,
                             deadline_ms=DEADLINE_MS)
    assert report.errors == 0 and report.deadline_violations == 0
    recall = recall_against(report, gt_ids, TOP_K)
    return report, recall, gt_ids


@pytest.fixture(scope="module")
def mutable_index(corpus):
    base, _, _ = corpus
    return _build_mutable(base)


@pytest.fixture(scope="module")
def static_baseline(mutable_index, corpus):
    return _serve_static(mutable_index, corpus)


@pytest.fixture(scope="module")
def quantized_mutable_index(corpus):
    base, _, _ = corpus
    return _build_mutable(base, quantization="sq8")


@pytest.fixture(scope="module")
def quantized_static_baseline(quantized_mutable_index, corpus):
    return _serve_static(quantized_mutable_index, corpus)


def test_t7_static_baseline(static_baseline, results_dir):
    report, recall, _ = static_baseline
    SUMMARY["static"] = {
        "qps": report.throughput_qps,
        "recall": recall,
        "latency_ms": report.latency_summary(),
    }
    publish_summary(results_dir, "T7", SUMMARY)
    if FULL_SCALE:
        assert recall > 0.8, f"static baseline recall collapsed: {recall:.3f}"


def _run_churn_with_probe(mut, pool, q, protect):
    """Closed-loop clients + churn writer + consistency probe.

    Asserts the every-scale invariants (no errors, no late successes,
    zero stale reads, zero torn reads) and returns
    ``(report, churn, probe_out, end_recall)`` for the caller's gates.
    The torn-read replay re-runs epoch-matched responses on the pinned
    snapshot, so on a quantized index it doubles as the epoch-pinned
    quantized-search parity check.
    """
    duration_s = 2.0 + 4.0 * min(1.0, BENCH_SCALE)
    stop = threading.Event()
    # filled in place by churn_loop, so the probe reads deleted_at live
    churn = ChurnReport()
    probe_out: dict = {"checked": 0, "epoch_matched": 0, "stale": [],
                       "torn": [], "cached_seen": 0}

    with KNNServer(mut, _server_config()) as server:

        def churner() -> None:
            churn_loop(
                mut, pool, ops_per_sec=40.0, duration_s=3600.0,
                batch_size=32, delete_fraction=0.45, protect=protect,
                seed=7, stop=stop, report=churn,
            )

        def probe() -> None:
            """Couple responses to epochs: staleness + torn-read checks."""
            rng = np.random.default_rng(11)
            while not stop.is_set():
                qi = int(rng.integers(q.shape[0]))
                snap = mut.snapshot           # pin BEFORE the query
                res = server.query(q[qi], TOP_K, timeout=60.0)
                probe_out["checked"] += 1
                if res.from_cache:
                    probe_out["cached_seen"] += 1
                # stale read: an id deleted at epoch <= the response's
                # epoch must never be served (cached or not)
                for i in res.ids:
                    if i >= 0 and \
                            churn.deleted_at.get(int(i), 1 << 62) <= res.epoch:
                        probe_out["stale"].append((qi, int(i), res.epoch))
                # torn read: epochs are monotone and never reused, so if
                # the response's epoch equals the pinned snapshot's, the
                # same immutable graph must reproduce it exactly
                if (res.epoch == snap.epoch and not res.from_cache
                        and res.served_ef == EF):
                    probe_out["epoch_matched"] += 1
                    ids, dists = snap.search(q[qi][None, :], TOP_K, ef=EF)
                    if not np.array_equal(ids[0], res.ids):
                        probe_out["torn"].append((qi, res.epoch))

        churner_thread = threading.Thread(target=churner, daemon=True)
        churner_thread.start()
        probe_thread = threading.Thread(target=probe, daemon=True)
        probe_thread.start()

        t0 = time.monotonic()
        report = closed_loop(server, q, TOP_K, clients=16,
                             repeat=max(4, int(8 * min(1.0, BENCH_SCALE))),
                             deadline_ms=DEADLINE_MS)
        churn_wall = time.monotonic() - t0
        # keep churning at least duration_s even if the closed loop was quick
        while time.monotonic() - t0 < duration_s:
            time.sleep(0.05)
        stop.set()
        churner_thread.join()
        probe_thread.join()

        # -- consistency invariants (every scale) --------------------------
        assert report.errors == 0, f"{report.errors} serving errors"
        assert report.deadline_violations == 0, "late success under churn"
        assert churn.errors == 0, f"{churn.errors} mutation errors"
        assert churn.flips > 0, "churn applied no mutations"
        assert probe_out["checked"] > 0, "probe thread observed nothing"
        assert not probe_out["stale"], (
            f"stale reads (deleted id served at/after its deletion epoch): "
            f"{probe_out['stale'][:5]}"
        )
        assert not probe_out["torn"], (
            f"torn reads (response != its epoch's snapshot): "
            f"{probe_out['torn'][:5]}"
        )

        # -- post-churn: final-state recall vs exact ground truth ----------
        snap = mut.snapshot
        x_live = snap.live_points()
        ext_live = snap.live_ids()
        gt_pos, _ = BruteForceKNN(x_live).search(q, TOP_K)
        gt_end = ext_live[gt_pos]             # positions -> external ids
        post = closed_loop(server, q, TOP_K, clients=16, repeat=1,
                           deadline_ms=DEADLINE_MS)
        assert post.errors == 0 and post.deadline_violations == 0
        end_recall = recall_against(post, gt_end, TOP_K)
    return report, churn, probe_out, end_recall


def test_t7_churn_slo(mutable_index, corpus, static_baseline, results_dir):
    _, pool, q = corpus
    static_report, static_recall, gt_ids = static_baseline
    mut = mutable_index
    # protect the ground-truth neighbours of the query stream so deletes
    # cannot invalidate the static reference mid-run
    protect = set(int(i) for i in np.unique(gt_ids))
    report, churn, probe_out, end_recall = _run_churn_with_probe(
        mut, pool, q, protect)

    records = RecordSet()
    records.add(
        "T7",
        {"n": SUMMARY["workload"]["n"], "queries": q.shape[0], "ef": EF,
         "churn_ops_per_sec": 40.0, "batch": 32, "delete_fraction": 0.45},
        {"qps_under_churn": report.throughput_qps,
         "static_qps": static_report.throughput_qps,
         "p99_ms": report.percentile_ms(0.99),
         "static_p99_ms": static_report.percentile_ms(0.99),
         "end_recall": end_recall, "static_recall": static_recall,
         "flips": churn.flips, "inserted": churn.inserted,
         "deleted": churn.deleted,
         "probe_checked": probe_out["checked"],
         "probe_epoch_matched": probe_out["epoch_matched"]},
    )
    publish(results_dir, "T7_churn", records)
    SUMMARY["churn"] = {
        "qps": report.throughput_qps,
        "latency_ms": report.latency_summary(),
        "p99_vs_static": (report.percentile_ms(0.99)
                          / max(1e-9, static_report.percentile_ms(0.99))),
        "end_recall": end_recall,
        "recall_delta_vs_static": end_recall - static_recall,
        "churn": churn.as_dict(),
        "index": mut.stats(),
        "probe": {"checked": probe_out["checked"],
                  "epoch_matched": probe_out["epoch_matched"],
                  "cached_seen": probe_out["cached_seen"],
                  "stale": len(probe_out["stale"]),
                  "torn": len(probe_out["torn"])},
    }
    publish_summary(results_dir, "T7", SUMMARY)

    if FULL_SCALE:
        assert end_recall >= static_recall - 0.05, (
            f"recall decayed under churn: {end_recall:.3f} vs static "
            f"{static_recall:.3f}"
        )
        p99_ratio = (report.percentile_ms(0.99)
                     / max(1e-9, static_report.percentile_ms(0.99)))
        assert p99_ratio <= 3.0, (
            f"churn p99 {report.percentile_ms(0.99):.1f}ms is "
            f"{p99_ratio:.1f}x the static p99"
        )


# -- quantized pass: churn with the compressed tier on -------------------------


def test_t7_quantized_static_baseline(quantized_static_baseline,
                                      quantized_mutable_index, results_dir):
    report, recall, _ = quantized_static_baseline
    store = quantized_mutable_index.snapshot.store
    assert store is not None
    SUMMARY["quant_static"] = {
        "quantization": store.spec,
        "qps": report.throughput_qps,
        "recall": recall,
        "latency_ms": report.latency_summary(),
        "memory_reduction": store.memory_stats()["reduction"],
    }
    publish_summary(results_dir, "T7", SUMMARY)
    if FULL_SCALE:
        assert recall > 0.75, (
            f"quantized static baseline recall collapsed: {recall:.3f}")


def test_t7_quantized_churn_slo(quantized_mutable_index, corpus,
                                quantized_static_baseline, results_dir):
    _, pool, q = corpus
    static_report, static_recall, gt_ids = quantized_static_baseline
    mut = quantized_mutable_index
    protect = set(int(i) for i in np.unique(gt_ids))
    report, churn, probe_out, end_recall = _run_churn_with_probe(
        mut, pool, q, protect)

    # -- sustained memory reduction across >= 2 retrains -------------------
    # Each forced compaction rebuilds graph + forest and *retrains* the
    # quantizer on the survivors; the reduction must hold after every
    # retrain, not just at build time.  Delete a slice of unprotected live
    # points in between so the second retrain sees a changed distribution.
    reductions = []
    for round_i in range(2):
        if round_i:
            live = [int(e) for e in mut.live_ids() if int(e) not in protect]
            victims = live[:max(1, len(live) // 20)]
            if victims:
                mut.delete(np.asarray(victims, dtype=np.int64))
        mut.compact()
        snap = mut.snapshot
        store = snap.store
        assert store is not None, "compaction dropped the quantized store"
        assert store.n == snap.n_total, (
            f"store rows ({store.n}) != snapshot rows ({snap.n_total})")
        reductions.append(store.memory_stats()["reduction"])
    assert mut.counters["compactions"] >= 2
    floor = 3.9 if FULL_SCALE else 3.0   # param overhead amortises with n
    assert min(reductions) >= floor, (
        f"memory reduction not sustained across compactions: {reductions}")

    SUMMARY["quant_churn"] = {
        "quantization": mut.config.quantization,
        "qps": report.throughput_qps,
        "latency_ms": report.latency_summary(),
        "p99_vs_static": (report.percentile_ms(0.99)
                          / max(1e-9, static_report.percentile_ms(0.99))),
        "end_recall": end_recall,
        "recall_delta_vs_static": end_recall - static_recall,
        "memory_reduction": min(reductions),
        "reductions_per_compaction": reductions,
        "compactions": mut.counters["compactions"],
        "churn": churn.as_dict(),
        "index": mut.stats(),
        "probe": {"checked": probe_out["checked"],
                  "epoch_matched": probe_out["epoch_matched"],
                  "cached_seen": probe_out["cached_seen"],
                  "stale": len(probe_out["stale"]),
                  "torn": len(probe_out["torn"])},
    }
    publish_summary(results_dir, "T7", SUMMARY)

    if FULL_SCALE:
        assert end_recall >= static_recall - 0.05, (
            f"quantized recall decayed under churn: {end_recall:.3f} vs "
            f"quantized-static {static_recall:.3f}"
        )
