"""T2 - strategy comparison table across dimensionality.

For each dimensionality, all three maintenance strategies build the same
graph (same forest seed, same refinement); the table reports recall (must
be ~equal), wall-clock, modeled GPU cycles and the work counters that
explain them.  This is the table behind the paper's guidance on when to
use which strategy.
"""

import pytest

from conftest import publish
from repro.baselines.bruteforce import BruteForceKNN
from repro.bench.sweep import run_wknng
from repro.core.config import BuildConfig
from repro.data.synthetic import gaussian_mixture
from repro.metrics.records import RecordSet

DIMS = (8, 16, 32, 64, 128, 256, 512, 960)
N = 3000
K = 16


@pytest.fixture(scope="module")
def datasets():
    out = {}
    for d in DIMS:
        x = gaussian_mixture(N, d, n_clusters=64, cluster_std=1.5,
                             center_scale=4.0, seed=3)
        gt, _ = BruteForceKNN(x).search(x, K, exclude_self=True)
        out[d] = (x, gt)
    return out


def test_t2_strategy_table(benchmark, datasets, results_dir):
    records = RecordSet()
    for d in DIMS:
        x, gt = datasets[d]
        for strategy in ("baseline", "atomic", "tiled"):
            cfg = BuildConfig(k=K, strategy=strategy, n_trees=4, leaf_size=64,
                              refine_iters=2, seed=0)
            res = run_wknng(x, gt, cfg)
            records.add(
                "T2",
                {"dim": d, "strategy": strategy},
                {
                    "recall": res.recall,
                    "seconds": res.seconds,
                    "modeled_mcycles": res.modeled_cycles / 1e6,
                    "evals_per_point": res.detail["counters"]["distance_evals"] / len(x),
                },
            )
    publish(results_dir, "T2_strategies", records)

    x, gt = datasets[128]
    cfg = BuildConfig(k=K, strategy="tiled", n_trees=4, leaf_size=64,
                      refine_iters=2, seed=0)
    benchmark.pedantic(lambda: run_wknng(x, gt, cfg), rounds=1, iterations=1)
