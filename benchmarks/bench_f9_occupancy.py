"""F9 (extension) - multi-SM occupancy of the leaf kernels.

Not a paper figure: an extension study using the simulator's per-block
cycle accounting.  A leaf all-pairs launch is a grid of independent
blocks, so wall-cycles on a ``p``-SM device follow the makespan of
distributing the blocks; the series shows the parallel speedup curve per
strategy and where it saturates (when blocks outnumber SMs only slightly,
the longest block dominates - the tiled strategy's one-block-per-leaf
geometry saturates earlier than the one-warp-per-point direct kernels).
"""


from conftest import publish
from repro.core.rpforest import build_tree
from repro.data.synthetic import gaussian_mixture
from repro.metrics.records import RecordSet
from repro.simt.config import DeviceConfig
from repro.simt.device import Device
from repro.simt_kernels.pipeline import _DeviceLists, _launch_leaf

N = 256
DIM = 32
K = 8
SMS = (1, 2, 4, 8, 16, 32)


def _run_strategy(strategy: str):
    x = gaussian_mixture(N, DIM, n_clusters=8, seed=11)
    tree = build_tree(x, leaf_size=24, rng=3)
    device = Device(DeviceConfig())
    lists = _DeviceLists(device, N, K, strategy)
    xbuf = device.to_device(x.reshape(-1), "points")
    block_cycles = []
    for leaf in tree.leaves:
        _launch_leaf(device, lists, xbuf, leaf, DIM, K)
        block_cycles.extend(device.last_launch_block_cycles)
    # treat the whole leaf phase as one grid of independent blocks
    device.last_launch_block_cycles = block_cycles
    return device


def test_f9_occupancy_speedup(benchmark, results_dir):
    records = RecordSet()
    for strategy in ("atomic", "tiled"):
        device = _run_strategy(strategy)
        serial = device.parallel_cycles(1)
        speedups = []
        for p in SMS:
            cycles = device.parallel_cycles(p)
            speedup = serial / max(1, cycles)
            speedups.append(speedup)
            records.add(
                "F9",
                {"strategy": strategy, "n_sms": p},
                {
                    "wall_mcycles": cycles / 1e6,
                    "speedup": round(speedup, 2),
                    "blocks": len(device.last_launch_block_cycles),
                },
            )
        # speedup must grow then saturate, never exceed the SM count
        assert all(s2 >= s1 - 1e-9 for s1, s2 in zip(speedups, speedups[1:]))
        assert all(s <= p + 1e-9 for s, p in zip(speedups, SMS))
    publish(results_dir, "F9_occupancy", records)

    benchmark.pedantic(lambda: _run_strategy("tiled"), rounds=1, iterations=1)
