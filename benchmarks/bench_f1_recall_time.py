"""F1 - recall-vs-cost curves: w-KNNG (forest size sweep) vs IVF (nprobe
sweep) on the mid-dimensional clustered workload.

Each system's accuracy dial is swept and the (recall, modeled cycles,
wall-clock) series printed - the data behind the paper's recall/time
figure.  Expected shape: both curves rise monotonically; the w-KNNG curve
sits left of (cheaper than) the IVF curve in the high-recall region, and
they may cross in the low-recall region where a single coarse probe is
unbeatable.
"""


from conftest import publish
from repro.baselines.ivf import IVFConfig, IVFFlatIndex
from repro.bench.sweep import run_ivf, run_wknng
from repro.core.config import BuildConfig
from repro.metrics.records import RecordSet

TREES = (1, 2, 3, 4, 6, 8, 12)
NPROBES = (1, 2, 4, 8, 16, 32, 64)
WORKLOAD = "clustered-128d"


def test_f1_recall_cost_curves(benchmark, workbench, results_dir):
    x, gt = workbench.load(WORKLOAD)
    records = RecordSet()

    for trees in TREES:
        cfg = BuildConfig(k=16, strategy="tiled", n_trees=trees, leaf_size=64,
                          refine_iters=2, seed=0)
        res = run_wknng(x, gt, cfg)
        records.add("F1", {"system": "w-knng", "dial": f"trees={trees}"},
                    {"recall": res.recall,
                     "modeled_mcycles": res.modeled_cycles / 1e6,
                     "seconds": res.seconds})

    index = IVFFlatIndex(IVFConfig(seed=7)).fit(x)
    for nprobe in NPROBES:
        if nprobe > index.n_lists:
            break
        res = run_ivf(x, gt, 16, IVFConfig(seed=7), nprobe=nprobe, index=index)
        records.add("F1", {"system": "ivf-flat", "dial": f"nprobe={nprobe}"},
                    {"recall": res.recall,
                     "modeled_mcycles": res.modeled_cycles / 1e6,
                     "seconds": res.seconds})

    publish(results_dir, "F1_recall_time", records)

    # figure rendering: recall (x) vs modeled cost (y, log)
    from repro.bench.plots import Series, ascii_plot

    wk = Series("w-knng (trees sweep)")
    iv = Series("ivf-flat (nprobe sweep)")
    for rec in records:
        target = wk if rec.params["system"] == "w-knng" else iv
        target.add(rec.results["recall"], rec.results["modeled_mcycles"])
    fig = ascii_plot([wk, iv], title="F1: recall vs modeled Mcycles",
                     xlabel="recall", ylabel="Mcycles (log)", logy=True)
    publish(results_dir, "F1_recall_time_figure", fig)

    cfg = BuildConfig(k=16, strategy="tiled", n_trees=4, leaf_size=64,
                      refine_iters=2, seed=0)
    benchmark.pedantic(lambda: run_wknng(x, gt, cfg), rounds=1, iterations=1)
