"""T8 - compressed memory tier: quantized scoring + full-precision rerank.

At millions of points the float32 matrix - not the graph - is what
dominates memory and gather bandwidth, so this tier measures what the
quantized stores (:mod:`repro.core.quant`) buy and what they cost:

* **memory** - bytes the candidate-scoring path gathers from (codes +
  quantizer parameters vs the float32 matrix);
* **recall** - same graph, same forest, same ``ef``; the only change is
  quantized candidate scoring + full-precision rerank, so any recall
  delta is attributable to quantized beam navigation;
* **scoring throughput** - candidates/s through the scoring microkernels
  at an out-of-cache point count (the regime the tier targets: at the
  end-to-end workload's ``n`` the whole float32 matrix is cache-resident
  and exact scoring is compute-light, so the bandwidth win is measured
  where the matrix no longer fits).

Variants: ``float32`` (reference), ``sq8`` (fixed 4x, near-lossless -
the memory tier, scored by decode-gather), ``pq32`` (``4d/M`` x - the
memory *and* bandwidth tier, scored by table-lookup ADC; M=32 keeps
4 dims/sub-space at d=128, where ADC navigation error stays inside the
rerank's correction range).

Full-scale gates (``WKNNG_BENCH_SCALE >= 1``): >= 4x memory reduction
for both quantized variants, recall loss <= 0.01 vs float32 for both,
throughput per byte of vector memory >= 2.5x (sq8) / >= 5x (pq) vs
float32 - the capacity claim a memory tier makes - plus the
deterministic >= 4x per-candidate gather-byte reduction and 0.7x
wall-clock sanity floors on the kernel sections (raw kernel ratios
are published but bimodal with host DRAM state; see the kernel test
docstring).  Exactness invariants (rerank distances, persistence,
quantized cluster serving) assert at every scale.
"""

import threading
import time

import numpy as np
import pytest

from conftest import BENCH_SCALE, publish, publish_summary
from repro.apps.search import GraphSearchIndex, SearchConfig
from repro.baselines.bruteforce import BruteForceKNN
from repro.core.quant import QuantizedStore
from repro.data.synthetic import make_dataset
from repro.kernels.distance import (
    adc_l2_query_gather,
    sq8_l2_query_gather,
    sq_l2_query_gather,
)
from repro.metrics.records import RecordSet

FULL_SCALE = BENCH_SCALE >= 1.0

#: headline workload (at scale 1.0); sift-like is the 128-d workload the
#: PQ literature targets
N_POINTS = 20_000
N_QUERIES = 1_000
EF = 64
TOP_K = 10
PQ_M = 32

#: the scoring-kernel section's point count: large enough that the
#: float32 matrix (n * 512 bytes) falls out of last-level cache
N_SCORE = 500_000
SCORE_CANDS = 48

SUMMARY: dict = {
    "workload": {"n": None, "dim": None, "queries": None, "ef": EF,
                 "topk": TOP_K, "pq_m": PQ_M},
}


def _scaled(n: int, floor: int = 256) -> int:
    return max(floor, int(n * BENCH_SCALE))


def _best_of(fn, repeats: int = 3):
    """Return ``(result, seconds)`` for the fastest of ``repeats`` runs."""
    best = np.inf
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return result, best


def _recall(ids: np.ndarray, gt: np.ndarray) -> float:
    return float(np.mean([
        np.intersect1d(ids[i][ids[i] >= 0], gt[i]).size / gt.shape[1]
        for i in range(gt.shape[0])
    ]))


@pytest.fixture(scope="module")
def corpus():
    n = _scaled(N_POINTS, floor=512)
    x = make_dataset("sift-like", n, seed=0)
    q = make_dataset("sift-like", _scaled(N_QUERIES, floor=64), seed=2)
    gt, _ = BruteForceKNN(x).search(q, TOP_K)
    SUMMARY["workload"]["n"] = int(x.shape[0])
    SUMMARY["workload"]["dim"] = int(x.shape[1])
    SUMMARY["workload"]["queries"] = int(q.shape[0])
    return x, q, gt


@pytest.fixture(scope="module")
def base_index(corpus):
    """The float32 reference; variants share its graph + forest, so every
    difference below is the scoring tier, not build noise."""
    x, _, _ = corpus
    return GraphSearchIndex.build(
        x, k=16, search_config=SearchConfig(ef=EF), seed=0
    )


def _variant(base: GraphSearchIndex, x: np.ndarray, spec: str) -> GraphSearchIndex:
    return GraphSearchIndex.from_parts(
        x, base.graph, base.forest,
        SearchConfig(ef=EF, quantization=spec),
    )


def test_t8_memory_and_recall(corpus, base_index, results_dir):
    x, q, gt = corpus
    records = RecordSet()
    variants = [("float32", base_index),
                ("sq8", _variant(base_index, x, "sq8")),
                ("pq", _variant(base_index, x, f"pq{PQ_M}"))]
    for name, index in variants:
        index.search(q[:32], TOP_K)  # warm (fit caches, first-touch pages)
        (ids, _), seconds = _best_of(lambda: index.search(q, TOP_K))
        mem = index.memory_stats()
        stats = index.stats()
        entry = {
            "qps": q.shape[0] / seconds,
            "recall": _recall(ids, gt),
            "memory_reduction": mem["reduction"],
            "vector_bytes": mem["vector_bytes"],
            "distance_evals": stats["distance_evals"],
            "rerank_evals": stats.get("rerank_evals", 0),
        }
        # the capacity headline: queries/s per byte of vector memory,
        # relative to float32.  For a memory tier this is the production
        # quantity - at a fixed RAM budget it is how much more corpus a
        # node serves at what speed - and unlike raw kernel wall-clock
        # it is stable, because the qps ratio and the reduction are both
        # measured quantities with no host-memory-phase dependence
        entry["qps_x_reduction"] = entry["qps"] * entry["memory_reduction"]
        SUMMARY[name] = entry
        records.add(
            "T8",
            {"variant": name, "n": x.shape[0], "queries": q.shape[0],
             "ef": EF, "topk": TOP_K},
            {"qps": entry["qps"], "recall": entry["recall"],
             "memory_reduction": entry["memory_reduction"],
             "vector_bytes": entry["vector_bytes"]},
        )
    f32 = SUMMARY["float32"]
    for name in ("sq8", "pq"):
        SUMMARY[name]["qps_per_vector_byte_vs_float32"] = (
            SUMMARY[name]["qps_x_reduction"] / f32["qps_x_reduction"]
        )
    publish(results_dir, "T8_quant", records)
    publish_summary(results_dir, "T8", SUMMARY)

    sq8, pq = SUMMARY["sq8"], SUMMARY["pq"]
    # structural invariants (every scale): the compressed tiers really
    # shrink the scoring-path bytes
    assert sq8["vector_bytes"] < f32["vector_bytes"]
    assert pq["vector_bytes"] < f32["vector_bytes"]
    if FULL_SCALE:
        # sq8 codes are exactly 4x smaller; per-dim params cost a hair
        assert sq8["memory_reduction"] >= 3.9, (
            f"sq8 reduction {sq8['memory_reduction']:.2f}x below 3.9x"
        )
        assert pq["memory_reduction"] >= 4.0, (
            f"pq{PQ_M} reduction {pq['memory_reduction']:.2f}x below 4x"
        )
        for name in ("sq8", "pq"):
            loss = f32["recall"] - SUMMARY[name]["recall"]
            assert loss <= 0.01, (
                f"{name} recall loss {loss:.4f} exceeds 0.01 "
                f"({SUMMARY[name]['recall']:.4f} vs {f32['recall']:.4f})"
            )
        # throughput per byte of vector memory: >=2.5x for sq8 (qps is
        # ~0.8x float32 while memory shrinks 4x), >=5x for pq (~0.7x
        # qps, ~13x memory).  Floors leave margin under the measured
        # qps-ratio range 0.65-0.85
        for name, floor in (("sq8", 2.5), ("pq", 5.0)):
            ratio = SUMMARY[name]["qps_per_vector_byte_vs_float32"]
            assert ratio >= floor, (
                f"{name} throughput-per-vector-byte {ratio:.2f}x below "
                f"{floor}x vs float32"
            )


def _interleaved_medians(kernels, cands, reps):
    """Median wall time per kernel, sampled round-robin.

    Interleaving makes every repetition sample the same machine phase
    for all kernels - absolute gather speed swings with the host's
    memory state (TLB/huge-page promotion, neighbours' DRAM traffic),
    and timing the kernels in separate phases would turn that drift
    into a phantom speedup or slowdown.
    """
    times: dict = {name: [] for name in kernels}
    for fn in kernels.values():
        fn(cands[0])  # warm the code paths, not the data
    for rep in range(1, reps + 1):
        for name, fn in kernels.items():
            t0 = time.perf_counter()
            fn(cands[rep])
            times[name].append(time.perf_counter() - t0)
    return {name: float(np.median(ts)) for name, ts in times.items()}


def test_t8_scoring_kernel_throughput(results_dir):
    """Candidate-scoring microkernels at an out-of-cache point count.

    This is the regime the compressed tier exists for: the float32
    matrix no longer fits in cache, so exact scoring pays a DRAM gather
    per candidate while the pq code matrix stays cache-resident and each
    candidate costs ``M`` table lookups.

    Two wall-clock sections are published, neither gated as a headline.
    The *idle* section reports the kernels with the machine otherwise
    quiet: its ratio is honest but bimodal (0.91x with fast host DRAM,
    1.4-1.6x with slow, same host, same code), because the exact kernel
    is memory-latency-bound and that latency tracks host state the
    benchmark does not control.  The *contended* section adds fixed
    background memory streamers - the state a loaded serving node is in
    - and shifts the odds toward ADC (up to 1.9x) without removing the
    host dependence on a 1-vCPU box, where streamers also time-slice.
    What IS gated: the deterministic per-candidate gather-byte
    reduction (the quantity that decides the race once the matrix is
    out of cache), wall-clock sanity floors at 0.7x, and - in
    test_t8_memory_and_recall - throughput per byte of vector memory,
    the capacity claim a memory tier actually makes.
    """
    n = _scaled(N_SCORE, floor=4096)
    m = _scaled(N_QUERIES, floor=64)
    rng = np.random.default_rng(7)
    x = rng.standard_normal((n, 128), dtype=np.float32)
    q = rng.standard_normal((m, 128), dtype=np.float32)
    # distinct candidate sets per timed repetition: re-timing the same
    # ids would re-gather rows the previous run just pulled into cache,
    # silently turning the out-of-cache regime into a cache-resident one
    # (flattering exactly the kernel this section exists to beat)
    reps = 5
    cands = [rng.integers(0, n, size=(m, SCORE_CANDS)).astype(np.int64)
             for _ in range(reps + 1)]

    # train on a subsample (the engine fits on everything; here fitting
    # on 100k keeps the section's setup off the measured path)
    train = x[: min(n, 100_000)]
    sq_store = QuantizedStore.fit(train, "sq8", seed=0)
    sq_codes = sq_store.quantizer.encode(x)
    pq_store = QuantizedStore.fit(train, f"pq{PQ_M}", seed=0)
    pq_codes = pq_store.quantizer.encode(x)
    luts = pq_store.quantizer.luts(q)
    kernels = {
        "exact": lambda cand: sq_l2_query_gather(q, x, cand),
        "sq8": lambda cand: sq8_l2_query_gather(
            sq_codes, sq_store.quantizer.lo, sq_store.quantizer.scale, q, cand),
        "pq": lambda cand: adc_l2_query_gather(luts, pq_codes, cand),
    }
    entries = _interleaved_medians(kernels, cands, reps)

    pairs = cands[0].size
    SUMMARY["scoring_kernel"] = {
        "n": int(n), "pairs": int(pairs),
        **{f"{k}_cand_per_s": pairs / s for k, s in entries.items()},
        "pq_speedup_vs_exact": entries["exact"] / entries["pq"],
        "sq8_speedup_vs_exact": entries["exact"] / entries["sq8"],
    }

    # contended regime: fixed background streamers sweep a buffer far
    # larger than cache, so every exact-kernel row gather truly misses.
    # distinct candidate sets again - reusing the idle section's ids
    # would hand either kernel warm rows
    c_cands = [rng.integers(0, n, size=(m, SCORE_CANDS)).astype(np.int64)
               for _ in range(reps + 1)]
    stop = threading.Event()

    def _stream():
        a = np.ones(64 * 1024 * 1024 // 8, dtype=np.float64)
        b = np.empty_like(a)
        while not stop.is_set():
            np.copyto(b, a)
            np.copyto(a, b)

    streamers = [threading.Thread(target=_stream, daemon=True)
                 for _ in range(2)]
    for t in streamers:
        t.start()
    time.sleep(0.5)  # let the streamers reach steady state
    try:
        c_entries = _interleaved_medians(kernels, c_cands, reps)
    finally:
        stop.set()
        for t in streamers:
            t.join()
    SUMMARY["scoring_kernel_contended"] = {
        **{f"{k}_cand_per_s": pairs / s for k, s in c_entries.items()},
        "pq_speedup_vs_exact": c_entries["exact"] / c_entries["pq"],
        "sq8_speedup_vs_exact": c_entries["exact"] / c_entries["sq8"],
    }
    # the bandwidth claim, measured deterministically: bytes the scoring
    # path gathers per candidate (code row vs float32 row)
    SUMMARY["scoring_kernel"]["exact_gather_bytes_per_cand"] = int(
        x.dtype.itemsize * x.shape[1]
    )
    SUMMARY["scoring_kernel"]["pq_gather_bytes_per_cand"] = int(
        pq_codes.dtype.itemsize * pq_codes.shape[1]
    )
    publish_summary(results_dir, "T8", SUMMARY)
    if FULL_SCALE:
        # per-candidate gather traffic must shrink with the memory tier:
        # this is the quantity that decides the kernel race once the
        # matrix is out of cache, and it is deterministic
        sk = SUMMARY["scoring_kernel"]
        assert sk["exact_gather_bytes_per_cand"] >= (
            4 * sk["pq_gather_bytes_per_cand"]
        ), "pq candidate gathers are not >=4x smaller than float32 rows"
        # wall-clock floors are sanity bounds, not the headline: the
        # idle-host ratio on a shared 1-vCPU host is bimodal with DRAM
        # state (measured 0.91x with fast host memory, 1.4-1.6x with
        # slow; contended section 0.88-1.9x), so the gate asserts "never
        # materially slower" and the capacity gate in
        # test_t8_memory_and_recall carries the throughput claim
        for section in ("scoring_kernel", "scoring_kernel_contended"):
            speedup = SUMMARY[section]["pq_speedup_vs_exact"]
            assert speedup >= 0.7, (
                f"pq{PQ_M} ADC kernel {section} speedup {speedup:.2f}x "
                f"below the 0.7x sanity floor at n={n}"
            )


def test_t8_rerank_distances_exact(corpus, base_index):
    """Returned distances from a quantized index are full-precision: they
    must equal a direct recompute against the float32 matrix."""
    x, q, _ = corpus
    sample = q[:min(128, q.shape[0])]
    for spec in ("sq8", f"pq{PQ_M}"):
        index = _variant(base_index, x, spec)
        ids, dists = index.search(sample, TOP_K)
        valid = ids >= 0
        exact = sq_l2_query_gather(
            index._prepare_queries(sample), index._engine._x,
            np.where(valid, ids, -1).astype(np.int64),
        )
        assert np.allclose(np.where(valid, dists, 0.0),
                           np.where(valid, exact, 0.0), rtol=1e-5, atol=1e-5), (
            f"{spec}: emitted distances diverge from full-precision recompute"
        )


def test_t8_persistence_roundtrip(corpus, base_index, tmp_path):
    """Codebooks persist with the index: a loaded quantized index answers
    bit-identically without refitting."""
    x, q, _ = corpus
    sample = q[:min(64, q.shape[0])]
    index = _variant(base_index, x, f"pq{PQ_M}")
    ids, dists = index.search(sample, TOP_K)
    index.save(tmp_path / "idx")
    assert (tmp_path / "idx" / "quant.npz").exists()
    loaded = GraphSearchIndex.load(tmp_path / "idx")
    assert loaded.config.quantization == f"pq{PQ_M}"
    ids2, dists2 = loaded.search(sample, TOP_K)
    assert np.array_equal(ids, ids2)
    assert np.array_equal(dists, dists2)


def test_t8_quantized_cluster_smoke(corpus):
    """Cluster shards build and serve from quantized stores end to end."""
    from repro.core.config import BuildConfig
    from repro.serve import (
        ClusterClient,
        ClusterConfig,
        QuantizationPolicy,
        ServeConfig,
    )

    x, q, gt = corpus
    sample = q[:min(64, q.shape[0])]
    serve = ServeConfig(quant=QuantizationPolicy(mode="sq8"), ef=EF)
    with ClusterClient.build(
        x,
        build_config=BuildConfig(k=16, strategy="tiled", seed=0),
        search_config=SearchConfig(ef=EF, **serve.quant.to_search_fields()),
        seed=0,
        config=ClusterConfig(n_shards=2, backend="thread", serve=serve),
    ) as client:
        ids = np.stack([client.query(v, TOP_K).ids for v in sample])
        assert ids.shape == (sample.shape[0], TOP_K)
        assert _recall(ids, gt[:sample.shape[0]]) > 0.0
