"""T3 - query throughput: the batched lock-step engine vs the legacy loop.

The batched engine (:class:`repro.apps.search.BatchedGraphSearch`) answers
a whole query batch in vectorized lock-step rounds; the legacy reference
(:meth:`~repro.apps.search.GraphSearchIndex.search_legacy`) walks queries
one at a time through a Python heapq loop.  Both expand nodes in the same
order (``frontier=1``), so on tie-free inputs their results are
*identical* and the comparison is pure throughput.

Three measurements:

* batched-vs-legacy wall clock on the headline workload (n=20k, d=32,
  ef=64, 1k queries at scale 1.0) with a result-parity check;
* recall under ``metric="cosine"`` vs ``metric="sqeuclidean"`` - the
  cosine search-space fix means both operate in their correct prepared
  space, so accuracy should match;
* all registered engines (including ``"wknng"``) through the one
  :class:`~repro.baselines.KNNIndex` protocol path.

Timing uses best-of-N for both engines: the legacy loop's Python-heavy
iteration is noisy on loaded machines, and taking each engine's best
round is the comparison least favourable to the batched side.  The hard
speedup/recall assertions only run at ``WKNNG_BENCH_SCALE >= 1`` so
reduced-scale CI smoke runs stay stable.
"""

import time

import numpy as np

from conftest import BENCH_SCALE, publish, publish_summary
from repro.apps.search import GraphSearchIndex, SearchConfig
from repro.baselines import get_engine
from repro.baselines.bruteforce import BruteForceKNN
from repro.core.config import BuildConfig
from repro.data.synthetic import make_dataset
from repro.metrics.records import RecordSet

FULL_SCALE = BENCH_SCALE >= 1.0

#: headline workload (at scale 1.0): the ISSUE's acceptance operating point
N_POINTS = 20_000
N_QUERIES = 1_000
DIM = 32
EF = 64
TOP_K = 10


def _scaled(n: int, floor: int = 256) -> int:
    return max(floor, int(n * BENCH_SCALE))


def _query_sample(x: np.ndarray, m: int, seed: int = 1) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return x[rng.choice(x.shape[0], size=min(m, x.shape[0]), replace=False)]


def _best_of(fn, rounds: int = 3):
    """Minimum wall-clock over ``rounds`` calls (and the last result)."""
    best = np.inf
    out = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_t3_batched_vs_legacy(results_dir):
    x = make_dataset("gaussian", _scaled(N_POINTS), seed=0, dim=DIM)
    q = _query_sample(x, _scaled(N_QUERIES, floor=64))
    index = GraphSearchIndex.build(
        x,
        build_config=BuildConfig(k=16, strategy="tiled", seed=0),
        search_config=SearchConfig(ef=EF),
    )
    t_batched, batched = _best_of(lambda: index.search(q, TOP_K))
    t_legacy, legacy = _best_of(lambda: index.search_legacy(q, TOP_K))
    speedup = t_legacy / t_batched
    stats = index.stats()

    records = RecordSet()
    for engine, seconds in (("batched", t_batched), ("legacy", t_legacy)):
        records.add(
            "T3",
            {"engine": engine, "n": x.shape[0], "dim": DIM,
             "queries": q.shape[0], "ef": EF},
            {"seconds": seconds, "qps": q.shape[0] / seconds,
             "speedup_vs_legacy": t_legacy / seconds,
             "expansions_per_query": stats["expansions"] / q.shape[0]},
        )
    publish(results_dir, "T3_query_throughput", records)
    publish_summary(results_dir, "T3", {
        "workload": {"n": int(x.shape[0]), "dim": DIM,
                     "queries": int(q.shape[0]), "ef": EF, "topk": TOP_K},
        "batched_seconds": t_batched,
        "legacy_seconds": t_legacy,
        "batched_qps": q.shape[0] / t_batched,
        "speedup": speedup,
    })

    # frontier=1 reproduces the legacy expansion order: results must match
    assert np.array_equal(batched[0], legacy[0]), "engine results diverged"
    assert np.allclose(batched[1], legacy[1], equal_nan=True)
    if FULL_SCALE:
        assert speedup >= 10.0, (
            f"batched engine only {speedup:.1f}x over legacy "
            f"({t_batched:.3f}s vs {t_legacy:.3f}s)"
        )


def test_t3_metric_recall(results_dir):
    """Cosine graphs search their own prepared space: recall parity.

    Before the metric fix the index scored cosine queries with raw
    squared L2, collapsing recall on non-normalised data; now both
    metrics should land within a couple of points of each other.
    """
    x = make_dataset("gaussian", _scaled(8_000), seed=2, dim=DIM)
    # give rows very different norms so cosine and L2 rankings disagree
    # (on isotropic data the two metrics nearly coincide and the
    # regression this guards against would be invisible)
    scales = np.random.default_rng(3).uniform(0.2, 5.0, size=x.shape[0])
    x = (x * scales[:, None].astype(np.float32)).astype(np.float32)
    q = _query_sample(x, _scaled(500, floor=64), seed=4)

    records = RecordSet()
    recalls = {}
    for metric in ("sqeuclidean", "cosine"):
        index = GraphSearchIndex.build(
            x,
            build_config=BuildConfig(k=16, strategy="tiled", seed=0,
                                     metric=metric),
            search_config=SearchConfig(ef=EF),
        )
        gt_ids, _ = BruteForceKNN(x, metric=metric).search(q, TOP_K)
        ids, _ = index.search(q, TOP_K)
        hits = sum(
            np.intersect1d(ids[i][ids[i] >= 0], gt_ids[i]).size
            for i in range(q.shape[0])
        )
        recalls[metric] = hits / (q.shape[0] * TOP_K)
        records.add("T3-metric", {"metric": metric, "n": x.shape[0]},
                    {"recall": recalls[metric]})
    publish(results_dir, "T3_metric_recall", records)

    gap = abs(recalls["cosine"] - recalls["sqeuclidean"])
    assert recalls["cosine"] > 0.5, (
        f"cosine recall collapsed ({recalls['cosine']:.3f}) - search space "
        f"regression?"
    )
    if FULL_SCALE:
        assert gap <= 0.02, f"cosine/sqeuclidean recall gap {gap:.3f} > 0.02"


def test_t3_engine_comparison(workbench, results_dir):
    """The graph index through the same protocol path as every baseline."""
    from repro.bench.sweep import run_index

    x, gt = workbench.load("clustered-16d")
    k = 10
    records = RecordSet()
    results = []
    for name in ("bruteforce", "wknng"):
        res = run_index(x, gt, k, get_engine(name))
        results.append(res)
        records.add(
            "T3-engines", {"engine": res.system, "k": k},
            {"recall": res.recall, "seconds": res.seconds,
             "fit_seconds": res.detail["fit_seconds"],
             "query_seconds": res.detail["query_seconds"]},
        )
    publish(results_dir, "T3_engine_comparison", records)
    wknng = next(r for r in results if r.system == "wknng-graph")
    assert wknng.recall > 0.8, f"wknng engine recall collapsed: {wknng.recall}"
