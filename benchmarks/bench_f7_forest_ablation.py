"""F7 - RP-forest shape ablation: leaf size and tree count vs recall/cost.

Two sweeps over the forest's accuracy dials with refinement disabled (so
the forest's own contribution is visible):

* leaf size: bigger leaves -> quadratically more pairs per tree, better
  per-tree recall;
* tree count: linearly more work, diminishing recall returns (each extra
  tree catches pairs all previous trees missed);
* spill fraction (extension): overlapping splits catch boundary pairs a
  hard split separates - recall per tree rises with spill at the cost of
  super-linear leaf volume.
"""


from conftest import publish
from repro.bench.sweep import run_wknng
from repro.core.config import BuildConfig
from repro.metrics.records import RecordSet

LEAF_SIZES = (32, 64, 128, 256, 512)
TREE_COUNTS = (1, 2, 4, 8, 16)
SPILLS = (0.0, 0.1, 0.2, 0.3)
WORKLOAD = "clustered-128d"


def test_f7_leaf_size_sweep(benchmark, workbench, results_dir):
    x, gt = workbench.load(WORKLOAD)
    records = RecordSet()
    recalls = []
    for leaf in LEAF_SIZES:
        cfg = BuildConfig(k=16, strategy="tiled", n_trees=4, leaf_size=leaf,
                          refine_iters=0, seed=0)
        res = run_wknng(x, gt, cfg)
        recalls.append(res.recall)
        records.add("F7-leaf", {"leaf_size": leaf},
                    {"recall": res.recall,
                     "modeled_mcycles": res.modeled_cycles / 1e6,
                     "evals_per_point": res.detail["counters"]["distance_evals"] / len(x)})
    publish(results_dir, "F7_leaf_size", records)
    assert recalls == sorted(recalls) or recalls[-1] > recalls[0]

    cfg = BuildConfig(k=16, strategy="tiled", n_trees=4, leaf_size=128,
                      refine_iters=0, seed=0)
    benchmark.pedantic(lambda: run_wknng(x, gt, cfg), rounds=1, iterations=1)


def test_f7_tree_count_sweep(benchmark, workbench, results_dir):
    x, gt = workbench.load(WORKLOAD)
    records = RecordSet()
    recalls = []
    for trees in TREE_COUNTS:
        cfg = BuildConfig(k=16, strategy="tiled", n_trees=trees, leaf_size=64,
                          refine_iters=0, seed=0)
        res = run_wknng(x, gt, cfg)
        recalls.append(res.recall)
        records.add("F7-trees", {"n_trees": trees},
                    {"recall": res.recall,
                     "modeled_mcycles": res.modeled_cycles / 1e6})
    publish(results_dir, "F7_tree_count", records)

    assert recalls[-1] > recalls[0]
    # diminishing returns per *tree*: the marginal recall of each added
    # tree in the last doubling is below the first tree's marginal recall
    first_marginal = (recalls[1] - recalls[0]) / (TREE_COUNTS[1] - TREE_COUNTS[0])
    last_marginal = (recalls[-1] - recalls[-2]) / (TREE_COUNTS[-1] - TREE_COUNTS[-2])
    assert last_marginal <= first_marginal + 0.005

    cfg = BuildConfig(k=16, strategy="tiled", n_trees=4, leaf_size=64,
                      refine_iters=0, seed=0)
    benchmark.pedantic(lambda: run_wknng(x, gt, cfg), rounds=1, iterations=1)


def test_f7_spill_sweep(benchmark, workbench, results_dir):
    x, gt = workbench.load(WORKLOAD)
    records = RecordSet()
    recalls = []
    for spill in SPILLS:
        cfg = BuildConfig(k=16, strategy="tiled", n_trees=2, leaf_size=64,
                          refine_iters=0, spill=spill, seed=0)
        res = run_wknng(x, gt, cfg)
        recalls.append(res.recall)
        records.add("F7-spill", {"spill": spill},
                    {"recall": res.recall,
                     "modeled_mcycles": res.modeled_cycles / 1e6,
                     "evals_per_point": res.detail["counters"]["distance_evals"] / len(x)})
    publish(results_dir, "F7_spill", records)

    assert recalls[-1] > recalls[0], "spill must raise per-tree recall"

    cfg = BuildConfig(k=16, strategy="tiled", n_trees=2, leaf_size=64,
                      refine_iters=0, spill=0.2, seed=0)
    benchmark.pedantic(lambda: run_wknng(x, gt, cfg), rounds=1, iterations=1)
