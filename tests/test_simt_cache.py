"""Tests for the simulator's segment cache - including the validation that
the *measured* cache behaviour exhibits the working-set effect the analytic
cost model assumes (the F2 crossover mechanism)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simt.cache import SegmentCache, make_device_cache
from repro.simt.config import DeviceConfig
from repro.simt.device import Device


class TestSegmentCache:
    def test_geometry_validation(self):
        with pytest.raises(ConfigurationError):
            SegmentCache(0, 128)
        with pytest.raises(ConfigurationError):
            SegmentCache(128, 128, ways=3)  # 1 line not divisible by 3

    def test_cold_miss_then_hit(self):
        c = SegmentCache(1024, 128, ways=2)
        assert c.access(np.array([5])) == 1
        assert c.access(np.array([5])) == 0
        assert c.hits == 1 and c.misses == 1

    def test_duplicates_in_one_access_count_once(self):
        c = SegmentCache(1024, 128, ways=2)
        assert c.access(np.array([7, 7, 7])) == 1

    def test_lru_eviction(self):
        # 2 sets x 2 ways; segments 0,2,4 map to set 0
        c = SegmentCache(4 * 128, 128, ways=2)
        c.access(np.array([0]))
        c.access(np.array([2]))
        c.access(np.array([0]))  # refresh 0 -> 2 is now LRU
        c.access(np.array([4]))  # evicts 2
        assert c.access(np.array([0])) == 0  # still resident
        assert c.access(np.array([2])) == 1  # was evicted

    def test_working_set_fits_all_hits(self):
        c = SegmentCache(64 * 128, 128, ways=8)
        segs = np.arange(32)
        c.access(segs)
        for _ in range(5):
            assert c.access(segs) == 0

    def test_working_set_overflow_thrashes(self):
        c = SegmentCache(8 * 128, 128, ways=8)  # 8 lines
        segs = np.arange(64)  # 8x the capacity, cycled in order
        c.access(segs)
        misses = c.access(segs)
        assert misses > 32  # mostly misses once the set thrashes

    def test_reset(self):
        c = SegmentCache(1024, 128, ways=2)
        c.access(np.array([1]))
        c.reset()
        assert c.hits == 0 and c.misses == 0
        assert c.access(np.array([1])) == 1  # cold again


class TestMakeDeviceCache:
    def test_disabled_when_zero(self):
        cfg = DeviceConfig(cache_bytes=0)
        assert make_device_cache(cfg) is None

    def test_default_enabled(self):
        assert make_device_cache(DeviceConfig()) is not None

    def test_tiny_cache_shrinks_ways(self):
        cfg = DeviceConfig(cache_bytes=256)  # 2 lines
        cache = make_device_cache(cfg)
        assert cache is not None and cache.ways <= 2


class TestDeviceCacheIntegration:
    def _stream_kernel(self, n_rows, dim, repeats):
        """Kernel that re-streams a (n_rows, dim) buffer `repeats` times."""
        def kernel(ctx, buf):
            for _ in range(repeats):
                for r in range(n_rows):
                    for c0 in range(0, dim, ctx.warp_size):
                        mask = (c0 + ctx.lane_id) < dim
                        ctx.load(buf, r * dim + c0 + ctx.lane_id, mask)
        return kernel

    def test_resident_working_set_hits(self):
        dev = Device(DeviceConfig(cache_bytes=32 * 1024))
        x = np.zeros((16, 32), dtype=np.float32)  # 2 KB - fits easily
        buf = dev.to_device(x)
        dev.launch(self._stream_kernel(16, 32, repeats=4), 1, 1, args=(buf,))
        m = dev.metrics
        # 3 of 4 sweeps must hit
        assert m.global_cache_hits >= 3 * m.global_cache_misses

    def test_overflowing_working_set_misses(self):
        dev = Device(DeviceConfig(cache_bytes=4 * 1024))
        x = np.zeros((64, 128), dtype=np.float32)  # 32 KB >> 4 KB
        buf = dev.to_device(x)
        dev.launch(self._stream_kernel(64, 128, repeats=2), 1, 1, args=(buf,))
        m = dev.metrics
        assert m.global_cache_misses > m.global_cache_hits

    def test_hits_reduce_estimated_cycles(self):
        def run(cache_bytes):
            dev = Device(DeviceConfig(cache_bytes=cache_bytes))
            buf = dev.to_device(np.zeros((16, 32), dtype=np.float32))
            dev.launch(self._stream_kernel(16, 32, repeats=4), 1, 1, args=(buf,))
            return dev.metrics.estimated_cycles(dev.config)

        assert run(32 * 1024) < run(0)

    def test_distinct_buffers_distinct_segments(self):
        dev = Device(DeviceConfig())
        a = dev.to_device(np.zeros(32, dtype=np.float32))
        b = dev.to_device(np.zeros(32, dtype=np.float32))
        assert b.base_addr >= a.base_addr + a.nbytes
