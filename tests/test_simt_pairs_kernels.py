"""Tests for the refinement (pairs) kernels on the simulator."""

import numpy as np
import pytest

from repro.simt.atomics import EMPTY_PACKED, unpack_dist_id
from repro.simt.device import Device
from repro.simt_kernels import pairs_kernels
from repro.simt_kernels.pipeline import _DeviceLists, _launch_pairs
from repro.utils.arrays import segment_lengths


@pytest.fixture()
def setting():
    rng = np.random.default_rng(5)
    x = rng.standard_normal((30, 10)).astype(np.float32)
    dev = Device()
    xbuf = dev.to_device(x.reshape(-1), "points")
    return rng, x, dev, xbuf


def expected_lists(x, rows, cols, k):
    """Reference: k smallest offered candidates per row."""
    n = x.shape[0]
    best = {i: {} for i in range(n)}
    for r, c in zip(rows, cols):
        d = float(((x[r].astype(np.float64) - x[c]) ** 2).sum())
        best[int(r)][int(c)] = d
    out = {}
    for i in range(n):
        items = sorted(best[i].items(), key=lambda kv: kv[1])[:k]
        out[i] = {c for c, _ in items}
    return out


@pytest.mark.parametrize("strategy", ["baseline", "atomic", "tiled"])
def test_pairs_kernels_insert_k_smallest(setting, strategy):
    rng, x, dev, xbuf = setting
    k = 4
    lists = _DeviceLists(dev, x.shape[0], k, strategy)
    rows = rng.integers(0, 30, 120)
    cols = rng.integers(0, 30, 120)
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    # dedupe (row, col): the kernels assume unique pairs per batch
    key = rows * 30 + cols
    uniq = np.unique(key)
    rows, cols = uniq // 30, uniq % 30

    _launch_pairs(dev, lists, xbuf, rows, cols, x.shape[1], k)
    state = lists.to_state()
    ref = expected_lists(x, rows, cols, k)
    for i in range(30):
        got = {int(c) for c in state.ids[i] if c >= 0}
        assert got == ref[i], f"{strategy}: row {i}"


def test_pairs_grouping_matches_segments(setting):
    """The host-side row grouping used by _launch_pairs is consistent."""
    rng, x, dev, xbuf = setting
    rows = np.array([5, 2, 5, 2, 9])
    order = np.argsort(rows, kind="stable")
    urows, starts, counts = segment_lengths(rows[order])
    assert urows.tolist() == [2, 5, 9]
    assert counts.tolist() == [2, 2, 1]


def test_empty_pairs_launch_is_noop(setting):
    _, x, dev, xbuf = setting
    lists = _DeviceLists(dev, x.shape[0], 3, "tiled")
    _launch_pairs(dev, lists, xbuf,
                  np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
                  x.shape[1], 3)
    assert lists.to_state().filled_counts().sum() == 0


def test_atomic_lists_stay_packed_consistent(setting):
    rng, x, dev, xbuf = setting
    k = 3
    lists = _DeviceLists(dev, x.shape[0], k, "atomic")
    rows = np.arange(30).repeat(3)
    cols = (rows + rng.integers(1, 29, rows.shape[0])) % 30
    key = rows * 30 + cols
    uniq = np.unique(key)
    _launch_pairs(dev, lists, xbuf, uniq // 30, uniq % 30, x.shape[1], k)
    packed = lists.packed.to_host()
    d, i = unpack_dist_id(packed)
    filled = packed != np.uint64(EMPTY_PACKED)
    assert (d[filled] >= 0).all()
    assert (i[filled] >= 0).all()
