"""Tests for recall, quality metrics, timers and experiment records."""

import json

import numpy as np
import pytest

from repro.core.graph import KNNGraph
from repro.errors import DataError
from repro.metrics.quality import distance_ratio, edge_overlap
from repro.metrics.recall import knn_recall, per_point_recall
from repro.metrics.records import ExperimentRecord, RecordSet
from repro.metrics.timer import Timer, time_call


class TestRecall:
    def test_perfect(self):
        ids = np.array([[1, 2], [0, 2]])
        assert knn_recall(ids, ids) == 1.0

    def test_order_irrelevant(self):
        a = np.array([[1, 2], [3, 4]])
        b = np.array([[2, 1], [4, 3]])
        assert knn_recall(a, b) == 1.0

    def test_zero(self):
        a = np.array([[1, 2]])
        b = np.array([[3, 4]])
        assert knn_recall(a, b) == 0.0

    def test_partial(self):
        a = np.array([[1, 2, 3, 9]])
        b = np.array([[1, 2, 3, 4]])
        assert knn_recall(a, b) == 0.75

    def test_per_point_vector(self):
        a = np.array([[1, 2], [5, 6]])
        b = np.array([[1, 2], [7, 8]])
        assert per_point_recall(a, b).tolist() == [1.0, 0.0]

    def test_k_truncation_to_smaller(self):
        approx = np.array([[1, 2]])
        exact = np.array([[1, 2, 3, 4]])
        assert knn_recall(approx, exact) == 1.0  # judged on first 2 exact

    def test_unfilled_slots_dont_match(self):
        a = np.array([[-1, -1]])
        b = np.array([[1, 2]])
        assert knn_recall(a, b) == 0.0

    def test_row_count_mismatch(self):
        with pytest.raises(DataError):
            knn_recall(np.zeros((2, 2), dtype=int), np.zeros((3, 2), dtype=int))

    def test_1d_rejected(self):
        with pytest.raises(DataError):
            knn_recall(np.zeros(3, dtype=int), np.zeros((3, 2), dtype=int))

    def test_large_random_matches_naive(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 1000, (50, 10))
        b = rng.integers(0, 1000, (50, 10))
        naive = np.mean([len(set(x) & set(y)) / 10 for x, y in zip(a, b)])
        # naive double-counts duplicate ids; restrict to unique rows
        a = np.array([np.random.default_rng(i).permutation(1000)[:10] for i in range(50)])
        b = np.array([np.random.default_rng(i + 99).permutation(1000)[:10] for i in range(50)])
        naive = np.mean([len(set(x) & set(y)) / 10 for x, y in zip(a, b)])
        assert knn_recall(a, b) == pytest.approx(naive)


class TestQuality:
    def _graph(self, ids, dists):
        return KNNGraph(ids=np.asarray(ids, dtype=np.int32),
                        dists=np.asarray(dists, dtype=np.float32))

    def test_distance_ratio_identity(self):
        g = self._graph([[1, 2]], [[1.0, 2.0]])
        assert distance_ratio(g, g) == pytest.approx(1.0)

    def test_distance_ratio_worse_graph(self):
        exact = self._graph([[1, 2]], [[1.0, 1.0]])
        approx = self._graph([[3, 4]], [[4.0, 4.0]])
        assert distance_ratio(approx, exact) == pytest.approx(2.0)  # sqrt(4)

    def test_distance_ratio_size_mismatch(self):
        g1 = self._graph([[1]], [[1.0]])
        g2 = self._graph([[1], [0]], [[1.0], [1.0]])
        with pytest.raises(DataError):
            distance_ratio(g1, g2)

    def test_edge_overlap(self):
        g1 = self._graph([[1, 2]], [[1.0, 2.0]])
        g2 = self._graph([[2, 3]], [[1.0, 2.0]])
        assert edge_overlap(g1, g2) == pytest.approx(0.5)


class TestTimer:
    def test_phases_accumulate(self):
        t = Timer()
        with t.phase("a"):
            pass
        with t.phase("a"):
            pass
        with t.phase("b"):
            pass
        assert set(t.seconds) == {"a", "b"}
        assert t.total >= 0

    def test_time_call_returns_result(self):
        secs, result = time_call(lambda x: x * 2, 21)
        assert result == 42 and secs >= 0

    def test_time_call_repeat_validation(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeat=0)


class TestRecords:
    def test_add_and_iterate(self):
        rs = RecordSet()
        rs.add("T1", {"d": 8}, {"recall": 0.9})
        rs.add("T1", {"d": 16}, {"recall": 0.95})
        assert len(rs) == 2
        assert all(isinstance(r, ExperimentRecord) for r in rs)

    def test_flat_merges_fields(self):
        rec = ExperimentRecord("T1", {"a": 1}, {"b": 2})
        assert rec.flat() == {"experiment": "T1", "a": 1, "b": 2}

    def test_columns_union_in_order(self):
        rs = RecordSet()
        rs.add("e", {"a": 1}, {})
        rs.add("e", {"b": 2}, {})
        assert rs.columns() == ["experiment", "a", "b"]

    def test_json_round_trip(self):
        rs = RecordSet()
        rs.add("e", {"x": 1}, {"y": 2.5})
        data = json.loads(rs.to_json())
        assert data[0]["x"] == 1 and data[0]["y"] == 2.5

    def test_table_renders(self):
        rs = RecordSet()
        rs.add("e", {"param": 10}, {"metric": 0.12345})
        table = rs.to_table()
        assert "param" in table and "0.1234" in table or "0.1235" in table

    def test_empty_table(self):
        assert RecordSet().to_table() == "(no records)"
