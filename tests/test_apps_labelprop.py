"""Tests for label propagation over K-NN graphs."""

import numpy as np
import pytest

from repro import BuildConfig, WKNNGBuilder
from repro.apps.labelprop import LabelPropConfig, LabelPropagation
from repro.core.graph import KNNGraph
from repro.errors import ConfigurationError, DataError


@pytest.fixture(scope="module")
def blob_graph():
    rng = np.random.default_rng(31)
    centers = rng.standard_normal((3, 10)) * 10
    labels = np.repeat(np.arange(3), 150)
    x = (centers[labels] + rng.standard_normal((450, 10))).astype(np.float32)
    graph = WKNNGBuilder(BuildConfig(k=8, n_trees=4, leaf_size=40,
                                     refine_iters=2, seed=0)).build(x)
    return graph, labels


class TestConfig:
    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.5])
    def test_bad_alpha(self, alpha):
        with pytest.raises(ConfigurationError):
            LabelPropConfig(alpha=alpha)

    def test_bad_iters(self):
        with pytest.raises(ConfigurationError):
            LabelPropConfig(max_iters=0)

    def test_bad_scale(self):
        with pytest.raises(ConfigurationError):
            LabelPropConfig(kernel_scale=0)


class TestLabelPropagation:
    def test_recovers_blob_labels_from_sparse_seeds(self, blob_graph):
        graph, labels = blob_graph
        rng = np.random.default_rng(0)
        seeds = np.full(450, -1)
        for c in range(3):
            members = np.flatnonzero(labels == c)
            seeds[rng.choice(members, 5, replace=False)] = c
        pred = LabelPropagation(graph).fit_predict(seeds)
        accuracy = (pred == labels).mean()
        assert accuracy > 0.95

    def test_seed_labels_preserved(self, blob_graph):
        graph, labels = blob_graph
        seeds = np.full(450, -1)
        seeds[0] = labels[0]
        seeds[200] = labels[200]
        seeds[400] = labels[400]
        pred = LabelPropagation(graph).fit_predict(seeds)
        assert pred[0] == labels[0]
        assert pred[200] == labels[200]

    def test_scores_shape(self, blob_graph):
        graph, labels = blob_graph
        seeds = np.full(450, -1)
        seeds[:3] = [0, 1, 2][: 3]
        seeds[:3] = labels[:3]
        seeds[150] = labels[150]
        seeds[300] = labels[300]
        lp = LabelPropagation(graph)
        lp.fit_predict(seeds)
        assert lp.scores_.shape[0] == 450
        assert lp.n_iter_ >= 1

    def test_no_seeds_rejected(self, blob_graph):
        graph, _ = blob_graph
        with pytest.raises(DataError):
            LabelPropagation(graph).fit_predict(np.full(450, -1))

    def test_wrong_shape_rejected(self, blob_graph):
        graph, _ = blob_graph
        with pytest.raises(DataError):
            LabelPropagation(graph).fit_predict(np.zeros(10))

    def test_disconnected_island_stays_unlabelled(self):
        # two 2-cliques, seed only in the first
        ids = np.array([[1], [0], [3], [2]], dtype=np.int32)
        dists = np.ones((4, 1), dtype=np.float32)
        graph = KNNGraph(ids=ids, dists=dists)
        seeds = np.array([0, -1, -1, -1])
        pred = LabelPropagation(graph).fit_predict(seeds)
        assert pred[1] == 0
        assert pred[2] == -1 and pred[3] == -1

    def test_nonconsecutive_class_ids(self, blob_graph):
        graph, labels = blob_graph
        seeds = np.full(450, -1)
        mapped = np.array([10, 42, 99])[labels]
        rng = np.random.default_rng(1)
        for c in (10, 42, 99):
            members = np.flatnonzero(mapped == c)
            seeds[rng.choice(members, 4, replace=False)] = c
        pred = LabelPropagation(graph).fit_predict(seeds)
        assert set(np.unique(pred)) <= {10, 42, 99}
        assert (pred == mapped).mean() > 0.9


class TestAffinityParity:
    """The `gaussian_affinity` port must reproduce the original inline
    construction bitwise (max(exp(-a/c), exp(-b/c)) == exp(-min(a,b)/c)
    since exp is monotone, the float32 -> float64 cast is exact, and csr
    canonicalisation orders both the same way)."""

    @staticmethod
    def _legacy_affinity(graph, kernel_scale):
        from scipy import sparse
        valid = graph.ids >= 0
        rows = np.repeat(np.arange(graph.n), valid.sum(axis=1))
        cols = graph.ids[valid].astype(np.int64)
        d2 = graph.dists[valid].astype(np.float64)
        mean_d2 = float(d2.mean()) if d2.size else 1.0
        if mean_d2 <= 0:
            mean_d2 = 1.0
        w = np.exp(-d2 / (kernel_scale * mean_d2))
        a = sparse.csr_matrix((w, (rows, cols)), shape=(graph.n, graph.n))
        a = a.maximum(a.T)
        deg = np.asarray(a.sum(axis=1)).reshape(-1)
        deg[deg == 0] = 1.0
        inv_sqrt = sparse.diags(1.0 / np.sqrt(deg))
        return inv_sqrt @ a @ inv_sqrt

    @pytest.mark.parametrize("kernel_scale", [0.5, 1.0, 2.0])
    def test_bitwise_identical_to_legacy(self, blob_graph, kernel_scale):
        graph, _ = blob_graph
        legacy = self._legacy_affinity(graph, kernel_scale).tocsr()
        ported = LabelPropagation(
            graph, LabelPropConfig(kernel_scale=kernel_scale))._s.tocsr()
        legacy.sort_indices()
        ported.sort_indices()
        assert (legacy != ported).nnz == 0
        assert np.array_equal(legacy.indptr, ported.indptr)
        assert np.array_equal(legacy.indices, ported.indices)
        assert np.array_equal(legacy.data, ported.data)

    def test_unfilled_rows_handled(self):
        ids = np.array([[1, -1], [0, -1], [-1, -1]], dtype=np.int32)
        dists = np.array([[1.0, np.inf], [1.0, np.inf], [np.inf, np.inf]],
                         dtype=np.float32)
        graph = KNNGraph(ids=ids, dists=dists)
        legacy = self._legacy_affinity(graph, 1.0).tocsr()
        ported = LabelPropagation(graph)._s.tocsr()
        assert (legacy != ported).nnz == 0
