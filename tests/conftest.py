"""Shared fixtures: small, seeded datasets and their exact ground truth."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.bruteforce import BruteForceKNN
from repro.data.synthetic import gaussian_mixture, uniform_hypercube


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(20210809)  # the conference date


@pytest.fixture(scope="session")
def small_clustered():
    """600 points, 16-d, clustered - the RP-forest-friendly regime."""
    return gaussian_mixture(600, 16, n_clusters=12, cluster_std=0.8, seed=42)


@pytest.fixture(scope="session")
def small_uniform():
    """400 points, 8-d, uniform - the structure-free regime."""
    return uniform_hypercube(400, 8, seed=43)


@pytest.fixture(scope="session")
def tiny_points():
    """60 points, 6-d - small enough for the SIMT simulator."""
    return gaussian_mixture(60, 6, n_clusters=4, cluster_std=0.7, seed=44)


@pytest.fixture(scope="session")
def clustered_gt(small_clustered):
    """Exact 10-NN ids of the clustered fixture."""
    ids, dists = BruteForceKNN(small_clustered).search(
        small_clustered, 10, exclude_self=True
    )
    return ids, dists


@pytest.fixture(scope="session")
def tiny_gt(tiny_points):
    ids, dists = BruteForceKNN(tiny_points).search(tiny_points, 5, exclude_self=True)
    return ids, dists
