"""Tests for the batched lock-step query engine and the search-path fixes.

Covers the engine-parity contract (with ``frontier=1`` the batched engine
expands nodes in the legacy heapq order, so results are identical on
tie-free inputs), the degenerate shapes (k > n, edge-free graphs), the
fork-sharding determinism guarantee, the cosine search-space fix, the
graph-meta persistence round-trip, the per-build counter deltas of
``BuildReport.from_obs``, the ``"wknng"`` engine-protocol registration
and the query-time observability surface.
"""

import numpy as np
import pytest

from repro.apps.search import (
    QUERY_METRICS_PREFIX,
    GraphSearchIndex,
    SearchConfig,
)
from repro.baselines import KNNIndex, get_engine
from repro.baselines.bruteforce import BruteForceKNN
from repro.core.builder import BuildReport, WKNNGBuilder
from repro.core.config import BuildConfig
from repro.core.graph import KNNGraph
from repro.obs import Events, Observability


def _queries(points: np.ndarray, m: int, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return points[rng.choice(points.shape[0], size=m, replace=False)]


@pytest.fixture(scope="module")
def index(small_clustered):
    return GraphSearchIndex.build(
        small_clustered,
        build_config=BuildConfig(k=10, strategy="tiled", seed=0),
        search_config=SearchConfig(ef=32, seeds_per_tree=4),
    )


class TestEngineParity:
    def test_batched_matches_legacy(self, small_clustered, index):
        q = _queries(small_clustered, 50)
        ids_b, d_b = index.search(q, 10)
        ids_l, d_l = index.search_legacy(q, 10)
        assert np.array_equal(ids_b, ids_l)
        assert np.allclose(d_b, d_l, equal_nan=True)

    def test_parity_under_cosine(self, small_clustered):
        idx = GraphSearchIndex.build(
            small_clustered,
            build_config=BuildConfig(k=10, strategy="tiled", seed=1,
                                     metric="cosine"),
            search_config=SearchConfig(ef=24),
        )
        q = _queries(small_clustered, 30, seed=8)
        ids_b, d_b = idx.search(q, 5)
        ids_l, d_l = idx.search_legacy(q, 5)
        assert np.array_equal(ids_b, ids_l)
        assert np.allclose(d_b, d_l, equal_nan=True)

    def test_k_larger_than_n(self):
        x = np.random.default_rng(2).standard_normal((30, 6)).astype(np.float32)
        idx = GraphSearchIndex.build(
            x, build_config=BuildConfig(k=5, strategy="tiled", seed=0,
                                        leaf_size=16),
            search_config=SearchConfig(ef=64),
        )
        q = _queries(x, 8, seed=9)
        ids_b, d_b = idx.search(q, 50)
        ids_l, d_l = idx.search_legacy(q, 50)
        assert ids_b.shape == (8, 50)
        assert np.array_equal(ids_b, ids_l)
        assert np.allclose(d_b, d_l, equal_nan=True)
        # unreachable slots are padded, never fabricated
        assert (ids_b[:, -1] == -1).all() or np.isfinite(d_b[:, -1]).all()

    def test_edge_free_graph_returns_seeds_only(self, small_clustered):
        """A graph with no edges degrades to seed scoring, not a hang."""
        idx = GraphSearchIndex.build(
            small_clustered,
            build_config=BuildConfig(k=10, strategy="tiled", seed=0),
            search_config=SearchConfig(ef=16),
        )
        n, k = idx.graph.n, idx.graph.k
        empty = KNNGraph(
            ids=np.full((n, k), -1, dtype=np.int32),
            dists=np.full((n, k), np.inf, dtype=np.float32),
            meta=dict(idx.graph.meta),
        )
        idx.graph = empty
        idx._engine.graph = empty
        q = _queries(small_clustered, 12, seed=3)
        ids_b, d_b = idx.search(q, 5)
        ids_l, d_l = idx.search_legacy(q, 5)
        assert np.array_equal(ids_b, ids_l)
        assert (ids_b >= 0).any()  # the seeds themselves are returned

    def test_fork_sharding_is_deterministic(self, small_clustered, index):
        q = _queries(small_clustered, 60, seed=11)
        serial_ids, serial_d = index.search(q, 8)
        sharded = GraphSearchIndex(
            small_clustered, index.graph, index.forest,
            SearchConfig(ef=32, n_jobs=3),
        )
        sharded_ids, sharded_d = sharded.search(q, 8)
        assert np.array_equal(serial_ids, sharded_ids)
        assert np.allclose(serial_d, sharded_d, equal_nan=True)

    def test_wide_frontier_still_accurate(self, small_clustered):
        idx = GraphSearchIndex.build(
            small_clustered,
            build_config=BuildConfig(k=10, strategy="tiled", seed=0),
            search_config=SearchConfig(ef=32, frontier=4),
        )
        q = _queries(small_clustered, 40, seed=12)
        ids, dists = idx.search(q, 10)
        gt_ids, _ = BruteForceKNN(small_clustered).search(q, 10)
        hits = sum(np.intersect1d(ids[i][ids[i] >= 0], gt_ids[i]).size
                   for i in range(q.shape[0]))
        assert hits / (q.shape[0] * 10) > 0.9
        valid = np.isfinite(dists)
        assert (np.diff(np.where(valid, dists, np.inf), axis=1) >= 0).all()


class TestCosineSearchSpace:
    def test_cosine_recall_on_scaled_data(self):
        """Rows with wildly different norms: the pre-fix code scored raw
        L2 against a cosine graph and recall collapsed."""
        rng = np.random.default_rng(5)
        x = rng.standard_normal((800, 12)).astype(np.float32)
        x *= rng.uniform(0.2, 5.0, size=(800, 1)).astype(np.float32)
        idx = GraphSearchIndex.build(
            x, build_config=BuildConfig(k=12, strategy="tiled", seed=0,
                                        metric="cosine"),
            search_config=SearchConfig(ef=48),
        )
        q = _queries(x, 50, seed=6)
        ids, _ = idx.search(q, 10)
        gt_ids, _ = BruteForceKNN(x, metric="cosine").search(q, 10)
        hits = sum(np.intersect1d(ids[i][ids[i] >= 0], gt_ids[i]).size
                   for i in range(q.shape[0]))
        assert hits / (q.shape[0] * 10) > 0.8


class TestPersistence:
    def test_graph_meta_round_trip(self, tmp_path):
        g = KNNGraph(
            ids=np.array([[1], [0]], dtype=np.int32),
            dists=np.array([[1.0], [1.0]], dtype=np.float32),
            meta={"metric": "cosine", "strategy": "tiled", "k": 2,
                  "report": object(), "array": np.arange(3)},
        )
        path = tmp_path / "g.npz"
        g.save(path)
        loaded = KNNGraph.load(path)
        assert loaded.meta["metric"] == "cosine"
        assert loaded.meta["strategy"] == "tiled"
        assert loaded.meta["k"] == 2
        # non-JSON-serialisable entries are dropped, not crashed on
        assert "report" not in loaded.meta
        assert "array" not in loaded.meta

    def test_cosine_index_survives_save_load(self, small_clustered, tmp_path):
        idx = GraphSearchIndex.build(
            small_clustered,
            build_config=BuildConfig(k=10, strategy="tiled", seed=0,
                                     metric="cosine"),
            search_config=SearchConfig(ef=24),
        )
        q = _queries(small_clustered, 20, seed=13)
        before_ids, before_d = idx.search(q, 5)
        idx.save(tmp_path / "idx")
        loaded = GraphSearchIndex.load(tmp_path / "idx", SearchConfig(ef=24))
        assert loaded.metric == "cosine"
        after_ids, after_d = loaded.search(q, 5)
        assert np.array_equal(before_ids, after_ids)
        assert np.allclose(before_d, after_d, equal_nan=True)


class TestBuildReportDeltas:
    @pytest.mark.parametrize("backend", ["vectorized", "simt"])
    def test_shared_obs_yields_per_build_counters(self, backend):
        x = np.random.default_rng(4).standard_normal((300, 8)).astype(np.float32)
        obs = Observability()
        builder = WKNNGBuilder(
            BuildConfig(k=6, strategy="tiled", seed=0, leaf_size=48,
                        backend=backend),
            obs=obs,
        )
        _, first = builder.build(x, return_report=True)
        _, second = builder.build(x, return_report=True)
        assert any(v > 0 for v in first.counters.values())
        # identical builds: the second report must not absorb the first's work
        assert first.counters == second.counters

    def test_counters_snapshot_is_integer_only(self):
        obs = Observability()
        obs.metrics.counter("kernel/distance_evals").inc(5)
        obs.metrics.gauge("kernel/ratio").set(0.5)
        snap = BuildReport.counters_snapshot(obs)
        assert snap == {"distance_evals": 5}


class TestEngineProtocol:
    def test_wknng_registered_and_conformant(self, small_clustered):
        engine = get_engine("wknng")
        assert isinstance(engine, KNNIndex)
        assert engine.fit(small_clustered) is engine
        ids, dists = engine.query(small_clustered[:10], 5)
        assert ids.shape == dists.shape == (10, 5)
        stats = engine.stats()
        assert stats["engine"] == "wknng-graph"
        assert stats["queries"] == 10
        assert stats["expansions"] > 0

    def test_query_before_fit_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            get_engine("wknng").query(np.zeros((1, 4), dtype=np.float32), 1)


class TestQueryObservability:
    def test_span_metrics_and_hooks(self, small_clustered):
        obs = Observability()
        events = []
        obs.hooks.subscribe(Events.QUERY_BATCH_BEFORE,
                            lambda event, payload: events.append(("before", payload)))
        obs.hooks.subscribe(Events.QUERY_BATCH_AFTER,
                            lambda event, payload: events.append(("after", payload)))
        idx = GraphSearchIndex.build(
            small_clustered,
            build_config=BuildConfig(k=10, strategy="tiled", seed=0),
            search_config=SearchConfig(ef=16),
            obs=obs,
        )
        q = _queries(small_clustered, 25, seed=14)
        idx.search(q, 5)

        spans = [r for r in obs.trace.records if r.name == "query"]
        assert len(spans) == 1
        assert spans[0].attrs["queries"] == 25
        assert spans[0].attrs["rounds"] >= 1

        section = obs.metrics.section(QUERY_METRICS_PREFIX)
        assert section["queries"] == 25
        assert section["batches"] == 1
        assert section["expansions"] > 0
        assert section["distance_evals"] > 0

        assert [name for name, _ in events] == ["before", "after"]
        after = events[1][1]
        assert after["queries"] == 25
        assert after["expansions"] == section["expansions"]

    def test_max_expansions_cap_respected(self, small_clustered):
        idx = GraphSearchIndex.build(
            small_clustered,
            build_config=BuildConfig(k=10, strategy="tiled", seed=0),
            search_config=SearchConfig(ef=32, max_expansions=3),
        )
        q = _queries(small_clustered, 20, seed=15)
        idx.search(q, 5)
        stats = idx.stats()
        assert stats["expansions"] <= 3 * q.shape[0]
