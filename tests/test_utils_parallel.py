"""Tests for process-parallel helpers and the parallel forest build."""

import numpy as np
import pytest

from repro import BuildConfig, WKNNGBuilder
from repro.core.rpforest import build_forest
from repro.data.synthetic import gaussian_mixture
from repro.utils.parallel import (
    fork_available,
    map_forked,
    shard_ranges,
    usable_cpus,
)


class TestShardRanges:
    def test_even_split(self):
        assert shard_ranges(10, 2) == [(0, 5), (5, 10)]

    def test_uneven_split_sizes_differ_by_at_most_one(self):
        ranges = shard_ranges(10, 3)
        assert ranges == [(0, 4), (4, 7), (7, 10)]
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_total_smaller_than_n_shards(self):
        # never emits empty ranges: shard count collapses to the total
        ranges = shard_ranges(3, 8)
        assert ranges == [(0, 1), (1, 2), (2, 3)]

    def test_zero_total(self):
        assert shard_ranges(0, 4) == []

    def test_single_shard(self):
        assert shard_ranges(7, 1) == [(0, 7)]

    def test_covers_without_gaps_or_overlap(self):
        for total in (1, 2, 5, 17, 100):
            for n_shards in (1, 2, 3, 7, 16):
                ranges = shard_ranges(total, n_shards)
                flat = [i for lo, hi in ranges for i in range(lo, hi)]
                assert flat == list(range(total))

    def test_nonpositive_n_shards_rejected(self):
        with pytest.raises(ValueError):
            shard_ranges(10, 0)
        with pytest.raises(ValueError):
            shard_ranges(10, -2)

    def test_usable_cpus_positive(self):
        assert usable_cpus() >= 1


def _square(shared, i):
    return shared[i] ** 2


def _with_extra(shared, i, offset):
    return shared[i] + offset


class TestMapForked:
    def test_serial_fallback(self):
        out = map_forked(_square, np.array([1, 2, 3]), [(0,), (1,), (2,)], n_jobs=1)
        assert out == [1, 4, 9]

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_parallel_matches_serial(self):
        shared = np.arange(10)
        tasks = [(i,) for i in range(10)]
        assert map_forked(_square, shared, tasks, 4) == \
            map_forked(_square, shared, tasks, 1)

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_order_preserved(self):
        shared = np.arange(20)
        out = map_forked(_square, shared, [(i,) for i in range(20)], 3)
        assert out == [i * i for i in range(20)]

    def test_multiple_args(self):
        out = map_forked(_with_extra, np.array([5]), [(0, 10)], 1)
        assert out == [15]

    def test_single_task_runs_inline(self):
        out = map_forked(_square, np.array([3]), [(0,)], n_jobs=8)
        assert out == [9]


class TestParallelForest:
    @pytest.fixture(scope="class")
    def points(self):
        return gaussian_mixture(800, 12, n_clusters=10, seed=3)

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_forest_identical_across_n_jobs(self, points):
        f1 = build_forest(points, 4, 40, seed=7, n_jobs=1)
        f2 = build_forest(points, 4, 40, seed=7, n_jobs=3)
        assert f1.n_trees == f2.n_trees
        for t1, t2 in zip(f1.trees, f2.trees):
            assert len(t1.leaves) == len(t2.leaves)
            for a, b in zip(t1.leaves, t2.leaves):
                assert np.array_equal(a, b)
            assert np.allclose(t1.normals, t2.normals)

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_generator_seed_identical(self, points):
        f1 = build_forest(points, 3, 40, seed=np.random.default_rng(5), n_jobs=1)
        f2 = build_forest(points, 3, 40, seed=np.random.default_rng(5), n_jobs=2)
        for t1, t2 in zip(f1.trees, f2.trees):
            for a, b in zip(t1.leaves, t2.leaves):
                assert np.array_equal(a, b)

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_builder_graph_identical_across_n_jobs(self, points):
        cfg1 = BuildConfig(k=8, n_trees=4, leaf_size=40, refine_iters=1,
                           seed=0, n_jobs=1)
        cfg2 = BuildConfig(k=8, n_trees=4, leaf_size=40, refine_iters=1,
                           seed=0, n_jobs=2)
        g1 = WKNNGBuilder(cfg1).build(points)
        g2 = WKNNGBuilder(cfg2).build(points)
        assert np.array_equal(g1.ids, g2.ids)

    def test_bad_n_jobs_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            BuildConfig(n_jobs=0)


class TestShardedBuildDeterminism:
    """Serial and process-parallel builds must be bitwise identical.

    This is the whole-build contract (see docs/parallel.md): the leaf
    all-pairs phase shards leaf batches across workers and the refinement
    rounds shard point ranges, but merge order is fixed, so the final
    graph - ids *and* float32 distances - matches the serial build
    exactly for any ``n_jobs`` and any insertion strategy.
    """

    @pytest.fixture(scope="class")
    def points(self):
        return gaussian_mixture(2_000, 24, n_clusters=12, seed=11)

    @staticmethod
    def _build(points, strategy, n_jobs, *, return_report=False):
        cfg = BuildConfig(k=8, strategy=strategy, n_trees=4, leaf_size=32,
                          refine_iters=2, seed=0, n_jobs=n_jobs)
        return WKNNGBuilder(cfg).build(points, return_report=return_report)

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    @pytest.mark.parametrize("strategy", ["baseline", "atomic", "tiled"])
    def test_bitwise_identical_across_n_jobs(self, points, strategy):
        serial = self._build(points, strategy, n_jobs=1)
        for n_jobs in (2, 4):
            sharded = self._build(points, strategy, n_jobs=n_jobs)
            assert np.array_equal(serial.ids, sharded.ids), (
                f"{strategy}: ids diverged at n_jobs={n_jobs}"
            )
            assert np.array_equal(serial.dists, sharded.dists), (
                f"{strategy}: dists diverged at n_jobs={n_jobs}"
            )

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_report_parallel_section(self, points):
        _, report = self._build(points, "tiled", n_jobs=2,
                                return_report=True)
        par = report.parallel
        assert par["n_jobs"] == 2
        assert par["workers"] == 2
        assert "leaf" in par and par["leaf"]["shards"] == 2
        assert len(par["leaf"]["shard_seconds"]) == 2
        assert "refine" in par and par["refine"]["shard_seconds"]
        assert par["refine"]["merge_seconds"] >= 0.0
        assert report.as_dict()["parallel"]["n_jobs"] == 2

    def test_serial_report_parallel_section(self, points):
        _, report = self._build(points, "tiled", n_jobs=1,
                                return_report=True)
        assert report.parallel == {"n_jobs": 1, "workers": 1}
