"""Tests for process-parallel helpers and the parallel forest build."""

import numpy as np
import pytest

from repro import BuildConfig, WKNNGBuilder
from repro.core.rpforest import build_forest
from repro.data.synthetic import gaussian_mixture
from repro.utils.parallel import fork_available, map_forked


def _square(shared, i):
    return shared[i] ** 2


def _with_extra(shared, i, offset):
    return shared[i] + offset


class TestMapForked:
    def test_serial_fallback(self):
        out = map_forked(_square, np.array([1, 2, 3]), [(0,), (1,), (2,)], n_jobs=1)
        assert out == [1, 4, 9]

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_parallel_matches_serial(self):
        shared = np.arange(10)
        tasks = [(i,) for i in range(10)]
        assert map_forked(_square, shared, tasks, 4) == \
            map_forked(_square, shared, tasks, 1)

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_order_preserved(self):
        shared = np.arange(20)
        out = map_forked(_square, shared, [(i,) for i in range(20)], 3)
        assert out == [i * i for i in range(20)]

    def test_multiple_args(self):
        out = map_forked(_with_extra, np.array([5]), [(0, 10)], 1)
        assert out == [15]

    def test_single_task_runs_inline(self):
        out = map_forked(_square, np.array([3]), [(0,)], n_jobs=8)
        assert out == [9]


class TestParallelForest:
    @pytest.fixture(scope="class")
    def points(self):
        return gaussian_mixture(800, 12, n_clusters=10, seed=3)

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_forest_identical_across_n_jobs(self, points):
        f1 = build_forest(points, 4, 40, seed=7, n_jobs=1)
        f2 = build_forest(points, 4, 40, seed=7, n_jobs=3)
        assert f1.n_trees == f2.n_trees
        for t1, t2 in zip(f1.trees, f2.trees):
            assert len(t1.leaves) == len(t2.leaves)
            for a, b in zip(t1.leaves, t2.leaves):
                assert np.array_equal(a, b)
            assert np.allclose(t1.normals, t2.normals)

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_generator_seed_identical(self, points):
        f1 = build_forest(points, 3, 40, seed=np.random.default_rng(5), n_jobs=1)
        f2 = build_forest(points, 3, 40, seed=np.random.default_rng(5), n_jobs=2)
        for t1, t2 in zip(f1.trees, f2.trees):
            for a, b in zip(t1.leaves, t2.leaves):
                assert np.array_equal(a, b)

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_builder_graph_identical_across_n_jobs(self, points):
        cfg1 = BuildConfig(k=8, n_trees=4, leaf_size=40, refine_iters=1,
                           seed=0, n_jobs=1)
        cfg2 = BuildConfig(k=8, n_trees=4, leaf_size=40, refine_iters=1,
                           seed=0, n_jobs=2)
        g1 = WKNNGBuilder(cfg1).build(points)
        g2 = WKNNGBuilder(cfg2).build(points)
        assert np.array_equal(g1.ids, g2.ids)

    def test_bad_n_jobs_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            BuildConfig(n_jobs=0)
