"""The perf-compare gate: headline diffing, skips, and regression calls."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "compare_perf",
    Path(__file__).parent.parent / "benchmarks" / "compare_perf.py",
)
compare_perf = importlib.util.module_from_spec(_SPEC)
sys.modules["compare_perf"] = compare_perf
_SPEC.loader.exec_module(compare_perf)


def _write(directory: Path, stem: str, payload: dict) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"{stem}.json").write_text(json.dumps(payload))


def _t3(qps: float, scale: float = 0.05) -> dict:
    return {"tier": "T3", "bench_scale": scale, "batched_qps": qps}


class TestLookup:
    def test_dotted_path_with_negative_list_index(self):
        payload = {"cases": [{"s": 1.0}, {"s": 2.5}]}
        assert compare_perf.lookup(payload, "cases.-1.s") == 2.5

    def test_missing_segment_returns_none(self):
        assert compare_perf.lookup({"a": {"b": 1}}, "a.c") is None
        assert compare_perf.lookup({"a": [1]}, "a.5") is None

    def test_non_numeric_leaf_returns_none(self):
        assert compare_perf.lookup({"a": "fast"}, "a") is None


class TestCompare:
    def test_within_threshold_is_ok(self, tmp_path):
        _write(tmp_path / "base", "BENCH_T3", _t3(1000.0))
        _write(tmp_path / "cur", "BENCH_T3", _t3(900.0))
        rows, regressions = compare_perf.compare(
            tmp_path / "base", tmp_path / "cur", 0.20
        )
        assert regressions == 0
        assert [r["status"] for r in rows] == ["ok"]

    def test_regression_beyond_threshold_flagged(self, tmp_path):
        _write(tmp_path / "base", "BENCH_T3", _t3(1000.0))
        _write(tmp_path / "cur", "BENCH_T3", _t3(700.0))
        rows, regressions = compare_perf.compare(
            tmp_path / "base", tmp_path / "cur", 0.20
        )
        assert regressions == 1
        assert rows[0]["status"] == "regression"
        assert rows[0]["delta_pct"] == pytest.approx(-30.0)

    def test_lower_is_better_direction(self, tmp_path):
        base = {
            "tier": "T1_uniform-16d",
            "bench_scale": 0.05,
            "cases": [{"wknng_seconds": 1.0}],
        }
        slower = {**base, "cases": [{"wknng_seconds": 1.5}]}
        _write(tmp_path / "base", "BENCH_T1_uniform-16d", base)
        _write(tmp_path / "cur", "BENCH_T1_uniform-16d", slower)
        rows, regressions = compare_perf.compare(
            tmp_path / "base", tmp_path / "cur", 0.20
        )
        assert regressions == 1  # wall time went up: that's the regression

    def test_missing_baseline_skips_not_fails(self, tmp_path):
        (tmp_path / "base").mkdir()
        _write(tmp_path / "cur", "BENCH_T3", _t3(1000.0))
        rows, regressions = compare_perf.compare(
            tmp_path / "base", tmp_path / "cur", 0.20
        )
        assert regressions == 0
        assert rows[0]["status"] == "skip"
        assert "no baseline" in rows[0]["note"]

    def test_scale_mismatch_refused(self, tmp_path):
        _write(tmp_path / "base", "BENCH_T3", _t3(1000.0, scale=0.05))
        _write(tmp_path / "cur", "BENCH_T3", _t3(10.0, scale=0.02))
        rows, regressions = compare_perf.compare(
            tmp_path / "base", tmp_path / "cur", 0.20
        )
        assert regressions == 0  # refused, not compared: no false regression
        assert rows[0]["status"] == "skip"
        assert "bench_scale mismatch" in rows[0]["note"]

    def test_multi_metric_tier(self, tmp_path):
        t8 = {
            "tier": "T8",
            "bench_scale": 0.05,
            "pq": {"recall": 0.95, "memory_reduction": 10.0},
        }
        worse = {
            "tier": "T8",
            "bench_scale": 0.05,
            "pq": {"recall": 0.94, "memory_reduction": 4.0},
        }
        _write(tmp_path / "base", "BENCH_T8", t8)
        _write(tmp_path / "cur", "BENCH_T8", worse)
        rows, regressions = compare_perf.compare(
            tmp_path / "base", tmp_path / "cur", 0.20
        )
        assert regressions == 1  # reduction fell 60%; recall only ~1%
        by_metric = {r["metric"]: r["status"] for r in rows}
        assert by_metric["pq.recall"] == "ok"
        assert by_metric["pq.memory_reduction"] == "regression"


class TestMain:
    def test_exit_codes_and_report(self, tmp_path, capsys):
        _write(tmp_path / "base", "BENCH_T3", _t3(1000.0))
        _write(tmp_path / "cur", "BENCH_T3", _t3(700.0))
        report = tmp_path / "report.md"
        rc = compare_perf.main(
            [
                "--baseline",
                str(tmp_path / "base"),
                "--current",
                str(tmp_path / "cur"),
                "--output",
                str(report),
            ]
        )
        assert rc == 1
        assert "batched_qps" in report.read_text()
        assert "regression" in report.read_text()

    def test_no_baseline_dir_is_clean_skip(self, tmp_path, capsys):
        _write(tmp_path / "cur", "BENCH_T3", _t3(1000.0))
        rc = compare_perf.main(
            [
                "--baseline",
                str(tmp_path / "missing"),
                "--current",
                str(tmp_path / "cur"),
            ]
        )
        assert rc == 0
        assert "skipping" in capsys.readouterr().out
