"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main, make_parser


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_build_defaults(self):
        args = make_parser().parse_args(["build", "--dataset", "gaussian",
                                         "-o", "x.npz"])
        assert args.k == 16 and args.strategy == "tiled"

    def test_bad_strategy_rejected(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["build", "--strategy", "magic",
                                      "-o", "x.npz"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "atomic" in out and "tiled" in out

    def test_build_eval_round_trip(self, tmp_path, capsys):
        graph_path = tmp_path / "g.npz"
        rc = main([
            "build", "--dataset", "gaussian", "--n", "500", "--dim", "8",
            "-k", "5", "--trees", "3", "-o", str(graph_path),
        ])
        assert rc == 0 and graph_path.exists()
        rc = main([
            "eval", "--dataset", "gaussian", "--n", "500", "--dim", "8",
            "--graph", str(graph_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recall@5" in out

    def test_build_from_npy(self, tmp_path, capsys):
        pts = tmp_path / "pts.npy"
        np.save(pts, np.random.default_rng(0).standard_normal((300, 6)).astype(np.float32))
        rc = main(["build", "--input", str(pts), "-k", "4",
                   "-o", str(tmp_path / "g.npz")])
        assert rc == 0

    def test_build_from_fvecs(self, tmp_path):
        from repro.data.loaders import write_fvecs

        pts = tmp_path / "pts.fvecs"
        write_fvecs(pts, np.random.default_rng(0).standard_normal((200, 5)).astype(np.float32))
        rc = main(["build", "--input", str(pts), "-k", "4",
                   "-o", str(tmp_path / "g.npz")])
        assert rc == 0

    def test_missing_data_source(self, tmp_path):
        with pytest.raises(SystemExit, match="provide"):
            main(["build", "-o", str(tmp_path / "g.npz"), "--dataset", ""])

    def test_unsupported_input_format(self, tmp_path):
        bad = tmp_path / "pts.csv"
        bad.write_text("1,2\n")
        with pytest.raises(SystemExit, match="unsupported"):
            main(["build", "--input", str(bad), "-o", str(tmp_path / "g.npz")])

    def test_eval_size_mismatch(self, tmp_path):
        graph_path = tmp_path / "g.npz"
        main(["build", "--dataset", "gaussian", "--n", "300", "--dim", "6",
              "-k", "4", "-o", str(graph_path)])
        with pytest.raises(SystemExit, match="nodes"):
            main(["eval", "--dataset", "gaussian", "--n", "200", "--dim", "6",
                  "--graph", str(graph_path)])

    def test_bench_small(self, capsys):
        rc = main(["bench", "--workload", "clustered-16d", "--target", "0.8",
                   "--scale", "0.02", "--strategy", "atomic"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "modeled speedup" in out

    def test_search_save_load_round_trip(self, tmp_path, capsys):
        idx_dir = tmp_path / "idx"
        rc = main([
            "search", "--dataset", "gaussian", "--n", "600", "--dim", "8",
            "--queries", "50", "--topk", "5", "--ef", "24",
            "--compare-legacy", "--save-index", str(idx_dir),
        ])
        assert rc == 0 and idx_dir.exists()
        out = capsys.readouterr().out
        assert "batched" in out and "legacy" in out and "recall@5" in out
        rc = main(["search", "--load-index", str(idx_dir),
                   "--queries", "20", "--topk", "3"])
        assert rc == 0
        assert "recall@3" in capsys.readouterr().out

    def test_search_cosine(self, capsys):
        rc = main(["search", "--dataset", "gaussian", "--n", "400",
                   "--dim", "8", "--metric", "cosine", "--queries", "30"])
        assert rc == 0
        assert "cosine" in capsys.readouterr().out

    def test_serve_closed_loop(self, tmp_path, capsys):
        trace = tmp_path / "serve.jsonl"
        rc = main([
            "serve", "--dataset", "gaussian", "--n", "500", "--dim", "8",
            "--queries", "40", "--topk", "5", "--clients", "4",
            "--max-batch", "8", "--max-wait-ms", "1", "--cache-size", "64",
            "--trace-out", str(trace),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "q/s" in out and "p99" in out
        assert trace.exists()
        from repro.obs.export import read_trace

        metrics = read_trace(trace).metrics.section("serve/")
        assert metrics["latency_seconds"]["count"] > 0

    def test_serve_load_index(self, tmp_path, capsys):
        idx_dir = tmp_path / "idx"
        main(["search", "--dataset", "gaussian", "--n", "500", "--dim", "8",
              "--save-index", str(idx_dir)])
        capsys.readouterr()
        rc = main(["serve", "--load-index", str(idx_dir),
                   "--queries", "30", "--topk", "4", "--clients", "2"])
        assert rc == 0
        assert "q/s" in capsys.readouterr().out

    def test_loadgen_open_loop(self, capsys):
        rc = main([
            "loadgen", "--dataset", "gaussian", "--n", "500", "--dim", "8",
            "--queries", "40", "--topk", "5", "--rate", "300",
            "--duration", "0.5", "--deadline-ms", "100",
            "--queue-limit", "32", "--max-batch", "8",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "offered" in out and "deadline_violations=0" in out


class TestNeighborsCommand:
    def test_knn_edges_with_dbscan_npz(self, tmp_path, capsys):
        out_npz = tmp_path / "edges.npz"
        rc = main([
            "neighbors", "--dataset", "gaussian", "--n", "400", "--dim", "8",
            "--topk", "5", "--dbscan-eps", "3.0", "--dbscan-min-pts", "4",
            "-o", str(out_npz),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "knn_graph(k=5)" in out and "edges/s" in out
        assert "knn-dbscan" in out
        payload = np.load(out_npz)
        assert payload["edge_index"].shape == (2, 400 * 5)
        assert payload["edge_index"].dtype == np.int64
        assert payload["dists"].shape == (400 * 5,)
        assert payload["labels"].shape == (400,)

    def test_radius_through_cluster(self, capsys):
        rc = main([
            "neighbors", "--dataset", "gaussian", "--n", "300", "--dim", "8",
            "--topk", "4", "--radius", "8.0", "--query-limit", "100",
            "--shards", "2", "--cluster-backend", "thread",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "radius_graph(r=8.0" in out

    def test_query_limit_caps_targets(self, tmp_path, capsys):
        out_npz = tmp_path / "edges.npz"
        rc = main([
            "neighbors", "--dataset", "gaussian", "--n", "300", "--dim", "8",
            "--topk", "3", "--query-limit", "50", "-o", str(out_npz),
        ])
        assert rc == 0
        edges = np.load(out_npz)["edge_index"]
        assert edges.shape == (2, 150)
        assert edges[1].max() < 50
