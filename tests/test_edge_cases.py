"""Edge-case and failure-injection tests across the library.

Each test targets a boundary the main suites don't hit: minimum sizes,
pathological data, misuse sequences, exhausted structures.
"""

import numpy as np
import pytest

from repro import BuildConfig, WKNNGBuilder
from repro.baselines import BruteForceKNN, IVFConfig, IVFFlatIndex
from repro.core.graph import KNNGraph
from repro.data.synthetic import gaussian_mixture, uniform_hypercube
from repro.kernels import KnnState, get_strategy
from repro.metrics.recall import knn_recall


class TestMinimumSizes:
    def test_smallest_possible_graph(self):
        """n = k + 1: every point's list is everyone else."""
        x = uniform_hypercube(4, 3, seed=0)
        g = WKNNGBuilder(BuildConfig(k=3, n_trees=1, leaf_size=5,
                                     refine_iters=0, seed=0)).build(x)
        for i in range(4):
            assert set(g.ids[i].tolist()) == set(range(4)) - {i}

    def test_single_dimension(self):
        x = np.sort(uniform_hypercube(100, 1, seed=1), axis=0)
        g = WKNNGBuilder(BuildConfig(k=4, n_trees=2, leaf_size=16,
                                     refine_iters=2, seed=0)).build(x)
        gt, _ = BruteForceKNN(x).search(x, 4, exclude_self=True)
        assert knn_recall(g.ids, gt) > 0.95

    def test_k_equals_one(self):
        x = gaussian_mixture(120, 6, n_clusters=6, seed=2)
        g = WKNNGBuilder(BuildConfig(k=1, n_trees=3, leaf_size=16,
                                     refine_iters=2, seed=0)).build(x)
        gt, _ = BruteForceKNN(x).search(x, 1, exclude_self=True)
        assert knn_recall(g.ids, gt) > 0.9


class TestPathologicalData:
    def test_all_points_identical(self):
        x = np.ones((80, 5), dtype=np.float32)
        g = WKNNGBuilder(BuildConfig(k=4, n_trees=2, leaf_size=16,
                                     refine_iters=1, seed=0)).build(x)
        assert g.is_complete()
        assert np.allclose(g.dists, 0.0)

    def test_many_duplicate_pairs(self):
        base = uniform_hypercube(50, 4, seed=3)
        x = np.repeat(base, 2, axis=0)  # every point duplicated
        g = WKNNGBuilder(BuildConfig(k=3, n_trees=3, leaf_size=16,
                                     refine_iters=2, seed=0)).build(x)
        # each point's nearest neighbour is its duplicate (distance 0)
        first_dists = g.dists[:, 0]
        assert (first_dists < 1e-6).mean() > 0.95

    def test_extreme_scale_values(self):
        x = uniform_hypercube(100, 4, seed=4) * 1e6
        g = WKNNGBuilder(BuildConfig(k=4, n_trees=2, leaf_size=16,
                                     refine_iters=1, seed=0)).build(x)
        gt, _ = BruteForceKNN(x).search(x, 4, exclude_self=True)
        assert knn_recall(g.ids, gt) > 0.8

    def test_one_outlier_far_away(self):
        x = uniform_hypercube(99, 4, seed=5)
        x = np.vstack([x, np.full((1, 4), 1e4, dtype=np.float32)])
        g = WKNNGBuilder(BuildConfig(k=4, n_trees=3, leaf_size=16,
                                     refine_iters=2, seed=0)).build(x)
        assert g.is_complete()  # the outlier still gets a full list

    def test_integer_input_accepted(self):
        x = np.random.default_rng(0).integers(0, 100, (60, 5))
        g = WKNNGBuilder(BuildConfig(k=3, n_trees=2, leaf_size=10,
                                     seed=0)).build(x)
        assert g.n == 60


class TestMisuseSequences:
    def test_builder_reuse_is_independent(self):
        builder = WKNNGBuilder(BuildConfig(k=4, n_trees=2, leaf_size=16,
                                           refine_iters=1, seed=0))
        x1 = uniform_hypercube(60, 4, seed=6)
        x2 = uniform_hypercube(80, 4, seed=7)
        g1a = builder.build(x1)
        builder.build(x2)
        g1b = builder.build(x1)
        assert np.array_equal(g1a.ids, g1b.ids)

    def test_strategy_reuse_across_states(self):
        strat = get_strategy("tiled")
        x = uniform_hypercube(40, 4, seed=8)
        s1 = KnnState(40, 3)
        s2 = KnnState(40, 3)
        strat.update_leaf(s1, x, np.arange(20))
        strat.update_leaf(s2, x, np.arange(20, 40))
        assert s1.filled_counts()[:20].min() == 3
        assert s2.filled_counts()[20:].min() == 3
        assert s1.filled_counts()[20:].max() == 0  # no cross-talk

    def test_graph_load_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            KNNGraph.load(tmp_path / "nope.npz")

    def test_ivf_refit_replaces_lists(self):
        x1 = uniform_hypercube(100, 4, seed=9)
        x2 = uniform_hypercube(60, 4, seed=10)
        index = IVFFlatIndex(IVFConfig(seed=0))
        index.fit(x1)
        index.fit(x2)
        assert sum(len(l) for l in index.lists) == 60


class TestConfigurationMatrix:
    """Every (strategy, metric, spill) combination must produce a valid
    graph - a broad but cheap compatibility sweep."""

    @pytest.mark.parametrize("strategy", ["baseline", "atomic", "tiled", "auto"])
    @pytest.mark.parametrize("metric", ["sqeuclidean", "cosine"])
    @pytest.mark.parametrize("spill", [0.0, 0.15])
    def test_combination_builds(self, strategy, metric, spill):
        x = gaussian_mixture(150, 10, n_clusters=6, seed=11)
        g = WKNNGBuilder(BuildConfig(
            k=4, strategy=strategy, metric=metric, spill=spill,
            n_trees=2, leaf_size=16, refine_iters=1, seed=0,
        )).build(x)
        assert g.is_complete()
        assert not (g.ids == np.arange(150)[:, None]).any()
        for i in range(0, 150, 29):
            row = g.ids[i]
            assert len(np.unique(row)) == len(row)
