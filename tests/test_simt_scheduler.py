"""Tests for kernel launch, warp interleaving and barrier semantics."""

import numpy as np
import pytest

from repro.errors import BarrierError, LaunchError
from repro.simt.device import Device


class TestLaunchGeometry:
    def test_plain_kernel_runs_per_warp(self):
        dev = Device()
        out = dev.empty((6,), np.int32, "out")

        def kernel(ctx, out):
            ctx.store(out, np.full(ctx.warp_size, ctx.warp_id_global),
                      np.int32(ctx.warp_id_global + 1), ctx.lane_id == 0)

        dev.launch(kernel, grid_blocks=3, block_warps=2, args=(out,))
        assert out.to_host().tolist() == [1, 2, 3, 4, 5, 6]

    def test_bad_geometry_rejected(self):
        dev = Device()
        with pytest.raises(LaunchError):
            dev.launch(lambda ctx: None, grid_blocks=0, block_warps=1)
        with pytest.raises(LaunchError):
            dev.launch(lambda ctx: None, grid_blocks=1, block_warps=-1)

    def test_warp_and_block_counters(self):
        dev = Device()
        dev.launch(lambda ctx: None, grid_blocks=4, block_warps=3)
        assert dev.metrics.blocks_launched == 4
        assert dev.metrics.warps_launched == 12


class TestBarriers:
    def test_barrier_orders_phases(self):
        """Warp 1 reads what warp 0 wrote before the barrier."""
        dev = Device()
        out = dev.empty((2,), np.float32, "out")

        def kernel(ctx, out):
            s = ctx.shared("buf", (1,), np.float32)
            if ctx.warp_id == 0:
                ctx.shared_store(s, np.zeros(ctx.warp_size, dtype=np.int64),
                                 np.float32(ctx.block_id + 10), ctx.lane_id == 0)
            yield ctx.barrier()
            if ctx.warp_id == 1:
                v = ctx.shared_load(s, np.zeros(ctx.warp_size, dtype=np.int64),
                                    ctx.lane_id == 0)
                ctx.store(out, np.full(ctx.warp_size, ctx.block_id), v,
                          ctx.lane_id == 0)

        dev.launch(kernel, grid_blocks=2, block_warps=2, args=(out,))
        assert out.to_host().tolist() == [10.0, 11.0]

    def test_multiple_barriers(self):
        dev = Device()
        trace = []

        def kernel(ctx):
            trace.append(("a", ctx.warp_id))
            yield ctx.barrier()
            trace.append(("b", ctx.warp_id))
            yield ctx.barrier()
            trace.append(("c", ctx.warp_id))

        dev.launch(kernel, grid_blocks=1, block_warps=3)
        phases = [p for p, _ in trace]
        # all 'a' entries strictly precede all 'b', which precede all 'c'
        assert phases == ["a"] * 3 + ["b"] * 3 + ["c"] * 3
        assert dev.metrics.barriers == 2

    def test_mismatched_barriers_deadlock_detected(self):
        dev = Device()

        def kernel(ctx):
            if ctx.warp_id == 0:
                yield ctx.barrier()  # warp 1 never reaches it

        with pytest.raises(BarrierError, match="barrier"):
            dev.launch(kernel, grid_blocks=1, block_warps=2)

    def test_yield_non_barrier_rejected(self):
        dev = Device()

        def kernel(ctx):
            yield "not a barrier"

        with pytest.raises(BarrierError, match="yield"):
            dev.launch(kernel, grid_blocks=1, block_warps=1)

    def test_blocks_have_isolated_shared_memory(self):
        dev = Device()
        out = dev.empty((2,), np.float32, "out")

        def kernel(ctx, out):
            s = ctx.shared("iso", (1,), np.float32)
            v = ctx.shared_load(s, np.zeros(ctx.warp_size, dtype=np.int64),
                                ctx.lane_id == 0)
            ctx.store(out, np.full(ctx.warp_size, ctx.block_id),
                      v + np.float32(1.0), ctx.lane_id == 0)
            ctx.shared_store(s, np.zeros(ctx.warp_size, dtype=np.int64),
                             np.float32(99.0), ctx.lane_id == 0)

        dev.launch(kernel, grid_blocks=2, block_warps=1, args=(out,))
        # each block saw a fresh zeroed region, not block 0's 99
        assert out.to_host().tolist() == [1.0, 1.0]


class TestDeviceFacade:
    def test_reset_metrics_returns_snapshot(self):
        dev = Device()
        dev.launch(lambda ctx: None, grid_blocks=2, block_warps=1)
        snap = dev.reset_metrics()
        assert snap.warps_launched == 2
        assert dev.metrics.warps_launched == 0

    def test_allocated_bytes(self):
        dev = Device()
        dev.empty((10,), np.float32)
        dev.empty((10,), np.int64)
        assert dev.allocated_bytes == 40 + 80

    def test_empty_with_fill(self):
        dev = Device()
        buf = dev.empty((4,), np.float32, fill=np.inf)
        assert np.isinf(buf.to_host()).all()

    def test_deterministic_metrics(self):
        def run():
            dev = Device()
            buf = dev.to_device(np.arange(64, dtype=np.float32))
            def kernel(ctx, b):
                ctx.load(b, ctx.lane_id * 2)
            dev.launch(kernel, grid_blocks=2, block_warps=1, args=(buf,))
            return dev.metrics.as_dict()

        assert run() == run()
