"""Tests for the ASCII figure renderer."""

import pytest

from repro.bench.plots import Series, ascii_plot


class TestSeries:
    def test_add_chains(self):
        s = Series("a").add(1, 2).add(3, 4)
        assert s.xs == [1.0, 3.0] and s.ys == [2.0, 4.0]


class TestAsciiPlot:
    def test_empty(self):
        assert ascii_plot([]) == "(empty plot)"

    def test_contains_glyphs_and_legend(self):
        s1 = Series("alpha").add(0, 0).add(1, 1)
        s2 = Series("beta").add(0, 1).add(1, 0)
        out = ascii_plot([s1, s2])
        assert "o" in out and "x" in out
        assert "alpha" in out and "beta" in out

    def test_title_and_labels(self):
        s = Series("a").add(0, 0).add(1, 1)
        out = ascii_plot([s], title="T", xlabel="dim", ylabel="cycles")
        assert "T" in out and "x: dim" in out and "y: cycles" in out

    def test_dimensions(self):
        s = Series("a").add(0, 0).add(10, 5)
        out = ascii_plot([s], width=40, height=10)
        body = [l for l in out.splitlines() if "|" in l]
        assert len(body) == 10

    def test_single_point(self):
        out = ascii_plot([Series("p").add(5, 5)])
        assert "o" in out

    def test_log_axes(self):
        s = Series("a").add(1, 1).add(10, 100).add(100, 10000)
        out = ascii_plot([s], logx=True, logy=True)
        assert "o" in out

    def test_log_rejects_nonpositive(self):
        s = Series("a").add(0, 1)
        with pytest.raises(ValueError):
            ascii_plot([s], logx=True)

    def test_interpolation_marks(self):
        s = Series("a").add(0, 0).add(20, 10)
        out = ascii_plot([s], width=40, height=12)
        assert "." in out  # connecting dots between markers

    def test_axis_extents_shown(self):
        s = Series("a").add(2, 3).add(8, 9)
        out = ascii_plot([s])
        assert "2" in out and "8" in out
        assert "3" in out and "9" in out
