"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataError
from repro.utils.validation import (
    check_k_fits,
    check_points_matrix,
    check_positive_int,
    check_probability,
    ensure_float32,
)


class TestEnsureFloat32:
    def test_converts_dtype(self):
        out = ensure_float32(np.ones((3, 2), dtype=np.float64))
        assert out.dtype == np.float32

    def test_no_copy_when_already_ok(self):
        arr = np.ones((3, 2), dtype=np.float32)
        assert ensure_float32(arr) is arr or np.shares_memory(ensure_float32(arr), arr)

    def test_nan_rejected(self):
        arr = np.array([[1.0, np.nan]])
        with pytest.raises(DataError, match="NaN"):
            ensure_float32(arr)

    def test_inf_rejected(self):
        with pytest.raises(DataError):
            ensure_float32(np.array([[np.inf]]))


class TestCheckPointsMatrix:
    def test_valid_passes(self):
        out = check_points_matrix(np.zeros((4, 3)))
        assert out.shape == (4, 3) and out.dtype == np.float32

    def test_1d_rejected(self):
        with pytest.raises(DataError, match="2-D"):
            check_points_matrix(np.zeros(5))

    def test_3d_rejected(self):
        with pytest.raises(DataError):
            check_points_matrix(np.zeros((2, 2, 2)))

    def test_empty_rejected(self):
        with pytest.raises(DataError, match="non-empty"):
            check_points_matrix(np.zeros((0, 3)))
        with pytest.raises(DataError):
            check_points_matrix(np.zeros((3, 0)))

    def test_name_in_message(self):
        with pytest.raises(DataError, match="queries"):
            check_points_matrix(np.zeros(3), name="queries")


class TestCheckPositiveInt:
    def test_valid(self):
        assert check_positive_int(5, "x") == 5

    def test_numpy_int_ok(self):
        assert check_positive_int(np.int64(3), "x") == 3

    def test_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            check_positive_int(0, "x")

    def test_minimum_respected(self):
        assert check_positive_int(0, "x", minimum=0) == 0
        with pytest.raises(ConfigurationError):
            check_positive_int(1, "x", minimum=2)

    def test_float_rejected(self):
        with pytest.raises(ConfigurationError):
            check_positive_int(2.5, "x")

    def test_bool_rejected(self):
        with pytest.raises(ConfigurationError):
            check_positive_int(True, "x")


class TestCheckProbability:
    @pytest.mark.parametrize("v", [0.0, 0.5, 1.0])
    def test_valid(self, v):
        assert check_probability(v, "p") == v

    @pytest.mark.parametrize("v", [-0.1, 1.1, 2])
    def test_out_of_range(self, v):
        with pytest.raises(ConfigurationError):
            check_probability(v, "p")

    def test_non_numeric(self):
        with pytest.raises(ConfigurationError):
            check_probability("0.5", "p")


class TestCheckKFits:
    def test_fits(self):
        assert check_k_fits(5, 10) == 5

    def test_max_allowed(self):
        assert check_k_fits(9, 10) == 9

    def test_too_large(self):
        with pytest.raises(ConfigurationError, match="too large"):
            check_k_fits(10, 10)
