"""Tests for the ``repro.serve`` online query service.

Covers the ISSUE's required scheduler edge cases (empty flush on
shutdown, deadline expiring while queued, single request below
``max_wait_ms``, cache hits bypassing the engine, batch-size-independent
determinism) plus the admission queue, degradation controller, result
cache, overload behaviour and obs integration.
"""

import threading
import time

import numpy as np
import pytest

from repro.apps.search import GraphSearchIndex, SearchConfig
from repro.core.config import BuildConfig
from repro.errors import (
    DeadlineExceeded,
    ServerClosed,
    ServerOverloaded,
)
from repro.obs import Events, Observability
from repro.serve import (
    AdmissionPolicy,
    AdmissionQueue,
    CachePolicy,
    DegradationController,
    KNNServer,
    ResultCache,
    ServeConfig,
    ShedPolicy,
    closed_loop,
    open_loop,
)


@pytest.fixture(scope="module")
def index():
    rng = np.random.default_rng(7)
    x = rng.standard_normal((1500, 12), dtype=np.float32)
    return GraphSearchIndex.build(
        x,
        build_config=BuildConfig(k=8, strategy="tiled", seed=0),
        search_config=SearchConfig(ef=24),
    )


@pytest.fixture(scope="module")
def queries(index):
    rng = np.random.default_rng(8)
    x = index._engine._x
    return x[rng.choice(x.shape[0], size=48, replace=False)]


class CountingIndex:
    """Engine proxy that counts ``search`` calls and rows scored."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0
        self.rows = 0
        self.lock = threading.Lock()

    @property
    def dim(self):
        return self.inner.dim

    @property
    def config(self):
        return self.inner.config

    def search(self, q, k, *, ef=None):
        with self.lock:
            self.calls += 1
            self.rows += q.shape[0]
        return self.inner.search(q, k, ef=ef)


class TestAdmissionQueue:
    def test_offer_take_fifo(self):
        q = AdmissionQueue(limit=4)
        assert q.offer("a") and q.offer("b")
        assert q.take_batch(10, 0.0) == ["a", "b"]

    def test_offer_rejects_at_limit(self):
        q = AdmissionQueue(limit=2)
        assert q.offer(1) and q.offer(2)
        assert not q.offer(3)
        assert q.depth() == 2

    def test_take_batch_flushes_on_max_batch(self):
        q = AdmissionQueue(limit=16)
        for i in range(6):
            q.offer(i)
        assert q.take_batch(4, 10.0) == [0, 1, 2, 3]
        assert q.take_batch(4, 0.0) == [4, 5]

    def test_take_batch_flushes_on_timer(self):
        q = AdmissionQueue(limit=16)
        q.offer("only")
        t0 = time.monotonic()
        batch = q.take_batch(64, 0.05)
        waited = time.monotonic() - t0
        assert batch == ["only"]
        assert waited >= 0.04

    def test_close_wakes_blocked_consumer(self):
        q = AdmissionQueue(limit=4)
        got = []
        t = threading.Thread(target=lambda: got.append(q.take_batch(8, 5.0)))
        t.start()
        time.sleep(0.05)
        q.close()
        t.join(timeout=2.0)
        assert not t.is_alive()
        assert got == [[]]
        assert not q.offer("late")


class TestDegradation:
    def test_levels_rise_and_recover_with_hysteresis(self):
        c = DegradationController(ShedPolicy(
            high_water=0.5, low_water=0.1, step_up_after=2,
            step_down_after=2, factor=0.5, min_ef=8, max_level=3,
        ))
        assert c.observe(60, 100) == 0       # 1st pressure observation
        assert c.observe(60, 100) == 1       # 2nd -> shed one level
        assert c.effective_ef(64) == 32
        assert c.observe(60, 100) == 1
        assert c.observe(60, 100) == 2
        assert c.effective_ef(64) == 16
        assert c.observe(5, 100) == 2        # 1st relief observation
        assert c.observe(5, 100) == 1        # 2nd -> recover one level
        assert c.observe(5, 100) == 1
        assert c.observe(5, 100) == 0
        assert c.effective_ef(64) == 64

    def test_min_ef_floor(self):
        c = DegradationController(ShedPolicy(
            step_up_after=1, factor=0.5, min_ef=20, max_level=3))
        for _ in range(3):
            c.observe(100, 100)
        assert c.level == 3
        assert c.effective_ef(64) == 20      # not 8
        assert c.effective_ef(10) == 10      # never raises ef above requested

    def test_disabled_policy_is_identity(self):
        c = DegradationController(ShedPolicy(enabled=False))
        for _ in range(10):
            assert c.observe(100, 100) == 0
        assert c.effective_ef(64) == 64

    def test_midband_resets_streaks(self):
        c = DegradationController(ShedPolicy(
            high_water=0.5, low_water=0.1, step_up_after=2))
        c.observe(60, 100)
        c.observe(30, 100)                   # mid band: streak broken
        assert c.observe(60, 100) == 0       # needs 2 consecutive again
        assert c.observe(60, 100) == 1


class TestResultCache:
    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        cache.put(b"a", 1)
        cache.put(b"b", 2)
        assert cache.get(b"a") == 1          # touches a
        cache.put(b"c", 3)                   # evicts b (least recent)
        assert cache.get(b"b") is None
        assert cache.get(b"a") == 1 and cache.get(b"c") == 3

    def test_quantized_keys_collapse_near_duplicates(self):
        cache = ResultCache(capacity=4, decimals=2)
        a = np.array([0.123, 4.567], dtype=np.float32)
        b = a + 1e-4
        assert cache.key(a, 5, 32) == cache.key(b, 5, 32)
        assert cache.key(a, 5, 32) != cache.key(a, 6, 32)
        assert cache.key(a, 5, 32) != cache.key(a, 5, 64)

    def test_negative_zero_normalised(self):
        cache = ResultCache(capacity=2)
        a = np.array([0.0, 1.0], dtype=np.float32)
        b = np.array([-0.0, 1.0], dtype=np.float32)
        assert cache.key(a, 3, 8) == cache.key(b, 3, 8)


class TestSchedulerEdgeCases:
    def test_empty_flush_on_shutdown(self, index):
        """A server stopped with nothing queued joins cleanly."""
        server = KNNServer(index, ServeConfig(admission=AdmissionPolicy(max_batch=8, max_wait_ms=50.0)))
        server.start()
        batcher = server._batcher
        server.stop(timeout=5.0)
        assert not batcher.running
        assert server.stats()["completed"] == 0
        # restartable after a clean stop
        server.start()
        server.stop(timeout=5.0)

    def test_deadline_expiring_while_queued(self, index, queries):
        """An expired request is dropped before scoring, not after."""
        counting = CountingIndex(index)
        server = KNNServer(counting, ServeConfig(admission=AdmissionPolicy(
            max_batch=64, max_wait_ms=120.0, queue_limit=8)))
        with server:
            fut = server.submit(queries[0], 5, deadline_ms=1.0)
            with pytest.raises(DeadlineExceeded, match="while queued"):
                fut.result(timeout=10.0)
        assert counting.calls == 0            # never reached the engine
        stats = server.stats()
        assert stats["timeout_queued"] == 1
        assert stats["completed"] == 0

    def test_single_request_below_max_wait(self, index, queries):
        """A lone request flushes on the timer as a batch of one."""
        server = KNNServer(index, ServeConfig(admission=AdmissionPolicy(max_batch=64, max_wait_ms=30.0)))
        with server:
            t0 = time.monotonic()
            res = server.query(queries[0], 5, timeout=10.0)
            waited = time.monotonic() - t0
        assert res.batch_size == 1
        assert res.ids.shape == (5,)
        assert waited >= 0.025                # sat out the coalescing window
        assert server.stats()["completed"] == 1

    def test_cache_hit_bypasses_engine(self, index, queries):
        counting = CountingIndex(index)
        server = KNNServer(counting, ServeConfig(
            admission=AdmissionPolicy(max_batch=8, max_wait_ms=1.0),
            cache=CachePolicy(size=32)))
        with server:
            first = server.query(queries[0], 5, timeout=10.0)
            calls_after_first = counting.calls
            second = server.query(queries[0], 5, timeout=10.0)
        assert not first.from_cache and second.from_cache
        assert counting.calls == calls_after_first   # no extra engine call
        assert np.array_equal(first.ids, second.ids)
        assert np.allclose(first.dists, second.dists)
        assert server.stats()["cache_hits"] == 1

    @pytest.mark.parametrize("max_batch", [1, 7, 64])
    def test_deterministic_for_any_max_batch(self, index, queries, max_batch):
        """Serving answers equal direct BatchedGraphSearch calls exactly."""
        direct_ids, direct_dists = index.search(queries, 5)
        server = KNNServer(index, ServeConfig(admission=AdmissionPolicy(
            max_batch=max_batch, max_wait_ms=5.0, queue_limit=256)))
        with server:
            futs = [server.submit(q, 5) for q in queries]
            results = [f.result(timeout=30.0) for f in futs]
        ids = np.stack([r.ids for r in results])
        dists = np.stack([r.dists for r in results])
        assert np.array_equal(ids, direct_ids)
        assert np.allclose(dists, direct_dists, equal_nan=True)

    def test_shutdown_drains_queued_requests(self, index, queries):
        server = KNNServer(index, ServeConfig(admission=AdmissionPolicy(max_batch=4, max_wait_ms=1.0)))
        server.start()
        futs = [server.submit(q, 5) for q in queries[:12]]
        server.stop(drain=True, timeout=30.0)
        for f in futs:
            assert f.result(timeout=1.0).ids.shape == (5,)

    def test_shutdown_without_drain_fails_pending(self, index, queries):
        server = KNNServer(index, ServeConfig(admission=AdmissionPolicy(
            max_batch=64, max_wait_ms=5000.0)))  # huge window: stays queued
        server.start()
        fut = server.submit(queries[0], 5)
        # the batcher may already hold the request; only assert the
        # contract for requests still in the queue at stop time
        server.stop(drain=False, timeout=10.0)
        try:
            fut.result(timeout=1.0)
        except ServerClosed:
            pass


class TestServerProtocol:
    def test_submit_after_stop_raises(self, index, queries):
        server = KNNServer(index)
        server.start()
        server.stop()
        with pytest.raises(ServerClosed):
            server.submit(queries[0], 5)

    def test_validation_at_the_boundary(self, index, queries):
        with KNNServer(index) as server:
            with pytest.raises(ValueError, match="dimension"):
                server.submit(np.zeros(3, dtype=np.float32), 5)
            with pytest.raises(ValueError, match="NaN"):
                bad = queries[0].copy()
                bad[0] = np.nan
                server.submit(bad, 5)
            with pytest.raises(ValueError, match="1-D"):
                server.submit(queries[:2], 5)
            with pytest.raises(ValueError):
                server.submit(queries[0], 0)

    def test_accepts_row_matrix_query(self, index, queries):
        with KNNServer(index, ServeConfig(admission=AdmissionPolicy(max_wait_ms=1.0))) as server:
            res = server.query(queries[:1], 5, timeout=10.0)
        assert res.ids.shape == (5,)

    def test_overload_rejection_is_synchronous(self, index, queries):
        """Past the high-water mark submit raises ServerOverloaded."""

        class SlowIndex(CountingIndex):
            def search(self, q, k, *, ef=None):
                time.sleep(0.05)
                return super().search(q, k, ef=ef)

        server = KNNServer(SlowIndex(index), ServeConfig(admission=AdmissionPolicy(
            max_batch=1, max_wait_ms=0.0, queue_limit=4)))
        server.start()
        try:
            rejected = 0
            for i in range(32):
                try:
                    server.submit(queries[i % queries.shape[0]], 5)
                except ServerOverloaded as exc:
                    rejected += 1
                    assert exc.queue_depth >= 4
            # 4 queue slots + at most 2 batches held by the scheduler can
            # be admitted before the submit burst outruns the slow worker
            assert rejected >= 32 - 4 - 2 - 4
            assert rejected > 0
            assert server.stats()["rejected"] == rejected
        finally:
            server.stop(drain=True, timeout=60.0)

    def test_late_result_is_timeout_not_success(self, index):
        """A result finishing past its deadline resolves as DeadlineExceeded."""

        class SlowIndex(CountingIndex):
            def search(self, q, k, *, ef=None):
                time.sleep(0.08)
                return super().search(q, k, ef=ef)

        slow = SlowIndex(index)
        q0 = index._engine._x[0]
        server = KNNServer(slow, ServeConfig(admission=AdmissionPolicy(max_batch=4, max_wait_ms=1.0)))
        with server:
            fut = server.submit(q0, 5, deadline_ms=40.0)
            with pytest.raises(DeadlineExceeded, match="past the deadline"):
                fut.result(timeout=10.0)
        assert slow.calls == 1                # it *was* scored, then discarded
        assert server.stats()["timeout_late"] == 1

    def test_shed_reduces_ef_and_recovers(self, index):
        """Sustained queue pressure sheds ef; results still arrive."""

        class SlowIndex(CountingIndex):
            def __init__(self, inner):
                super().__init__(inner)
                self.efs = []

            def search(self, q, k, *, ef=None):
                with self.lock:
                    self.efs.append(ef)
                time.sleep(0.02)
                return self.inner.search(q, k, ef=ef)

        slow = SlowIndex(index)
        x = index._engine._x
        server = KNNServer(slow, ServeConfig(
            admission=AdmissionPolicy(max_batch=2, max_wait_ms=1.0,
                                      queue_limit=10),
            ef=32,
            shed=ShedPolicy(high_water=0.3, low_water=0.05,
                            step_up_after=1, step_down_after=2,
                            factor=0.5, min_ef=8, max_level=2),
        ))
        obs_events = []
        server.obs = Observability()
        server.obs.hooks.subscribe(
            Events.SERVE_SHED_CHANGE,
            lambda event, payload: obs_events.append(payload))
        with server:
            futs = []
            for i in range(24):
                try:
                    futs.append(server.submit(x[i], 5))
                except ServerOverloaded:
                    pass
            results = [f.result(timeout=30.0) for f in futs]
        served_efs = {r.served_ef for r in results}
        assert 16 in served_efs or 8 in served_efs, (
            f"expected shed ef in served set, got {served_efs}")
        assert server.stats()["shed_served"] > 0
        assert obs_events, "SERVE_SHED_CHANGE should have fired"

    def test_shed_results_not_cached(self, index):
        """The cache only ever stores full-quality results."""
        x = index._engine._x
        server = KNNServer(index, ServeConfig(
            admission=AdmissionPolicy(max_batch=2, max_wait_ms=1.0,
                                      queue_limit=4),
            cache=CachePolicy(size=64), ef=32,
            shed=ShedPolicy(high_water=0.25, step_up_after=1, max_level=1),
        ))
        # force a permanent shed level, then serve one request
        server.degradation.level = 1
        with server:
            res = server.query(x[0], 5, timeout=10.0)
        assert res.served_ef < 32
        assert len(server.cache) == 0


class TestServeObservability:
    def test_metrics_hooks_and_trace(self, index, queries, tmp_path):
        from repro.obs.export import read_trace, write_trace
        from repro.serve.server import SERVE_METRICS_PREFIX

        obs = Observability()
        seen = []
        obs.hooks.subscribe("*", lambda event, payload: seen.append(event))
        server = KNNServer(index, ServeConfig(
            admission=AdmissionPolicy(max_batch=8, max_wait_ms=2.0),
            cache=CachePolicy(size=16)), obs=obs)
        with server:
            futs = [server.submit(q, 5) for q in queries[:16]]
            [f.result(timeout=30.0) for f in futs]
            server.query(queries[0], 5, timeout=10.0)  # cache hit
        events = set(seen)
        assert Events.SERVE_START in events
        assert Events.SERVE_BATCH_BEFORE in events
        assert Events.SERVE_BATCH_AFTER in events
        assert Events.SERVE_CACHE_HIT in events
        assert Events.SERVE_STOP in events

        section = obs.metrics.section(SERVE_METRICS_PREFIX)
        assert section["latency_seconds"]["count"] == 17
        for p in ("p50", "p95", "p99"):
            assert section["latency_seconds"][p] > 0
        assert section["batch_size"]["count"] >= 1
        # the serving counters are mirrored into the registry, so
        # shed/reject/timeout accounting survives a trace export
        assert section["completed"] == 17
        assert section["cache_hits"] == 1
        assert section["submitted"] == 17

        # the quantile histogram survives a trace round-trip
        path = write_trace(tmp_path / "serve.jsonl", obs)
        restored = read_trace(path)
        rsec = restored.metrics.section(SERVE_METRICS_PREFIX)
        assert rsec["latency_seconds"]["count"] == 17
        assert rsec["latency_seconds"]["p99"] == pytest.approx(
            section["latency_seconds"]["p99"])


class TestLoadgen:
    def test_closed_loop_all_answered(self, index, queries):
        server = KNNServer(index, ServeConfig(admission=AdmissionPolicy(
            max_batch=16, max_wait_ms=2.0, queue_limit=256)))
        with server:
            report = closed_loop(server, queries, 5, clients=6, repeat=2)
        assert report.ok == queries.shape[0] * 2
        assert report.rejected == report.timeouts == report.errors == 0
        assert report.throughput_qps > 0
        assert report.deadline_violations == 0
        # collected ids line up with direct engine answers
        direct_ids, _ = index.search(queries, 5)
        for qi, ids in report.ids.items():
            assert np.array_equal(ids, direct_ids[qi])

    def test_open_loop_under_overload_stays_up(self, index, queries):
        """2x-ish overload: server survives, rejects and/or times out."""

        class SlowIndex(CountingIndex):
            def search(self, q, k, *, ef=None):
                time.sleep(0.01)
                return super().search(q, k, ef=ef)

        server = KNNServer(SlowIndex(index), ServeConfig(admission=AdmissionPolicy(
            max_batch=4, max_wait_ms=1.0, queue_limit=8)))
        with server:
            report = open_loop(server, queries, 5, rate_qps=2000.0,
                               duration_s=0.6, deadline_ms=30.0, seed=3)
            # still alive and serving afterwards
            res = server.query(queries[0], 5, timeout=10.0)
        assert res.ids.shape == (5,)
        assert report.requests > 100
        assert report.rejected + report.timeouts > 0
        assert report.errors == 0
        assert report.deadline_violations == 0
