"""End-to-end integration tests across subsystems.

These exercise the claims the benchmarks quantify, at test-sized scale:
equal-recall behaviour of the strategies, recall ordering across systems,
backend agreement, and the full application pipelines.
"""

import numpy as np
import pytest

from repro import BuildConfig, WKNNGBuilder
from repro.apps.search import GraphSearchIndex
from repro.baselines import (
    BruteForceKNN,
    IVFConfig,
    IVFFlatIndex,
    NNDescent,
    exact_knn_graph,
)
from repro.bench.costmodel import wknng_cycles
from repro.data.synthetic import gaussian_mixture
from repro.kernels.counters import OpCounters
from repro.metrics.quality import distance_ratio, edge_overlap
from repro.metrics.recall import knn_recall


@pytest.fixture(scope="module")
def workload():
    x = gaussian_mixture(700, 24, n_clusters=20, cluster_std=0.8, seed=17)
    gt = exact_knn_graph(x, 10)
    return x, gt


class TestCrossSystem:
    def test_all_systems_beat_chance(self, workload):
        x, gt = workload
        wk = WKNNGBuilder(BuildConfig(k=10, n_trees=4, leaf_size=48,
                                      refine_iters=2, seed=0)).build(x)
        ivf = IVFFlatIndex(IVFConfig(nprobe=6, seed=0)).fit(x).knn_graph(10)
        nd = NNDescent(k=10, seed=0).build(x)
        for name, g in [("wknng", wk), ("ivf", ivf), ("nnd", nd)]:
            assert knn_recall(g.ids, gt.ids) > 0.8, name

    def test_strategies_produce_equivalent_graphs(self, workload):
        x, _ = workload
        graphs = {}
        for s in ("tiled", "atomic", "baseline"):
            graphs[s] = WKNNGBuilder(BuildConfig(
                k=10, strategy=s, n_trees=4, leaf_size=48,
                refine_iters=1, seed=0)).build(x)
        # same forest, same candidate structure -> heavily overlapping graphs
        assert edge_overlap(graphs["tiled"], graphs["atomic"]) > 0.9
        assert edge_overlap(graphs["tiled"], graphs["baseline"]) > 0.9

    def test_distance_ratio_near_one(self, workload):
        x, gt = workload
        wk = WKNNGBuilder(BuildConfig(k=10, n_trees=4, leaf_size=48,
                                      refine_iters=2, seed=0)).build(x)
        assert distance_ratio(wk, gt) < 1.05

    def test_counters_price_into_cycles(self, workload):
        x, _ = workload
        builder = WKNNGBuilder(BuildConfig(k=10, strategy="atomic", n_trees=3,
                                           leaf_size=48, seed=0))
        _, report = builder.build(x, return_report=True)
        counters = OpCounters(**report.counters)
        bd = wknng_cycles("atomic", counters, dim=24, k=10, leaf_size=48)
        assert bd.total > 0
        assert bd.distance > 0 and bd.insertion > 0

    def test_search_app_on_built_graph(self, workload):
        x, _ = workload
        idx = GraphSearchIndex.build(x, k=10, seed=0)
        q = x[:20] * 1.001
        ids, dists = idx.search(q, 5)
        gt_ids, _ = BruteForceKNN(x).search(q, 5)
        recall = np.mean([len(set(a) & set(b)) / 5 for a, b in zip(ids, gt_ids)])
        assert recall > 0.85


class TestScalingShape:
    def test_forest_work_scales_near_linearly(self):
        """Distance evals per point should stay ~flat as n grows (fixed
        leaf size), unlike brute force's linear growth."""
        evals_per_point = []
        for n in (400, 800):
            x = gaussian_mixture(n, 12, n_clusters=16, seed=3)
            builder = WKNNGBuilder(BuildConfig(k=8, n_trees=3, leaf_size=40,
                                               refine_iters=0, seed=0))
            graph = builder.build(x)
            evals_per_point.append(
                graph.report.counters["distance_evals"] / n
            )
        assert evals_per_point[1] < evals_per_point[0] * 1.5

    def test_recall_improves_with_budget(self):
        x = gaussian_mixture(600, 16, n_clusters=30, cluster_std=1.2,
                             center_scale=3.0, seed=9)
        gt = exact_knn_graph(x, 8)
        recalls = []
        for trees, iters in [(1, 0), (2, 1), (4, 3)]:
            g = WKNNGBuilder(BuildConfig(k=8, n_trees=trees, leaf_size=40,
                                         refine_iters=iters, seed=0)).build(x)
            recalls.append(knn_recall(g.ids, gt.ids))
        assert recalls[0] < recalls[1] < recalls[2] or recalls[2] > 0.98


class TestBackendAgreement:
    def test_simt_and_vectorized_converge_same_sets(self, tiny_points, tiny_gt):
        for strategy in ("atomic", "tiled"):
            cfg = dict(k=5, strategy=strategy, n_trees=2, leaf_size=12,
                       refine_iters=1, seed=2)
            gs = WKNNGBuilder(BuildConfig(backend="simt", **cfg)).build(tiny_points)
            gv = WKNNGBuilder(BuildConfig(backend="vectorized", **cfg)).build(tiny_points)
            assert knn_recall(gs.ids, gv.ids) > 0.95
