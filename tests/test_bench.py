"""Tests for the benchmark harness: cost model, sweeps, recall matching."""

import numpy as np
import pytest

from repro.baselines.bruteforce import BruteForceKNN
from repro.baselines.ivf import IVFConfig
from repro.bench.costmodel import CycleBreakdown, ivf_cycles, wknng_cycles
from repro.bench.match import match_ivf_recall, match_wknng_recall
from repro.bench.sweep import run_ivf, run_wknng
from repro.bench.workloads import WORKLOADS, Workload, get_workload
from repro.core.config import BuildConfig
from repro.errors import BenchmarkError, ConfigurationError
from repro.kernels.counters import OpCounters


def counters(**kw):
    c = OpCounters()
    for key, val in kw.items():
        setattr(c, key, val)
    return c


class TestCostModel:
    def test_breakdown_total(self):
        bd = CycleBreakdown(distance=10, insertion=5, selection=2, overheads=1)
        assert bd.total == 18
        assert bd.as_dict()["total_cycles"] == 18

    def test_zero_counters_zero_cycles(self):
        bd = wknng_cycles("tiled", OpCounters(), dim=32, k=8, leaf_size=32)
        assert bd.total == 0

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            wknng_cycles("magic", OpCounters(), dim=8, k=8, leaf_size=32)

    def test_distance_cycles_scale_with_dim(self):
        c = counters(distance_evals=1000, candidates_seen=2000)
        low = wknng_cycles("tiled", c, dim=8, k=8, leaf_size=64)
        high = wknng_cycles("tiled", c, dim=512, k=8, leaf_size=64)
        assert high.distance > 10 * low.distance

    def test_direct_schedule_cache_cliff(self):
        """Same eval count costs far more once the leaf overflows cache."""
        c = counters(distance_evals=1000, candidates_seen=2000)
        small = wknng_cycles("atomic", c, dim=16, k=8, leaf_size=64)
        big = wknng_cycles("atomic", c, dim=1024, k=8, leaf_size=64)
        per_eval_small = small.distance / 16
        per_eval_big = big.distance / 1024
        assert per_eval_big > 2 * per_eval_small

    def test_baseline_insertion_costlier_than_atomic(self):
        c = counters(distance_evals=1000, candidates_seen=2000,
                     atomic_attempts=100, candidates_inserted=100)
        b = wknng_cycles("baseline", c, dim=32, k=16, leaf_size=64)
        a = wknng_cycles("atomic", c, dim=32, k=16, leaf_size=64)
        assert b.insertion > a.insertion

    def test_crossover_shape(self):
        """The paper's claim 3: atomic cheaper at low d, tiled at high d
        (for comparable work volumes)."""
        def totals(dim):
            # realistic proportions (measured on the clustered workloads):
            # acceptance ~0.3 per unordered pair once lists warm up
            cu = counters(distance_evals=500, candidates_seen=1000,
                          atomic_attempts=150)
            cd = counters(distance_evals=1000, candidates_seen=1000)
            a = wknng_cycles("atomic", cu, dim=dim, k=16, leaf_size=64).total
            t = wknng_cycles("tiled", cd, dim=dim, k=16, leaf_size=64).total
            return a / t

        assert totals(8) < 1.0
        assert totals(960) > 1.5

    def test_ivf_cycles_scale_with_candidates(self):
        lo = ivf_cycles({"candidate_distance_evals": 100,
                         "centroid_distance_evals": 10}, dim=64, k=8)
        hi = ivf_cycles({"candidate_distance_evals": 10_000,
                         "centroid_distance_evals": 10}, dim=64, k=8)
        assert hi.total > 50 * lo.total

    def test_ivf_empty_stats(self):
        assert ivf_cycles({}, dim=64, k=8).total == 0


class TestWorkloads:
    def test_registry_lookup(self):
        w = get_workload("clustered-128d")
        assert w.k == 16

    def test_unknown_workload(self):
        with pytest.raises(ConfigurationError):
            get_workload("nope")

    def test_materialize_scale(self):
        w = Workload("t", "gaussian", n=1000, k=8, params={"dim": 4})
        x = w.materialize(scale=0.1)
        assert x.shape == (100, 4)

    def test_materialize_reproducible(self):
        w = WORKLOADS["uniform-16d"]
        assert np.array_equal(w.materialize(0.01), w.materialize(0.01))

    def test_scale_floor_respects_k(self):
        w = Workload("t", "gaussian", n=1000, k=8, params={"dim": 4})
        x = w.materialize(scale=0.0001)
        assert x.shape[0] >= 10


class TestSweepRunners:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.data.synthetic import gaussian_mixture

        x = gaussian_mixture(400, 16, n_clusters=8, cluster_std=0.5, seed=2)
        gt, _ = BruteForceKNN(x).search(x, 8, exclude_self=True)
        return x, gt

    def test_run_wknng_result_fields(self, setup):
        x, gt = setup
        res = run_wknng(x, gt, BuildConfig(k=8, n_trees=3, leaf_size=32,
                                           refine_iters=1, seed=0))
        assert 0 <= res.recall <= 1
        assert res.seconds > 0
        assert res.modeled_cycles > 0
        assert res.system == "w-knng/tiled"
        assert "cycles" in res.detail

    def test_run_ivf_result_fields(self, setup):
        x, gt = setup
        res = run_ivf(x, gt, 8, IVFConfig(nprobe=4, seed=0))
        assert res.system == "ivf-flat"
        assert res.params["nprobe"] == 4
        assert res.modeled_cycles > 0

    def test_run_ivf_reuses_index(self, setup):
        from repro.baselines.ivf import IVFFlatIndex

        x, gt = setup
        index = IVFFlatIndex(IVFConfig(seed=0)).fit(x)
        res = run_ivf(x, gt, 8, IVFConfig(seed=0), nprobe=2, index=index)
        assert res.detail["train_seconds"] < res.seconds + 1

    def test_row_is_flat_dict(self, setup):
        x, gt = setup
        res = run_wknng(x, gt, BuildConfig(k=8, n_trees=2, leaf_size=32, seed=0))
        row = res.row()
        assert isinstance(row["recall"], float)
        assert "modeled_mcycles" in row


class TestMatching:
    @pytest.fixture(scope="class")
    def setup(self):
        from repro.data.synthetic import gaussian_mixture

        x = gaussian_mixture(500, 24, n_clusters=32, cluster_std=1.5,
                             center_scale=3.0, seed=4)
        gt, _ = BruteForceKNN(x).search(x, 8, exclude_self=True)
        return x, gt

    def test_ivf_match_reaches_target(self, setup):
        x, gt = setup
        m = match_ivf_recall(x, gt, 8, 0.9, IVFConfig(seed=0))
        assert m.matched
        assert m.achieved.recall >= 0.9

    def test_ivf_match_minimal_nprobe(self, setup):
        x, gt = setup
        m = match_ivf_recall(x, gt, 8, 0.9, IVFConfig(seed=0))
        best = m.achieved.params["nprobe"]
        worse = [a for a in m.attempts if a.params["nprobe"] < best]
        assert all(a.recall < 0.9 for a in worse)

    def test_ivf_unreachable_target_raises(self, setup):
        x, gt = setup
        with pytest.raises(BenchmarkError):
            match_ivf_recall(x, gt, 8, 0.999999, IVFConfig(seed=0), max_nprobe=1)

    def test_wknng_match_reaches_target(self, setup):
        x, gt = setup
        base = BuildConfig(k=8, n_trees=2, leaf_size=32, refine_iters=2, seed=0)
        m = match_wknng_recall(x, gt, base, 0.9)
        assert m.matched and m.achieved.recall >= 0.9

    def test_wknng_unreachable_raises(self, setup):
        x, gt = setup
        base = BuildConfig(k=8, n_trees=1, leaf_size=9, refine_iters=0, seed=0)
        with pytest.raises(BenchmarkError):
            match_wknng_recall(x, gt, base, 0.999, max_trees=1)
