"""Tests for the KNNGraph result object."""

import numpy as np
import pytest

from repro.core.graph import KNNGraph
from repro.errors import DataError


@pytest.fixture()
def graph():
    ids = np.array([[1, 2], [0, 2], [0, 1]], dtype=np.int32)
    dists = np.array([[1.0, 4.0], [1.0, 2.0], [4.0, 2.0]], dtype=np.float32)
    return KNNGraph(ids=ids, dists=dists)


class TestBasics:
    def test_shape_properties(self, graph):
        assert graph.n == 3 and graph.k == 2

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(DataError):
            KNNGraph(ids=np.zeros((2, 2), dtype=np.int32),
                     dists=np.zeros((2, 3), dtype=np.float32))

    def test_neighbors_excludes_unfilled(self):
        g = KNNGraph(ids=np.array([[1, -1]], dtype=np.int32),
                     dists=np.array([[1.0, np.inf]], dtype=np.float32))
        assert g.neighbors(0).tolist() == [1]

    def test_is_complete(self, graph):
        assert graph.is_complete()
        g = KNNGraph(ids=np.array([[-1, 1]], dtype=np.int32),
                     dists=np.array([[np.inf, 1.0]], dtype=np.float32))
        assert not g.is_complete()

    def test_mean_distance(self, graph):
        assert graph.mean_distance() == pytest.approx((1 + 4 + 1 + 2 + 4 + 2) / 6)

    def test_mean_distance_empty(self):
        g = KNNGraph(ids=np.full((2, 2), -1, dtype=np.int32),
                     dists=np.full((2, 2), np.inf, dtype=np.float32))
        assert np.isnan(g.mean_distance())


class TestRecall:
    def test_perfect_recall(self, graph):
        assert graph.recall(graph) == 1.0

    def test_recall_against_id_matrix(self, graph):
        assert graph.recall(graph.ids) == 1.0

    def test_partial_recall(self, graph):
        other = KNNGraph(ids=np.array([[1, 9], [0, 9], [0, 9]], dtype=np.int32),
                         dists=graph.dists)
        assert other.recall(graph) == pytest.approx(0.5)

    def test_size_mismatch(self, graph):
        with pytest.raises(DataError):
            graph.recall(np.zeros((5, 2), dtype=np.int32))


class TestConversions:
    def test_to_csr(self, graph):
        m = graph.to_csr()
        assert m.shape == (3, 3)
        assert m.nnz == 6
        assert m[0, 1] == pytest.approx(1.0)

    def test_to_csr_zero_distance_edge_kept(self):
        g = KNNGraph(ids=np.array([[1], [0]], dtype=np.int32),
                     dists=np.array([[0.0], [0.0]], dtype=np.float32))
        m = g.to_csr()
        assert m.nnz == 2

    def test_to_networkx(self, graph):
        g = graph.to_networkx()
        assert g.number_of_nodes() == 3
        assert g.number_of_edges() == 6
        assert g[0][1]["weight"] == pytest.approx(1.0)

    def test_symmetrized_ids(self):
        g = KNNGraph(ids=np.array([[1], [2], [-1]], dtype=np.int32),
                     dists=np.array([[1.0], [1.0], [np.inf]], dtype=np.float32))
        sym = g.symmetrized_ids()
        assert sym[2].tolist() == [1]  # reverse edge from 1 -> 2
        assert sym[1].tolist() == [0, 2]


class TestToCOO:
    def test_directed_matches_rows(self, graph):
        edges, dists = graph.to_coo()
        assert edges.dtype == np.int64
        assert edges.shape == (2, 6)
        # row-major: query order, then stored (ascending-distance) order
        assert edges[0].tolist() == [0, 0, 1, 1, 2, 2]
        assert edges[1].tolist() == [1, 2, 0, 2, 0, 1]
        assert dists.tolist() == [1.0, 4.0, 1.0, 2.0, 4.0, 2.0]

    def test_unfilled_slots_excluded(self):
        g = KNNGraph(ids=np.array([[1, -1], [0, -1], [-1, -1]],
                                  dtype=np.int32),
                     dists=np.array([[1.0, np.inf], [1.0, np.inf],
                                     [np.inf, np.inf]], dtype=np.float32))
        edges, dists = g.to_coo()
        assert edges.shape == (2, 2)
        assert np.isfinite(dists).all()

    def test_symmetrize_emits_both_directions_once(self):
        # 0->1 stored both ways, 1->2 stored one way only
        g = KNNGraph(ids=np.array([[1], [0], [1]], dtype=np.int32),
                     dists=np.array([[1.0], [1.0], [2.0]],
                                    dtype=np.float32))
        edges, dists = g.to_coo(symmetrize=True)
        pairs = list(zip(edges[0].tolist(), edges[1].tolist(), dists.tolist()))
        assert pairs == [(0, 1, 1.0), (1, 0, 1.0), (1, 2, 2.0), (2, 1, 2.0)]

    def test_symmetrize_takes_min_distance_on_asymmetric_pairs(self):
        g = KNNGraph(ids=np.array([[1], [0]], dtype=np.int32),
                     dists=np.array([[3.0], [1.5]], dtype=np.float32))
        edges, dists = g.to_coo(symmetrize=True)
        assert (dists == 1.5).all()
        assert edges.shape == (2, 2)

    def test_symmetrize_sorted_by_src_then_dst(self, graph):
        edges, _ = graph.to_coo(symmetrize=True)
        keys = edges[0] * graph.n + edges[1]
        assert (np.diff(keys) > 0).all()

    def test_gaussian_affinity_symmetric_normalised(self, graph):
        s = graph.gaussian_affinity()
        assert s.shape == (3, 3)
        dense = s.toarray()
        assert np.allclose(dense, dense.T)
        # symmetric normalisation bounds the spectral radius by 1
        vals = np.linalg.eigvalsh(dense)
        assert vals.max() <= 1.0 + 1e-12


class TestPersistence:
    def test_save_load_round_trip(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        graph.save(path)
        loaded = KNNGraph.load(path)
        assert np.array_equal(loaded.ids, graph.ids)
        assert np.array_equal(loaded.dists, graph.dists)

    def test_save_keeps_numpy_scalar_meta(self, tmp_path):
        """np.float32/np.int64 meta values must survive the round-trip
        (previously they failed json.dumps and silently vanished)."""
        g = KNNGraph(
            ids=np.array([[1], [0]], dtype=np.int32),
            dists=np.array([[1.0], [1.0]], dtype=np.float32),
            meta={
                "recall": np.float32(0.875),
                "inserted": np.int64(42),
                "stats": {"ratio": np.float64(1.25), "per_round": [np.int32(3)]},
                "metric": "sqeuclidean",
            },
        )
        path = tmp_path / "g.npz"
        g.save(path)
        loaded = KNNGraph.load(path)
        assert loaded.meta["recall"] == pytest.approx(0.875)
        assert loaded.meta["inserted"] == 42
        assert loaded.meta["stats"] == {"ratio": 1.25, "per_round": [3]}
        assert loaded.meta["metric"] == "sqeuclidean"

    def test_save_still_drops_non_serialisable_meta(self, tmp_path):
        g = KNNGraph(
            ids=np.array([[1], [0]], dtype=np.int32),
            dists=np.array([[1.0], [1.0]], dtype=np.float32),
            meta={"arr": np.zeros(4), "obj": object(), "ok": 1},
        )
        path = tmp_path / "g.npz"
        g.save(path)
        loaded = KNNGraph.load(path)
        assert loaded.meta == {"ok": 1}


class TestSymmetrizedVectorized:
    """Parity of the vectorized symmetrized_ids with the former O(n*k) loop."""

    @staticmethod
    def _reference(g: KNNGraph) -> list[np.ndarray]:
        out: list[list[int]] = [[] for _ in range(g.n)]
        for i in range(g.n):
            for j in g.neighbors(i):
                out[i].append(int(j))
                out[int(j)].append(i)
        return [np.unique(np.array(lst, dtype=np.int64)) for lst in out]

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_parity_with_reference(self, seed):
        rng = np.random.default_rng(seed)
        n, k = 50, 6
        ids = rng.integers(0, n, size=(n, k)).astype(np.int32)
        ids[rng.random((n, k)) < 0.25] = -1  # unfilled slots
        g = KNNGraph(ids=ids, dists=np.ones((n, k), dtype=np.float32))
        got, want = g.symmetrized_ids(), self._reference(g)
        assert len(got) == len(want) == n
        for a, b in zip(got, want):
            assert a.dtype == np.int64
            assert np.array_equal(a, b)

    def test_isolated_point_gets_empty_int64_array(self):
        g = KNNGraph(ids=np.array([[1], [0], [-1]], dtype=np.int32),
                     dists=np.array([[1.0], [1.0], [np.inf]], dtype=np.float32))
        sym = g.symmetrized_ids()
        assert sym[2].size == 0 and sym[2].dtype == np.int64
