"""Tests for metric-space reductions (cosine, inner product)."""

import numpy as np
import pytest

from repro.core.config import BuildConfig
from repro.core.metric import check_metric, edge_distances, prepare_points
from repro.errors import ConfigurationError, DataError


class TestCheckMetric:
    @pytest.mark.parametrize("m", ["sqeuclidean", "cosine", "inner_product"])
    def test_valid(self, m):
        assert check_metric(m) == m

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            check_metric("manhattan")


class TestPreparePoints:
    def test_sqeuclidean_identity(self):
        x = np.random.default_rng(0).standard_normal((5, 3)).astype(np.float32)
        out, info = prepare_points(x, "sqeuclidean")
        assert np.array_equal(out, x)
        assert info == {}

    def test_cosine_normalises(self):
        x = np.random.default_rng(0).standard_normal((10, 4)).astype(np.float32) * 7
        out, _ = prepare_points(x, "cosine")
        assert np.allclose(np.linalg.norm(out, axis=1), 1.0, atol=1e-5)

    def test_cosine_zero_vector_rejected(self):
        x = np.zeros((2, 3), dtype=np.float32)
        with pytest.raises(DataError):
            prepare_points(x, "cosine")

    def test_cosine_order_equivalence(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((50, 6)).astype(np.float32)
        out, _ = prepare_points(x, "cosine")
        # squared L2 on normalised vectors == 2 * cosine distance
        xn = x / np.linalg.norm(x, axis=1, keepdims=True)
        cos = 1.0 - xn @ xn.T
        l2 = ((out[:, None, :] - out[None, :, :]) ** 2).sum(-1)
        assert np.allclose(l2, 2 * cos, atol=1e-4)

    def test_ip_database_augmentation(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((20, 5)).astype(np.float32)
        out, info = prepare_points(x, "inner_product")
        assert out.shape == (20, 6)
        norms = np.linalg.norm(out, axis=1)
        assert np.allclose(norms, info["max_norm"], atol=1e-4)

    def test_ip_query_needs_max_norm(self):
        x = np.ones((2, 3), dtype=np.float32)
        with pytest.raises(ConfigurationError):
            prepare_points(x, "inner_product", is_query=True)

    def test_ip_order_equivalence(self):
        rng = np.random.default_rng(3)
        db = rng.standard_normal((40, 4)).astype(np.float32)
        q = rng.standard_normal((6, 4)).astype(np.float32)
        db_t, info = prepare_points(db, "inner_product")
        q_t, _ = prepare_points(q, "inner_product", is_query=True,
                                max_norm=info["max_norm"])
        l2 = ((q_t[:, None, :] - db_t[None, :, :]) ** 2).sum(-1)
        ip = q @ db.T
        # ascending L2 order must equal descending IP order
        assert np.array_equal(np.argsort(l2, axis=1), np.argsort(-ip, axis=1))


class TestEdgeDistances:
    def test_sqeuclidean_identity(self):
        d = np.array([1.0, 2.0])
        assert np.array_equal(edge_distances(d, "sqeuclidean", {}), d)

    def test_cosine_halves(self):
        d = np.array([2.0])
        assert edge_distances(d, "cosine", {})[0] == 1.0

    def test_ip_round_trip(self):
        rng = np.random.default_rng(4)
        db = rng.standard_normal((30, 5)).astype(np.float32)
        q = rng.standard_normal((4, 5)).astype(np.float32)
        db_t, info = prepare_points(db, "inner_product")
        q_t, _ = prepare_points(q, "inner_product", is_query=True,
                                max_norm=info["max_norm"])
        l2 = ((q_t[:, None, :].astype(np.float64) - db_t[None, :, :]) ** 2).sum(-1)
        q_sq = (q.astype(np.float64) ** 2).sum(1)
        ips = edge_distances(l2, "inner_product", info, query_sq_norms=q_sq)
        assert np.allclose(ips, q @ db.T, atol=1e-2)

    def test_ip_requires_query_norms(self):
        with pytest.raises(ConfigurationError):
            edge_distances(np.ones(2), "inner_product", {"max_norm": 1.0})


class TestBuildConfigMetric:
    def test_cosine_accepted(self):
        assert BuildConfig(metric="cosine").metric == "cosine"

    def test_inner_product_rejected(self):
        with pytest.raises(ConfigurationError, match="search-only"):
            BuildConfig(metric="inner_product")

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            BuildConfig(metric="hamming")
