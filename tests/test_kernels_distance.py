"""Tests for the distance kernels: both schedules agree and are correct."""

import numpy as np
import pytest

from repro.kernels.distance import (
    batched_self_sq_l2,
    pairwise_sq_l2,
    pairwise_sq_l2_direct,
    pairwise_sq_l2_gemm,
    sq_l2_pairs,
)


def ref_sq_l2(a, b):
    return ((a[:, None, :].astype(np.float64) - b[None, :, :]) ** 2).sum(-1)


class TestPairwise:
    @pytest.mark.parametrize("method", ["gemm", "direct"])
    @pytest.mark.parametrize("dim", [1, 3, 16, 17, 40])
    def test_matches_reference(self, method, dim):
        rng = np.random.default_rng(dim)
        a = rng.standard_normal((12, dim)).astype(np.float32)
        b = rng.standard_normal((9, dim)).astype(np.float32)
        out = pairwise_sq_l2(a, b, method)
        assert out.shape == (12, 9)
        assert np.allclose(out, ref_sq_l2(a, b), rtol=1e-4, atol=1e-4)

    def test_schedules_agree(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((30, 25)).astype(np.float32)
        g = pairwise_sq_l2_gemm(a, a)
        d = pairwise_sq_l2_direct(a, a)
        assert np.allclose(g, d, rtol=1e-4, atol=1e-4)

    def test_gemm_non_negative(self):
        # catastrophic cancellation in the GEMM trick must be clamped
        a = np.full((5, 8), 1000.0, dtype=np.float32)
        out = pairwise_sq_l2_gemm(a, a)
        assert (out >= 0).all()

    def test_self_distance_zero(self):
        a = np.random.default_rng(2).standard_normal((6, 4)).astype(np.float32)
        out = pairwise_sq_l2_direct(a, a)
        assert np.allclose(np.diag(out), 0.0, atol=1e-5)

    def test_unknown_method(self):
        a = np.zeros((2, 2), dtype=np.float32)
        with pytest.raises(ValueError, match="unknown distance method"):
            pairwise_sq_l2(a, a, "fancy")

    def test_float32_output(self):
        a = np.zeros((2, 3), dtype=np.float32)
        assert pairwise_sq_l2_gemm(a, a).dtype == np.float32
        assert pairwise_sq_l2_direct(a, a).dtype == np.float32


class TestBatched:
    @pytest.mark.parametrize("method", ["gemm", "direct"])
    def test_matches_per_batch(self, method):
        rng = np.random.default_rng(3)
        pts = rng.standard_normal((4, 10, 19)).astype(np.float32)
        out = batched_self_sq_l2(pts, method)
        assert out.shape == (4, 10, 10)
        for b in range(4):
            assert np.allclose(out[b], ref_sq_l2(pts[b], pts[b]), rtol=1e-4, atol=1e-4)

    def test_methods_agree(self):
        rng = np.random.default_rng(4)
        pts = rng.standard_normal((3, 7, 33)).astype(np.float32)
        assert np.allclose(
            batched_self_sq_l2(pts, "gemm"),
            batched_self_sq_l2(pts, "direct"),
            rtol=1e-4,
            atol=1e-4,
        )

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            batched_self_sq_l2(np.zeros((1, 2, 2), dtype=np.float32), "nope")


class TestPairList:
    def test_matches_reference(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((50, 12)).astype(np.float32)
        rows = rng.integers(0, 50, 200)
        cols = rng.integers(0, 50, 200)
        out = sq_l2_pairs(x, rows, cols)
        ref = ((x[rows].astype(np.float64) - x[cols]) ** 2).sum(1)
        assert np.allclose(out, ref, rtol=1e-4, atol=1e-4)

    def test_chunked_equals_unchunked(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal((30, 5)).astype(np.float32)
        rows = rng.integers(0, 30, 100)
        cols = rng.integers(0, 30, 100)
        assert np.allclose(
            sq_l2_pairs(x, rows, cols, chunk=7), sq_l2_pairs(x, rows, cols)
        )

    def test_empty_pairs(self):
        x = np.zeros((3, 2), dtype=np.float32)
        out = sq_l2_pairs(x, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert out.shape == (0,)
