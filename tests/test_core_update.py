"""Tests for dynamic graph maintenance (incremental insertion)."""

import numpy as np
import pytest

from repro.core.builder import WKNNGBuilder
from repro.core.config import BuildConfig
from repro.core.update import DynamicKNNG, extend_graph
from repro.baselines.bruteforce import BruteForceKNN
from repro.data.synthetic import gaussian_mixture
from repro.errors import ConfigurationError, DataError
from repro.metrics.recall import knn_recall


@pytest.fixture(scope="module")
def base_and_more():
    x_all = gaussian_mixture(900, 16, n_clusters=15, cluster_std=0.8, seed=21)
    return x_all[:600], x_all[600:]


def config(**kw):
    base = dict(k=8, n_trees=4, leaf_size=48, refine_iters=2, seed=0)
    base.update(kw)
    return BuildConfig(**base)


class TestDynamicKNNG:
    def test_add_assigns_sequential_ids(self, base_and_more):
        base, more = base_and_more
        dyn = DynamicKNNG.build(base, config())
        ids = dyn.add(more[:50])
        assert ids.tolist() == list(range(600, 650))
        assert dyn.n == 650

    def test_new_points_get_accurate_lists(self, base_and_more):
        base, more = base_and_more
        dyn = DynamicKNNG.build(base, config())
        dyn.add(more)
        g = dyn.snapshot()
        full = np.concatenate([base, more])
        gt, _ = BruteForceKNN(full).search(full, 8, exclude_self=True)
        new_recall = knn_recall(g.ids[600:], gt[600:])
        assert new_recall > 0.85

    def test_old_points_gain_new_neighbours(self, base_and_more):
        base, more = base_and_more
        dyn = DynamicKNNG.build(base, config())
        before = dyn.snapshot()
        dyn.add(more)
        after = dyn.snapshot()
        # some old points must now list new ids (proximity is symmetric)
        old_rows = after.ids[:600]
        assert (old_rows >= 600).any()
        # and overall recall of old points against the *full* ground truth
        full = np.concatenate([base, more])
        gt, _ = BruteForceKNN(full).search(full, 8, exclude_self=True)
        assert knn_recall(after.ids[:600], gt[:600]) > knn_recall(
            before.ids, gt[:600]
        ) - 0.02

    def test_incremental_matches_batch_quality(self, base_and_more):
        base, more = base_and_more
        dyn = DynamicKNNG.build(base, config())
        for s in range(0, 300, 100):
            dyn.add(more[s: s + 100])
        g = dyn.snapshot()
        full = np.concatenate([base, more])
        gt, _ = BruteForceKNN(full).search(full, 8, exclude_self=True)
        incremental = knn_recall(g.ids, gt)
        batch = knn_recall(
            WKNNGBuilder(config()).build(full).ids, gt
        )
        assert incremental > batch - 0.1

    def test_growth_factor(self, base_and_more):
        base, more = base_and_more
        dyn = DynamicKNNG.build(base, config())
        assert dyn.growth_factor == 1.0
        dyn.add(more)
        assert dyn.growth_factor == pytest.approx(900 / 600)

    def test_empty_add(self, base_and_more):
        base, _ = base_and_more
        dyn = DynamicKNNG.build(base, config())
        assert dyn.add(np.empty((0, 16), dtype=np.float32)).size == 0
        assert dyn.n == 600

    def test_dim_mismatch_rejected(self, base_and_more):
        base, _ = base_and_more
        dyn = DynamicKNNG.build(base, config())
        with pytest.raises(DataError):
            dyn.add(np.zeros((3, 99), dtype=np.float32))

    def test_no_self_loops_after_add(self, base_and_more):
        base, more = base_and_more
        dyn = DynamicKNNG.build(base, config())
        dyn.add(more[:100])
        g = dyn.snapshot()
        assert not (g.ids == np.arange(g.n)[:, None]).any()

    def test_cosine_metric_supported(self, base_and_more):
        base, more = base_and_more
        dyn = DynamicKNNG.build(base, config(metric="cosine"))
        dyn.add(more[:50])
        g = dyn.snapshot()
        assert g.meta["metric"] == "cosine"
        assert g.n == 650

    def test_repair_rounds_zero_allowed(self, base_and_more):
        base, more = base_and_more
        dyn = DynamicKNNG.build(base, config())
        dyn.add(more[:20], repair_rounds=0)
        assert dyn.n == 620


class TestExtendGraph:
    def test_round_trip(self, base_and_more):
        base, more = base_and_more
        builder = WKNNGBuilder(config())
        graph = builder.build(base)
        extended = extend_graph(base, graph, builder.last_forest, more[:100],
                                config())
        assert extended.n == 700
        assert extended.meta["algorithm"] == "w-knng/dynamic"

    def test_k_mismatch_rejected(self, base_and_more):
        base, more = base_and_more
        builder = WKNNGBuilder(config())
        graph = builder.build(base)
        with pytest.raises(ConfigurationError):
            extend_graph(base, graph, builder.last_forest, more[:10],
                         config(k=5, leaf_size=48))

    def test_metric_inherited_from_graph_meta(self, base_and_more):
        # regression: `config or BuildConfig(k=graph.k)` used to default
        # the extension to sqeuclidean, silently re-preparing a cosine
        # graph's points (and scoring candidates) in the wrong metric
        base, more = base_and_more
        builder = WKNNGBuilder(config(metric="cosine"))
        graph = builder.build(base)
        extended = extend_graph(base, graph, builder.last_forest, more[:100])
        assert extended.meta["metric"] == "cosine"

    def test_cosine_extend_scores_in_cosine_space(self, base_and_more):
        # the inherited-metric extension must prepare and score new edges
        # in normalised space: stored dists are |a^ - b^|^2, not raw
        # squared Euclidean (which the old sqeuclidean default produced)
        base, more = base_and_more
        builder = WKNNGBuilder(config(metric="cosine"))
        graph = builder.build(base)
        extended = extend_graph(base, graph, builder.last_forest, more[:100])
        full = np.concatenate([base, more[:100]]).astype(np.float32)
        xn = full / np.linalg.norm(full, axis=1, keepdims=True)
        rows = extended.ids[600:]
        diffs = xn[600:, None, :] - xn[rows]
        expect = np.einsum("ijk,ijk->ij", diffs, diffs)
        assert np.allclose(extended.dists[600:], expect, atol=1e-4)

    def test_metric_mismatch_rejected(self, base_and_more):
        base, more = base_and_more
        builder = WKNNGBuilder(config(metric="cosine"))
        graph = builder.build(base)
        with pytest.raises(ConfigurationError, match="metric"):
            extend_graph(base, graph, builder.last_forest, more[:10],
                         config(metric="sqeuclidean"))

    def test_repeated_extend_on_one_forest(self, base_and_more):
        # regression: DynamicKNNG.add used to mutate the caller's forest
        # leaves in place, so a second extend_graph on the same
        # builder.last_forest routed through stale ids and crashed with
        # IndexError (the second batch being smaller than the first makes
        # the stale ids exceed the new point count)
        base, more = base_and_more
        builder = WKNNGBuilder(config())
        graph = builder.build(base)
        first = extend_graph(base, graph, builder.last_forest, more[:60])
        assert first.n == 660
        second = extend_graph(base, graph, builder.last_forest, more[60:70])
        assert second.n == 610

    def test_forest_not_mutated_by_add(self, base_and_more):
        base, more = base_and_more
        builder = WKNNGBuilder(config())
        builder.build(base)
        forest = builder.last_forest
        sizes_before = [
            [leaf.size for leaf in tree.leaves] for tree in forest.trees
        ]
        dyn = DynamicKNNG.build(base, config())
        # route through the *same* forest object via extend_graph
        graph = builder.build(base)
        extend_graph(base, graph, forest, more[:50])
        sizes_after = [
            [leaf.size for leaf in tree.leaves] for tree in forest.trees
        ]
        assert sizes_before == sizes_after
        assert dyn.n == 600  # unrelated instance untouched

    def test_wrong_dim_empty_batch_rejected(self, base_and_more):
        # regression: the empty early-return used to run before the dim
        # check, silently accepting add(np.empty((0, 999))) on a 16-d graph
        base, _ = base_and_more
        dyn = DynamicKNNG.build(base, config())
        with pytest.raises(DataError):
            dyn.add(np.empty((0, 999), dtype=np.float32))
        # a well-shaped empty batch still no-ops
        assert dyn.add(np.empty((0, 16), dtype=np.float32)).size == 0
