"""Tests for the COO edge-list builders (`repro.neighbors.edges`).

The acceptance bar: against an *exact* backend, ``knn_graph`` must
reproduce a hand-built brute-force reference edge list to the last bit
for every combination of ``loop`` x ``r`` x ``query_mask`` x metric -
and the same edges must come back bitwise through every serving
frontend (engine, DirectClient, KNNServer, 2-shard ClusterClient) under
the exhaustive-search recipe.
"""

import numpy as np
import pytest

from repro.apps.search import GraphSearchIndex, SearchConfig
from repro.baselines.bruteforce import BruteForceKNN
from repro.core.config import BuildConfig
from repro.core.metric import prepare_points
from repro.errors import ConfigurationError, DataError
from repro.neighbors import knn_graph, radius_graph
from repro.obs import Observability
from repro.serve import (
    AdmissionPolicy,
    ClusterClient,
    ClusterConfig,
    DirectClient,
    KNNServer,
    ServeConfig,
    ShedPolicy,
)

N, DIM = 120, 6


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(5)
    return rng.standard_normal((N, DIM), dtype=np.float32)


def reference_coo(x, k, *, loop=False, r=None, query_mask=None,
                  metric="sqeuclidean"):
    """Brute-force COO edges straight from the definition."""
    p, _ = prepare_points(x, metric)
    n = p.shape[0]
    if query_mask is None:
        qids = np.arange(n)
    elif np.asarray(query_mask).dtype == bool:
        qids = np.flatnonzero(query_mask)
    else:
        qids = np.asarray(query_mask, dtype=np.int64)
    d = ((p[qids][:, None, :] - p[None, :, :]) ** 2).sum(-1)
    src_rows, dst_rows, dist_rows = [], [], []
    for row, q in enumerate(qids):
        order = np.argsort(d[row], kind="stable")
        if not loop:
            order = order[order != q]
        order = order[:k]
        dd = d[row][order]
        if r is not None:
            keep = dd <= r
            order, dd = order[keep], dd[keep]
        src_rows.append(order.astype(np.int64))
        dst_rows.append(np.full(order.size, q, dtype=np.int64))
        dist_rows.append(dd)
    return (
        np.stack([np.concatenate(src_rows), np.concatenate(dst_rows)]),
        np.concatenate(dist_rows),
    )


class TestExactParity:
    """knn_graph over an exact backend == the definition, bitwise."""

    @pytest.mark.parametrize("metric", ["sqeuclidean", "cosine"])
    @pytest.mark.parametrize("loop", [False, True])
    @pytest.mark.parametrize("use_r", [False, True])
    @pytest.mark.parametrize("mask_kind", [None, "bool", "index"])
    def test_matches_bruteforce_reference(self, points, metric, loop,
                                          use_r, mask_kind):
        k = 7
        if mask_kind == "bool":
            mask = np.zeros(N, dtype=bool)
            mask[::3] = True
        elif mask_kind == "index":
            mask = np.array([4, 9, 17, 50, 118])
        else:
            mask = None
        # r near the median edge distance, placed at the midpoint of a
        # well-separated pair of consecutive distances: the backend's
        # GEMM distances and the reference's direct sums differ in the
        # last ulp, so r must not sit exactly on a data value
        ref_full, ref_d = reference_coo(points, k, loop=loop,
                                        query_mask=mask, metric=metric)
        r = None
        if use_r:
            srt = np.sort(np.unique(ref_d[ref_d > 0]))
            mid = srt.size // 2
            for i in range(mid, srt.size - 1):
                if srt[i + 1] - srt[i] > 1e-3 * srt[i]:
                    r = float((srt[i] + srt[i + 1]) / 2)
                    break
            assert r is not None
        ref, ref_d = reference_coo(points, k, loop=loop, r=r,
                                   query_mask=mask, metric=metric)
        bf = BruteForceKNN(points, metric=metric)
        edges, dists = knn_graph(points, k, loop=loop, r=r,
                                 query_mask=mask, metric=metric,
                                 backend=bf, return_dists=True)
        assert np.array_equal(edges, ref)
        # atol absorbs the backend's GEMM self-distance (~4e-6 where the
        # reference is exactly 0 on loop=True rows)
        assert np.allclose(dists, ref_d, rtol=1e-5, atol=1e-5)

    @pytest.mark.parametrize("metric", ["sqeuclidean", "cosine"])
    def test_graph_backend_matches_reference(self, points, metric):
        """Edges extracted from an exact prebuilt graph == definition."""
        k = 6
        graph = BruteForceKNN(points, metric=metric).knn_graph(k + 1)
        for loop in (False, True):
            ref, _ = reference_coo(points, k, loop=loop, metric=metric)
            edges = knn_graph(None, k, loop=loop, metric=metric,
                              backend=graph)
            assert np.array_equal(edges, ref)

    def test_one_shot_build_shape_and_recall(self, points):
        """backend=None builds internally; edges are a high-recall
        approximation of the exact set (tiny n -> near-exhaustive)."""
        k = 5
        edges = knn_graph(points, k)
        assert edges.shape == (2, N * k)
        ref, _ = reference_coo(points, k)
        overlap = np.intersect1d(edges[0] * N + edges[1],
                                 ref[0] * N + ref[1]).size
        assert overlap / ref.shape[1] > 0.9

    def test_loop_true_puts_self_first(self, points):
        edges = knn_graph(points, 4, loop=True,
                          backend=BruteForceKNN(points))
        assert np.array_equal(edges[0][::4], np.arange(N))
        assert np.array_equal(edges[1][::4], np.arange(N))


class TestRadiusEdgeCases:
    # "tiny" r: above the GEMM self-distance rounding error (~4e-6 on
    # this data), far below the smallest true NN distance (~0.15)
    TINY_R = 1e-3

    def test_r_below_nearest_neighbor_gives_empty(self, points):
        edges, dists = radius_graph(points, self.TINY_R, max_num_neighbors=4,
                                    backend=BruteForceKNN(points),
                                    return_dists=True)
        assert edges.shape == (2, 0)
        assert dists.size == 0

    def test_tiny_r_with_loop_keeps_only_self_edges(self, points):
        edges = radius_graph(points, self.TINY_R, max_num_neighbors=4,
                             loop=True, backend=BruteForceKNN(points))
        assert np.array_equal(edges[0], np.arange(N))
        assert np.array_equal(edges[1], np.arange(N))

    def test_truncation_counter(self, points):
        """A radius ball larger than max_num_neighbors flags the row."""
        obs = Observability()
        huge = float(1e9)
        radius_graph(points, huge, max_num_neighbors=3,
                     backend=BruteForceKNN(points), obs=obs)
        scoped = obs.metrics.scoped("neighbors/")
        assert scoped.counter("radius_truncated").get() == N
        assert scoped.counter("edges_emitted").get() == 3 * N

    def test_no_truncation_flag_when_ball_fits(self, points):
        obs = Observability()
        radius_graph(points, self.TINY_R, max_num_neighbors=4,
                     backend=BruteForceKNN(points), obs=obs)
        assert obs.metrics.scoped("neighbors/") \
            .counter("radius_truncated").get() == 0

    def test_cosine_radius_semantics(self):
        """r = 2*(1 - cos_sim): near-parallel vectors connect, near-
        orthogonal ones do not, regardless of magnitude."""
        base = np.zeros((4, 8), dtype=np.float32)
        base[0, 0] = 1.0
        base[1, 0] = 5.0          # parallel to 0, different norm
        base[2, 1] = 1.0          # orthogonal to 0
        base[3, :2] = [1.0, 0.02]  # nearly parallel to 0
        r = 2 * (1 - 0.99)        # cosine similarity floor 0.99
        edges = radius_graph(base, r, max_num_neighbors=3, metric="cosine",
                             backend=BruteForceKNN(base, metric="cosine"))
        pairs = set(zip(edges[0].tolist(), edges[1].tolist()))
        assert (1, 0) in pairs and (3, 0) in pairs
        assert (2, 0) not in pairs

    def test_query_mask_restricts_targets_only(self, points):
        qids = np.array([3, 77])
        edges = knn_graph(points, 5, query_mask=qids,
                          backend=BruteForceKNN(points))
        assert set(edges[1]) == {3, 77}
        # sources are drawn from the whole corpus
        assert edges.shape[1] == 10


class TestValidation:
    def test_bad_k(self, points):
        with pytest.raises(ConfigurationError):
            knn_graph(points, 0)

    def test_bad_r(self, points):
        with pytest.raises(ConfigurationError):
            knn_graph(points, 3, r=-1.0)
        with pytest.raises(ConfigurationError):
            radius_graph(points, 0.0)

    def test_missing_x(self):
        with pytest.raises(DataError):
            knn_graph(None, 3)

    def test_bad_query_mask(self, points):
        bf = BruteForceKNN(points)
        with pytest.raises(DataError):
            knn_graph(points, 3, backend=bf,
                      query_mask=np.zeros(N + 1, dtype=bool))
        with pytest.raises(DataError):
            knn_graph(points, 3, backend=bf, query_mask=np.array([N + 5]))

    def test_metric_mismatch_rejected(self, points):
        bf = BruteForceKNN(points, metric="cosine")
        with pytest.raises(ConfigurationError):
            knn_graph(points, 3, backend=bf, metric="sqeuclidean")
        graph = BruteForceKNN(points).knn_graph(4)
        with pytest.raises(ConfigurationError):
            knn_graph(None, 3, backend=graph, metric="cosine")

    def test_graph_degree_too_small(self, points):
        graph = BruteForceKNN(points).knn_graph(3)
        with pytest.raises(ConfigurationError):
            knn_graph(None, 4, backend=graph)

    def test_backend_without_search_surface(self, points):
        with pytest.raises(ConfigurationError):
            knn_graph(points, 3, backend=object())

    def test_empty_query_mask(self, points):
        edges = knn_graph(points, 3, backend=BruteForceKNN(points),
                          query_mask=np.array([], dtype=np.int64))
        assert edges.shape == (2, 0)


class TestFrontendIdentity:
    """One COO, every frontend, bitwise (exhaustive-search recipe)."""

    @pytest.fixture(scope="class")
    def setup(self):
        n, dim, ef = 160, 8, 320
        rng = np.random.default_rng(2)
        x = rng.standard_normal((n, dim), dtype=np.float32)
        search_cfg = SearchConfig(ef=ef, max_expansions=8 * n,
                                  seeds_per_tree=16)
        build_cfg = BuildConfig(k=20, strategy="tiled", seed=7)
        index = GraphSearchIndex.build(
            x, build_config=build_cfg, search_config=search_cfg, seed=7)
        return x, index, build_cfg, search_cfg, ef

    def test_engine_vs_clients_bitwise(self, setup):
        x, index, build_cfg, search_cfg, ef = setup
        k = 6
        ref, ref_d = knn_graph(x, k, backend=index, ef=ef,
                               return_dists=True)
        # queue_limit below the query count: proves the client path's
        # bounded in-flight window respects admission control
        serve = ServeConfig(
            admission=AdmissionPolicy(max_batch=32, max_wait_ms=1.0,
                                      queue_limit=96),
            ef=ef, shed=ShedPolicy(enabled=False))
        with DirectClient(index, ef=ef) as client:
            e1, d1 = knn_graph(x, k, backend=client, ef=ef,
                               return_dists=True)
        with KNNServer(index, serve) as server:
            e2, d2 = knn_graph(x, k, backend=server, ef=ef,
                               return_dists=True)
        with ClusterClient.build(
            x, build_config=build_cfg, search_config=search_cfg, seed=7,
            config=ClusterConfig(n_shards=2, backend="thread", serve=serve),
        ) as cluster:
            e3, d3 = knn_graph(x, k, backend=cluster, ef=ef,
                               return_dists=True)
        for edges, dists in ((e1, d1), (e2, d2), (e3, d3)):
            assert np.array_equal(edges, ref)
            assert np.array_equal(dists, ref_d)
