"""Churn x quantization: the epoch-versioned QuantizedStore contract.

The mutable index and the compressed tier compose through three rules
(see docs/quantization.md, "Quantization under churn"):

* inserts encode against the *frozen* codebooks of the current store -
  existing codes stay bit-identical and no retrain runs on the hot path;
* deletes tombstone codes alongside vectors - the mask covers both;
* compaction retrains the quantizer on the surviving distribution and
  re-encodes, published through the same single flip as graph + forest.

Encode drift (insert-batch reconstruction MSE over the training-time
baseline) is exported as the ``index/quant_drift`` gauge, and
``MutableConfig.drift_threshold`` turns it into a forced early
compaction - still exactly one flip for the whole insert.
"""

import numpy as np
import pytest

from repro.apps.search import SearchConfig
from repro.core import BuildConfig, MutableConfig, MutableIndex
from repro.data.synthetic import gaussian_mixture
from repro.errors import ConfigurationError
from repro.obs import Observability


@pytest.fixture(scope="module")
def base_and_more():
    x_all = gaussian_mixture(900, 16, n_clusters=15, cluster_std=0.8, seed=21)
    return x_all[:600], x_all[600:]


def build(base, quantization="sq8", obs=None, **kw):
    cfg = dict(k=8, n_trees=4, leaf_size=48, refine_iters=2, seed=0)
    return MutableIndex.build(
        base, BuildConfig(**cfg), SearchConfig(ef=48, quantization=quantization),
        MutableConfig(**kw) if kw else None, obs=obs,
    )


class TestConfig:
    def test_drift_threshold_positive(self):
        with pytest.raises(ConfigurationError):
            MutableConfig(drift_threshold=0.0)
        with pytest.raises(ConfigurationError):
            MutableConfig(drift_threshold=-2.0)
        MutableConfig(drift_threshold=None)  # disabled is fine
        MutableConfig(drift_threshold=4.0)


class TestFrozenCodebookInserts:
    @pytest.mark.parametrize("quantization", ["sq8", "pq4"])
    def test_insert_keeps_old_codes_bit_identical(self, base_and_more,
                                                  quantization):
        base, more = base_and_more
        mut = build(base, quantization=quantization)
        store0 = mut.snapshot.store
        assert store0 is not None and store0.spec == quantization
        codes0 = store0.codes.copy()
        mut.insert(more[:80])
        mut.insert(more[80:160])
        store = mut.snapshot.store
        assert store.n == 760
        assert np.array_equal(store.codes[:600], codes0)
        # the quantizer itself is shared by reference: frozen, not refit
        assert store.quantizer is store0.quantizer
        assert store.train_mse == store0.train_mse

    def test_new_rows_encoded_with_frozen_quantizer(self, base_and_more):
        base, more = base_and_more
        mut = build(base)
        store0 = mut.snapshot.store
        batch = more[:50]
        mut.insert(batch)
        # prepared space == input space for sqeuclidean
        expected = store0.encode(batch)
        assert np.array_equal(mut.snapshot.store.codes[600:], expected)

    def test_unquantized_index_unaffected(self, base_and_more):
        base, more = base_and_more
        mut = build(base, quantization="none")
        assert mut.snapshot.store is None
        mut.insert(more[:30])
        assert mut.snapshot.store is None
        assert mut.last_drift is None
        assert mut.stats()["quant_drift"] is None

    def test_delete_tombstones_codes_alongside_vectors(self, base_and_more):
        base, more = base_and_more
        mut = build(base)
        ids = mut.insert(more[:40])
        store_before = mut.snapshot.store
        mut.delete(ids[:10])
        snap = mut.snapshot
        # a delete flip reuses the engine (and store) untouched: the
        # tombstone mask is what hides both the vector and its code
        assert snap.store is store_before
        assert snap.store.n == snap.n_total == 640
        assert snap.n_dead == 10
        out, _ = mut.search(more[:40], 5)
        assert not np.isin(out, ids[:10]).any()


class TestRetrainAtCompaction:
    def test_compaction_retrains_on_survivors(self, base_and_more):
        base, more = base_and_more
        mut = build(base)
        ids = mut.insert(more[:100])
        store_before = mut.snapshot.store
        mut.delete(ids[:50])
        mut.compact()
        snap = mut.snapshot
        assert snap.n_dead == 0
        store = snap.store
        assert store is not None
        assert store.n == snap.n_total == 650
        assert store.quantizer is not store_before.quantizer
        # the retrained baseline reflects the survivors, not the old fit
        assert store.train_mse == pytest.approx(
            store.reconstruction_mse(snap.live_points()))

    def test_retrain_is_deterministic(self, base_and_more):
        base, more = base_and_more
        stores = []
        for _ in range(2):
            mut = build(base, quantization="pq4")
            ids = mut.insert(more[:100])
            mut.delete(ids[::2])
            mut.compact()
            stores.append(mut.snapshot.store)
        # same survivors + same seed (fit is seeded 0) -> identical codes
        assert np.array_equal(stores[0].codes, stores[1].codes)
        assert stores[0].train_mse == pytest.approx(stores[1].train_mse)


class TestDriftGauge:
    def test_drift_monotone_under_distribution_shift(self, base_and_more):
        base, more = base_and_more
        obs = Observability()
        mut = build(base, obs=obs)
        drifts = []
        for scale in (1.0, 4.0, 16.0):
            mut.insert((more[:20] * scale + 3.0 * scale).astype(np.float32))
            drifts.append(mut.last_drift)
        assert all(d is not None for d in drifts)
        assert drifts == sorted(drifts), (
            f"drift not monotone under growing shift: {drifts}")
        gauge = obs.metrics.scoped("index/").gauge("quant_drift")
        assert gauge.value == pytest.approx(drifts[-1])
        assert mut.stats()["quant_drift"] == pytest.approx(drifts[-1])

    def test_drift_threshold_forces_single_flip_compaction(
            self, base_and_more):
        base, more = base_and_more
        mut = build(base, drift_threshold=2.0)
        flips0 = mut.counters["flips"]
        shifted = (more[:40] * 8.0 + 30.0).astype(np.float32)
        new_ids = mut.insert(shifted)
        assert new_ids.size == 40
        assert mut.counters["compactions"] == 1
        assert mut.counters["flips"] == flips0 + 1, "insert must stay one flip"
        snap = mut.snapshot
        assert snap.n_total == 640 and snap.n_dead == 0
        store = snap.store
        assert store.n == 640
        # the retrain covered the shifted region: encoding the batch
        # against the *new* codebooks lands near the new baseline again,
        # where the frozen pre-compaction codebooks were >2x off
        assert store.drift_ratio(store.reconstruction_mse(shifted)) < 2.0

    def test_in_distribution_insert_does_not_trip_threshold(
            self, base_and_more):
        base, more = base_and_more
        # resampling the same mixture: drift stays near 1 (sq8 clipping
        # adds a little), far under a generous threshold
        mut = build(base, drift_threshold=50.0)
        mut.insert(more[:50])
        assert mut.counters["compactions"] == 0
        assert mut.last_drift is not None and mut.last_drift < 50.0


class TestEpochPinnedParity:
    def test_pinned_snapshot_replays_bit_for_bit_mid_churn(
            self, base_and_more):
        base, more = base_and_more
        mut = build(base)
        q = base[::13]
        mut.insert(more[:60])
        pinned = mut.snapshot
        ids_then, dists_then = pinned.search(q, 5)
        # churn on: more inserts, deletes, a compaction (retrain)
        ids2 = mut.insert(more[60:160])
        mut.delete(ids2[:40])
        mut.compact()
        assert mut.epoch > pinned.epoch
        # the pinned epoch's snapshot is immutable: same query, same
        # bytes, even though the live index retrained its quantizer
        ids_again, dists_again = pinned.search(q, 5)
        assert np.array_equal(ids_then, ids_again)
        assert np.array_equal(dists_then, dists_again)
        # and the live snapshot still serves the store epoch-consistently
        live = mut.snapshot
        assert live.store.n == live.n_total


class TestDriftEWMA:
    def test_alpha_validation(self):
        for alpha in (0.0, -0.5, 1.5):
            with pytest.raises(ConfigurationError):
                MutableConfig(drift_ewma_alpha=alpha)
        MutableConfig(drift_ewma_alpha=1.0)   # unsmoothed (default)
        MutableConfig(drift_ewma_alpha=0.25)

    def test_default_alpha_one_tracks_raw(self, base_and_more):
        base, more = base_and_more
        mut = build(base)
        mut.insert(more[:30])
        assert mut.last_drift_ewma == pytest.approx(mut.last_drift)

    def test_first_observation_seeds_the_ewma(self, base_and_more):
        base, more = base_and_more
        mut = build(base, drift_ewma_alpha=0.25)
        mut.insert(more[:30])
        # no history yet: smoothed == raw, not 0.25 * raw
        assert mut.last_drift_ewma == pytest.approx(mut.last_drift)

    def test_burst_absorbed_sustained_trips(self, base_and_more):
        """The smoothing rationale: one out-of-distribution batch must
        not force a retrain, the same shift sustained must."""
        base, more = base_and_more
        obs = Observability()
        # threshold sits between the burst's smoothed drift (~7.4e5 at
        # alpha=0.25 over an in-distribution history) and its raw drift
        # (~3e6): alpha=1 would have compacted on the burst
        threshold = 1.5e6
        mut = build(base, obs=obs, drift_threshold=threshold,
                    drift_ewma_alpha=0.25)
        mut.insert(more[:30])         # in-distribution history, drift ~1
        shifted = (more[30:60] * 8.0 + 30.0).astype(np.float32)
        mut.insert(shifted)           # the burst
        assert mut.last_drift > threshold, "raw drift should exceed threshold"
        assert mut.last_drift_ewma < threshold
        assert mut.counters["compactions"] == 0, (
            "a single burst must not trip the smoothed threshold")
        im = obs.metrics.scoped("index/")
        assert im.gauge("quant_drift").value == pytest.approx(mut.last_drift)
        assert im.gauge("quant_drift_ewma").value == pytest.approx(
            mut.last_drift_ewma)
        assert mut.stats()["quant_drift_ewma"] == pytest.approx(
            mut.last_drift_ewma)
        # sustained shift: the EWMA converges toward the raw level and
        # crosses the threshold within a few batches
        for i in range(5):
            batch = (more[60 + i * 20: 80 + i * 20] * 8.0 + 30.0) \
                .astype(np.float32)
            mut.insert(batch)
            if mut.counters["compactions"]:
                break
        assert mut.counters["compactions"] == 1, (
            "sustained drift must force the retrain the burst was spared")
        # compaction retrains the codebooks: the drift history no longer
        # describes them, so the EWMA restarts
        assert mut.last_drift_ewma is None
        assert mut.stats()["quant_drift_ewma"] is None
