"""Tests for the three maintenance strategies.

The central invariant: for the same candidate stream, every strategy must
converge to the exact k-smallest neighbour sets - they differ in *how*
(and at what modeled cost), never in *what*.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels import KnnState, available_strategies, get_strategy
from repro.kernels.atomic import AtomicStrategy
from repro.kernels.baseline import BaselineStrategy
from repro.kernels.tiled import TiledStrategy


def exact_sets(x, k):
    d = ((x[:, None, :].astype(np.float64) - x[None, :, :]) ** 2).sum(-1)
    np.fill_diagonal(d, np.inf)
    return np.argsort(d, axis=1)[:, :k]


@pytest.fixture(scope="module")
def cloud():
    rng = np.random.default_rng(11)
    return rng.standard_normal((120, 7)).astype(np.float32)


class TestRegistry:
    def test_three_strategies(self):
        assert set(available_strategies()) == {"atomic", "baseline", "tiled"}

    def test_get_strategy_instances(self):
        assert isinstance(get_strategy("atomic"), AtomicStrategy)
        assert isinstance(get_strategy("baseline"), BaselineStrategy)
        assert isinstance(get_strategy("tiled"), TiledStrategy)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown strategy"):
            get_strategy("magic")

    def test_kwargs_forwarded(self):
        s = get_strategy("tiled", tile_size=8)
        assert s.tile_size == 8

    def test_bad_tile_size(self):
        with pytest.raises(ConfigurationError):
            TiledStrategy(tile_size=0)

    def test_bad_concurrency(self):
        with pytest.raises(ValueError):
            AtomicStrategy(concurrency=0)

    def test_pair_modes(self):
        assert get_strategy("tiled").pair_mode == "directed"
        assert get_strategy("atomic").pair_mode == "unordered"
        assert get_strategy("baseline").pair_mode == "unordered"


class TestExactness:
    """Offering all pairs must yield the exact KNN sets for every strategy."""

    @pytest.mark.parametrize("name", ["atomic", "baseline", "tiled"])
    def test_all_pairs_exact(self, name, cloud):
        n, k = cloud.shape[0], 8
        state = KnnState(n, k)
        strat = get_strategy(name)
        rows = np.repeat(np.arange(n), n)
        cols = np.tile(np.arange(n), n)
        strat.update_pairs(state, cloud, rows, cols)
        ids, _ = state.sorted_arrays()
        expected = exact_sets(cloud, k)
        for i in range(n):
            assert set(ids[i].tolist()) == set(expected[i].tolist()), f"row {i}"

    @pytest.mark.parametrize("name", ["atomic", "baseline", "tiled"])
    def test_leaf_update_exact_within_leaf(self, name, cloud):
        leaf = np.arange(20)
        k = 5
        state = KnnState(cloud.shape[0], k)
        strat = get_strategy(name)
        strat.update_leaf(state, cloud, leaf)
        ids, _ = state.sorted_arrays()
        sub = cloud[:20]
        expected = exact_sets(sub, k)
        for i in range(20):
            assert set(ids[i].tolist()) == set(expected[i].tolist())

    @pytest.mark.parametrize("name", ["atomic", "baseline", "tiled"])
    def test_incremental_batches_match_single_batch(self, name, cloud):
        """Feeding candidates in many small batches == one big batch."""
        n, k = cloud.shape[0], 6
        rng = np.random.default_rng(3)
        rows = rng.integers(0, n, 3000)
        cols = rng.integers(0, n, 3000)

        s1 = KnnState(n, k)
        strat1 = get_strategy(name)
        strat1.update_pairs(s1, cloud, rows, cols)

        s2 = KnnState(n, k)
        strat2 = get_strategy(name)
        for start in range(0, 3000, 250):
            strat2.update_pairs(s2, cloud, rows[start:start + 250], cols[start:start + 250])

        d1 = np.sort(s1.dists, axis=1)
        d2 = np.sort(s2.dists, axis=1)
        assert np.allclose(d1, d2)

    @pytest.mark.parametrize("name", ["atomic", "baseline", "tiled"])
    def test_duplicate_offers_no_duplicate_entries(self, name, cloud):
        n, k = cloud.shape[0], 4
        state = KnnState(n, k)
        strat = get_strategy(name)
        rows = np.zeros(10, dtype=np.int64)
        cols = np.full(10, 5, dtype=np.int64)
        strat.update_pairs(state, cloud, rows, cols)
        row_ids = state.ids[0]
        assert (row_ids == 5).sum() == 1

    @pytest.mark.parametrize("name", ["atomic", "baseline", "tiled"])
    def test_self_pairs_dropped(self, name, cloud):
        state = KnnState(cloud.shape[0], 3)
        strat = get_strategy(name)
        rows = np.arange(10, dtype=np.int64)
        strat.update_pairs(state, cloud, rows, rows.copy())
        assert state.filled_counts().sum() == 0


class TestLeafBatch:
    @pytest.mark.parametrize("name", ["atomic", "baseline", "tiled"])
    def test_batch_equals_sequential_leaves(self, name, cloud):
        k = 5
        leaves = [np.arange(0, 25), np.arange(25, 55), np.arange(55, 70)]
        s1 = KnnState(cloud.shape[0], k)
        strat1 = get_strategy(name)
        for leaf in leaves:
            strat1.update_leaf(s1, cloud, leaf)

        s2 = KnnState(cloud.shape[0], k)
        strat2 = get_strategy(name)
        width = max(len(l) for l in leaves)
        mat = np.zeros((3, width), dtype=np.int64)
        lengths = np.array([len(l) for l in leaves])
        for i, leaf in enumerate(leaves):
            mat[i, : len(leaf)] = leaf
        strat2.update_leaf_batch(s2, cloud, mat, lengths)

        assert np.allclose(np.sort(s1.dists, axis=1), np.sort(s2.dists, axis=1))

    @pytest.mark.parametrize("name", ["atomic", "baseline", "tiled"])
    def test_singleton_leaf_noop(self, name, cloud):
        state = KnnState(cloud.shape[0], 3)
        assert get_strategy(name).update_leaf(state, cloud, np.array([4])) == 0

    def test_distance_evals_halved_for_unordered(self, cloud):
        leaf = np.arange(30)
        for name, expected in [("atomic", 30 * 29 // 2), ("tiled", 30 * 29)]:
            strat = get_strategy(name)
            strat.update_leaf(KnnState(cloud.shape[0], 4), cloud, leaf)
            assert strat.counters.distance_evals == expected


class TestCounters:
    def test_atomic_attempts_accounting(self, cloud):
        n, k = cloud.shape[0], 4
        state = KnnState(n, k)
        strat = get_strategy("atomic")
        rows = np.repeat(np.arange(20), 19)
        cols = np.concatenate([np.delete(np.arange(20), i) for i in range(20)])
        strat.update_pairs(state, cloud, rows, cols)
        c = strat.counters
        # one CAS per acceptance; acceptances == insertions
        assert c.atomic_attempts == c.candidates_inserted
        assert c.atomic_attempts >= 20 * k  # every list filled at least once

    def test_baseline_lock_per_row_group(self, cloud):
        state = KnnState(cloud.shape[0], 4)
        strat = get_strategy("baseline")
        strat.update_leaf(state, cloud, np.arange(10))
        assert strat.counters.lock_acquisitions >= 10

    def test_tiled_merge_rounds(self, cloud):
        state = KnnState(cloud.shape[0], 4)
        strat = get_strategy("tiled", tile_size=8)
        strat.update_leaf(state, cloud, np.arange(40))
        assert strat.counters.merge_rounds >= 1
        assert strat.counters.merge_slots > 0

    def test_candidates_seen_vs_offered(self, cloud):
        state = KnnState(cloud.shape[0], 4)
        strat = get_strategy("tiled")
        strat.update_leaf(state, cloud, np.arange(25))
        c = strat.counters
        assert c.candidates_seen >= c.candidates_offered
        assert c.candidates_offered >= c.candidates_inserted

    def test_reset_counters(self, cloud):
        strat = get_strategy("tiled")
        strat.update_leaf(KnnState(cloud.shape[0], 4), cloud, np.arange(10))
        old = strat.reset_counters()
        assert old.distance_evals > 0
        assert strat.counters.distance_evals == 0
