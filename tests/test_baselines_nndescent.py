"""Tests for the NN-descent CPU baseline."""

import numpy as np
import pytest

from repro.baselines.bruteforce import BruteForceKNN
from repro.baselines.nndescent import NNDescent, nn_descent_graph
from repro.data.synthetic import gaussian_mixture
from repro.metrics.recall import knn_recall


@pytest.fixture(scope="module")
def data():
    x = gaussian_mixture(500, 10, n_clusters=10, cluster_std=0.7, seed=6)
    gt, _ = BruteForceKNN(x).search(x, 8, exclude_self=True)
    return x, gt


class TestNNDescent:
    def test_converges_to_high_recall(self, data):
        x, gt = data
        g = NNDescent(k=8, seed=0).build(x)
        assert knn_recall(g.ids, gt) > 0.9

    def test_improves_over_random_init(self, data):
        x, gt = data
        g0 = NNDescent(k=8, max_iters=0 + 1, seed=0).build(x)  # ~one round
        g = NNDescent(k=8, seed=0).build(x)
        assert knn_recall(g.ids, gt) > knn_recall(g0.ids, gt)

    def test_meta_records_iterations(self, data):
        x, _ = data
        g = NNDescent(k=8, seed=0).build(x)
        assert 1 <= g.meta["iters_run"] <= 12
        assert len(g.meta["insertions"]) == g.meta["iters_run"]

    def test_no_self_neighbours(self, data):
        x, _ = data
        g = NNDescent(k=8, seed=0).build(x)
        assert not (g.ids == np.arange(500)[:, None]).any()

    def test_no_duplicate_neighbours(self, data):
        x, _ = data
        g = NNDescent(k=6, seed=0).build(x)
        for i in range(0, 500, 41):
            valid = g.ids[i][g.ids[i] >= 0]
            assert len(valid) == len(np.unique(valid))

    def test_reproducible(self, data):
        x, _ = data
        g1 = NNDescent(k=6, seed=4).build(x)
        g2 = NNDescent(k=6, seed=4).build(x)
        assert np.array_equal(g1.ids, g2.ids)

    def test_random_init_fills_lists(self):
        x = np.random.default_rng(0).standard_normal((40, 4)).astype(np.float32)
        nd = NNDescent(k=5, seed=0)
        state = nd._random_init(x, np.random.default_rng(0))
        assert state.filled_counts().tolist() == [5] * 40
        for i in range(40):
            assert i not in state.ids[i]
            assert len(np.unique(state.ids[i])) == 5

    def test_one_shot_helper(self, data):
        x, gt = data
        g = nn_descent_graph(x, 8, seed=0)
        assert g.meta["algorithm"] == "nn-descent"
