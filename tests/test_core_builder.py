"""Tests for the end-to-end w-KNNG builder (vectorised backend)."""

import numpy as np
import pytest

from repro.core.builder import BuildReport, WKNNGBuilder
from repro.core.config import BuildConfig
from repro.errors import ConfigurationError, DataError
from repro.metrics.recall import knn_recall


def cfg(**kw):
    base = dict(k=10, n_trees=4, leaf_size=48, refine_iters=2, seed=0)
    base.update(kw)
    return BuildConfig(**base)


class TestBuild:
    @pytest.mark.parametrize("strategy", ["tiled", "atomic", "baseline"])
    def test_high_recall_on_clustered(self, strategy, small_clustered, clustered_gt):
        graph = WKNNGBuilder(cfg(strategy=strategy)).build(small_clustered)
        assert knn_recall(graph.ids, clustered_gt[0]) > 0.9

    def test_strategies_agree_on_recall(self, small_clustered, clustered_gt):
        recalls = {}
        for s in ("tiled", "atomic", "baseline"):
            graph = WKNNGBuilder(cfg(strategy=s)).build(small_clustered)
            recalls[s] = knn_recall(graph.ids, clustered_gt[0])
        assert max(recalls.values()) - min(recalls.values()) < 0.05

    def test_graph_shape_and_order(self, small_clustered):
        graph = WKNNGBuilder(cfg()).build(small_clustered)
        assert graph.ids.shape == (600, 10)
        assert (np.diff(graph.dists, axis=1) >= 0).all()  # rows sorted

    def test_no_self_loops(self, small_clustered):
        graph = WKNNGBuilder(cfg()).build(small_clustered)
        self_loop = graph.ids == np.arange(600)[:, None]
        assert not self_loop.any()

    def test_no_duplicate_neighbours(self, small_clustered):
        graph = WKNNGBuilder(cfg()).build(small_clustered)
        for i in range(0, 600, 37):
            row = graph.ids[i]
            valid = row[row >= 0]
            assert len(valid) == len(np.unique(valid))

    def test_reproducible(self, small_clustered):
        g1 = WKNNGBuilder(cfg()).build(small_clustered)
        g2 = WKNNGBuilder(cfg()).build(small_clustered)
        assert np.array_equal(g1.ids, g2.ids)

    def test_seeds_change_result(self, small_clustered):
        g1 = WKNNGBuilder(cfg(seed=1)).build(small_clustered)
        g2 = WKNNGBuilder(cfg(seed=2)).build(small_clustered)
        assert not np.array_equal(g1.ids, g2.ids)

    def test_more_trees_no_worse(self, small_uniform):
        from repro.baselines.bruteforce import BruteForceKNN

        gt, _ = BruteForceKNN(small_uniform).search(small_uniform, 10, exclude_self=True)
        r1 = knn_recall(
            WKNNGBuilder(cfg(n_trees=1, refine_iters=0)).build(small_uniform).ids, gt
        )
        r8 = knn_recall(
            WKNNGBuilder(cfg(n_trees=8, refine_iters=0)).build(small_uniform).ids, gt
        )
        assert r8 >= r1

    def test_refinement_improves(self, small_uniform):
        from repro.baselines.bruteforce import BruteForceKNN

        gt, _ = BruteForceKNN(small_uniform).search(small_uniform, 10, exclude_self=True)
        r0 = knn_recall(
            WKNNGBuilder(cfg(n_trees=2, refine_iters=0)).build(small_uniform).ids, gt
        )
        r3 = knn_recall(
            WKNNGBuilder(cfg(n_trees=2, refine_iters=3)).build(small_uniform).ids, gt
        )
        assert r3 > r0

    def test_k_too_large_rejected(self):
        x = np.random.default_rng(0).standard_normal((8, 3)).astype(np.float32)
        with pytest.raises(ConfigurationError):
            WKNNGBuilder(BuildConfig(k=8, leaf_size=9)).build(x)

    def test_nan_input_rejected(self):
        x = np.full((50, 3), np.nan, dtype=np.float32)
        with pytest.raises(DataError):
            WKNNGBuilder(cfg()).build(x)

    def test_kwargs_constructor(self):
        b = WKNNGBuilder(k=5, leaf_size=20, seed=1)
        assert b.config.k == 5

    def test_config_and_kwargs_mutually_exclusive(self):
        with pytest.raises(TypeError):
            WKNNGBuilder(BuildConfig(), k=5)


class TestReport:
    def test_report_phases(self, small_clustered):
        _, rep = WKNNGBuilder(cfg()).build(small_clustered, return_report=True)
        assert isinstance(rep, BuildReport)
        assert set(rep.phase_seconds) == {"forest", "leaf_pairs", "refine", "finalize"}
        assert rep.total_seconds > 0

    def test_report_counters_nonzero(self, small_clustered):
        graph = WKNNGBuilder(cfg()).build(small_clustered)
        assert graph.report.counters["distance_evals"] > 0

    def test_leaf_stats(self, small_clustered):
        graph = WKNNGBuilder(cfg(leaf_size=48)).build(small_clustered)
        stats = graph.report.leaf_stats
        assert stats["max_leaf_size"] <= 48
        assert stats["n_leaves"] >= 600 / 48 * 4

    def test_last_report_deprecated_but_working(self, small_clustered):
        builder = WKNNGBuilder(cfg())
        graph = builder.build(small_clustered)
        with pytest.warns(DeprecationWarning, match="return_report"):
            rep = builder.last_report
        assert rep is graph.report

    def test_meta_carries_report(self, small_clustered):
        graph = WKNNGBuilder(cfg()).build(small_clustered)
        assert graph.meta["algorithm"] == "w-knng"
        assert "report" in graph.meta

    def test_forest_retained(self, small_clustered):
        builder = WKNNGBuilder(cfg(n_trees=3))
        builder.build(small_clustered)
        assert builder.last_forest is not None
        assert builder.last_forest.n_trees == 3
