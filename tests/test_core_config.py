"""Tests for BuildConfig validation."""

import pytest

from repro.core.config import BuildConfig
from repro.errors import ConfigurationError


class TestDefaults:
    def test_defaults_valid(self):
        cfg = BuildConfig()
        assert cfg.k == 16
        assert cfg.strategy == "tiled"
        assert cfg.backend == "vectorized"

    def test_effective_refine_sample_default(self):
        assert BuildConfig(k=16).effective_refine_sample() == 8
        assert BuildConfig(k=4, leaf_size=16).effective_refine_sample() == 4

    def test_effective_refine_sample_override(self):
        assert BuildConfig(refine_sample=20).effective_refine_sample() == 20

    def test_fanout_multiplies(self):
        assert BuildConfig(k=16, refine_fanout=3).effective_refine_sample() == 24


class TestValidation:
    def test_bad_k(self):
        with pytest.raises(ConfigurationError):
            BuildConfig(k=0)

    def test_bad_strategy(self):
        with pytest.raises(ConfigurationError, match="unknown strategy"):
            BuildConfig(strategy="quantum")

    def test_bad_backend(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            BuildConfig(backend="cuda")

    def test_leaf_size_must_exceed_k(self):
        with pytest.raises(ConfigurationError, match="leaf_size"):
            BuildConfig(k=16, leaf_size=16)

    def test_negative_refine_iters(self):
        with pytest.raises(ConfigurationError):
            BuildConfig(refine_iters=-1)

    def test_zero_refine_iters_ok(self):
        assert BuildConfig(refine_iters=0).refine_iters == 0

    def test_bad_refine_sample(self):
        with pytest.raises(ConfigurationError):
            BuildConfig(refine_sample=0)

    def test_bad_n_trees(self):
        with pytest.raises(ConfigurationError):
            BuildConfig(n_trees=0)

    def test_strategy_kwargs_stored(self):
        cfg = BuildConfig(strategy="tiled", strategy_kwargs={"tile_size": 16})
        assert cfg.strategy_kwargs == {"tile_size": 16}
