"""Tests for the warp-centric exact brute-force kernel."""

import numpy as np
import pytest

from repro.baselines.bruteforce import BruteForceKNN
from repro.bench.costmodel import bruteforce_cycles
from repro.data.synthetic import gaussian_mixture
from repro.metrics.recall import knn_recall
from repro.simt.config import DeviceConfig
from repro.simt.device import Device
from repro.simt_kernels.bruteforce_kernel import bruteforce_knng_simt


@pytest.fixture(scope="module")
def run():
    x = gaussian_mixture(48, 8, n_clusters=4, seed=1)
    state, dev = bruteforce_knng_simt(x, 5)
    return x, state, dev


class TestExactness:
    def test_recall_is_one(self, run):
        x, state, _ = run
        gt, _ = BruteForceKNN(x).search(x, 5, exclude_self=True)
        ids, _ = state.sorted_arrays()
        assert knn_recall(ids, gt) == 1.0

    def test_distances_match_exact(self, run):
        x, state, _ = run
        _, gt_d = BruteForceKNN(x).search(x, 5, exclude_self=True)
        _, dists = state.sorted_arrays()
        assert np.allclose(dists, gt_d, rtol=1e-4, atol=1e-4)

    def test_no_self_loops(self, run):
        x, state, _ = run
        assert not (state.ids == np.arange(48, dtype=np.int32)[:, None]).any()

    def test_multi_warp_blocks_match_single(self):
        x = gaussian_mixture(30, 6, n_clusters=3, seed=2)
        s1, _ = bruteforce_knng_simt(x, 4, queries_per_block=1)
        s4, _ = bruteforce_knng_simt(x, 4, queries_per_block=4)
        d1 = np.sort(s1.dists, axis=1)
        d4 = np.sort(s4.dists, axis=1)
        assert np.allclose(d1, d4)


class TestCostGrounding:
    def test_k_exceeding_warp_rejected(self):
        x = gaussian_mixture(20, 4, n_clusters=2, seed=0)
        with pytest.raises(ValueError, match="warp_size"):
            bruteforce_knng_simt(x, 10, device=Device(DeviceConfig(warp_size=8)))

    def test_staging_bounds_global_traffic(self, run):
        """Shared staging means global reads scale ~n*d per block sweep,
        not n^2*d: the measured transactions must sit far below the
        unstaged worst case."""
        x, _, dev = run
        n, d = x.shape
        per_point_segments = -(-d * 4 // dev.config.segment_bytes)
        unstaged_worst = n * n * per_point_segments
        # 4 warps share each staged tile, so staging traffic is ~1/4 of the
        # worst case; list-merge traffic adds back some, hence the /2 bound
        assert dev.metrics.global_load_transactions < unstaged_worst / 2

    def test_analytic_model_same_currency(self, run):
        x, _, dev = run
        analytic = bruteforce_cycles(len(x), dim=x.shape[1], k=5)
        measured = dev.metrics.estimated_cycles(dev.config)
        # same order of magnitude: the analytic model is a per-pair
        # average of what the event simulator charges step by step
        assert analytic.total / 30 < measured < analytic.total * 30
