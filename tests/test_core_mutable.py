"""Tests for the epoch-versioned mutable index (repro.core.mutable)."""

import threading

import numpy as np
import pytest

from repro.apps.search import SearchConfig
from repro.baselines.bruteforce import BruteForceKNN
from repro.core import BuildConfig, MutableConfig, MutableIndex
from repro.data.synthetic import gaussian_mixture
from repro.errors import ConfigurationError, DataError
from repro.obs import Events, Observability


@pytest.fixture(scope="module")
def base_and_more():
    x_all = gaussian_mixture(900, 16, n_clusters=15, cluster_std=0.8, seed=21)
    return x_all[:600], x_all[600:]


def build(base, **kw):
    cfg = dict(k=8, n_trees=4, leaf_size=48, refine_iters=2, seed=0)
    return MutableIndex.build(
        base, BuildConfig(**cfg), SearchConfig(ef=48),
        MutableConfig(**kw) if kw else None,
    )


class TestConfig:
    def test_threshold_bounds(self):
        with pytest.raises(ConfigurationError):
            MutableConfig(compact_threshold=0.0)
        with pytest.raises(ConfigurationError):
            MutableConfig(compact_threshold=1.5)
        MutableConfig(compact_threshold=1.0)  # disables auto-compaction

    def test_repair_rounds_non_negative(self):
        with pytest.raises(ConfigurationError):
            MutableConfig(repair_rounds=-1)


class TestInsert:
    def test_insert_assigns_fresh_external_ids(self, base_and_more):
        base, more = base_and_more
        mut = build(base)
        ids = mut.insert(more[:50])
        assert ids.tolist() == list(range(600, 650))
        assert mut.n == 650
        assert mut.epoch == 1

    def test_inserted_points_are_searchable(self, base_and_more):
        base, more = base_and_more
        mut = build(base)
        new_ids = mut.insert(more[:100])
        # each inserted vector should find itself among its top answers
        ids, dists = mut.search(more[:100], 5)
        self_found = (ids == new_ids[:, None]).any(axis=1)
        assert self_found.mean() > 0.9
        # and its self-match distance is ~0
        hit_rows = np.nonzero(self_found)[0]
        d_self = dists[hit_rows][ids[hit_rows] == new_ids[hit_rows, None]]
        assert np.allclose(d_self, 0.0, atol=1e-5)

    def test_insert_recall_against_ground_truth(self, base_and_more):
        base, more = base_and_more
        mut = build(base)
        mut.insert(more)
        full = np.concatenate([base, more])
        q = full[::9]
        gt, _ = BruteForceKNN(full).search(q, 5)
        ids, _ = mut.search(q, 5)
        hits = sum(np.intersect1d(ids[i][ids[i] >= 0], gt[i]).size
                   for i in range(q.shape[0]))
        assert hits / (q.shape[0] * 5) > 0.85

    def test_empty_insert_is_noop_without_flip(self, base_and_more):
        base, _ = base_and_more
        mut = build(base)
        assert mut.insert(np.empty((0, 16), dtype=np.float32)).size == 0
        assert mut.epoch == 0

    def test_wrong_dim_rejected_even_when_empty(self, base_and_more):
        base, _ = base_and_more
        mut = build(base)
        with pytest.raises(DataError):
            mut.insert(np.empty((0, 99), dtype=np.float32))
        with pytest.raises(DataError):
            mut.insert(np.zeros((3, 99), dtype=np.float32))

    def test_cosine_metric(self, base_and_more):
        base, more = base_and_more
        mut = MutableIndex.build(
            base, BuildConfig(k=8, n_trees=4, leaf_size=48, seed=0,
                              metric="cosine"),
            SearchConfig(ef=48),
        )
        new_ids = mut.insert(more[:50])
        ids, _ = mut.search(more[:50], 3)
        assert (ids == new_ids[:, None]).any(axis=1).mean() > 0.9


class TestDelete:
    def test_deleted_ids_never_served(self, base_and_more):
        base, _ = base_and_more
        mut = build(base)
        victims = mut.live_ids()[10:40]
        assert mut.delete(victims) == 30
        ids, _ = mut.search(base[10:40], 8)
        assert not np.isin(ids[ids >= 0], victims).any()
        assert mut.n == 570

    def test_results_stay_full_despite_tombstones(self, base_and_more):
        base, _ = base_and_more
        mut = build(base, compact_threshold=1.0)
        mut.delete(mut.live_ids()[:100])
        ids, dists = mut.search(base[200:240], 5)
        # over-fetch must keep rows full: every slot resolved
        assert (ids >= 0).all()
        assert np.isfinite(dists).all()

    def test_unknown_or_double_delete_rejected(self, base_and_more):
        base, _ = base_and_more
        mut = build(base)
        mut.delete(mut.live_ids()[:5])
        with pytest.raises(DataError):
            mut.delete(np.array([0]))       # already deleted
        with pytest.raises(DataError):
            mut.delete(np.array([10_000]))  # never assigned

    def test_empty_delete_is_noop_without_flip(self, base_and_more):
        base, _ = base_and_more
        mut = build(base)
        assert mut.delete(np.empty(0, dtype=np.int64)) == 0
        assert mut.epoch == 0


class TestCompaction:
    def test_threshold_triggers_rebuild(self, base_and_more):
        base, _ = base_and_more
        mut = build(base, compact_threshold=0.1)
        mut.delete(mut.live_ids()[:100])    # 100/600 > 0.1
        stats = mut.stats()
        assert stats["compactions"] == 1
        assert stats["n_total"] == 500      # tombstones physically gone
        assert stats["tombstone_fraction"] == 0.0

    def test_external_ids_stable_across_compaction(self, base_and_more):
        base, more = base_and_more
        mut = build(base, compact_threshold=0.1)
        new_ids = mut.insert(more[:50])
        mut.delete(mut.live_ids()[:100])    # triggers compaction
        assert mut.stats()["compactions"] == 1
        # the inserted points keep their pre-compaction external ids
        ids, _ = mut.search(more[:50], 3)
        assert (ids == new_ids[:, None]).any(axis=1).mean() > 0.9
        # and delete-by-external-id still resolves
        assert mut.delete(new_ids[:5]) == 5

    def test_forced_compact(self, base_and_more):
        base, _ = base_and_more
        mut = build(base, compact_threshold=1.0)
        mut.delete(mut.live_ids()[:50])
        assert mut.stats()["compactions"] == 0
        mut.compact()
        stats = mut.stats()
        assert stats["compactions"] == 1 and stats["n_total"] == 550

    def test_search_quality_survives_compaction(self, base_and_more):
        base, _ = base_and_more
        mut = build(base, compact_threshold=0.1)
        mut.delete(mut.live_ids()[:150])
        live_pts = mut.snapshot.live_points()
        ext = mut.live_ids()
        gt_pos, _ = BruteForceKNN(live_pts).search(live_pts[::7], 5)
        ids, _ = mut.search(live_pts[::7], 5)
        hits = sum(np.intersect1d(ids[i][ids[i] >= 0], ext[gt_pos[i]]).size
                   for i in range(ids.shape[0]))
        assert hits / (ids.shape[0] * 5) > 0.85


class TestEpochs:
    def test_every_mutation_flips_exactly_once(self, base_and_more):
        base, more = base_and_more
        mut = build(base, compact_threshold=0.1)
        assert mut.epoch == 0
        mut.insert(more[:10])
        assert mut.epoch == 1
        mut.delete(mut.live_ids()[:5])
        assert mut.epoch == 2
        mut.delete(mut.live_ids()[:100])    # delete + compaction: ONE flip
        assert mut.epoch == 3

    def test_snapshot_is_immutable_under_mutation(self, base_and_more):
        base, more = base_and_more
        mut = build(base)
        snap = mut.snapshot
        ids_before, dists_before = snap.search(base[:20], 5)
        mut.insert(more[:50])
        mut.delete(mut.live_ids()[:30])
        # the pinned snapshot still answers exactly as before
        ids_after, dists_after = snap.search(base[:20], 5)
        assert np.array_equal(ids_before, ids_after)
        assert np.array_equal(dists_before, dists_after)
        assert snap.epoch == 0 and mut.epoch == 2

    def test_flip_events_and_metrics(self, base_and_more):
        base, more = base_and_more
        obs = Observability()
        events = []
        obs.hooks.subscribe(Events.INDEX_FLIP,
                            lambda e, p: events.append(p))
        mut = MutableIndex.build(
            base, BuildConfig(k=8, n_trees=4, leaf_size=48, seed=0),
            SearchConfig(ef=48), MutableConfig(compact_threshold=0.1),
            obs=obs,
        )
        mut.insert(more[:20])
        mut.delete(mut.live_ids()[:100])
        kinds = [e["kind"] for e in events]
        assert kinds == ["insert", "compact"]
        assert [e["epoch"] for e in events] == [1, 2]
        assert obs.metrics.gauge("index/epoch").value == 2
        assert obs.metrics.gauge("index/n_live").value == 520

    def test_reader_mid_batch_never_sees_half_updated_graph(
            self, base_and_more):
        """Concurrent readers: every response decodes against the epoch's
        own snapshot - never a torn mix of two graph versions."""
        base, more = base_and_more
        mut = build(base, compact_threshold=0.2)
        q = base[:10]
        errors: list[str] = []
        stop = threading.Event()

        def reader() -> None:
            while not stop.is_set():
                snap = mut.snapshot
                ids, dists = snap.search(q, 5)
                # re-running on the same (immutable) snapshot must agree
                ids2, dists2 = snap.search(q, 5)
                if not (np.array_equal(ids, ids2)
                        and np.array_equal(dists, dists2)):
                    errors.append(f"nondeterministic at epoch {snap.epoch}")
                # ids must decode within the snapshot's own id universe
                known = set(int(i) for i in snap.ext_ids)
                bad = [int(i) for i in ids.ravel()
                       if i >= 0 and int(i) not in known]
                if bad:
                    errors.append(f"alien ids {bad} at epoch {snap.epoch}")

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for t in threads:
            t.start()
        rng = np.random.default_rng(3)
        pos = 0
        for _ in range(12):
            if rng.random() < 0.5 and mut.n > 200:
                mut.delete(rng.choice(mut.live_ids(), size=40, replace=False))
            else:
                mut.insert(more[pos:pos + 40])
                pos = (pos + 40) % 260
        stop.set()
        for t in threads:
            t.join()
        assert not errors, errors[:5]
        assert mut.epoch == 12


class TestServingSurface:
    def test_engine_protocol_shape(self, base_and_more):
        base, _ = base_and_more
        mut = build(base)
        assert mut.dim == 16
        assert mut.config.ef == 48
        stats = mut.stats()
        assert stats["engine"] == "mutable-index"
        ids, dists = mut.search(base[:4], 3, ef=64)
        assert ids.shape == (4, 3) and dists.shape == (4, 3)
