"""Tests for simulated global memory: semantics and coalescing accounting."""

import numpy as np
import pytest

from repro.errors import MemoryAccessError
from repro.simt.config import DeviceConfig
from repro.simt.memory import GlobalBuffer
from repro.simt.metrics import KernelMetrics

CFG = DeviceConfig()
W = CFG.warp_size
ALL = np.ones(W, dtype=bool)


def lanes(*vals):
    arr = np.zeros(W, dtype=np.int64)
    arr[: len(vals)] = vals
    return arr


class TestBufferBasics:
    def test_round_trip_shape(self):
        buf = GlobalBuffer(np.arange(12, dtype=np.float32).reshape(3, 4))
        assert buf.shape == (3, 4)
        assert np.array_equal(buf.to_host(), np.arange(12, dtype=np.float32).reshape(3, 4))

    def test_to_host_is_copy(self):
        src = np.ones(4, dtype=np.float32)
        buf = GlobalBuffer(src)
        host = buf.to_host()
        host[0] = 99
        assert buf.to_host()[0] == 1.0

    def test_source_not_aliased(self):
        src = np.ones(4, dtype=np.float32)
        buf = GlobalBuffer(src)
        src[0] = 77
        assert buf.to_host()[0] == 1.0

    def test_view2d(self):
        buf = GlobalBuffer(np.zeros((5, 7), dtype=np.float32))
        assert buf.view2d() == (5, 7)

    def test_view2d_rejects_1d(self):
        with pytest.raises(MemoryAccessError):
            GlobalBuffer(np.zeros(5, dtype=np.float32)).view2d()

    def test_unsupported_dtype(self):
        with pytest.raises(MemoryAccessError):
            GlobalBuffer(np.zeros(4, dtype=np.float16))

    def test_nbytes_and_size(self):
        buf = GlobalBuffer(np.zeros(10, dtype=np.int64))
        assert buf.size == 10 and buf.nbytes == 80


class TestGatherScatter:
    def test_gather_values(self):
        buf = GlobalBuffer(np.arange(100, dtype=np.float32))
        m = KernelMetrics()
        idx = np.arange(W, dtype=np.int64) * 2
        out = buf.gather(idx, ALL, CFG, m)
        assert np.array_equal(out, (np.arange(W) * 2).astype(np.float32))

    def test_gather_inactive_lanes_zero(self):
        buf = GlobalBuffer(np.full(40, 7.0, dtype=np.float32))
        m = KernelMetrics()
        mask = np.zeros(W, dtype=bool)
        mask[0] = True
        out = buf.gather(lanes(3), mask, CFG, m)
        assert out[0] == 7.0 and (out[1:] == 0).all()

    def test_gather_out_of_bounds(self):
        buf = GlobalBuffer(np.zeros(4, dtype=np.float32))
        with pytest.raises(MemoryAccessError, match="out-of-bounds"):
            buf.gather(lanes(4), ALL, CFG, KernelMetrics())

    def test_gather_negative_index(self):
        buf = GlobalBuffer(np.zeros(4, dtype=np.float32))
        with pytest.raises(MemoryAccessError):
            buf.gather(lanes(-1), ALL, CFG, KernelMetrics())

    def test_inactive_out_of_bounds_ignored(self):
        buf = GlobalBuffer(np.zeros(4, dtype=np.float32))
        mask = np.zeros(W, dtype=bool)
        mask[0] = True
        idx = np.full(W, 999, dtype=np.int64)
        idx[0] = 1
        buf.gather(idx, mask, CFG, KernelMetrics())  # must not raise

    def test_scatter_values(self):
        buf = GlobalBuffer(np.zeros(W, dtype=np.float32))
        m = KernelMetrics()
        buf.scatter(np.arange(W), np.arange(W, dtype=np.float32), ALL, CFG, m)
        assert np.array_equal(buf.to_host(), np.arange(W, dtype=np.float32))

    def test_scatter_scalar_broadcast(self):
        buf = GlobalBuffer(np.zeros(W, dtype=np.float32))
        buf.scatter(np.arange(W), np.float32(5.0), ALL, CFG, KernelMetrics())
        assert (buf.to_host() == 5.0).all()

    def test_scatter_same_address_highest_lane_wins(self):
        buf = GlobalBuffer(np.zeros(4, dtype=np.float32))
        vals = np.arange(W, dtype=np.float32)
        buf.scatter(np.zeros(W, dtype=np.int64), vals, ALL, CFG, KernelMetrics())
        assert buf.to_host()[0] == W - 1

    def test_scatter_respects_mask(self):
        buf = GlobalBuffer(np.zeros(W, dtype=np.float32))
        mask = np.zeros(W, dtype=bool)
        mask[3] = True
        buf.scatter(np.arange(W), np.full(W, 9.0, dtype=np.float32), mask, CFG, KernelMetrics())
        host = buf.to_host()
        assert host[3] == 9.0 and host.sum() == 9.0


class TestCoalescing:
    def test_fully_coalesced_float32_is_one_transaction(self):
        buf = GlobalBuffer(np.zeros(W, dtype=np.float32))
        m = KernelMetrics()
        buf.gather(np.arange(W, dtype=np.int64), ALL, CFG, m)
        assert m.global_load_transactions == 1

    def test_strided_access_is_many_transactions(self):
        buf = GlobalBuffer(np.zeros(W * 32, dtype=np.float32))
        m = KernelMetrics()
        buf.gather(np.arange(W, dtype=np.int64) * 32, ALL, CFG, m)
        assert m.global_load_transactions == W

    def test_same_address_broadcast_one_transaction(self):
        buf = GlobalBuffer(np.zeros(16, dtype=np.float32))
        m = KernelMetrics()
        buf.gather(np.zeros(W, dtype=np.int64), ALL, CFG, m)
        assert m.global_load_transactions == 1

    def test_float64_coalesced_two_transactions(self):
        buf = GlobalBuffer(np.zeros(W, dtype=np.float64))
        m = KernelMetrics()
        buf.gather(np.arange(W, dtype=np.int64), ALL, CFG, m)
        assert m.global_load_transactions == 2  # 32 lanes * 8B = 256B

    def test_bytes_counted_active_lanes_only(self):
        buf = GlobalBuffer(np.zeros(W, dtype=np.float32))
        m = KernelMetrics()
        mask = np.zeros(W, dtype=bool)
        mask[:4] = True
        buf.gather(np.arange(W, dtype=np.int64), mask, CFG, m)
        assert m.global_bytes_read == 16

    def test_predicated_op_recorded(self):
        buf = GlobalBuffer(np.zeros(W, dtype=np.float32))
        m = KernelMetrics()
        mask = np.ones(W, dtype=bool)
        mask[0] = False
        buf.gather(np.arange(W, dtype=np.int64), mask, CFG, m)
        assert m.predicated_ops == 1

    def test_empty_mask_zero_transactions(self):
        buf = GlobalBuffer(np.zeros(W, dtype=np.float32))
        m = KernelMetrics()
        buf.gather(np.arange(W, dtype=np.int64), np.zeros(W, dtype=bool), CFG, m)
        assert m.global_load_transactions == 0


class TestScatterDuplicateSemantics:
    """Documented duplicate-index behaviour: the highest active lane wins
    (CUDA's single-unspecified-winner made deterministic; the wksan
    sanitizer flags these scatters when enabled)."""

    def test_highest_lane_wins(self):
        buf = GlobalBuffer(np.zeros(8, dtype=np.int32))
        m = KernelMetrics()
        idx = np.zeros(W, dtype=np.int64)  # all lanes -> word 0
        vals = np.arange(W, dtype=np.int32)
        buf.scatter(idx, vals, ALL, CFG, m)
        assert buf.to_host()[0] == W - 1

    def test_highest_active_lane_wins_under_mask(self):
        buf = GlobalBuffer(np.zeros(8, dtype=np.int32))
        m = KernelMetrics()
        idx = np.zeros(W, dtype=np.int64)
        vals = np.arange(W, dtype=np.int32)
        mask = np.zeros(W, dtype=bool)
        mask[3] = mask[7] = True
        buf.scatter(idx, vals, mask, CFG, m)
        assert buf.to_host()[0] == 7

    def test_distinct_indices_all_land(self):
        buf = GlobalBuffer(np.zeros(W, dtype=np.int32))
        m = KernelMetrics()
        buf.scatter(np.arange(W, dtype=np.int64), np.arange(W, dtype=np.int32),
                    ALL, CFG, m)
        assert np.array_equal(buf.to_host(), np.arange(W, dtype=np.int32))
