"""Sharded serving cluster: merge parity, failover and health routing.

The central claim under test: with the ``"full"`` shard-ef policy and an
exhaustive beam (``ef >= n`` and enough graph connectivity that the flat
search equals brute force - asserted as a precondition, not assumed), a
``ClusterClient`` over S shards x R replicas returns **bitwise** the same
``(ids, dists)`` as one flat ``GraphSearchIndex`` over the same points.
And: killing a replica mid-run changes capacity, never answers.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.apps.search import BuildConfig, GraphSearchIndex, SearchConfig
from repro.errors import (
    ConfigurationError,
    DeadlineExceeded,
    ShardUnavailable,
)
from repro.obs import Events, Observability
from repro.serve import (
    ClusterClient,
    ClusterConfig,
    SearchResult,
    ServeConfig,
    ShedPolicy,
    merge_topk,
)
from repro.serve.cluster import ReplicaGroup, ThreadReplica
from repro.core.sharding import shard_partition
from repro.utils.parallel import fork_available

N = 240
DIM = 16
TOP_K = 10
#: exhaustive-search recipe: beam covers every point, graph degree and
#: seed coverage high enough that every point is reachable (verified by
#: the flat==brute precondition below)
EF = 2 * N
GRAPH_K = 24
SEARCH_CFG = SearchConfig(ef=EF, max_expansions=8 * N, seeds_per_tree=16)


def build_cfg(metric: str) -> BuildConfig:
    return BuildConfig(k=GRAPH_K, metric=metric, seed=7, strategy="tiled")


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(0)
    return rng.standard_normal((N, DIM), dtype=np.float32)


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(1)
    return rng.standard_normal((8, DIM), dtype=np.float32)


@pytest.fixture(scope="module", params=["sqeuclidean", "cosine"])
def metric(request):
    return request.param


@pytest.fixture(scope="module")
def flat(points, metric):
    return GraphSearchIndex.build(
        points, build_config=build_cfg(metric), search_config=SEARCH_CFG,
        seed=7)


@pytest.fixture(scope="module")
def flat_answers(flat, queries):
    """Flat-index answers, with the exhaustiveness precondition asserted."""
    ids, dists = flat.search(queries, TOP_K)
    # precondition: the flat beam is exhaustive == exact brute force in
    # the prepared metric space; without this, shard-vs-flat parity
    # would be comparing two different approximations
    xp = flat._require_fitted()._x
    qp = flat._prepare_queries(queries)
    d = ((qp[:, None, :].astype(np.float32) - xp[None, :, :]) ** 2).sum(-1)
    exact = np.argsort(d, axis=1, kind="stable")[:, :TOP_K].astype(np.int32)
    assert np.array_equal(ids, exact), (
        "test recipe no longer exhaustive; raise ef/seeds_per_tree/k")
    return ids, dists


def make_cluster(points, metric, n_shards, n_replicas, *, backend="thread",
                 serve=None, obs=None, **kw) -> ClusterClient:
    cfg = ClusterConfig(
        n_shards=n_shards, n_replicas=n_replicas, backend=backend,
        serve=serve or ServeConfig(ef=EF), **kw)
    return ClusterClient.build(
        points, build_config=build_cfg(metric), search_config=SEARCH_CFG,
        seed=7, config=cfg, obs=obs)


class TestMergeTopk:
    def test_two_way_merge_is_global_sort(self):
        ids_a = np.array([[0, 2, 4]], dtype=np.int32)
        d_a = np.array([[0.1, 0.3, 0.5]], dtype=np.float32)
        ids_b = np.array([[1, 3, 5]], dtype=np.int32)
        d_b = np.array([[0.2, 0.4, 0.6]], dtype=np.float32)
        ids, dists = merge_topk([(ids_a, d_a), (ids_b, d_b)], 4)
        assert ids.tolist() == [[0, 1, 2, 3]]
        assert np.allclose(dists, [[0.1, 0.2, 0.3, 0.4]])

    def test_distance_ties_break_by_id(self):
        ids_a = np.array([[7]], dtype=np.int32)
        ids_b = np.array([[3]], dtype=np.int32)
        d = np.array([[0.25]], dtype=np.float32)
        ids, _ = merge_topk([(ids_a, d), (ids_b, d)], 2)
        assert ids.tolist() == [[3, 7]]

    def test_unfilled_slots_sort_last_and_pad(self):
        ids_a = np.array([[4, -1]], dtype=np.int32)
        d_a = np.array([[0.5, np.inf]], dtype=np.float32)
        ids_b = np.array([[9, -1]], dtype=np.int32)
        d_b = np.array([[0.1, np.inf]], dtype=np.float32)
        ids, dists = merge_topk([(ids_a, d_a), (ids_b, d_b)], 4)
        assert ids.tolist() == [[9, 4, -1, -1]]
        assert dists[0, 0] == np.float32(0.1)
        assert np.isinf(dists[0, 2]) and np.isinf(dists[0, 3])

    def test_width_capped_by_available_columns(self):
        ids = np.array([[2]], dtype=np.int32)
        d = np.array([[1.0]], dtype=np.float32)
        out_ids, out_d = merge_topk([(ids, d)], 5)
        assert out_ids.shape == (1, 5)
        assert out_ids[0, 0] == 2 and (out_ids[0, 1:] == -1).all()

    def test_empty_parts_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_topk([], 3)


class TestClusterParity:
    @pytest.mark.parametrize("n_shards", [2, 3, 5])
    @pytest.mark.parametrize("n_replicas", [1, 2])
    def test_bitwise_equal_to_flat(self, points, queries, metric,
                                   flat_answers, n_shards, n_replicas):
        fids, fdists = flat_answers
        with make_cluster(points, metric, n_shards, n_replicas) as client:
            results = [client.query(q, TOP_K) for q in queries]
        ids = np.stack([r.ids for r in results])
        dists = np.stack([r.dists for r in results])
        assert np.array_equal(ids, fids)
        assert np.array_equal(dists, fdists)
        assert all(r.shard_fanout == n_shards for r in results)

    def test_parity_through_shed_path(self, points, queries, metric,
                                      flat_answers):
        """A forced shed level lowers served_ef but (still exhaustive)
        keeps answers bitwise identical - quality degradation composes
        with sharding."""
        fids, fdists = flat_answers
        serve = ServeConfig(
            ef=4 * N,
            shed=ShedPolicy(high_water=0.5, low_water=0.01, factor=0.5,
                            min_ef=8, max_level=2, step_down_after=1000))
        with make_cluster(points, metric, 3, 1, serve=serve) as client:
            client.degradation.level = 1        # forced: served_ef = 2N >= N
            results = [client.query(q, TOP_K) for q in queries]
        assert all(r.served_ef == 2 * N < 4 * N for r in results)
        assert np.array_equal(np.stack([r.ids for r in results]), fids)
        assert np.array_equal(np.stack([r.dists for r in results]), fdists)

    def test_parity_with_deadline_set(self, points, queries, metric,
                                      flat_answers):
        """A generous deadline must not perturb results."""
        fids, _ = flat_answers
        with make_cluster(points, metric, 2, 1) as client:
            results = [client.query(q, TOP_K, deadline_ms=60_000.0)
                       for q in queries]
        assert np.array_equal(np.stack([r.ids for r in results]), fids)

    def test_deadline_expired_while_queued(self, points, queries, metric):
        with make_cluster(points, metric, 2, 1) as client:
            fut = client.submit(queries[0], TOP_K, deadline_ms=0.0)
            with pytest.raises(DeadlineExceeded):
                fut.result(timeout=10.0)
            assert client.stats()["timeouts"] >= 1

    def test_scaled_policy_returns_valid_results(self, points, queries,
                                                 metric):
        """The throughput policy is approximate but well-formed: k valid
        in-range ids, ascending dists, per-shard ef divided down."""
        with make_cluster(points, metric, 3, 1,
                          shard_ef_policy="scaled", shard_ef_floor=8,
                          serve=ServeConfig(ef=60)) as client:
            res = client.query(queries[0], TOP_K)
        assert res.ids.shape == (TOP_K,)
        assert ((res.ids >= 0) & (res.ids < N)).all()
        assert len(set(res.ids.tolist())) == TOP_K
        assert (np.diff(res.dists) >= 0).all()
        assert client.config.shard_ef(60, TOP_K) == 20


class TestFailover:
    def test_kill_replica_zero_wrong_answers(self, points, queries, metric):
        """Replicas are deterministic copies: killing one mid-run must not
        change a single answer (capacity degrades, correctness never)."""
        obs = Observability()
        events = []
        obs.hooks.subscribe("*", lambda name, payload: events.append(name))
        serve = ServeConfig(ef=EF, shed=ShedPolicy(enabled=False))
        with make_cluster(points, metric, 2, 2, serve=serve, obs=obs,
                          heartbeat_interval_s=0.05,
                          readmit_after_s=30.0) as client:
            expected = [client.query(q, TOP_K) for q in queries]
            client.kill_replica(0, 0)
            wrong = 0
            for _ in range(3):                  # several passes post-kill
                for q, exp in zip(queries, expected):
                    res = client.query(q, TOP_K)
                    if not (np.array_equal(res.ids, exp.ids)
                            and np.array_equal(res.dists, exp.dists)):
                        wrong += 1
            deadline = time.monotonic() + 5.0
            while (client.stats()["router"]["ejections"] == 0
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            stats = client.stats()
        assert wrong == 0
        assert stats["router"]["ejections"] >= 1
        assert stats["router"]["healthy_replicas"] == 3
        assert Events.REPLICA_EJECTED in events

    def test_dead_replica_readmitted_after_revive(self, points, metric):
        rng = np.random.default_rng(3)
        q = rng.standard_normal(DIM).astype(np.float32)
        with make_cluster(points, metric, 2, 2,
                          heartbeat_interval_s=0.05,
                          readmit_after_s=0.05) as client:
            replica = client.router.groups[1].replicas[0]
            replica.kill()
            deadline = time.monotonic() + 5.0
            while (client.router.groups[1].state(replica) != "ejected"
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            assert client.router.groups[1].state(replica) == "ejected"
            replica.revive()
            deadline = time.monotonic() + 5.0
            while (client.router.groups[1].state(replica) != "healthy"
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            assert client.router.groups[1].state(replica) == "healthy"
            assert client.stats()["router"]["readmissions"] >= 1
            res = client.query(q, TOP_K)        # still serving
            assert res.ids.shape == (TOP_K,)

    def test_whole_shard_down_fails_request_not_merge(self, points, metric):
        """No live replica for one shard -> the request errors; a silent
        partial merge (missing that shard's points) would be worse."""
        rng = np.random.default_rng(4)
        q = rng.standard_normal(DIM).astype(np.float32)
        with make_cluster(points, metric, 2, 1) as client:
            client.kill_replica(0, 0)
            fut = client.submit(q, TOP_K)
            with pytest.raises(ShardUnavailable) as exc_info:
                fut.result(timeout=10.0)
            assert exc_info.value.shard_id == 0
            assert client.stats()["shard_errors"] >= 1


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
class TestProcessBackend:
    def test_process_parity_and_kill(self, points, queries):
        flat = GraphSearchIndex.build(
            points, build_config=build_cfg("sqeuclidean"),
            search_config=SEARCH_CFG, seed=7)
        fids, fdists = flat.search(queries, TOP_K)
        serve = ServeConfig(ef=EF, shed=ShedPolicy(enabled=False))
        with make_cluster(points, "sqeuclidean", 2, 2, backend="process",
                          serve=serve, rpc_timeout_s=10.0,
                          heartbeat_interval_s=0.05,
                          readmit_after_s=30.0) as client:
            assert client.backend == "process"
            results = [client.query(q, TOP_K) for q in queries]
            assert np.array_equal(np.stack([r.ids for r in results]), fids)
            assert np.array_equal(np.stack([r.dists for r in results]),
                                  fdists)
            client.kill_replica(1, 1)           # hard process termination
            for q, exp in zip(queries, results):
                res = client.query(q, TOP_K)
                assert np.array_equal(res.ids, exp.ids)
                assert np.array_equal(res.dists, exp.dists)
            deadline = time.monotonic() + 5.0
            while (client.stats()["router"]["ejections"] == 0
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            assert client.stats()["router"]["ejections"] >= 1


class TestReplicaGroup:
    def _group(self, n=3):
        index = GraphSearchIndex.build(
            np.random.default_rng(0).standard_normal((64, 4),
                                                     dtype=np.float32),
            k=4, seed=0)
        replicas = [ThreadReplica(0, i, index, 0) for i in range(n)]
        return ReplicaGroup(0, replicas, ewma_alpha=0.5,
                            readmit_after_s=0.01), replicas

    def test_pick_prefers_idle_then_fast(self):
        group, (r0, r1, r2) = self._group()
        group.record_success(r0, 5.0)
        group.record_success(r1, 1.0)
        group.record_success(r2, 3.0)
        picked = group.pick()
        assert picked is r1                      # lowest EWMA at equal load
        assert group.pick() is r2                # r1 now has 1 in-flight

    def test_ejected_is_last_resort_and_readmits(self):
        group, (r0, r1, r2) = self._group()
        assert group.eject(r0) is True
        assert group.eject(r0) is False          # already ejected
        assert group.healthy_count() == 2
        picked = {group.pick() for _ in range(2)}
        assert picked == {r1, r2}                # healthy first
        # with every healthy sibling excluded (the failover path),
        # the ejected replica is still tried - last resort, not never
        assert group.pick(exclude=[r1, r2]) is r0
        assert group.record_success(r0, 2.0) is True   # traffic readmits
        assert group.healthy_count() == 3
        assert group.readmissions == 1


class TestClusterConfig:
    def test_round_trip(self):
        cfg = ClusterConfig(n_shards=4, n_replicas=2, backend="thread",
                            shard_ef_policy="scaled", shard_ef_floor=12,
                            serve=ServeConfig(default_k=7, ef=48))
        clone = ClusterConfig.from_dict(cfg.as_dict())
        assert clone == cfg
        assert clone.serve.default_k == 7

    def test_shard_ef_policies(self):
        full = ClusterConfig(n_shards=4, shard_ef_policy="full")
        assert full.shard_ef(64, 10) == 64
        scaled = ClusterConfig(n_shards=4, shard_ef_policy="scaled",
                               shard_ef_floor=8)
        assert scaled.shard_ef(64, 10) == 16     # ceil(64/4) = 16
        assert scaled.shard_ef(64, 20) == 20     # k floor wins
        assert scaled.shard_ef(20, 2) == 8       # shard_ef_floor wins

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(backend="mpi")
        with pytest.raises(ConfigurationError):
            ClusterConfig(shard_ef_policy="half")
        with pytest.raises(ConfigurationError):
            ClusterConfig(n_shards=0)
        with pytest.raises(ConfigurationError):
            ClusterConfig(ewma_alpha=0.0)

    def test_shard_partition_guards(self):
        assert shard_partition(10, 3) == [(0, 4), (4, 7), (7, 10)]
        with pytest.raises(ValueError):
            shard_partition(2, 3)

    def test_mismatched_shard_count_rejected(self, points):
        ranges = shard_partition(N, 2)
        indexes = [GraphSearchIndex.build(points[lo:hi], k=8, seed=0)
                   for lo, hi in ranges]
        with pytest.raises(ConfigurationError):
            ClusterClient(indexes, ranges, ClusterConfig(n_shards=3))


class TestClusterObservability:
    def test_spans_and_events_thread_through(self, points, queries, metric):
        obs = Observability()
        events = []
        obs.hooks.subscribe("*", lambda name, payload: events.append(name))
        with make_cluster(points, metric, 2, 1, obs=obs) as client:
            res = client.query(queries[0], TOP_K)
        assert isinstance(res, SearchResult)
        names = set(events)
        assert Events.CLUSTER_START in names
        assert Events.CLUSTER_BATCH_BEFORE in names
        assert Events.CLUSTER_BATCH_AFTER in names
        assert Events.CLUSTER_STOP in names
        spans = [s.name for s in obs.trace.records]
        assert "cluster_batch" in spans
        assert "merge" in spans
        assert {"shard-0", "shard-1"} <= set(spans)
        shard_span = next(s for s in obs.trace.records
                          if s.name == "shard-0")
        assert "engine_seconds" in shard_span.attrs
        assert shard_span.attrs["replica"] == "s0/r0"
