"""Tests for synthetic dataset generators and fvecs/ivecs I/O."""

import numpy as np
import pytest

from repro.data.loaders import read_fvecs, read_ivecs, write_fvecs, write_ivecs
from repro.data.synthetic import (
    DATASETS,
    gaussian_mixture,
    gist_like,
    low_dim_manifold,
    make_dataset,
    sift_like,
    uniform_hypercube,
)
from repro.errors import ConfigurationError, DataError


class TestGenerators:
    def test_shapes_and_dtype(self):
        for gen, kw in [
            (gaussian_mixture, {"dim": 9}),
            (uniform_hypercube, {"dim": 9}),
            (low_dim_manifold, {"dim": 9, "intrinsic_dim": 3}),
        ]:
            x = gen(50, seed=0, **kw)
            assert x.shape == (50, 9) and x.dtype == np.float32

    def test_reproducible(self):
        assert np.array_equal(
            gaussian_mixture(30, 5, seed=7), gaussian_mixture(30, 5, seed=7)
        )

    def test_seeds_differ(self):
        assert not np.array_equal(
            gaussian_mixture(30, 5, seed=1), gaussian_mixture(30, 5, seed=2)
        )

    def test_gaussian_is_clustered(self):
        x = gaussian_mixture(500, 8, n_clusters=4, cluster_std=0.2,
                             center_scale=10.0, seed=0)
        # nearest-neighbour distance far below random-pair distance
        d_nn = ((x[:100, None, :] - x[None, :, :]) ** 2).sum(-1)
        np.fill_diagonal(d_nn[:, :100], np.inf)
        near = d_nn.min(axis=1).mean()
        far = d_nn[np.isfinite(d_nn)].mean()
        assert near * 10 < far

    def test_uniform_in_unit_cube(self):
        x = uniform_hypercube(100, 4, seed=0)
        assert (x >= 0).all() and (x < 1).all()

    def test_sift_like_statistics(self):
        x = sift_like(200, seed=0)
        assert x.shape == (200, 128)
        assert (x >= 0).all() and (x <= 255).all()
        assert np.array_equal(x, np.rint(x))  # integer-valued

    def test_gist_like_statistics(self):
        x = gist_like(100, seed=0)
        assert x.shape == (100, 960)
        assert (x >= 0).all()

    def test_manifold_low_intrinsic_dim(self):
        x = low_dim_manifold(300, 64, intrinsic_dim=4, noise=0.0, seed=0)
        # singular values collapse after ~2*intrinsic_dim (linear+quadratic)
        s = np.linalg.svd(x - x.mean(0), compute_uv=False)
        assert s[10] < s[0] * 1e-3

    def test_manifold_intrinsic_exceeds_ambient(self):
        with pytest.raises(ConfigurationError):
            low_dim_manifold(10, 4, intrinsic_dim=8)

    def test_registry_all_work(self):
        for name in DATASETS:
            x = make_dataset(name, 30, seed=0)
            assert x.shape[0] == 30 and x.dtype == np.float32

    def test_registry_unknown(self):
        with pytest.raises(ConfigurationError):
            make_dataset("no-such-set", 10)

    def test_registry_overrides(self):
        x = make_dataset("gaussian", 20, seed=0, dim=5)
        assert x.shape == (20, 5)


class TestVecsIO:
    def test_fvecs_round_trip(self, tmp_path):
        x = np.random.default_rng(0).standard_normal((10, 7)).astype(np.float32)
        path = tmp_path / "x.fvecs"
        write_fvecs(path, x)
        assert np.array_equal(read_fvecs(path), x)

    def test_ivecs_round_trip(self, tmp_path):
        x = np.random.default_rng(0).integers(0, 1000, (6, 4)).astype(np.int32)
        path = tmp_path / "x.ivecs"
        write_ivecs(path, x)
        assert np.array_equal(read_ivecs(path), x)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.fvecs"
        path.write_bytes(b"")
        with pytest.raises(DataError):
            read_fvecs(path)

    def test_corrupt_length_rejected(self, tmp_path):
        path = tmp_path / "bad.fvecs"
        np.array([3, 1, 2], dtype=np.int32).tofile(path)  # dim=3 but 2 values
        with pytest.raises(DataError):
            read_fvecs(path)

    def test_inconsistent_dims_rejected(self, tmp_path):
        path = tmp_path / "bad2.fvecs"
        np.array([2, 1, 2, 3, 1, 2], dtype=np.int32).tofile(path)
        with pytest.raises(DataError):
            read_fvecs(path)

    def test_write_1d_rejected(self, tmp_path):
        with pytest.raises(DataError):
            write_fvecs(tmp_path / "x.fvecs", np.zeros(5, dtype=np.float32))
