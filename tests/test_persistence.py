"""Tests for forest and search-index persistence."""

import numpy as np
import pytest

from repro.apps.search import GraphSearchIndex
from repro.core.rpforest import RPForest, build_forest
from repro.data.synthetic import gaussian_mixture


@pytest.fixture(scope="module")
def points():
    return gaussian_mixture(400, 10, n_clusters=8, seed=13)


class TestForestPersistence:
    def test_round_trip_structure(self, points, tmp_path):
        forest = build_forest(points, 3, 40, seed=5)
        path = tmp_path / "forest.npz"
        forest.save(path)
        loaded = RPForest.load(path)
        assert loaded.n_trees == 3
        for t1, t2 in zip(forest.trees, loaded.trees):
            assert np.allclose(t1.normals, t2.normals)
            assert np.allclose(t1.thresholds, t2.thresholds)
            assert np.array_equal(t1.children, t2.children)
            assert len(t1.leaves) == len(t2.leaves)
            for a, b in zip(t1.leaves, t2.leaves):
                assert np.array_equal(a, b)

    def test_loaded_forest_routes_identically(self, points, tmp_path):
        forest = build_forest(points, 2, 40, seed=5)
        path = tmp_path / "forest.npz"
        forest.save(path)
        loaded = RPForest.load(path)
        q = gaussian_mixture(30, 10, n_clusters=8, seed=14)
        for t1, t2 in zip(forest.trees, loaded.trees):
            assert np.array_equal(t1.leaf_for(q), t2.leaf_for(q))

    def test_single_leaf_tree_round_trip(self, tmp_path):
        x = gaussian_mixture(10, 4, n_clusters=2, seed=0)
        forest = build_forest(x, 1, 20, seed=0)
        forest.save(tmp_path / "f.npz")
        loaded = RPForest.load(tmp_path / "f.npz")
        assert loaded.trees[0].n_leaves == 1
        assert np.array_equal(loaded.trees[0].leaves[0], np.arange(10))


class TestSearchIndexPersistence:
    def test_round_trip_search_results(self, points, tmp_path):
        index = GraphSearchIndex.build(points, k=8, seed=0)
        q = points[:10] * 1.001
        before_ids, before_d = index.search(q, 5)
        index.save(tmp_path / "idx")
        loaded = GraphSearchIndex.load(tmp_path / "idx")
        after_ids, after_d = loaded.search(q, 5)
        assert np.array_equal(before_ids, after_ids)
        assert np.allclose(before_d, after_d)

    def test_load_with_custom_config(self, points, tmp_path):
        from repro.apps.search import SearchConfig

        GraphSearchIndex.build(points, k=8, seed=0).save(tmp_path / "idx")
        loaded = GraphSearchIndex.load(tmp_path / "idx",
                                       SearchConfig(ef=64))
        assert loaded.config.ef == 64

    def test_search_config_defaults_round_trip(self, points, tmp_path):
        """The saved ef/frontier defaults come back without being passed."""
        from repro.apps.search import SearchConfig

        index = GraphSearchIndex.build(
            points, k=8, seed=0,
            search_config=SearchConfig(ef=48, seeds_per_tree=3, frontier=2),
        )
        index.save(tmp_path / "idx")
        loaded = GraphSearchIndex.load(tmp_path / "idx")
        assert loaded.config == index.config
        assert loaded.config.ef == 48

    def test_metric_round_trip_byte_identical(self, tmp_path):
        """A cosine index serves byte-identical ids/dists after load."""
        from repro.apps.search import SearchConfig
        from repro.core.config import BuildConfig

        rng = np.random.default_rng(21)
        x = rng.standard_normal((350, 9), dtype=np.float32)
        index = GraphSearchIndex.build(
            x,
            build_config=BuildConfig(k=8, strategy="tiled", seed=0,
                                     metric="cosine"),
            search_config=SearchConfig(ef=40),
        )
        q = rng.standard_normal((25, 9), dtype=np.float32)
        before_ids, before_d = index.search(q, 5)
        index.save(tmp_path / "idx")
        loaded = GraphSearchIndex.load(tmp_path / "idx")
        assert loaded.metric == "cosine"
        assert loaded.config.ef == 40
        after_ids, after_d = loaded.search(q, 5)
        assert after_ids.tobytes() == before_ids.tobytes()
        assert after_d.tobytes() == before_d.tobytes()

    def test_legacy_directory_without_config_loads(self, points, tmp_path):
        """Indexes saved before search_config.json existed still load."""
        index = GraphSearchIndex.build(points, k=8, seed=0)
        index.save(tmp_path / "idx")
        (tmp_path / "idx" / "search_config.json").unlink()
        loaded = GraphSearchIndex.load(tmp_path / "idx")
        assert loaded.config.ef == 32  # stock default

    def test_served_results_identical_after_load(self, points, tmp_path):
        """KNNServer over a loaded index answers exactly like the original."""
        from repro.serve import AdmissionPolicy, KNNServer, ServeConfig

        index = GraphSearchIndex.build(points, k=8, seed=0)
        index.save(tmp_path / "idx")
        loaded = GraphSearchIndex.load(tmp_path / "idx")
        q = points[:12] * 1.001
        direct_ids, direct_d = index.search(q, 5)
        cfg = ServeConfig(admission=AdmissionPolicy(max_batch=4,
                                                    max_wait_ms=1.0))
        with KNNServer(loaded, cfg) as server:
            futs = [server.submit(row, 5) for row in q]
            results = [f.result(timeout=30.0) for f in futs]
        ids = np.stack([r.ids for r in results])
        dists = np.stack([r.dists for r in results])
        assert ids.tobytes() == direct_ids.tobytes()
        assert dists.tobytes() == direct_d.tobytes()
