"""Tests for forest and search-index persistence."""

import numpy as np
import pytest

from repro.apps.search import GraphSearchIndex
from repro.core.rpforest import RPForest, build_forest
from repro.data.synthetic import gaussian_mixture


@pytest.fixture(scope="module")
def points():
    return gaussian_mixture(400, 10, n_clusters=8, seed=13)


class TestForestPersistence:
    def test_round_trip_structure(self, points, tmp_path):
        forest = build_forest(points, 3, 40, seed=5)
        path = tmp_path / "forest.npz"
        forest.save(path)
        loaded = RPForest.load(path)
        assert loaded.n_trees == 3
        for t1, t2 in zip(forest.trees, loaded.trees):
            assert np.allclose(t1.normals, t2.normals)
            assert np.allclose(t1.thresholds, t2.thresholds)
            assert np.array_equal(t1.children, t2.children)
            assert len(t1.leaves) == len(t2.leaves)
            for a, b in zip(t1.leaves, t2.leaves):
                assert np.array_equal(a, b)

    def test_loaded_forest_routes_identically(self, points, tmp_path):
        forest = build_forest(points, 2, 40, seed=5)
        path = tmp_path / "forest.npz"
        forest.save(path)
        loaded = RPForest.load(path)
        q = gaussian_mixture(30, 10, n_clusters=8, seed=14)
        for t1, t2 in zip(forest.trees, loaded.trees):
            assert np.array_equal(t1.leaf_for(q), t2.leaf_for(q))

    def test_single_leaf_tree_round_trip(self, tmp_path):
        x = gaussian_mixture(10, 4, n_clusters=2, seed=0)
        forest = build_forest(x, 1, 20, seed=0)
        forest.save(tmp_path / "f.npz")
        loaded = RPForest.load(tmp_path / "f.npz")
        assert loaded.trees[0].n_leaves == 1
        assert np.array_equal(loaded.trees[0].leaves[0], np.arange(10))


class TestSearchIndexPersistence:
    def test_round_trip_search_results(self, points, tmp_path):
        index = GraphSearchIndex.build(points, k=8, seed=0)
        q = points[:10] * 1.001
        before_ids, before_d = index.search(q, 5)
        index.save(tmp_path / "idx")
        loaded = GraphSearchIndex.load(tmp_path / "idx")
        after_ids, after_d = loaded.search(q, 5)
        assert np.array_equal(before_ids, after_ids)
        assert np.allclose(before_d, after_d)

    def test_load_with_custom_config(self, points, tmp_path):
        from repro.apps.search import SearchConfig

        GraphSearchIndex.build(points, k=8, seed=0).save(tmp_path / "idx")
        loaded = GraphSearchIndex.load(tmp_path / "idx",
                                       SearchConfig(ef=64))
        assert loaded.config.ef == 64
