"""Tests for warp-level collectives: bitonic sort and sorted merge."""

import numpy as np
import pytest

from repro.simt.config import DeviceConfig
from repro.simt.device import Device
from repro.simt.intrinsics import warp_bitonic_sort, warp_sorted_merge_max
from repro.simt.shared import SharedMemory
from repro.simt.warp import WarpContext

W = 32


@pytest.fixture()
def ctx():
    dev = Device(DeviceConfig())
    return WarpContext(dev, SharedMemory(dev.config, dev.metrics), 0, 0, 1, 1)


class TestBitonicSort:
    def test_sorts_random(self, ctx):
        rng = np.random.default_rng(0)
        for _ in range(10):
            keys = rng.random(W).astype(np.float32)
            vals = np.arange(W)
            sk, sv = warp_bitonic_sort(ctx, keys, vals)
            assert np.allclose(sk, np.sort(keys))
            assert np.allclose(keys[sv], sk)  # values travel with keys

    def test_already_sorted(self, ctx):
        keys = np.arange(W, dtype=np.float32)
        sk, _ = warp_bitonic_sort(ctx, keys, np.arange(W))
        assert np.array_equal(sk, keys)

    def test_reverse_sorted(self, ctx):
        keys = np.arange(W, dtype=np.float32)[::-1].copy()
        sk, _ = warp_bitonic_sort(ctx, keys, np.arange(W))
        assert np.array_equal(sk, np.arange(W, dtype=np.float32))

    def test_with_inf_padding(self, ctx):
        keys = np.full(W, np.inf, dtype=np.float32)
        keys[:5] = [3, 1, 4, 1, 5]
        sk, _ = warp_bitonic_sort(ctx, keys, np.arange(W))
        assert np.array_equal(sk[:5], np.array([1, 1, 3, 4, 5], dtype=np.float32))
        assert np.isinf(sk[5:]).all()

    def test_inputs_not_mutated(self, ctx):
        keys = np.random.default_rng(1).random(W).astype(np.float32)
        orig = keys.copy()
        warp_bitonic_sort(ctx, keys, np.arange(W))
        assert np.array_equal(keys, orig)

    def test_charges_alu_cycles(self, ctx):
        before = ctx._metrics.alu_ops
        warp_bitonic_sort(ctx, np.random.default_rng(2).random(W), np.arange(W))
        # log2(32)=5 phases -> 15 compare-exchange steps, each shfl + alu
        assert ctx._metrics.alu_ops - before >= 15


class TestSortedMerge:
    def test_keeps_smallest_w(self, ctx):
        rng = np.random.default_rng(3)
        for _ in range(10):
            a = np.sort(rng.random(W).astype(np.float32))
            b = np.sort(rng.random(W).astype(np.float32))
            mk, _ = warp_sorted_merge_max(ctx, a, np.arange(W), b, np.arange(W) + 100)
            ref = np.sort(np.concatenate([a, b]))[:W]
            assert np.allclose(mk, ref)

    def test_values_follow_keys(self, ctx):
        a = np.sort(np.random.default_rng(4).random(W).astype(np.float32))
        b = np.sort(np.random.default_rng(5).random(W).astype(np.float32))
        va = np.arange(W)
        vb = np.arange(W) + 1000
        mk, mv = warp_sorted_merge_max(ctx, a, va, b, vb)
        lookup = np.concatenate([a, b])
        vals = np.concatenate([va, vb])
        for key, val in zip(mk, mv):
            assert key in lookup
            assert vals[np.flatnonzero(lookup == key)[0]] == val or key in lookup

    def test_all_from_one_side(self, ctx):
        a = np.sort(np.random.default_rng(6).random(W).astype(np.float32))
        b = np.full(W, np.inf, dtype=np.float32)
        mk, mv = warp_sorted_merge_max(ctx, a, np.arange(W), b, np.full(W, -1))
        assert np.allclose(mk, a)
        assert np.array_equal(mv, np.arange(W))

    def test_interleaved(self, ctx):
        a = np.arange(0, 2 * W, 2, dtype=np.float32)  # evens
        b = np.arange(1, 2 * W, 2, dtype=np.float32)  # odds
        mk, _ = warp_sorted_merge_max(ctx, a, np.arange(W), b, np.arange(W))
        assert np.array_equal(mk, np.arange(W, dtype=np.float32))

    def test_output_sorted(self, ctx):
        rng = np.random.default_rng(7)
        a = np.sort(rng.random(W).astype(np.float32))
        b = np.sort(rng.random(W).astype(np.float32))
        mk, _ = warp_sorted_merge_max(ctx, a, np.arange(W), b, np.arange(W))
        assert (np.diff(mk) >= 0).all()
