"""Tests for repro.utils.arrays."""

import numpy as np
import pytest

from repro.utils.arrays import (
    blockwise_ranges,
    dedupe_per_row,
    pad_to_length,
    row_topk,
    segment_lengths,
)


class TestBlockwiseRanges:
    def test_exact_multiple(self):
        assert list(blockwise_ranges(6, 2)) == [(0, 2), (2, 4), (4, 6)]

    def test_ragged_tail(self):
        assert list(blockwise_ranges(5, 2)) == [(0, 2), (2, 4), (4, 5)]

    def test_single_block(self):
        assert list(blockwise_ranges(3, 10)) == [(0, 3)]

    def test_empty(self):
        assert list(blockwise_ranges(0, 4)) == []

    def test_bad_block(self):
        with pytest.raises(ValueError):
            list(blockwise_ranges(5, 0))

    def test_covers_everything_once(self):
        seen = np.zeros(17, dtype=int)
        for s, e in blockwise_ranges(17, 5):
            seen[s:e] += 1
        assert (seen == 1).all()


class TestPadToLength:
    def test_pads(self):
        out = pad_to_length(np.array([1, 2]), 4, -1)
        assert out.tolist() == [1, 2, -1, -1]

    def test_noop_when_long_enough(self):
        arr = np.array([1, 2, 3])
        assert pad_to_length(arr, 3, 0) is arr

    def test_dtype_preserved(self):
        out = pad_to_length(np.array([1.5], dtype=np.float32), 2, np.inf)
        assert out.dtype == np.float32


class TestRowTopk:
    def test_selects_smallest_sorted(self):
        d = np.array([[3.0, 1.0, 2.0, 0.5]], dtype=np.float32)
        i = np.array([[30, 10, 20, 5]], dtype=np.int32)
        td, ti = row_topk(d, i, 2)
        assert td.tolist() == [[0.5, 1.0]]
        assert ti.tolist() == [[5, 10]]

    def test_k_equals_m(self):
        d = np.array([[2.0, 1.0]], dtype=np.float32)
        i = np.array([[2, 1]], dtype=np.int32)
        td, ti = row_topk(d, i, 2)
        assert td.tolist() == [[1.0, 2.0]] and ti.tolist() == [[1, 2]]

    def test_k_too_large(self):
        with pytest.raises(ValueError):
            row_topk(np.zeros((1, 2)), np.zeros((1, 2), dtype=int), 3)

    def test_inf_sorts_last(self):
        d = np.array([[np.inf, 1.0, np.inf]], dtype=np.float32)
        i = np.array([[0, 1, 2]], dtype=np.int32)
        td, ti = row_topk(d, i, 2)
        assert ti[0, 0] == 1

    def test_matches_full_sort_random(self):
        rng = np.random.default_rng(0)
        d = rng.random((20, 15)).astype(np.float32)
        i = np.broadcast_to(np.arange(15, dtype=np.int32), d.shape).copy()
        td, ti = row_topk(d, i, 6)
        ref = np.sort(d, axis=1)[:, :6]
        assert np.allclose(td, ref)


class TestSegmentLengths:
    def test_basic(self):
        keys = np.array([0, 0, 2, 2, 2, 5])
        u, s, c = segment_lengths(keys)
        assert u.tolist() == [0, 2, 5]
        assert s.tolist() == [0, 2, 5]
        assert c.tolist() == [2, 3, 1]

    def test_single_segment(self):
        u, s, c = segment_lengths(np.array([7, 7, 7]))
        assert u.tolist() == [7] and s.tolist() == [0] and c.tolist() == [3]

    def test_empty(self):
        u, s, c = segment_lengths(np.array([], dtype=np.int64))
        assert u.size == 0 and s.size == 0 and c.size == 0

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            segment_lengths(np.zeros((2, 2)))

    def test_counts_sum_to_n(self):
        rng = np.random.default_rng(1)
        keys = np.sort(rng.integers(0, 10, 100))
        _, _, c = segment_lengths(keys)
        assert c.sum() == 100


class TestDedupePerRow:
    def test_keeps_first_occurrence(self):
        ids = np.array([[3, 1, 3, 2]])
        out = dedupe_per_row(ids)
        assert out.tolist() == [[3, 1, -1, 2]]

    def test_no_duplicates_unchanged(self):
        ids = np.array([[1, 2, 3], [4, 5, 6]])
        assert np.array_equal(dedupe_per_row(ids), ids)

    def test_rows_independent(self):
        ids = np.array([[1, 1], [1, 2]])
        out = dedupe_per_row(ids)
        assert out.tolist() == [[1, -1], [1, 2]]

    def test_custom_invalid_marker(self):
        ids = np.array([[5, 5]])
        out = dedupe_per_row(ids, invalid=-9)
        assert out.tolist() == [[5, -9]]

    def test_each_value_appears_once(self):
        rng = np.random.default_rng(2)
        ids = rng.integers(0, 8, (30, 20))
        out = dedupe_per_row(ids)
        for row in out:
            vals = row[row != -1]
            assert len(vals) == len(np.unique(vals))
