"""Tests for the FAISS-like IVF-Flat index."""

import numpy as np
import pytest

from repro.baselines.bruteforce import BruteForceKNN
from repro.baselines.ivf import IVFConfig, IVFFlatIndex, ivf_knn_graph
from repro.data.synthetic import gaussian_mixture
from repro.errors import ConfigurationError
from repro.metrics.recall import knn_recall


@pytest.fixture(scope="module")
def data():
    x = gaussian_mixture(800, 12, n_clusters=16, cluster_std=0.6, seed=3)
    gt, _ = BruteForceKNN(x).search(x, 8, exclude_self=True)
    return x, gt


class TestConfig:
    def test_defaults(self):
        cfg = IVFConfig()
        assert cfg.nprobe == 8

    def test_resolve_heuristic(self):
        assert IVFConfig().resolve_n_lists(10000) == 100

    def test_explicit_n_lists(self):
        assert IVFConfig(n_lists=17).resolve_n_lists(1000) == 17

    def test_n_lists_exceeds_points(self):
        with pytest.raises(ConfigurationError):
            IVFConfig(n_lists=100).resolve_n_lists(50)

    def test_bad_nprobe(self):
        with pytest.raises(ConfigurationError):
            IVFConfig(nprobe=0)


class TestFit:
    def test_lists_partition_points(self, data):
        x, _ = data
        index = IVFFlatIndex(IVFConfig(seed=0)).fit(x)
        members = np.concatenate(index.lists)
        assert sorted(members.tolist()) == list(range(800))

    def test_members_nearest_centroid(self, data):
        x, _ = data
        index = IVFFlatIndex(IVFConfig(seed=0)).fit(x)
        d = ((x[:, None, :] - index.centroids[None, :, :]) ** 2).sum(-1)
        nearest = d.argmin(axis=1)
        for c, members in enumerate(index.lists):
            assert (nearest[members] == c).all()

    def test_search_before_fit_rejected(self):
        with pytest.raises(ConfigurationError):
            IVFFlatIndex(IVFConfig()).search(np.zeros((1, 2), dtype=np.float32), 1)


class TestSearch:
    def test_full_probe_is_exact(self, data):
        x, gt = data
        index = IVFFlatIndex(IVFConfig(seed=0)).fit(x)
        g = index.knn_graph(8, nprobe=index.n_lists)
        assert knn_recall(g.ids, gt) > 0.999

    def test_recall_monotone_in_nprobe(self, data):
        x, gt = data
        index = IVFFlatIndex(IVFConfig(seed=0)).fit(x)
        recalls = [
            knn_recall(index.knn_graph(8, nprobe=p).ids, gt) for p in (1, 4, 16)
        ]
        assert recalls[0] <= recalls[1] + 0.02
        assert recalls[1] <= recalls[2] + 0.02

    def test_exclude_self(self, data):
        x, _ = data
        g = IVFFlatIndex(IVFConfig(seed=0)).fit(x).knn_graph(4)
        assert not (g.ids == np.arange(800)[:, None]).any()

    def test_search_stats_populated(self, data):
        x, _ = data
        index = IVFFlatIndex(IVFConfig(nprobe=4, seed=0)).fit(x)
        index.search(x[:50], 4)
        stats = index.last_search_stats
        assert stats["centroid_distance_evals"] == 50 * index.n_lists
        assert stats["candidate_distance_evals"] > 0

    def test_more_probes_more_work(self, data):
        x, _ = data
        index = IVFFlatIndex(IVFConfig(seed=0)).fit(x)
        index.search(x[:50], 4, nprobe=1)
        work1 = index.last_search_stats["candidate_distance_evals"]
        index.search(x[:50], 4, nprobe=8)
        work8 = index.last_search_stats["candidate_distance_evals"]
        assert work8 > work1

    def test_unfilled_slots_marked(self):
        # k larger than the candidates available at nprobe=1
        x = gaussian_mixture(60, 4, n_clusters=6, seed=1)
        index = IVFFlatIndex(IVFConfig(n_lists=20, nprobe=1, seed=0)).fit(x)
        ids, dists = index.search(x[:5], 30, nprobe=1)
        assert (ids == -1).any()
        assert np.isinf(dists[ids == -1]).all()

    def test_query_shapes(self, data):
        x, _ = data
        index = IVFFlatIndex(IVFConfig(seed=0)).fit(x)
        ids, dists = index.search(x[:7], 3)
        assert ids.shape == (7, 3) and dists.shape == (7, 3)

    def test_one_shot_helper(self, data):
        x, gt = data
        g = ivf_knn_graph(x, 8, IVFConfig(nprobe=16, seed=0))
        assert knn_recall(g.ids, gt) > 0.8
        assert g.meta["algorithm"] == "ivf-flat"
