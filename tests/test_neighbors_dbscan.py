"""Tests for KNN-DBSCAN, the union-find kernel, and the ARI metric."""

import numpy as np
import pytest
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import connected_components as scipy_cc

from repro.baselines.bruteforce import BruteForceKNN
from repro.data.synthetic import gaussian_mixture
from repro.errors import ConfigurationError, DataError
from repro.metrics import adjusted_rand_index
from repro.neighbors import (
    DBSCANConfig,
    KNNDBSCAN,
    connected_components,
    exact_dbscan,
)
from repro.obs import Observability


def same_partition(a, b) -> bool:
    """True iff two labelings induce the same partition (bijective map)."""
    a, b = np.asarray(a), np.asarray(b)
    pairs = set(zip(a.tolist(), b.tolist()))
    return (len({x for x, _ in pairs}) == len(pairs)
            and len({y for _, y in pairs}) == len(pairs))


class TestUnionFind:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_scipy_on_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n, m = 200, 300
        src = rng.integers(0, n, m)
        dst = rng.integers(0, n, m)
        labels = connected_components(n, src, dst)
        adj = csr_matrix((np.ones(m), (src, dst)), shape=(n, n))
        n_ref, ref = scipy_cc(adj, directed=False)
        assert np.unique(labels).size == n_ref
        assert same_partition(labels, ref)

    def test_no_edges_every_node_its_own_component(self):
        e = np.array([], dtype=np.int64)
        labels = connected_components(5, e, e)
        assert np.array_equal(labels, np.arange(5))

    def test_labels_are_component_min_ids(self):
        src = np.array([4, 1])
        dst = np.array([2, 3])
        labels = connected_components(5, src, dst)
        assert labels.tolist() == [0, 1, 2, 1, 2]

    def test_chain_collapses_to_one_component(self):
        src = np.arange(99)
        labels = connected_components(100, src, src + 1)
        assert (labels == 0).all()

    def test_validation(self):
        with pytest.raises(DataError):
            connected_components(3, np.array([0]), np.array([1, 2]))
        with pytest.raises(DataError):
            connected_components(3, np.array([0]), np.array([3]))
        with pytest.raises(DataError):
            connected_components(3, np.array([-1]), np.array([0]))


class TestARI:
    def test_identical_and_permuted(self):
        a = np.array([0, 0, 1, 1, 2, 2])
        assert adjusted_rand_index(a, a) == pytest.approx(1.0)
        assert adjusted_rand_index(a, (a + 1) % 3) == pytest.approx(1.0)

    def test_known_value(self):
        # classic small case: ARI((0,0,1,1),(0,0,1,2)) == 0.5714...
        a = np.array([0, 0, 1, 1])
        b = np.array([0, 0, 1, 2])
        assert adjusted_rand_index(a, b) == pytest.approx(4 / 7)

    def test_random_labels_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 5, 2000)
        b = rng.integers(0, 5, 2000)
        assert abs(adjusted_rand_index(a, b)) < 0.02

    def test_single_cluster_degenerate(self):
        a = np.zeros(10, dtype=int)
        assert adjusted_rand_index(a, a) == 1.0


class TestConfig:
    def test_bad_eps(self):
        with pytest.raises(ConfigurationError):
            DBSCANConfig(eps=0.0)
        with pytest.raises(ConfigurationError):
            DBSCANConfig(eps=-1.0)

    def test_bad_min_pts(self):
        with pytest.raises(ConfigurationError):
            DBSCANConfig(min_pts=0)

    def test_knn_k_must_cover_core_test(self):
        with pytest.raises(ConfigurationError):
            DBSCANConfig(min_pts=10, knn_k=5)
        DBSCANConfig(min_pts=10, knn_k=9)  # exactly min_pts - 1 is fine

    def test_effective_k_default(self):
        assert DBSCANConfig(min_pts=5).effective_k() == 16
        assert DBSCANConfig(min_pts=30).effective_k() == 30
        assert DBSCANConfig(knn_k=12).effective_k() == 12


@pytest.fixture(scope="module")
def blobs():
    x = gaussian_mixture(600, 8, n_clusters=5, cluster_std=0.4,
                         center_scale=6.0, seed=3)
    return x


class TestKNNDBSCAN:
    @pytest.mark.parametrize("min_pts", [1, 2, 5])
    def test_ari_vs_exact_reference(self, blobs, min_pts):
        """Exact graph (brute-force rows) -> the reduction recovers the
        reference clustering at matched eps/min_pts."""
        eps = 2.0
        graph = BruteForceKNN(blobs).knn_graph(24)
        labels = KNNDBSCAN(DBSCANConfig(eps=eps, min_pts=min_pts)) \
            .fit_predict(graph)
        ref = exact_dbscan(blobs, eps, min_pts)
        assert adjusted_rand_index(ref, labels) >= 0.95

    def test_fit_predict_on_raw_points(self, blobs):
        model = KNNDBSCAN(DBSCANConfig(eps=2.0, min_pts=5, knn_k=24))
        labels = model.fit_predict(blobs)
        assert labels.shape == (600,)
        assert model.knn_graph is not None
        assert model.n_clusters_ >= 2
        ref = exact_dbscan(blobs, 2.0, 5)
        assert adjusted_rand_index(ref, labels) >= 0.95

    def test_min_pts_one_everything_core(self, blobs):
        graph = BruteForceKNN(blobs).knn_graph(8)
        model = KNNDBSCAN(DBSCANConfig(eps=2.0, min_pts=1))
        labels = model.fit_predict(graph)
        assert model.core_mask_.all()
        assert (labels >= 0).all()

    def test_handcrafted_borders_and_noise(self):
        """Two dense groups, one border point, one far outlier."""
        x = np.array([
            [0.0], [0.1], [0.2],      # cluster A (dense)
            [5.0], [5.1], [5.2],      # cluster B (dense)
            [0.45], [50.0],           # border of A, noise
        ], dtype=np.float32)
        graph = BruteForceKNN(x).knn_graph(6)
        model = KNNDBSCAN(DBSCANConfig(eps=0.1, min_pts=3))
        labels = model.fit_predict(graph)
        # eps is squared: radius sqrt(0.1) ~ 0.316 covers the 0.1-0.2
        # spacings inside groups
        assert labels[0] == labels[1] == labels[2] == 0
        assert labels[3] == labels[4] == labels[5] == 1
        # the border point (0.45) is within eps of the core at 0.2 but
        # holds only 2 points in its own ball -> border, joins A
        assert not model.core_mask_[6]
        assert labels[6] == 0
        assert labels[7] == -1
        assert model.n_clusters_ == 2

    def test_labels_numbered_by_first_appearance(self, blobs):
        graph = BruteForceKNN(blobs).knn_graph(24)
        labels = KNNDBSCAN(DBSCANConfig(eps=2.0, min_pts=5)) \
            .fit_predict(graph)
        assigned = labels[labels >= 0]
        firsts = [np.flatnonzero(labels == c)[0]
                  for c in range(int(assigned.max()) + 1)]
        assert firsts == sorted(firsts)

    def test_degree_too_small_rejected(self, blobs):
        graph = BruteForceKNN(blobs).knn_graph(3)
        with pytest.raises(ConfigurationError):
            KNNDBSCAN(DBSCANConfig(eps=2.0, min_pts=6)).fit_predict(graph)

    def test_bad_points_shape(self):
        with pytest.raises(DataError):
            KNNDBSCAN().fit_predict(np.zeros(7, dtype=np.float32))

    def test_obs_counters(self, blobs):
        obs = Observability()
        graph = BruteForceKNN(blobs).knn_graph(24)
        model = KNNDBSCAN(DBSCANConfig(eps=2.0, min_pts=5), obs=obs)
        labels = model.fit_predict(graph)
        scoped = obs.metrics.scoped("dbscan/")
        assert scoped.counter("core_points").get() == int(model.core_mask_.sum())
        assert scoped.counter("clusters").get() == model.n_clusters_
        assert scoped.counter("noise").get() == int((labels == -1).sum())
        assert scoped.counter("border").get() == int(
            ((labels >= 0) & ~model.core_mask_).sum())


class TestExactDBSCAN:
    def test_validation(self):
        x = np.zeros((4, 2), dtype=np.float32)
        with pytest.raises(ConfigurationError):
            exact_dbscan(x, 0.0, 3)
        with pytest.raises(ConfigurationError):
            exact_dbscan(x, 1.0, 0)
        with pytest.raises(DataError):
            exact_dbscan(np.zeros(4, dtype=np.float32), 1.0, 3)

    def test_blocked_equals_unblocked(self, blobs):
        a = exact_dbscan(blobs, 2.0, 5, block_rows=64)
        b = exact_dbscan(blobs, 2.0, 5, block_rows=10_000)
        assert np.array_equal(a, b)
