"""Tests for the warp context: intrinsics, predication, divergence."""

import numpy as np
import pytest

from repro.errors import SimtError
from repro.simt.config import DeviceConfig
from repro.simt.device import Device
from repro.simt.shared import SharedMemory
from repro.simt.warp import WarpContext

W = 32


@pytest.fixture()
def ctx():
    dev = Device(DeviceConfig())
    return WarpContext(dev, SharedMemory(dev.config, dev.metrics), 0, 0, 1, 1)


class TestIdentity:
    def test_lane_id(self, ctx):
        assert np.array_equal(ctx.lane_id, np.arange(W))

    def test_warp_id_global(self):
        dev = Device()
        shared = SharedMemory(dev.config, dev.metrics)
        c = WarpContext(dev, shared, block_id=3, warp_id=2, block_warps=4, grid_blocks=5)
        assert c.warp_id_global == 14
        assert c.grid_warps == 20


class TestShuffles:
    def test_shfl_broadcast(self, ctx):
        vals = np.arange(W) * 10
        out = ctx.shfl(vals, 5)
        assert (out == 50).all()

    def test_shfl_vector_sources(self, ctx):
        vals = np.arange(W)
        src = (np.arange(W) + 1) % W
        assert np.array_equal(ctx.shfl(vals, src), src)

    def test_shfl_down(self, ctx):
        vals = np.arange(W)
        out = ctx.shfl_down(vals, 1)
        assert np.array_equal(out[:-1], np.arange(1, W))
        assert out[-1] == W - 1  # edge lane keeps its value

    def test_shfl_xor_is_involution(self, ctx):
        vals = np.arange(W) * 3
        once = ctx.shfl_xor(vals, 4)
        twice = ctx.shfl_xor(once, 4)
        assert np.array_equal(twice, vals)


class TestVotes:
    def test_ballot_bits(self, ctx):
        pred = ctx.lane_id < 3
        assert ctx.ballot(pred) == 0b111

    def test_ballot_respects_mask(self, ctx):
        mask = np.zeros(W, dtype=bool)
        mask[1] = True
        assert ctx.ballot(np.ones(W, dtype=bool), mask) == 0b10

    def test_any_all(self, ctx):
        assert ctx.any(ctx.lane_id == 7)
        assert not ctx.any(ctx.lane_id == W + 1)
        assert ctx.all(ctx.lane_id >= 0)
        assert not ctx.all(ctx.lane_id > 0)

    def test_all_on_empty_mask_true(self, ctx):
        assert ctx.all(np.zeros(W, dtype=bool), np.zeros(W, dtype=bool))


class TestReductions:
    def test_reduce_sum(self, ctx):
        assert ctx.reduce_sum(np.ones(W)) == W

    def test_reduce_min_max(self, ctx):
        vals = np.arange(W, dtype=np.float64) - 5
        assert ctx.reduce_min(vals) == -5
        assert ctx.reduce_max(vals) == W - 6

    def test_reduce_with_mask(self, ctx):
        vals = np.arange(W, dtype=np.float64)
        mask = vals < 4
        assert ctx.reduce_sum(vals, mask) == 0 + 1 + 2 + 3

    def test_reduce_empty_mask_identities(self, ctx):
        empty = np.zeros(W, dtype=bool)
        vals = np.ones(W)
        assert ctx.reduce_sum(vals, empty) == 0
        assert np.isinf(ctx.reduce_min(vals, empty))
        assert np.isneginf(ctx.reduce_max(vals, empty))

    def test_argmax_lane(self, ctx):
        vals = np.zeros(W)
        vals[13] = 9.0
        v, lane = ctx.argmax_lane(vals)
        assert v == 9.0 and lane == 13

    def test_argmax_tie_lowest_lane(self, ctx):
        vals = np.ones(W)
        _, lane = ctx.argmax_lane(vals)
        assert lane == 0

    def test_argmin_lane_with_mask(self, ctx):
        vals = np.arange(W, dtype=np.float64)
        mask = vals >= 10
        v, lane = ctx.argmin_lane(vals, mask)
        assert v == 10 and lane == 10

    def test_argmin_empty_mask(self, ctx):
        v, lane = ctx.argmin_lane(np.ones(W), np.zeros(W, dtype=bool))
        assert lane == -1 and np.isinf(v)

    def test_exclusive_scan(self, ctx):
        out = ctx.exclusive_scan_sum(np.ones(W, dtype=np.int64))
        assert np.array_equal(out, np.arange(W))

    def test_exclusive_scan_masked(self, ctx):
        vals = np.ones(W, dtype=np.int64)
        mask = np.zeros(W, dtype=bool)
        mask[::2] = True
        out = ctx.exclusive_scan_sum(vals, mask)
        assert out[2] == 1 and out[4] == 2


class TestBranchDivergence:
    def test_uniform_branch_not_divergent(self, ctx):
        before = ctx._metrics.divergent_branches
        taken = ctx.branch(np.ones(W, dtype=bool))
        assert taken and ctx._metrics.divergent_branches == before

    def test_mixed_branch_divergent(self, ctx):
        before = ctx._metrics.divergent_branches
        taken = ctx.branch(ctx.lane_id < 5)
        assert taken and ctx._metrics.divergent_branches == before + 1

    def test_untaken_branch(self, ctx):
        assert not ctx.branch(np.zeros(W, dtype=bool))

    def test_scalar_predicate_broadcast(self, ctx):
        assert ctx.branch(True)
        assert not ctx.branch(False)


class TestIndexValidation:
    def test_scalar_index_broadcast(self, ctx):
        dev = ctx._device
        buf = dev.to_device(np.arange(4, dtype=np.float32))
        out = ctx.load(buf, 2, ctx.lane_id == 0)
        assert out[0] == 2.0

    def test_wrong_shape_rejected(self, ctx):
        dev = ctx._device
        buf = dev.to_device(np.arange(4, dtype=np.float32))
        with pytest.raises(SimtError, match="per-lane index"):
            ctx.load(buf, np.zeros(5, dtype=np.int64))
