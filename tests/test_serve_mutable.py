"""Serving a mutable index: epoch-keyed caching and snapshot pinning.

The serving layer's correctness contract under churn is structural:

* every response carries the epoch it was computed at
  (``SearchResult.epoch``);
* the result cache keys on ``(query, k, ef, epoch)``, so a flip makes
  every pre-flip entry unreachable - staleness is impossible by
  construction, no invalidation pass required;
* ``KNNServer`` pins one snapshot per micro-batch group, so all queries
  in a group are answered by the same immutable graph.
"""

import numpy as np
import pytest

from repro.apps.search import SearchConfig
from repro.core import BuildConfig, MutableConfig, MutableIndex
from repro.core.update import DynamicKNNG
from repro.data.synthetic import gaussian_mixture
from repro.serve import (
    AdmissionPolicy,
    CachePolicy,
    DirectClient,
    KNNServer,
    ResultCache,
    ServeConfig,
    ShedPolicy,
)


@pytest.fixture(scope="module")
def points():
    return gaussian_mixture(800, 16, n_clusters=10, cluster_std=0.8, seed=5)


def make_mutable(points, **kw):
    return MutableIndex.build(
        points,
        BuildConfig(k=8, n_trees=4, leaf_size=48, seed=0),
        SearchConfig(ef=48),
        MutableConfig(**kw) if kw else None,
    )


def serve_config(cache_size=256):
    return ServeConfig(
        admission=AdmissionPolicy(max_batch=16, max_wait_ms=1.0,
                                  queue_limit=256),
        cache=CachePolicy(size=cache_size),
        ef=48,
        shed=ShedPolicy(enabled=False),
    )


class TestEpochKeyedCache:
    def test_key_differs_across_epochs(self):
        cache = ResultCache(8)
        q = np.ones(4, dtype=np.float32)
        k0 = cache.key(q, 5, 32, 0)
        k1 = cache.key(q, 5, 32, 1)
        assert k0 != k1
        cache.put(k0, ("old", None, 32))
        assert cache.get(k1) is None          # new epoch: structurally cold
        assert cache.get(k0) == ("old", None, 32)

    def test_flip_makes_cached_deleted_id_unreachable(self, points):
        """Warm the cache, delete a served id, re-query: the pre-flip
        entry must never be served again."""
        mut = make_mutable(points, compact_threshold=1.0)
        with KNNServer(mut, serve_config()) as server:
            q = points[3]
            first = server.query(q, 5, timeout=30.0)
            assert first.epoch == 0
            # second hit comes from the warm cache at the same epoch
            warm = server.query(q, 5, timeout=30.0)
            assert warm.from_cache and warm.epoch == 0
            victim = int(first.ids[0])
            mut.delete(np.array([victim]))
            after = server.query(q, 5, timeout=30.0)
            assert after.epoch == 1
            assert not after.from_cache        # old entry is unreachable
            assert victim not in after.ids.tolist()

    def test_cache_warms_again_at_new_epoch(self, points):
        mut = make_mutable(points)
        with KNNServer(mut, serve_config()) as server:
            q = points[10]
            server.query(q, 5, timeout=30.0)
            mut.delete(mut.live_ids()[-3:])
            miss = server.query(q, 5, timeout=30.0)
            assert not miss.from_cache and miss.epoch == 1
            hit = server.query(q, 5, timeout=30.0)
            assert hit.from_cache and hit.epoch == 1
            assert np.array_equal(hit.ids, miss.ids)


class TestEpochPropagation:
    def test_server_reports_live_epoch(self, points):
        mut = make_mutable(points)
        with KNNServer(mut, serve_config(cache_size=0)) as server:
            assert server.query(points[0], 5, timeout=30.0).epoch == 0
            mut.insert(points[:4])
            mut.delete(mut.live_ids()[-2:])
            assert server.query(points[1], 5, timeout=30.0).epoch == 2

    def test_static_index_reports_epoch_zero(self, points):
        """Engines without epochs (plain GraphSearchIndex) serve epoch 0."""
        from repro.apps.search import GraphSearchIndex
        idx = GraphSearchIndex.build(
            points, build_config=BuildConfig(k=8, n_trees=4, leaf_size=48,
                                             seed=0),
            search_config=SearchConfig(ef=48),
        )
        with KNNServer(idx, serve_config()) as server:
            assert server.query(points[0], 5, timeout=30.0).epoch == 0

    def test_direct_client_pins_snapshot_and_reports_epoch(self, points):
        mut = make_mutable(points)
        client = DirectClient(mut)
        res = client.query(points[0], 5)
        assert res.epoch == 0
        victim = int(res.ids[0])
        mut.delete(np.array([victim]))
        res2 = client.query(points[0], 5)
        assert res2.epoch == 1
        assert victim not in res2.ids.tolist()

    def test_dynamic_knng_snapshot_method_not_mistaken_for_view(self,
                                                                points):
        """DynamicKNNG.snapshot is a *method*; the serving layer must not
        call-confuse it with MutableIndex's snapshot property."""
        dyn = DynamicKNNG.build(points, BuildConfig(k=8, n_trees=4,
                                                    leaf_size=48, seed=0))
        assert callable(dyn.snapshot)          # the guard's premise
        from repro.apps.search import GraphSearchIndex
        idx = GraphSearchIndex.build(
            points, build_config=BuildConfig(k=8, n_trees=4, leaf_size=48,
                                             seed=0),
            search_config=SearchConfig(ef=48),
        )
        # attach the method-style attribute the guard must skip over
        idx.snapshot = dyn.snapshot
        client = DirectClient(idx)
        res = client.query(points[0], 5)
        assert res.epoch == 0 and res.ids.shape == (5,)


class TestServingUnderMutation:
    def test_group_consistency_under_interleaved_flips(self, points):
        """Responses are internally consistent: no response mixes ids from
        two epochs (every id decodes in its epoch's id universe)."""
        mut = make_mutable(points, compact_threshold=0.3)
        universe_at = {0: set(int(i) for i in mut.live_ids())}
        with KNNServer(mut, serve_config(cache_size=0)) as server:
            for step in range(6):
                if step % 2 == 0:
                    mut.insert(points[:8] + np.float32(0.01 * (step + 1)))
                else:
                    mut.delete(mut.live_ids()[:10])
                universe_at[mut.epoch] = set(int(i) for i in mut.live_ids())
                res = server.query(points[20], 6, timeout=30.0)
                assert res.epoch in universe_at
                served = set(int(i) for i in res.ids if i >= 0)
                assert served <= universe_at[res.epoch], (
                    f"ids {served - universe_at[res.epoch]} not live at "
                    f"epoch {res.epoch}"
                )
