"""Tests for repro.utils.rng: reproducibility and stream independence."""

import numpy as np
import pytest

from repro.utils.rng import (
    as_generator,
    random_unit_vectors,
    sample_without_replacement,
    spawn_streams,
)


class TestAsGenerator:
    def test_int_seed_reproducible(self):
        a = as_generator(7).random(5)
        b = as_generator(7).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(as_generator(1).random(5), as_generator(2).random(5))

    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_generator_passthrough_identity(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(5)
        a = as_generator(ss).random(3)
        b = as_generator(np.random.SeedSequence(5)).random(3)
        assert np.array_equal(a, b)


class TestSpawnStreams:
    def test_count(self):
        assert len(spawn_streams(0, 5)) == 5

    def test_zero_streams(self):
        assert spawn_streams(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_streams(0, -1)

    def test_streams_independent(self):
        s1, s2 = spawn_streams(9, 2)
        assert not np.array_equal(s1.random(10), s2.random(10))

    def test_reproducible_from_int_seed(self):
        a = [g.random(4) for g in spawn_streams(3, 3)]
        b = [g.random(4) for g in spawn_streams(3, 3)]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_int_seed_not_consumed(self):
        spawn_streams(3, 2)
        a = [g.random(2) for g in spawn_streams(3, 2)]
        b = [g.random(2) for g in spawn_streams(3, 2)]
        assert np.array_equal(a[0], b[0])


class TestRandomUnitVectors:
    def test_unit_norm(self):
        v = random_unit_vectors(np.random.default_rng(0), 50, 12)
        assert np.allclose(np.linalg.norm(v, axis=1), 1.0, atol=1e-5)

    def test_shape_and_dtype(self):
        v = random_unit_vectors(np.random.default_rng(0), 3, 7)
        assert v.shape == (3, 7) and v.dtype == np.float32

    def test_invalid_args_raise(self):
        with pytest.raises(ValueError):
            random_unit_vectors(np.random.default_rng(0), 0, 5)
        with pytest.raises(ValueError):
            random_unit_vectors(np.random.default_rng(0), 5, 0)

    def test_directions_cover_both_signs(self):
        v = random_unit_vectors(np.random.default_rng(1), 100, 3)
        assert (v[:, 0] > 0).any() and (v[:, 0] < 0).any()


class TestSampleWithoutReplacement:
    def test_distinct(self):
        s = sample_without_replacement(np.random.default_rng(0), 100, 30)
        assert len(np.unique(s)) == 30

    def test_clamps_to_population(self):
        s = sample_without_replacement(np.random.default_rng(0), 5, 10)
        assert sorted(s.tolist()) == [0, 1, 2, 3, 4]

    def test_array_population(self):
        pool = np.array([10, 20, 30, 40])
        s = sample_without_replacement(np.random.default_rng(0), pool, 2)
        assert set(s.tolist()) <= {10, 20, 30, 40}
        assert len(s) == 2
