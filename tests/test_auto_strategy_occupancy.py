"""Tests for strategy="auto" resolution and the multi-SM occupancy model."""

import numpy as np
import pytest

from repro import BuildConfig, WKNNGBuilder
from repro.bench.costmodel import preferred_strategy
from repro.data.synthetic import gaussian_mixture
from repro.errors import ConfigurationError
from repro.simt.device import Device


class TestPreferredStrategy:
    def test_low_dim_prefers_atomic(self):
        assert preferred_strategy(8, 16, 64) == "atomic"

    def test_high_dim_prefers_tiled(self):
        assert preferred_strategy(960, 16, 64) == "tiled"

    def test_monotone_in_dim(self):
        """Once tiled wins, it keeps winning for larger d (fixed geometry)."""
        choices = [preferred_strategy(d, 16, 64) for d in (4, 32, 128, 512, 960)]
        first_tiled = choices.index("tiled") if "tiled" in choices else len(choices)
        assert all(c == "tiled" for c in choices[first_tiled:])


class TestAutoStrategy:
    def test_auto_accepted_by_config(self):
        assert BuildConfig(strategy="auto").strategy == "auto"

    def test_unknown_still_rejected(self):
        with pytest.raises(ConfigurationError):
            BuildConfig(strategy="automagic")

    def test_auto_resolves_low_dim(self):
        x = gaussian_mixture(500, 8, n_clusters=10, seed=0)
        g = WKNNGBuilder(BuildConfig(k=8, strategy="auto", n_trees=2,
                                     leaf_size=40, refine_iters=1, seed=0)).build(x)
        assert g.meta["strategy"] == "atomic"

    def test_auto_resolves_high_dim(self):
        x = gaussian_mixture(300, 512, n_clusters=10, seed=0)
        g = WKNNGBuilder(BuildConfig(k=8, strategy="auto", n_trees=2,
                                     leaf_size=40, refine_iters=1, seed=0)).build(x)
        assert g.meta["strategy"] == "tiled"

    def test_auto_graph_quality(self):
        from repro.baselines import exact_knn_graph
        from repro.metrics.recall import knn_recall

        x = gaussian_mixture(600, 16, n_clusters=12, seed=1)
        g = WKNNGBuilder(BuildConfig(k=8, strategy="auto", n_trees=4,
                                     leaf_size=48, refine_iters=2, seed=0)).build(x)
        assert knn_recall(g.ids, exact_knn_graph(x, 8).ids) > 0.9

    def test_explicit_strategy_unchanged(self):
        x = gaussian_mixture(300, 8, n_clusters=10, seed=0)
        g = WKNNGBuilder(BuildConfig(k=8, strategy="tiled", n_trees=2,
                                     leaf_size=40, refine_iters=0, seed=0)).build(x)
        assert g.meta["strategy"] == "tiled"


class TestOccupancyModel:
    def _launch(self, dev, grid_blocks):
        buf = dev.to_device(np.zeros(64 * grid_blocks, dtype=np.float32))

        def kernel(ctx, b):
            base = ctx.block_id * 64
            ctx.load(b, base + ctx.lane_id)
            ctx.load(b, base + 32 + ctx.lane_id)

        dev.launch(kernel, grid_blocks=grid_blocks, block_warps=1, args=(buf,))

    def test_single_sm_equals_sum(self):
        dev = Device()
        self._launch(dev, 6)
        assert dev.parallel_cycles(1) == sum(dev.last_launch_block_cycles)

    def test_many_sms_equals_max(self):
        dev = Device()
        self._launch(dev, 6)
        assert dev.parallel_cycles(100) == max(dev.last_launch_block_cycles)

    def test_monotone_in_sms(self):
        dev = Device()
        self._launch(dev, 8)
        times = [dev.parallel_cycles(p) for p in (1, 2, 4, 8)]
        assert times == sorted(times, reverse=True)

    def test_no_launch_zero(self):
        assert Device().parallel_cycles(4) == 0

    def test_invalid_sms(self):
        with pytest.raises(ValueError):
            Device().parallel_cycles(0)

    def test_block_cycles_recorded_per_launch(self):
        dev = Device()
        self._launch(dev, 3)
        assert len(dev.last_launch_block_cycles) == 3
        self._launch(dev, 5)
        assert len(dev.last_launch_block_cycles) == 5
