"""Tests for the k-means trainer behind the IVF coarse quantiser."""

import numpy as np
import pytest

from repro.baselines.kmeans import assign, kmeans, kmeans_pp_init
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(1)
    centers = np.array([[0, 0], [10, 0], [0, 10], [10, 10]], dtype=np.float32)
    labels = rng.integers(0, 4, 400)
    return (centers[labels] + rng.standard_normal((400, 2)) * 0.3).astype(np.float32), centers


class TestInit:
    def test_shape(self, blobs):
        x, _ = blobs
        c = kmeans_pp_init(x, 4, np.random.default_rng(0))
        assert c.shape == (4, 2)

    def test_centroids_are_data_points(self, blobs):
        x, _ = blobs
        c = kmeans_pp_init(x, 4, np.random.default_rng(0))
        for row in c:
            assert (np.abs(x - row).sum(axis=1) < 1e-6).any()

    def test_spread_across_clusters(self, blobs):
        x, centers = blobs
        c = kmeans_pp_init(x, 4, np.random.default_rng(0))
        # ++ init almost always picks one seed per well-separated blob
        d = ((c[:, None, :] - centers[None, :, :]) ** 2).sum(-1)
        assert len(set(d.argmin(axis=1).tolist())) >= 3

    def test_degenerate_all_identical(self):
        x = np.ones((20, 3), dtype=np.float32)
        c = kmeans_pp_init(x, 5, np.random.default_rng(0))
        assert c.shape == (5, 3)
        assert np.allclose(c, 1.0)


class TestAssign:
    def test_nearest(self, blobs):
        x, centers = blobs
        labels, dists = assign(x, centers)
        ref = ((x[:, None, :] - centers[None, :, :]) ** 2).sum(-1)
        assert np.array_equal(labels, ref.argmin(axis=1))
        assert np.allclose(dists, ref.min(axis=1), rtol=1e-3, atol=1e-3)


class TestKmeans:
    def test_recovers_blob_centers(self, blobs):
        x, centers = blobs
        c = kmeans(x, 4, n_iters=15, seed=0)
        d = ((c[:, None, :] - centers[None, :, :]) ** 2).sum(-1)
        assert (d.min(axis=1) < 0.5).all()  # each centroid near a true center
        assert len(set(d.argmin(axis=1).tolist())) == 4  # all centers covered

    def test_reproducible(self, blobs):
        x, _ = blobs
        assert np.array_equal(kmeans(x, 4, seed=3), kmeans(x, 4, seed=3))

    def test_too_many_clusters_rejected(self):
        x = np.zeros((3, 2), dtype=np.float32)
        with pytest.raises(ConfigurationError):
            kmeans(x, 4)

    def test_zero_clusters_rejected(self, blobs):
        with pytest.raises(ConfigurationError):
            kmeans(blobs[0], 0)

    def test_train_sample(self, blobs):
        x, _ = blobs
        c = kmeans(x, 4, seed=0, train_sample=100)
        assert c.shape == (4, 2)

    def test_no_empty_cluster_collapse(self):
        # pathological: all points identical except one
        x = np.zeros((50, 2), dtype=np.float32)
        x[0] = [100, 100]
        c = kmeans(x, 3, n_iters=5, seed=0)
        assert np.isfinite(c).all()

    def test_zero_iters_is_init_only(self, blobs):
        x, _ = blobs
        c = kmeans(x, 4, n_iters=0, seed=1)
        assert c.shape == (4, 2)
