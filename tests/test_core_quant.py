"""The compressed memory tier: quantizers, ADC kernels, engine integration."""

import numpy as np
import pytest

from repro.apps.search import GraphSearchIndex, SearchConfig
from repro.core.quant import (
    KSUB_MAX,
    ProductQuantizer,
    QuantizedStore,
    ScalarQuantizer,
    parse_quantization,
)
from repro.data.synthetic import gaussian_mixture
from repro.errors import ConfigurationError, DataError
from repro.kernels.distance import (
    adc_l2_query_gather,
    sq8_l2_query_gather,
    sq_l2_query_gather,
)
from repro.serve import QuantizationPolicy, ServeConfig


@pytest.fixture(scope="module")
def points():
    return gaussian_mixture(400, 16, n_clusters=5, seed=11)


@pytest.fixture(scope="module")
def queries():
    return gaussian_mixture(20, 16, n_clusters=5, seed=13)


class TestParseQuantization:
    def test_known_specs(self):
        assert parse_quantization("none") == ("none", 0, "none")
        assert parse_quantization("sq8") == ("sq8", 0, "sq8")
        assert parse_quantization("pq8") == ("pq", 8, "pq8")
        assert parse_quantization("") == ("none", 0, "none")  # unset field

    def test_returns_canonical_spec(self):
        # the .spec field is what config equality and persisted stores
        # compare against, so it must be normalised, not the raw input
        assert parse_quantization("NONE").spec == "none"
        assert parse_quantization(" sq8 ").spec == "sq8"
        assert parse_quantization("PQ8").spec == "pq8"
        assert parse_quantization("pq08").spec == "pq8"

    @pytest.mark.parametrize(
        "spec",
        ["pq0", "pq-1", "pqx", "int4", "sq4",
         # int() tolerates sign/whitespace; the parser must not
         "pq+8", "pq 8", "pq8 x", "pq_8"],
    )
    def test_rejects_unknown(self, spec):
        with pytest.raises(ConfigurationError):
            parse_quantization(spec)

    def test_config_objects_store_canonical_spec(self):
        assert SearchConfig(quantization="NONE").quantization == "none"
        assert SearchConfig(quantization=" sq8 ").quantization == "sq8"
        assert QuantizationPolicy(mode="SQ8").mode == "sq8"
        assert QuantizationPolicy(mode="pq08").mode == "pq8"


class TestScalarQuantizer:
    def test_roundtrip_error_bounded_by_half_step(self, points):
        sq = ScalarQuantizer.fit(points)
        decoded = sq.decode(sq.encode(points))
        # rounding to the nearest grid point: error <= scale/2 per dim
        err = np.abs(decoded - points)
        assert np.all(err <= sq.scale / 2 + 1e-5)

    def test_constant_dimension_is_exact(self):
        x = np.ones((10, 3), dtype=np.float32)
        x[:, 1] = np.linspace(0, 1, 10)
        sq = ScalarQuantizer.fit(x)
        decoded = sq.decode(sq.encode(x))
        assert np.allclose(decoded[:, 0], 1.0)
        assert np.allclose(decoded[:, 2], 1.0)

    def test_codes_span_full_range(self, points):
        codes = ScalarQuantizer.fit(points).encode(points)
        assert codes.dtype == np.uint8
        assert codes.min() == 0
        assert codes.max() == KSUB_MAX - 1


class TestProductQuantizer:
    def test_roundtrip_tighter_than_global_centroid(self, points):
        pq = ProductQuantizer.fit(points, 4, seed=0)
        decoded = pq.decode(pq.encode(points))
        mse = float(np.mean((decoded - points) ** 2))
        baseline = float(np.mean((points - points.mean(axis=0)) ** 2))
        assert mse < 0.25 * baseline  # 256 centroids/sub-space >> 1 global

    def test_uneven_subspace_split(self, points):
        pq = ProductQuantizer.fit(points, 3, seed=0)  # 16 dims / 3 spaces
        assert pq.subspaces == 3
        assert pq.encode(points).shape == (points.shape[0], 3)
        assert pq.decode(pq.encode(points)).shape == points.shape

    def test_ksub_clamps_to_n(self):
        x = gaussian_mixture(40, 8, n_clusters=2, seed=1)
        pq = ProductQuantizer.fit(x, 2, seed=0)
        assert pq.ksub == 40
        assert pq.encode(x).max() < 40


class TestAdcParity:
    """ADC scoring must agree with exact distances to the decoded vectors."""

    @pytest.mark.parametrize("spec", ["sq8", "pq4"])
    def test_lut_adc_matches_decoded_exact(self, points, queries, spec):
        store = QuantizedStore.fit(points, spec, seed=0)
        cand = np.tile(np.arange(30, dtype=np.int64), (queries.shape[0], 1))
        approx = adc_l2_query_gather(store.luts(queries), store.codes, cand)
        exact = sq_l2_query_gather(queries, store.decode(), cand)
        assert np.allclose(approx, exact, rtol=1e-4, atol=1e-4)

    def test_sq8_decode_gather_matches_decoded_exact(self, points, queries):
        store = QuantizedStore.fit(points, "sq8", seed=0)
        cand = np.tile(np.arange(30, dtype=np.int64), (queries.shape[0], 1))
        got = sq8_l2_query_gather(
            store.codes, store.quantizer.lo, store.quantizer.scale,
            queries, cand,
        )
        exact = sq_l2_query_gather(queries, store.decode(), cand)
        assert np.allclose(got, exact, rtol=1e-5, atol=1e-5)

    def test_invalid_slots_score_inf(self, points, queries):
        store = QuantizedStore.fit(points, "pq4", seed=0)
        cand = np.full((queries.shape[0], 4), -1, dtype=np.int64)
        cand[:, 0] = 7
        out = adc_l2_query_gather(store.luts(queries), store.codes, cand)
        assert np.all(np.isfinite(out[:, 0]))
        assert np.all(np.isinf(out[:, 1:]))

    def test_lut_rows_indirection(self, points, queries):
        """Scoring through a row-indirection vector equals scoring against
        the compacted tables directly (the engine's no-copy compaction)."""
        store = QuantizedStore.fit(points, "pq4", seed=0)
        luts = store.luts(queries)
        keep = np.array([3, 7, 11, 15])
        cand = np.tile(np.arange(20, dtype=np.int64), (keep.size, 1))
        via_copy = adc_l2_query_gather(luts[keep], store.codes, cand)
        via_rows = adc_l2_query_gather(luts, store.codes, cand, lut_rows=keep)
        assert np.array_equal(via_copy, via_rows)


class TestQuantizedStore:
    def test_memory_stats_reduction(self, points):
        store = QuantizedStore.fit(points, "pq4", seed=0)
        stats = store.memory_stats()
        assert stats["float32_bytes"] == points.nbytes
        assert stats["quantized_bytes"] == stats["code_bytes"] + stats["param_bytes"]
        assert stats["reduction"] == pytest.approx(
            points.nbytes / stats["quantized_bytes"]
        )
        # codes alone shrink by 4*d/M; at this tiny n the fixed codebook
        # cost dominates quantized_bytes, so assert the code-level ratio
        assert points.nbytes / stats["code_bytes"] == pytest.approx(16.0)

    def test_kind_property(self, points):
        assert QuantizedStore.fit(points, "sq8").kind == "sq8"
        assert QuantizedStore.fit(points, "pq4", seed=0).kind == "pq"

    @pytest.mark.parametrize("spec", ["sq8", "pq4"])
    def test_save_load_roundtrip(self, points, spec, tmp_path):
        store = QuantizedStore.fit(points, spec, seed=0)
        store.save(tmp_path / "q.npz")
        loaded = QuantizedStore.load(tmp_path / "q.npz")
        assert loaded.spec == spec
        assert np.array_equal(loaded.codes, store.codes)
        assert np.allclose(loaded.decode(), store.decode())

    def test_codes_shape_validated(self, points):
        quantizer = ScalarQuantizer.fit(points)
        with pytest.raises(DataError):
            QuantizedStore("sq8", quantizer, np.zeros((4, 3), dtype=np.uint8))

    def test_spec_canonicalised(self, points):
        assert QuantizedStore.fit(points, " SQ8 ").spec == "sq8"
        assert QuantizedStore.fit(points, "pq04", seed=0).spec == "pq4"

    def test_scalar_fit_has_no_seed(self, points):
        # the old signature accepted (and silently ignored) seed=...;
        # min/max fitting is deterministic so the parameter is gone
        with pytest.raises(TypeError):
            ScalarQuantizer.fit(points, seed=0)

    @pytest.mark.parametrize("spec", ["sq8", "pq4"])
    def test_train_mse_baseline_round_trips(self, points, spec, tmp_path):
        store = QuantizedStore.fit(points, spec, seed=0)
        assert store.train_mse is not None and store.train_mse >= 0.0
        store.save(tmp_path / "q.npz")
        loaded = QuantizedStore.load(tmp_path / "q.npz")
        assert loaded.train_mse == pytest.approx(store.train_mse)
        # same data as training -> drift ratio ~1; a shifted batch drifts
        assert store.drift_ratio(
            store.reconstruction_mse(points)) == pytest.approx(1.0)
        shifted = points * 4.0 + 10.0
        assert store.drift_ratio(store.reconstruction_mse(shifted)) > 1.0

    def test_with_codes_shares_frozen_quantizer(self, points):
        store = QuantizedStore.fit(points, "sq8")
        extra = store.encode(points[:32])
        grown = store.with_codes(np.concatenate([store.codes, extra]))
        assert grown.quantizer is store.quantizer
        assert grown.train_mse == store.train_mse
        assert grown.n == store.n + 32
        assert np.array_equal(grown.codes[:store.n], store.codes)


class TestEngineIntegration:
    @pytest.fixture(scope="class")
    def base(self, points):
        return GraphSearchIndex.build(
            points, k=8, search_config=SearchConfig(ef=32), seed=0
        )

    @pytest.mark.parametrize("spec", ["sq8", "pq4"])
    def test_emitted_distances_are_full_precision(self, points, queries, base, spec):
        index = GraphSearchIndex.from_parts(
            points, base.graph, base.forest,
            SearchConfig(ef=32, quantization=spec),
        )
        ids, dists = index.search(queries, 5)
        valid = ids >= 0
        exact = sq_l2_query_gather(
            index._prepare_queries(queries), index._engine._x,
            np.where(valid, ids, -1).astype(np.int64),
        )
        assert np.allclose(
            np.where(valid, dists, 0.0), np.where(valid, exact, 0.0),
            rtol=1e-5, atol=1e-5,
        )
        assert index.stats()["rerank_evals"] > 0

    def test_quantized_recall_close_to_float32(self, points, queries, base):
        ids_f32, _ = base.search(queries, 5)
        index = GraphSearchIndex.from_parts(
            points, base.graph, base.forest,
            SearchConfig(ef=32, quantization="sq8"),
        )
        ids_q, _ = index.search(queries, 5)
        overlap = np.mean([
            np.intersect1d(ids_q[i], ids_f32[i]).size / 5
            for i in range(queries.shape[0])
        ])
        assert overlap >= 0.9

    def test_codebooks_persist_through_index(self, points, queries, base, tmp_path):
        index = GraphSearchIndex.from_parts(
            points, base.graph, base.forest,
            SearchConfig(ef=32, quantization="pq4"),
        )
        ids, dists = index.search(queries, 5)
        index.save(tmp_path / "idx")
        assert (tmp_path / "idx" / "quant.npz").exists()
        loaded = GraphSearchIndex.load(tmp_path / "idx")
        assert np.array_equal(
            loaded._engine.store.codes, index._engine.store.codes
        )
        ids2, dists2 = loaded.search(queries, 5)
        assert np.array_equal(ids, ids2)
        assert np.array_equal(dists, dists2)

    def test_memory_stats_reports_tier(self, points, base):
        index = GraphSearchIndex.from_parts(
            points, base.graph, base.forest,
            SearchConfig(ef=32, quantization="sq8"),
        )
        stats = index.memory_stats()
        assert stats["quantization"] == "sq8"
        assert stats["reduction"] > 3.0
        assert base.memory_stats()["quantization"] == "none"

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            SearchConfig(quantization="pq0")
        with pytest.raises(ConfigurationError):
            SearchConfig(rerank=-1)

    def test_uncanonical_none_builds_no_store(self, points, base):
        # the regression: raw "NONE" survived __post_init__ and tripped
        # the != "none" check in _attach, fitting a store that the sq8
        # kernel path then rejected at query time
        index = GraphSearchIndex.from_parts(
            points, base.graph, base.forest,
            SearchConfig(ef=32, quantization="NONE"),
        )
        assert index.store is None
        index.search(points[:4], 3)

    def test_uncanonical_spec_matches_persisted_store(
            self, points, base, tmp_path):
        index = GraphSearchIndex.from_parts(
            points, base.graph, base.forest,
            SearchConfig(ef=32, quantization=" sq8 "),
        )
        index.save(tmp_path / "idx")
        loaded = GraphSearchIndex.load(tmp_path / "idx")
        # spec equality must hold, so the saved codes are reused verbatim
        assert loaded.config.quantization == "sq8"
        assert np.array_equal(loaded.store.codes, index.store.codes)


class TestServePolicy:
    def test_policy_round_trips_through_serve_config(self):
        cfg = ServeConfig(quant=QuantizationPolicy(mode="pq8", rerank=16))
        clone = ServeConfig.from_dict(cfg.as_dict())
        assert clone.quant == cfg.quant
        assert clone.quant.to_search_fields() == {
            "quantization": "pq8", "rerank": 16,
        }

    def test_legacy_dict_defaults_to_none(self):
        d = ServeConfig().as_dict()
        d.pop("quant")
        cfg = ServeConfig.from_dict(d)
        assert cfg.quant == QuantizationPolicy()
        assert cfg.quant.mode == "none"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            QuantizationPolicy(mode="pq0")
