"""Tests for the SIMT device model configuration."""

import pytest

from repro.errors import ConfigurationError
from repro.simt.config import DeviceConfig


class TestDeviceConfig:
    def test_defaults_valid(self):
        cfg = DeviceConfig()
        assert cfg.warp_size == 32
        assert cfg.segment_bytes == 128

    def test_frozen(self):
        cfg = DeviceConfig()
        with pytest.raises(Exception):
            cfg.warp_size = 16  # type: ignore[misc]

    @pytest.mark.parametrize("warp", [1, 2, 8, 64])
    def test_pow2_warp_sizes_ok(self, warp):
        assert DeviceConfig(warp_size=warp).warp_size == warp

    @pytest.mark.parametrize("warp", [0, -4, 3, 24])
    def test_non_pow2_warp_rejected(self, warp):
        with pytest.raises(ConfigurationError):
            DeviceConfig(warp_size=warp)

    def test_non_pow2_segment_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceConfig(segment_bytes=100)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceConfig(global_latency_cycles=-1)

    def test_zero_bank_width_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceConfig(bank_width_bytes=0)

    def test_negative_cache_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceConfig(cache_bytes=-5)
