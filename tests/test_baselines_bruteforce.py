"""Tests for exact brute-force KNN (the ground-truth provider)."""

import numpy as np
import pytest

from repro.baselines.bruteforce import BruteForceKNN, exact_knn_graph


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(0).standard_normal((80, 6)).astype(np.float32)


def slow_reference(x, q, k, exclude_self=False):
    d = ((q[:, None, :].astype(np.float64) - x[None, :, :]) ** 2).sum(-1)
    if exclude_self:
        for i in range(q.shape[0]):
            d[i, i] = np.inf
    ids = np.argsort(d, axis=1)[:, :k]
    return ids, np.take_along_axis(d, ids, axis=1)


class TestSearch:
    def test_matches_reference(self, points):
        q = points[:10]
        ids, dists = BruteForceKNN(points).search(q, 5)
        ref_ids, ref_d = slow_reference(points, q, 5)
        assert np.allclose(dists, ref_d, rtol=1e-4, atol=1e-4)
        # id sets may differ on exact ties only
        for a, b in zip(ids, ref_ids):
            assert set(a) == set(b)

    def test_self_is_nearest_without_exclusion(self, points):
        ids, dists = BruteForceKNN(points).search(points, 1)
        assert np.array_equal(ids[:, 0], np.arange(80))
        assert np.allclose(dists[:, 0], 0.0, atol=1e-5)

    def test_exclude_self(self, points):
        ids, _ = BruteForceKNN(points).search(points, 3, exclude_self=True)
        assert not (ids == np.arange(80)[:, None]).any()

    def test_blocking_invariant(self, points):
        big = BruteForceKNN(points, block_rows=1000).search(points, 4)
        small = BruteForceKNN(points, block_rows=7).search(points, 4)
        assert np.allclose(big[1], small[1])

    def test_sorted_ascending(self, points):
        _, dists = BruteForceKNN(points).search(points[:5], 10)
        assert (np.diff(dists, axis=1) >= 0).all()

    def test_dim_mismatch(self, points):
        with pytest.raises(ValueError):
            BruteForceKNN(points).search(np.zeros((2, 99), dtype=np.float32), 3)

    def test_k_clamped_without_exclusion(self, points):
        ids, _ = BruteForceKNN(points).search(points[:2], 80)
        assert ids.shape == (2, 80)

    def test_bad_block_rows(self, points):
        with pytest.raises(ValueError):
            BruteForceKNN(points, block_rows=0)


class TestGraph:
    def test_graph_is_exact(self, points):
        g = exact_knn_graph(points, 5)
        ref_ids, _ = slow_reference(points, points, 5, exclude_self=True)
        for a, b in zip(g.ids, ref_ids):
            assert set(a) == set(b)

    def test_graph_complete(self, points):
        assert exact_knn_graph(points, 5).is_complete()

    def test_graph_meta(self, points):
        assert exact_knn_graph(points, 3).meta["algorithm"] == "bruteforce"
