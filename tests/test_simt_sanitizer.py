"""Tests for the wksan race detector / memory sanitizer.

Two halves:

* a *negative-test corpus* of deliberately broken kernels, one per detector
  class, proving each detector actually fires and names both access sites;
* *positive* runs showing the shipped kernels (all three strategy
  disciplines plus the brute-force pipeline) are certified race-free -
  including the acceptance check that a lock-removed variant of the
  baseline discipline is demonstrably caught.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import BuildConfig
from repro.errors import MemoryAccessError, RaceError
from repro.obs import Observability
from repro.simt import Device, DeviceConfig
from repro.simt.sanitizer import env_mode
from repro.simt_kernels.bruteforce_kernel import bruteforce_knng_simt
from repro.simt_kernels.device_fns import insert_baseline
from repro.simt_kernels.pipeline import build_knng_simt


def raise_device() -> Device:
    return Device(DeviceConfig(sanitize=True, sanitize_mode="raise"))


def report_device(obs=None) -> Device:
    return Device(DeviceConfig(sanitize=True, sanitize_mode="report"), obs=obs)


# --------------------------------------------------------------------------
# negative corpus: each detector class fires, with both sites named
# --------------------------------------------------------------------------


class TestDetectorCorpus:
    def test_write_write_across_blocks(self):
        dev = raise_device()
        out = dev.empty(8, np.int32, "out")

        def racy_ww(ctx, out):
            # every block's lane 0 stores to word 0 - no ordering between them
            ctx.store(out, np.zeros(32, dtype=np.int64), ctx.block_id,
                      ctx.lane_id == 0)

        with pytest.raises(RaceError) as ei:
            dev.launch(racy_ww, grid_blocks=2, block_warps=1, args=(out,))
        msg = str(ei.value)
        assert "write-write" in msg
        assert msg.count("in racy_ww") == 2  # both conflicting sites named
        assert ei.value.finding.site_b is not None

    def test_write_write_across_warps_same_block(self):
        dev = raise_device()
        out = dev.empty(8, np.int32, "out")

        def racy(ctx, out):
            ctx.store(out, np.zeros(32, dtype=np.int64), ctx.warp_id,
                      ctx.lane_id == 0)

        with pytest.raises(RaceError, match="write-write"):
            dev.launch(racy, grid_blocks=1, block_warps=2, args=(out,))

    def test_read_write_across_warps(self):
        dev = raise_device()
        out = dev.empty(8, np.int32, "out")

        def racy_rw(ctx, out):
            if ctx.warp_id == 0:
                ctx.load(out, np.zeros(32, dtype=np.int64), ctx.lane_id == 0)
            else:
                ctx.store(out, np.zeros(32, dtype=np.int64), 1,
                          ctx.lane_id == 0)

        with pytest.raises(RaceError) as ei:
            dev.launch(racy_rw, grid_blocks=1, block_warps=2, args=(out,))
        assert ei.value.finding.kind == "read-write"
        assert str(ei.value).count("in racy_rw") == 2

    def test_duplicate_index_scatter(self):
        dev = raise_device()
        out = dev.empty(8, np.int32, "out")

        def racy_dup(ctx, out):
            # all 32 lanes scatter to word 0 in one store
            ctx.store(out, np.zeros(32, dtype=np.int64), ctx.lane_id)

        with pytest.raises(RaceError) as ei:
            dev.launch(racy_dup, grid_blocks=1, block_warps=1, args=(out,))
        assert ei.value.finding.kind == "duplicate-scatter"

    def test_uninitialized_global_read(self):
        dev = raise_device()
        scratch = dev.malloc(64, np.float32, "scratch")

        def racy_uninit(ctx, buf):
            ctx.load(buf, ctx.lane_id)

        with pytest.raises(RaceError) as ei:
            dev.launch(racy_uninit, grid_blocks=1, block_warps=1,
                       args=(scratch,))
        assert ei.value.finding.kind == "uninitialized-read"
        assert "scratch" in str(ei.value)

    def test_malloc_written_then_read_is_clean(self):
        dev = raise_device()
        scratch = dev.malloc(32, np.float32, "scratch")

        def ok(ctx, buf):
            ctx.store(buf, ctx.lane_id, np.float32(1.0))
            ctx.load(buf, ctx.lane_id)

        dev.launch(ok, grid_blocks=1, block_warps=1, args=(scratch,))

    def test_uninitialized_shared_read(self):
        dev = raise_device()

        def racy_shared(ctx):
            tile = ctx.shared("tile", (32,), np.float32)
            ctx.shared_load(tile, ctx.lane_id)  # no warp ever stored

        with pytest.raises(RaceError) as ei:
            dev.launch(racy_shared, grid_blocks=1, block_warps=1)
        assert ei.value.finding.kind == "uninitialized-read"
        assert "shared:tile" in str(ei.value)

    def test_out_of_bounds_flagged_before_access_error(self):
        dev = raise_device()
        out = dev.empty(8, np.int32, "out")

        def racy_oob(ctx, out):
            ctx.store(out, ctx.lane_id + 100, ctx.lane_id)

        with pytest.raises(RaceError) as ei:
            dev.launch(racy_oob, grid_blocks=1, block_warps=1, args=(out,))
        assert ei.value.finding.kind == "out-of-bounds"

    def test_out_of_bounds_report_mode_still_raises_access_error(self):
        dev = report_device()
        out = dev.empty(8, np.int32, "out")

        def racy_oob(ctx, out):
            ctx.store(out, ctx.lane_id + 100, ctx.lane_id)

        with pytest.raises(MemoryAccessError):
            dev.launch(racy_oob, grid_blocks=1, block_warps=1, args=(out,))
        kinds = dev.sanitizer.report().by_kind()
        assert kinds.get("out-of-bounds") == 1

    def test_const_write_flagged(self):
        dev = raise_device()
        pts = dev.to_device(np.zeros(32, np.float32), "points", const=True)

        def racy_const(ctx, buf):
            ctx.store(buf, ctx.lane_id, np.float32(1.0))

        with pytest.raises(RaceError) as ei:
            dev.launch(racy_const, grid_blocks=1, block_warps=1, args=(pts,))
        assert ei.value.finding.kind == "const-write"

    def test_lock_release_without_acquire(self):
        dev = raise_device()
        locks = dev.empty(4, np.int32, "locks")

        def racy_unlock(ctx, locks):
            ctx.lock_release(locks, 0)

        with pytest.raises(RaceError) as ei:
            dev.launch(racy_unlock, grid_blocks=1, block_warps=1, args=(locks,))
        assert ei.value.finding.kind == "lock-discipline"

    def test_kernel_exit_holding_lock(self):
        dev = raise_device()
        locks = dev.empty(4, np.int32, "locks")

        def racy_hold(ctx, locks):
            ctx.lock_acquire(locks, 0)  # never released

        with pytest.raises(RaceError) as ei:
            dev.launch(racy_hold, grid_blocks=1, block_warps=1, args=(locks,))
        assert ei.value.finding.kind == "lock-discipline"
        assert "still holding" in str(ei.value)


# --------------------------------------------------------------------------
# happens-before: synchronization that MUST suppress findings
# --------------------------------------------------------------------------


class TestOrderings:
    def test_barrier_orders_warps_within_block(self):
        dev = raise_device()
        out = dev.empty(8, np.int32, "out")

        def handoff(ctx, out):
            if ctx.warp_id == 0:
                ctx.store(out, np.zeros(32, dtype=np.int64), 7,
                          ctx.lane_id == 0)
            yield ctx.barrier()
            if ctx.warp_id == 1:
                ctx.load(out, np.zeros(32, dtype=np.int64), ctx.lane_id == 0)

        dev.launch(handoff, grid_blocks=1, block_warps=2, args=(out,))

    def test_barrier_does_not_order_blocks(self):
        dev = raise_device()
        out = dev.empty(8, np.int32, "out")

        def racy(ctx, out):
            yield ctx.barrier()
            ctx.store(out, np.zeros(32, dtype=np.int64), ctx.block_id,
                      ctx.lane_id == 0)

        with pytest.raises(RaceError, match="write-write"):
            dev.launch(racy, grid_blocks=2, block_warps=1, args=(out,))

    def test_common_lock_orders_critical_sections(self):
        dev = raise_device()
        out = dev.empty(8, np.int32, "out")
        locks = dev.empty(1, np.int32, "locks")

        def locked(ctx, out, locks):
            ctx.lock_acquire(locks, 0)
            ctx.store(out, np.zeros(32, dtype=np.int64), ctx.block_id,
                      ctx.lane_id == 0)
            ctx.lock_release(locks, 0)

        dev.launch(locked, grid_blocks=3, block_warps=1, args=(out, locks))

    def test_different_locks_do_not_order(self):
        dev = raise_device()
        out = dev.empty(8, np.int32, "out")
        locks = dev.empty(4, np.int32, "locks")

        def locked(ctx, out, locks):
            ctx.lock_acquire(locks, ctx.block_id)  # disjoint locks!
            ctx.store(out, np.zeros(32, dtype=np.int64), ctx.block_id,
                      ctx.lane_id == 0)
            ctx.lock_release(locks, ctx.block_id)

        with pytest.raises(RaceError, match="write-write"):
            dev.launch(locked, grid_blocks=2, block_warps=1, args=(out, locks))

    def test_atomics_order_against_each_other_and_reads(self):
        dev = raise_device()
        ctr = dev.empty(1, np.int32, "counter")

        def atomic_ok(ctx, ctr):
            ctx.atomic_add(ctr, np.zeros(32, dtype=np.int64), 1,
                           ctx.lane_id == 0)
            ctx.load(ctr, np.zeros(32, dtype=np.int64), ctx.lane_id == 0)

        dev.launch(atomic_ok, grid_blocks=4, block_warps=1, args=(ctr,))
        assert int(ctr.to_host()[0]) == 4

    def test_atomic_vs_plain_write_races(self):
        dev = raise_device()
        ctr = dev.empty(1, np.int32, "counter")

        def mixed(ctx, ctr):
            if ctx.block_id == 0:
                ctx.atomic_add(ctr, np.zeros(32, dtype=np.int64), 1,
                               ctx.lane_id == 0)
            else:
                ctx.store(ctr, np.zeros(32, dtype=np.int64), 0,
                          ctx.lane_id == 0)

        with pytest.raises(RaceError, match="write-write"):
            dev.launch(mixed, grid_blocks=2, block_warps=1, args=(ctr,))


# --------------------------------------------------------------------------
# acceptance: shipped kernels are certified, broken variants are caught
# --------------------------------------------------------------------------


def _points(n=60, dim=8, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, dim)).astype(np.float32)


class TestShippedKernelsCertified:
    @pytest.mark.parametrize("strategy", ["baseline", "atomic", "tiled"])
    def test_strategy_pipeline_clean_under_sanitizer(self, strategy):
        cfg = BuildConfig(k=6, strategy=strategy, backend="simt", n_trees=2,
                          leaf_size=16, refine_iters=2, seed=1)
        dev = raise_device()
        graph, _report = build_knng_simt(_points(), cfg, device=dev)
        assert dev.sanitizer.report().clean
        assert graph.meta["sanitizer"]["findings"] == 0
        assert graph.is_complete()

    def test_bruteforce_pipeline_clean_under_sanitizer(self):
        dev = raise_device()
        state, dev = bruteforce_knng_simt(_points(40), 5, device=dev)
        assert dev.sanitizer.report().clean
        assert (state.ids >= 0).all()

    def test_lock_removed_baseline_is_caught(self):
        """The acceptance-criteria kernel: baseline discipline minus the lock.

        Two blocks insert different candidates into the *same* row's list.
        With the lock the critical sections order; without it the scan and
        replace stores race - wksan must name both sites.
        """
        dev = raise_device()
        k = 4
        dists = dev.empty(k, np.float32, "knn_dists", fill=np.inf)
        ids = dev.empty(k, np.int32, "knn_ids", fill=-1)

        def lockless_insert(ctx, dist_buf, id_buf):
            lane = ctx.lane_id
            slot_mask = lane < k
            # unsynchronized scan-and-replace of row 0 (insert_baseline
            # without lock_acquire/lock_release)
            cur = ctx.load(dist_buf, lane, slot_mask)
            _mx, max_lane = ctx.argmax_lane(cur, slot_mask)
            at = np.full(ctx.warp_size, max_lane)
            ctx.store(dist_buf, at, np.float32(ctx.block_id), lane == 0)
            ctx.store(id_buf, at, np.int32(ctx.block_id), lane == 0)

        with pytest.raises(RaceError) as ei:
            dev.launch(lockless_insert, grid_blocks=2, block_warps=1,
                       args=(dists, ids))
        msg = str(ei.value)
        assert ei.value.finding.kind in ("read-write", "write-write")
        assert msg.count("in lockless_insert") == 2  # both sites named

    def test_locked_baseline_variant_is_clean(self):
        """Same workload as above but through the real discipline: clean."""
        dev = raise_device()
        k = 4
        dists = dev.empty(k, np.float32, "knn_dists", fill=np.inf)
        ids = dev.empty(k, np.int32, "knn_ids", fill=-1)
        locks = dev.empty(1, np.int32, "knn_locks")

        def locked_insert(ctx, dist_buf, id_buf, lock_buf):
            insert_baseline(ctx, dist_buf, id_buf, lock_buf, 0, k,
                            float(ctx.block_id), ctx.block_id)

        dev.launch(locked_insert, grid_blocks=2, block_warps=1,
                   args=(dists, ids, locks))
        assert dev.sanitizer.report().clean
        assert set(ids.to_host()[ids.to_host() >= 0]) == {0, 1}
        assert int(locks.to_host()[0]) == 0  # released


# --------------------------------------------------------------------------
# report mode + observability integration
# --------------------------------------------------------------------------


class TestReportMode:
    def test_findings_accumulate_without_raising(self):
        obs = Observability()
        dev = report_device(obs=obs)
        out = dev.empty(8, np.int32, "out")

        def racy(ctx, out):
            ctx.store(out, np.zeros(32, dtype=np.int64), ctx.block_id,
                      ctx.lane_id == 0)

        dev.launch(racy, grid_blocks=3, block_warps=1, args=(out,))
        rep = dev.sanitizer.report()
        assert not rep.clean
        assert rep.by_kind()["write-write"] >= 1
        assert dev.metrics.sanitizer_findings == len(rep.findings)
        assert obs.metrics.counter("sanitizer/write-write").value >= 1

    def test_finding_hook_emitted(self):
        obs = Observability()
        seen = []
        from repro.obs.hooks import Events

        obs.hooks.subscribe(Events.SANITIZER_FINDING,
                            lambda event, payload: seen.append(payload))
        dev = report_device(obs=obs)
        out = dev.empty(8, np.int32, "out")

        def racy(ctx, out):
            ctx.store(out, np.zeros(32, dtype=np.int64), ctx.block_id,
                      ctx.lane_id == 0)

        dev.launch(racy, grid_blocks=2, block_warps=1, args=(out,))
        assert seen and seen[0]["kind"] == "write-write"
        assert "site_a" in seen[0] and "site_b" in seen[0]

    def test_findings_deduplicated_within_launch(self):
        dev = report_device()
        out = dev.empty(8, np.int32, "out")

        def racy_loop(ctx, out):
            for _ in range(5):  # same conflict five times
                ctx.store(out, np.zeros(32, dtype=np.int64), ctx.block_id,
                          ctx.lane_id == 0)

        dev.launch(racy_loop, grid_blocks=2, block_warps=1, args=(out,))
        # one (kind, buffer, addr, sites) tuple, not five
        assert len(dev.sanitizer.report().findings) <= 3


# --------------------------------------------------------------------------
# configuration plumbing: env switch, DeviceConfig, CLI
# --------------------------------------------------------------------------


class TestWiring:
    def test_env_mode_values(self, monkeypatch):
        for val, expect in [("", None), ("0", None), ("off", None),
                            ("1", "raise"), ("true", "raise"),
                            ("raise", "raise"), ("report", "report")]:
            monkeypatch.setenv("WKNN_SANITIZE", val)
            assert env_mode() == expect, val
        monkeypatch.delenv("WKNN_SANITIZE")
        assert env_mode() is None

    def test_env_switch_drives_device_config(self, monkeypatch):
        monkeypatch.setenv("WKNN_SANITIZE", "report")
        cfg = DeviceConfig()
        assert cfg.sanitize and cfg.sanitize_mode == "report"
        dev = Device(cfg)
        assert dev.sanitizer is not None and dev.sanitizer.mode == "report"
        monkeypatch.delenv("WKNN_SANITIZE")
        assert not DeviceConfig().sanitize

    def test_explicit_config_beats_env(self, monkeypatch):
        monkeypatch.setenv("WKNN_SANITIZE", "1")
        dev = Device(DeviceConfig(sanitize=False))
        assert dev.sanitizer is None

    def test_invalid_mode_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="sanitize_mode"):
            DeviceConfig(sanitize=True, sanitize_mode="warn")

    def test_cli_sanitize_requires_simt_backend(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="simt"):
            main(["build", "--dataset", "gaussian", "--n", "50",
                  "--sanitize", "-o", "/tmp/never_written.npz"])

    def test_cli_simt_sanitized_build(self, tmp_path, monkeypatch):
        from repro.cli import main

        out = tmp_path / "g.npz"
        # setenv (not delenv) so monkeypatch restores the var even though
        # cmd_build itself writes os.environ["WKNN_SANITIZE"] during main()
        monkeypatch.setenv("WKNN_SANITIZE", "0")
        rc = main(["build", "--dataset", "gaussian", "--n", "80", "--k", "4",
                   "--backend", "simt", "--sanitize", "--trees", "1",
                   "--leaf-size", "16", "--refine", "1", "-o", str(out)])
        assert rc == 0 and out.exists()

    def test_vectorized_strategies_reject_duplicate_batch_pairs(self, monkeypatch):
        from repro.kernels.knn_state import KnnState
        from repro.kernels.strategy import get_strategy

        monkeypatch.setenv("WKNN_SANITIZE", "1")
        for name in ("baseline", "atomic", "tiled"):
            strat = get_strategy(name)
            state = KnnState(10, 4)
            rows = np.array([1, 1], dtype=np.int64)
            cols = np.array([2, 2], dtype=np.int64)
            dists = np.array([0.5, 0.5], dtype=np.float32)
            with pytest.raises(RaceError, match="duplicate"):
                strat.insert(state, rows, cols, dists)

    def test_vectorized_build_clean_under_sanitizer(self, monkeypatch):
        """The full vectorized pipeline honours the no-duplicate discipline."""
        from repro.core.builder import WKNNGBuilder

        monkeypatch.setenv("WKNN_SANITIZE", "1")
        cfg = BuildConfig(k=6, strategy="tiled", n_trees=2, leaf_size=16,
                          refine_iters=2, seed=3)
        graph = WKNNGBuilder(cfg).build(_points(80))
        assert graph.is_complete()
