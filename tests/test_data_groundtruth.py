"""Tests for ground-truth caching and the report aggregator."""

import numpy as np
import pytest

from repro.bench.report import build_report
from repro.data.groundtruth import clear_cache, exact_neighbors, fingerprint


@pytest.fixture()
def gt_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("WKNNG_GT_CACHE", str(tmp_path / "gtcache"))
    return tmp_path / "gtcache"


class TestFingerprint:
    def test_deterministic(self):
        x = np.ones((4, 3), dtype=np.float32)
        assert fingerprint(x, 2) == fingerprint(x.copy(), 2)

    def test_sensitive_to_data(self):
        x = np.ones((4, 3), dtype=np.float32)
        y = x.copy()
        y[0, 0] = 2.0
        assert fingerprint(x, 2) != fingerprint(y, 2)

    def test_sensitive_to_k(self):
        x = np.ones((4, 3), dtype=np.float32)
        assert fingerprint(x, 2) != fingerprint(x, 3)

    def test_sensitive_to_shape(self):
        flat = np.arange(12, dtype=np.float32)
        assert fingerprint(flat.reshape(3, 4), 2) != fingerprint(
            flat.reshape(4, 3), 2
        )


class TestExactNeighborsCache:
    def test_cache_round_trip(self, gt_cache):
        x = np.random.default_rng(0).standard_normal((60, 5)).astype(np.float32)
        ids1, d1 = exact_neighbors(x, 4)
        assert len(list(gt_cache.glob("*.npz"))) == 1
        ids2, d2 = exact_neighbors(x, 4)
        assert np.array_equal(ids1, ids2)
        assert np.array_equal(d1, d2)

    def test_cache_correctness(self, gt_cache):
        x = np.random.default_rng(1).standard_normal((50, 4)).astype(np.float32)
        ids, _ = exact_neighbors(x, 3)
        uncached_ids, _ = exact_neighbors(x, 3, use_cache=False)
        assert np.array_equal(ids, uncached_ids)

    def test_corrupt_entry_recomputed(self, gt_cache):
        x = np.random.default_rng(2).standard_normal((40, 4)).astype(np.float32)
        exact_neighbors(x, 3)
        entry = next(gt_cache.glob("*.npz"))
        entry.write_bytes(b"garbage")
        ids, _ = exact_neighbors(x, 3)
        assert ids.shape == (40, 3)

    def test_clear_cache(self, gt_cache):
        x = np.random.default_rng(3).standard_normal((30, 4)).astype(np.float32)
        exact_neighbors(x, 3)
        assert clear_cache() == 1
        assert clear_cache() == 0


class TestReport:
    def test_empty_results(self, tmp_path):
        out = build_report(tmp_path)
        assert "no result artifacts" in out

    def test_sections_ordered(self, tmp_path):
        (tmp_path / "F2_crossover.txt").write_text("ratio table")
        (tmp_path / "T1_case.txt").write_text("headline table")
        out = build_report(tmp_path)
        assert out.index("T1") < out.index("F2 ")
        assert "ratio table" in out and "headline table" in out

    def test_report_cli(self, tmp_path, capsys):
        from repro.bench.report import main

        (tmp_path / "T2_strategies.txt").write_text("table body")
        assert main([str(tmp_path)]) == 0
        assert "table body" in capsys.readouterr().out

    def test_report_cli_to_file(self, tmp_path):
        from repro.bench.report import main

        (tmp_path / "F5_refinement.txt").write_text("rounds")
        out_file = tmp_path / "report.md"
        assert main([str(tmp_path), "-o", str(out_file)]) == 0
        assert "rounds" in out_file.read_text()
