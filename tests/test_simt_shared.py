"""Tests for shared memory: region management and bank conflicts."""

import numpy as np
import pytest

from repro.errors import MemoryAccessError
from repro.simt.config import DeviceConfig
from repro.simt.metrics import KernelMetrics
from repro.simt.shared import SharedMemory

W = 32
ALL = np.ones(W, dtype=bool)


@pytest.fixture()
def shared():
    metrics = KernelMetrics()
    return SharedMemory(DeviceConfig(), metrics), metrics


class TestRegions:
    def test_allocate_zeroed(self, shared):
        sm, _ = shared
        region = sm.allocate("a", 16, np.float32)
        assert region.shape == (16,) and (region == 0).all()

    def test_same_name_same_region(self, shared):
        sm, _ = shared
        a = sm.allocate("x", 8, np.float32)
        b = sm.allocate("x", 8, np.float32)
        assert a is b

    def test_redeclare_different_shape_rejected(self, shared):
        sm, _ = shared
        sm.allocate("y", 8, np.float32)
        with pytest.raises(MemoryAccessError, match="re-declared"):
            sm.allocate("y", 16, np.float32)

    def test_redeclare_different_dtype_rejected(self, shared):
        sm, _ = shared
        sm.allocate("z", 8, np.float32)
        with pytest.raises(MemoryAccessError):
            sm.allocate("z", 8, np.int32)

    def test_tuple_shape(self, shared):
        sm, _ = shared
        region = sm.allocate("t", (4,), np.int64)
        assert region.shape == (4,)


class TestAccess:
    def test_store_load_round_trip(self, shared):
        sm, _ = shared
        region = sm.allocate("r", W, np.float32)
        sm.store(region, np.arange(W), np.arange(W, dtype=np.float32), ALL)
        out = sm.load(region, np.arange(W), ALL)
        assert np.array_equal(out, np.arange(W, dtype=np.float32))

    def test_masked_store(self, shared):
        sm, _ = shared
        region = sm.allocate("r", W, np.float32)
        mask = np.zeros(W, dtype=bool)
        mask[2] = True
        sm.store(region, np.arange(W), np.full(W, 3.0, dtype=np.float32), mask)
        assert region[2] == 3.0 and region.sum() == 3.0

    def test_out_of_bounds(self, shared):
        sm, _ = shared
        region = sm.allocate("r", 4, np.float32)
        with pytest.raises(MemoryAccessError):
            sm.load(region, np.full(W, 4, dtype=np.int64), ALL)

    def test_scalar_store_broadcast(self, shared):
        sm, _ = shared
        region = sm.allocate("r", W, np.float32)
        sm.store(region, np.arange(W), np.float32(1.5), ALL)
        assert (region == 1.5).all()


class TestBankConflicts:
    def test_sequential_access_no_conflict(self, shared):
        sm, m = shared
        region = sm.allocate("r", W, np.float32)
        sm.load(region, np.arange(W), ALL)
        assert m.shared_bank_conflicts == 0

    def test_broadcast_no_conflict(self, shared):
        sm, m = shared
        region = sm.allocate("r", W, np.float32)
        sm.load(region, np.zeros(W, dtype=np.int64), ALL)
        assert m.shared_bank_conflicts == 0

    def test_stride_32_full_conflict(self, shared):
        sm, m = shared
        region = sm.allocate("r", W * 32, np.float32)
        sm.load(region, np.arange(W, dtype=np.int64) * 32, ALL)
        assert m.shared_bank_conflicts == W - 1

    def test_stride_2_half_conflict(self, shared):
        sm, m = shared
        region = sm.allocate("r", W * 2, np.float32)
        sm.load(region, np.arange(W, dtype=np.int64) * 2, ALL)
        assert m.shared_bank_conflicts == 1  # two addresses per bank

    def test_padded_stride_no_conflict(self, shared):
        sm, m = shared
        region = sm.allocate("r", W * 33, np.float32)
        sm.load(region, np.arange(W, dtype=np.int64) * 33, ALL)
        assert m.shared_bank_conflicts == 0

    def test_access_count(self, shared):
        sm, m = shared
        region = sm.allocate("r", W, np.float32)
        sm.load(region, np.arange(W), ALL)
        sm.store(region, np.arange(W), np.ones(W, dtype=np.float32), ALL)
        assert m.shared_accesses == 2
