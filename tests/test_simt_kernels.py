"""Tests for warp-centric kernels on the simulator: device functions,
leaf kernels, and cross-backend equivalence with the vectorised layer."""

import numpy as np
import pytest

from repro.core.config import BuildConfig
from repro.core.builder import WKNNGBuilder
from repro.errors import ConfigurationError
from repro.metrics.recall import knn_recall
from repro.simt.atomics import pack_dist_id, unpack_dist_id, EMPTY_PACKED
from repro.simt.device import Device
from repro.simt.shared import SharedMemory
from repro.simt.warp import WarpContext
from repro.simt_kernels.device_fns import (
    TiledInserter,
    distance_direct,
    insert_atomic,
    insert_baseline,
    load_point_chunks,
    load_scalar,
)
from repro.simt_kernels.pipeline import simt_leaf_metrics


def make_ctx(dev):
    return WarpContext(dev, SharedMemory(dev.config, dev.metrics), 0, 0, 1, 1)


class TestDeviceFns:
    def test_load_scalar(self):
        dev = Device()
        buf = dev.to_device(np.array([10.0, 20.0, 30.0], dtype=np.float32))
        assert load_scalar(make_ctx(dev), buf, 1) == 20.0

    @pytest.mark.parametrize("dim", [3, 16, 32, 40, 70])
    def test_distance_direct(self, dim):
        rng = np.random.default_rng(dim)
        x = rng.standard_normal((4, dim)).astype(np.float32)
        dev = Device()
        buf = dev.to_device(x.reshape(-1))
        ctx = make_ctx(dev)
        d = distance_direct(ctx, buf, 0, 2, dim)
        ref = float(((x[0].astype(np.float64) - x[2]) ** 2).sum())
        assert d == pytest.approx(ref, rel=1e-5)

    def test_distance_with_cached_chunks(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((3, 50)).astype(np.float32)
        dev = Device()
        buf = dev.to_device(x.reshape(-1))
        ctx = make_ctx(dev)
        xi = load_point_chunks(ctx, buf, 1, 50)
        d = distance_direct(ctx, buf, 1, 2, 50, xi)
        ref = float(((x[1].astype(np.float64) - x[2]) ** 2).sum())
        assert d == pytest.approx(ref, rel=1e-5)

    def test_insert_baseline_replaces_max(self):
        dev = Device()
        k = 4
        dists = dev.to_device(np.array([1.0, 9.0, 3.0, 5.0], dtype=np.float32))
        ids = dev.to_device(np.array([10, 11, 12, 13], dtype=np.int32))
        locks = dev.to_device(np.zeros(1, dtype=np.int32))
        ctx = make_ctx(dev)
        assert insert_baseline(ctx, dists, ids, locks, 0, k, 2.0, 99)
        host_d = dists.to_host()
        assert 9.0 not in host_d and 2.0 in host_d
        assert 99 in ids.to_host()
        assert locks.to_host()[0] == 0  # released

    def test_insert_baseline_rejects_duplicate(self):
        dev = Device()
        dists = dev.to_device(np.array([1.0, 9.0], dtype=np.float32))
        ids = dev.to_device(np.array([5, 6], dtype=np.int32))
        locks = dev.to_device(np.zeros(1, dtype=np.int32))
        assert not insert_baseline(make_ctx(dev), dists, ids, locks, 0, 2, 0.5, 5)
        assert locks.to_host()[0] == 0

    def test_insert_baseline_rejects_worse(self):
        dev = Device()
        dists = dev.to_device(np.array([1.0, 2.0], dtype=np.float32))
        ids = dev.to_device(np.array([5, 6], dtype=np.int32))
        locks = dev.to_device(np.zeros(1, dtype=np.int32))
        assert not insert_baseline(make_ctx(dev), dists, ids, locks, 0, 2, 7.0, 9)

    def test_insert_atomic_semantics(self):
        dev = Device()
        k = 3
        packed = dev.to_device(
            np.full(k, np.uint64(EMPTY_PACKED), dtype=np.uint64)
        )
        ctx = make_ctx(dev)
        for dist, cid in [(5.0, 1), (3.0, 2), (4.0, 3), (1.0, 4), (9.0, 5)]:
            insert_atomic(ctx, packed, 0, k, dist, cid)
        d, i = unpack_dist_id(packed.to_host())
        assert sorted(d.tolist()) == [1.0, 3.0, 4.0]
        assert set(i.tolist()) == {2, 3, 4}

    def test_insert_atomic_rejects_duplicate(self):
        dev = Device()
        packed = dev.to_device(pack_dist_id(
            np.array([1.0, np.inf], dtype=np.float32),
            np.array([7, -1], dtype=np.int32)))
        ctx = make_ctx(dev)
        assert not insert_atomic(ctx, packed, 0, 2, 0.5, 7)

    def test_tiled_inserter_keeps_k_smallest(self):
        dev = Device()
        k = 4
        dists = dev.to_device(np.full(k, np.inf, dtype=np.float32))
        ids = dev.to_device(np.full(k, -1, dtype=np.int32))
        ctx = make_ctx(dev)
        ins = TiledInserter(ctx, dists, ids, 0, k, "t")
        rng = np.random.default_rng(0)
        vals = rng.random(50).astype(np.float32)
        for c, v in enumerate(vals):
            ins.offer(float(v), c)
        ins.flush()
        host = dists.to_host()
        assert np.allclose(np.sort(host), np.sort(vals)[:k])

    def test_tiled_inserter_list_stays_sorted(self):
        dev = Device()
        k = 4
        dists = dev.to_device(np.full(k, np.inf, dtype=np.float32))
        ids = dev.to_device(np.full(k, -1, dtype=np.int32))
        ctx = make_ctx(dev)
        ins = TiledInserter(ctx, dists, ids, 0, k, "t")
        for c, v in enumerate([5.0, 1.0, 3.0]):
            ins.offer(v, c)
        ins.flush()
        host = dists.to_host()
        assert (np.diff(host) >= 0).all()

    def test_tiled_inserter_dedupes_against_list(self):
        dev = Device()
        k = 3
        dists = dev.to_device(np.full(k, np.inf, dtype=np.float32))
        ids = dev.to_device(np.full(k, -1, dtype=np.int32))
        ctx = make_ctx(dev)
        ins = TiledInserter(ctx, dists, ids, 0, k, "t")
        ins.offer(1.0, 7)
        ins.flush()
        ins.offer(1.0, 7)  # duplicate in a later tile
        ins.flush()
        assert (ids.to_host() == 7).sum() == 1


class TestLeafMetrics:
    def test_metrics_nonzero_per_strategy(self, tiny_points):
        leaf = np.arange(16)
        for strat in ("baseline", "atomic", "tiled"):
            m = simt_leaf_metrics(tiny_points, leaf, k=4, strategy=strat)
            assert m.global_load_transactions > 0, strat

    def test_atomic_uses_atomics_tiled_does_not(self, tiny_points):
        leaf = np.arange(16)
        ma = simt_leaf_metrics(tiny_points, leaf, k=4, strategy="atomic")
        mt = simt_leaf_metrics(tiny_points, leaf, k=4, strategy="tiled")
        assert ma.atomic_ops > 0
        assert mt.atomic_ops == 0
        assert mt.shared_accesses > ma.shared_accesses

    def test_baseline_atomics_exceed_atomic_strategy(self, tiny_points):
        # baseline pays lock acquire per candidate; atomic only CASes accepts
        leaf = np.arange(16)
        mb = simt_leaf_metrics(tiny_points, leaf, k=4, strategy="baseline")
        ma = simt_leaf_metrics(tiny_points, leaf, k=4, strategy="atomic")
        assert mb.atomic_ops > ma.atomic_ops

    def test_tiled_fewer_global_transactions_at_high_dim(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((24, 96)).astype(np.float32)
        leaf = np.arange(24)
        md = simt_leaf_metrics(x, leaf, k=4, strategy="atomic")
        mt = simt_leaf_metrics(x, leaf, k=4, strategy="tiled")
        assert mt.global_load_transactions < md.global_load_transactions


class TestSimtPipeline:
    def test_matches_vectorized_recall(self, tiny_points, tiny_gt):
        cfg = dict(k=5, n_trees=2, leaf_size=12, refine_iters=1, seed=3)
        for strategy in ("baseline", "atomic", "tiled"):
            gs = WKNNGBuilder(BuildConfig(backend="simt", strategy=strategy, **cfg)).build(tiny_points)
            gv = WKNNGBuilder(BuildConfig(backend="vectorized", strategy=strategy, **cfg)).build(tiny_points)
            rs = knn_recall(gs.ids, tiny_gt[0])
            rv = knn_recall(gv.ids, tiny_gt[0])
            assert abs(rs - rv) < 0.05, strategy
            # neighbour sets essentially identical across backends
            assert knn_recall(gs.ids, gv.ids) > 0.95, strategy

    def test_meta_has_metrics_and_cycles(self, tiny_points):
        cfg = BuildConfig(k=4, n_trees=1, leaf_size=10, refine_iters=0,
                          seed=0, backend="simt")
        g = WKNNGBuilder(cfg).build(tiny_points)
        assert g.meta["backend"] == "simt"
        assert g.meta["estimated_cycles"] > 0
        assert g.meta["simt_metrics"]["warps_launched"] > 0

    def test_k_exceeding_warp_rejected(self, tiny_points):
        cfg = BuildConfig(k=40, leaf_size=60, backend="simt", n_trees=1)
        with pytest.raises(ConfigurationError, match="warp_size"):
            WKNNGBuilder(cfg).build(tiny_points)

    def test_refinement_runs_on_device(self, tiny_points, tiny_gt):
        base = dict(k=5, n_trees=1, leaf_size=12, seed=1, backend="simt")
        g0 = WKNNGBuilder(BuildConfig(refine_iters=0, **base)).build(tiny_points)
        g2 = WKNNGBuilder(BuildConfig(refine_iters=2, **base)).build(tiny_points)
        assert knn_recall(g2.ids, tiny_gt[0]) >= knn_recall(g0.ids, tiny_gt[0])
