"""The unified SearchClient surface: protocol conformance + config compat.

Three guarantees under test:

* every serving frontend (``KNNServer``, ``ClusterClient``,
  ``DirectClient``) satisfies the ``SearchClient`` protocol and returns
  ``SearchResult`` - the benchmarks/loadgen drive all of them through one
  interface;
* the sectioned ``ServeConfig`` (admission/deadline/cache) round-trips
  through ``as_dict``/``from_dict`` and still accepts the old flat
  keyword surface for one release, with a ``DeprecationWarning``;
* the ``KNNIndex`` baseline protocol has one true ``query`` signature
  (``ef`` keyword-only) across every registered engine.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.apps.search import GraphSearchIndex
from repro.baselines import ENGINES, KNNIndex, get_engine
from repro.errors import ConfigurationError, DeadlineExceeded, ServerClosed
from repro.serve import (
    AdmissionPolicy,
    CachePolicy,
    ClusterClient,
    ClusterConfig,
    DeadlinePolicy,
    DirectClient,
    KNNServer,
    QueryResult,
    SearchClient,
    SearchResult,
    ServeConfig,
)

N, DIM, TOP_K = 300, 10, 5


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(11)
    return rng.standard_normal((N, DIM), dtype=np.float32)


@pytest.fixture(scope="module")
def index(points):
    return GraphSearchIndex.build(points, k=8, seed=3)


@pytest.fixture(scope="module")
def query(points):
    return points[0]


def client_factories(index, points):
    return {
        "server": lambda: KNNServer(index).start(),
        "cluster": lambda: ClusterClient.build(
            points, k=8, seed=3,
            config=ClusterConfig(n_shards=2, backend="thread")).start(),
        "direct": lambda: DirectClient(index),
    }


class TestSearchClientProtocol:
    @pytest.mark.parametrize("kind", ["server", "cluster", "direct"])
    def test_conformance(self, index, points, query, kind):
        client = client_factories(index, points)[kind]()
        try:
            assert isinstance(client, SearchClient)
            assert client.dim == DIM
            assert client.default_ef > 0

            res = client.query(query, TOP_K, timeout=30.0)
            assert isinstance(res, SearchResult)
            assert res.ids.shape == (TOP_K,)
            assert res.dists.shape == (TOP_K,)
            assert res.served_ef > 0
            assert res.from_cache is False
            assert res.latency_ms >= 0.0
            assert res.shard_fanout == (2 if kind == "cluster" else 1)

            fut = client.submit(query, TOP_K, ef=32)
            res2 = fut.result(timeout=30.0)
            assert np.array_equal(res2.ids[:1], res.ids[:1])

            stats = client.stats()
            assert isinstance(stats, dict) and "engine" in stats
        finally:
            client.close()
        with pytest.raises(ServerClosed):
            client.query(query, TOP_K)

    def test_loadgen_runs_on_every_client(self, index, points, query):
        from repro.serve import closed_loop

        queries = points[:12]
        for kind, factory in client_factories(index, points).items():
            client = factory()
            try:
                report = closed_loop(client, queries, TOP_K, clients=3,
                                     repeat=1)
            finally:
                client.close()
            assert report.ok == queries.shape[0], kind
            assert report.errors == 0, kind

    def test_direct_client_deadline_and_context(self, index, query):
        with DirectClient(index) as client:
            res = client.query(query, TOP_K, deadline_ms=60_000.0)
            assert res.ids.shape == (TOP_K,)
            with pytest.raises(DeadlineExceeded):
                client.query(query, TOP_K, deadline_ms=0.0)

    def test_result_compat_aliases(self):
        res = SearchResult(ids=np.zeros(1, np.int32),
                           dists=np.zeros(1, np.float32),
                           served_ef=32, from_cache=True)
        assert res.ef_used == 32          # pre-rename alias
        assert res.cached is True         # pre-rename alias
        assert QueryResult is SearchResult


class TestServeConfigSections:
    def test_sectioned_construction(self):
        cfg = ServeConfig(
            admission=AdmissionPolicy(max_batch=32, max_wait_ms=1.5,
                                      queue_limit=128, n_workers=2),
            deadline=DeadlinePolicy(default_ms=25.0),
            cache=CachePolicy(size=64, decimals=4),
            default_k=7, ef=48,
        )
        assert cfg.admission.max_batch == 32
        assert cfg.deadline.default_ms == 25.0
        assert cfg.cache.size == 64
        # read-only flat views for migration-era call sites
        assert cfg.max_batch == 32
        assert cfg.default_deadline_ms == 25.0
        assert cfg.cache_size == 64

    def test_round_trip(self):
        cfg = ServeConfig(
            admission=AdmissionPolicy(max_batch=16),
            cache=CachePolicy(size=8), default_k=3, ef=20)
        clone = ServeConfig.from_dict(cfg.as_dict())
        assert clone == cfg

    def test_from_dict_accepts_flat_legacy_keys(self):
        with pytest.warns(DeprecationWarning, match="flat ServeConfig"):
            cfg = ServeConfig.from_dict(
                {"max_batch": 24, "cache_size": 50, "default_k": 9})
        assert cfg.admission.max_batch == 24
        assert cfg.cache.size == 50
        assert cfg.default_k == 9

    def test_flat_kwargs_warn_but_work(self):
        with pytest.warns(DeprecationWarning, match="max_batch"):
            cfg = ServeConfig(max_batch=24, max_wait_ms=3.0, queue_limit=99)
        assert cfg.admission.max_batch == 24
        assert cfg.admission.max_wait_ms == 3.0
        assert cfg.admission.queue_limit == 99

    def test_sectioned_construction_is_warning_free(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ServeConfig(admission=AdmissionPolicy(max_batch=8), ef=16)

    def test_unknown_kwarg_still_a_typeerror(self):
        with pytest.raises(TypeError):
            ServeConfig(batch_max=8)

    def test_server_accepts_flat_kwargs_with_warning(self, index, query):
        with pytest.warns(DeprecationWarning):
            server = KNNServer(index, max_batch=8, max_wait_ms=1.0)
        with server:
            assert server.query(query, TOP_K, timeout=30.0).ids.shape == \
                (TOP_K,)

    def test_server_rejects_config_plus_flat(self, index):
        with pytest.raises(ConfigurationError, match="not both"):
            KNNServer(index, ServeConfig(), max_batch=8)

    def test_validation_lives_in_sections(self):
        with pytest.raises(ConfigurationError):
            AdmissionPolicy(max_batch=0)
        with pytest.raises(ConfigurationError):
            CachePolicy(size=-1)


class TestKNNIndexProtocol:
    @pytest.mark.parametrize("name", sorted(ENGINES))
    def test_one_true_query_signature(self, points, name):
        engine = get_engine(name)
        assert isinstance(engine, KNNIndex)
        engine.fit(points)
        ids, dists = engine.query(points[:6], TOP_K)
        assert ids.shape == (6, TOP_K) and dists.shape == (6, TOP_K)
        # ef is keyword-only and accepted by every engine
        ids_ef, dists_ef = engine.query(points[:6], TOP_K, ef=32)
        assert ids_ef.shape == (6, TOP_K)
        assert np.isfinite(dists_ef[dists_ef < np.inf]).all()
        stats = engine.stats()
        assert isinstance(stats, dict)

    @pytest.mark.parametrize("name", sorted(ENGINES))
    def test_run_index_passes_ef_through(self, points, name):
        from repro.baselines.bruteforce import BruteForceKNN
        from repro.bench.sweep import run_index

        exact_ids, _ = BruteForceKNN(points).search(points, TOP_K + 1,
                                                    exclude_self=True)
        result = run_index(points, exact_ids, TOP_K, get_engine(name),
                           ef=48)
        assert 0.0 <= result.recall <= 1.0
        assert result.params["ef"] == 48
