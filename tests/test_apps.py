"""Tests for the applications: t-SNE and graph-guided similarity search."""

import numpy as np
import pytest

from repro.apps.search import GraphSearchIndex, SearchConfig
from repro.apps.tsne import TSNE, TSNEConfig
from repro.baselines.bruteforce import BruteForceKNN
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def labeled_blobs():
    rng = np.random.default_rng(0)
    centers = rng.standard_normal((4, 12)) * 8
    labels = np.repeat(np.arange(4), 75)
    x = (centers[labels] + rng.standard_normal((300, 12)) * 0.5).astype(np.float32)
    return x, labels


class TestTSNEConfig:
    def test_defaults(self):
        cfg = TSNEConfig()
        assert cfg.effective_k() == 90

    def test_knn_k_override(self):
        assert TSNEConfig(knn_k=25).effective_k() == 25

    def test_bad_perplexity(self):
        with pytest.raises(ConfigurationError):
            TSNEConfig(perplexity=1.0)

    def test_bad_components(self):
        with pytest.raises(ConfigurationError):
            TSNEConfig(n_components=0)

    def test_bad_n_iter(self):
        with pytest.raises(ConfigurationError):
            TSNEConfig(n_iter=0)


class TestTSNE:
    @pytest.fixture(scope="class")
    def embedding(self, labeled_blobs):
        x, labels = labeled_blobs
        model = TSNE(TSNEConfig(perplexity=12, n_iter=220,
                                exaggeration_iters=80, seed=0))
        return model, model.fit_transform(x), labels

    def test_shape(self, embedding):
        _, emb, _ = embedding
        assert emb.shape == (300, 2)
        assert np.isfinite(emb).all()

    def test_clusters_separate(self, embedding):
        """Intra-cluster embedding distances must be far below inter-cluster."""
        _, emb, labels = embedding
        d = ((emb[:, None, :] - emb[None, :, :]) ** 2).sum(-1)
        same = labels[:, None] == labels[None, :]
        np.fill_diagonal(same, False)
        intra = np.sqrt(d[same]).mean()
        inter = np.sqrt(d[~same & np.isfinite(d)]).mean()
        assert inter > 2 * intra

    def test_kl_recorded(self, embedding):
        model, _, _ = embedding
        assert np.isfinite(model.kl_divergence_)
        assert model.kl_divergence_ >= 0

    def test_graph_attached(self, embedding):
        model, _, _ = embedding
        assert model.knn_graph is not None
        assert model.knn_graph.n == 300

    def test_conditional_p_matches_perplexity(self, embedding, labeled_blobs):
        model, _, _ = embedding
        p = model._conditional_p(model.knn_graph)
        # row entropies should sit near log(perplexity)
        h = -(p * np.log(p + 1e-12)).sum(axis=1)
        target = np.log(model.config.perplexity)
        assert np.abs(h - target).mean() < 0.1

    def test_reproducible(self, labeled_blobs):
        x, _ = labeled_blobs
        cfg = dict(perplexity=10, n_iter=30, exaggeration_iters=10, seed=5)
        e1 = TSNE(TSNEConfig(**cfg)).fit_transform(x[:100])
        e2 = TSNE(TSNEConfig(**cfg)).fit_transform(x[:100])
        assert np.allclose(e1, e2)


class TestSearchConfig:
    def test_defaults_valid(self):
        assert SearchConfig().ef == 32

    def test_bad_ef(self):
        with pytest.raises(ConfigurationError):
            SearchConfig(ef=0)


class TestGraphSearch:
    @pytest.fixture(scope="class")
    def index(self, labeled_blobs):
        x, _ = labeled_blobs
        return x, GraphSearchIndex.build(x, k=10, seed=1)

    def test_high_recall(self, index):
        x, idx = index
        rng = np.random.default_rng(2)
        q = x[rng.choice(300, 40, replace=False)] + rng.standard_normal((40, 12)).astype(np.float32) * 0.1
        ids, _ = idx.search(q, 5)
        gt, _ = BruteForceKNN(x).search(q, 5)
        recall = np.mean([len(set(a) & set(b)) / 5 for a, b in zip(ids, gt)])
        assert recall > 0.85

    def test_results_sorted(self, index):
        x, idx = index
        _, dists = idx.search(x[:3], 5)
        assert (np.diff(dists, axis=1) >= 0).all()

    def test_known_point_found(self, index):
        x, idx = index
        ids, dists = idx.search(x[7:8], 1)
        assert ids[0, 0] == 7
        assert dists[0, 0] == pytest.approx(0.0, abs=1e-5)

    def test_ef_improves_recall(self, labeled_blobs):
        x, _ = labeled_blobs
        rng = np.random.default_rng(3)
        q = rng.standard_normal((30, 12)).astype(np.float32) * 4
        gt, _ = BruteForceKNN(x).search(q, 8)

        def recall_at(ef):
            idx = GraphSearchIndex.build(
                x, k=8, seed=1, search_config=SearchConfig(ef=ef, seeds_per_tree=1)
            )
            ids, _ = idx.search(q, 8)
            return np.mean([len(set(a) & set(b)) / 8 for a, b in zip(ids, gt)])

        assert recall_at(64) >= recall_at(2) - 0.02

    def test_dim_mismatch(self, index):
        from repro.errors import DataError

        _, idx = index
        with pytest.raises(DataError, match="dimension"):
            idx.search(np.zeros((1, 5), dtype=np.float32), 3)

    def test_graph_points_mismatch_rejected(self, labeled_blobs):
        x, _ = labeled_blobs
        idx = GraphSearchIndex.build(x, k=5, seed=0)
        with pytest.raises(ConfigurationError):
            GraphSearchIndex(x[:10], idx.graph, idx.forest)
