"""Tests for the KernelMetrics counters and cycle arithmetic."""


from repro.simt.config import DeviceConfig
from repro.simt.metrics import KernelMetrics


class TestCounterArithmetic:
    def test_add_accumulates(self):
        a = KernelMetrics(alu_ops=3, global_loads=1)
        b = KernelMetrics(alu_ops=2, atomic_ops=5)
        a.add(b)
        assert a.alu_ops == 5
        assert a.global_loads == 1
        assert a.atomic_ops == 5

    def test_add_returns_self(self):
        a = KernelMetrics()
        assert a.add(KernelMetrics()) is a

    def test_copy_independent(self):
        a = KernelMetrics(alu_ops=1)
        c = a.copy()
        a.alu_ops = 99
        assert c.alu_ops == 1

    def test_reset(self):
        a = KernelMetrics(alu_ops=7, barriers=2)
        a.reset()
        assert a.alu_ops == 0 and a.barriers == 0

    def test_as_dict_covers_all_fields(self):
        d = KernelMetrics().as_dict()
        assert "global_load_transactions" in d
        assert "global_cache_hits" in d
        assert all(v == 0 for v in d.values())


class TestCycleModel:
    def test_alu_only(self):
        cfg = DeviceConfig()
        m = KernelMetrics(alu_ops=10)
        assert m.estimated_cycles(cfg) == 10 * cfg.alu_cycles

    def test_uncached_loads_at_dram_latency(self):
        cfg = DeviceConfig()
        m = KernelMetrics(global_load_transactions=4)
        assert m.estimated_cycles(cfg) == 4 * cfg.global_latency_cycles

    def test_cache_hits_cheaper(self):
        cfg = DeviceConfig()
        hit = KernelMetrics(global_load_transactions=4, global_cache_hits=4)
        miss = KernelMetrics(global_load_transactions=4, global_cache_misses=4)
        assert hit.estimated_cycles(cfg) == 4 * cfg.cache_hit_cycles
        assert miss.estimated_cycles(cfg) == 4 * cfg.global_latency_cycles

    def test_stores_always_dram(self):
        cfg = DeviceConfig()
        m = KernelMetrics(global_store_transactions=3)
        assert m.estimated_cycles(cfg) == 3 * cfg.global_latency_cycles

    def test_bank_conflicts_add_shared_passes(self):
        cfg = DeviceConfig()
        clean = KernelMetrics(shared_accesses=5)
        conflicted = KernelMetrics(shared_accesses=5, shared_bank_conflicts=5)
        assert conflicted.estimated_cycles(cfg) == 2 * clean.estimated_cycles(cfg)

    def test_atomic_conflicts_double(self):
        cfg = DeviceConfig()
        clean = KernelMetrics(atomic_ops=2)
        contended = KernelMetrics(atomic_ops=2, atomic_conflicts=2)
        assert contended.estimated_cycles(cfg) == 2 * clean.estimated_cycles(cfg)

    def test_zero_cost_config(self):
        cfg = DeviceConfig(alu_cycles=0, shared_cycles=0,
                           global_latency_cycles=0, atomic_cycles=0,
                           cache_hit_cycles=0)
        m = KernelMetrics(alu_ops=10, global_load_transactions=5, atomic_ops=2)
        assert m.estimated_cycles(cfg) == 0

    def test_str_omits_zero_fields(self):
        s = str(KernelMetrics(alu_ops=1))
        assert "alu_ops=1" in s
        assert "barriers" not in s
