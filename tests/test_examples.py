"""Smoke tests for the example scripts.

Every example must at least compile; the fast ones run end to end as
subprocesses (the slow embedding examples are exercised by their unit
tests instead - re-running full t-SNE here would double the suite time).
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))
FAST = {"cluster_demo.py", "custom_simt_kernel.py", "gnn_edges_demo.py",
        "quickstart.py", "serving_demo.py"}


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize(
    "path", [p for p in EXAMPLES if p.name in FAST], ids=lambda p: p.name
)
def test_fast_example_runs(path):
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example should print something"


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "strategy_crossover.py",
        "tsne_pipeline.py",
        "similarity_search.py",
        "custom_simt_kernel.py",
        "label_propagation.py",
        "serving_demo.py",
        "cluster_demo.py",
        "gnn_edges_demo.py",
    } <= names
