"""Tests for near-duplicate detection."""

import numpy as np
import pytest

from repro import BuildConfig, WKNNGBuilder
from repro.apps.dedup import DedupConfig, Deduplicator
from repro.data.synthetic import uniform_hypercube
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def duplicated_graph():
    """200 base points; points 0-19 each get two near-copies appended."""
    rng = np.random.default_rng(17)
    base = uniform_hypercube(200, 8, seed=17)
    copies = []
    for i in range(20):
        for _ in range(2):
            copies.append(base[i] + rng.normal(0, 1e-5, 8).astype(np.float32))
    x = np.vstack([base, np.array(copies, dtype=np.float32)])
    graph = WKNNGBuilder(BuildConfig(k=6, n_trees=4, leaf_size=32,
                                     refine_iters=2, seed=0)).build(x)
    return x, graph


class TestConfig:
    def test_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            DedupConfig(threshold=-1)

    def test_bad_quantile(self):
        with pytest.raises(ConfigurationError):
            DedupConfig(quantile=0.0)

    def test_bad_floor(self):
        with pytest.raises(ConfigurationError):
            DedupConfig(floor=-1)


class TestDeduplicator:
    def test_finds_planted_groups(self, duplicated_graph):
        _, graph = duplicated_graph
        groups = Deduplicator(DedupConfig(threshold=1e-6)).find_groups(graph)
        assert len(groups) == 20
        for g in groups:
            assert len(g) == 3  # original + two copies
            assert g[0] < 200 and g[1] >= 200  # one base, copies appended

    def test_auto_threshold_finds_groups(self, duplicated_graph):
        _, graph = duplicated_graph
        dedup = Deduplicator(DedupConfig(quantile=0.05))
        groups = dedup.find_groups(graph)
        assert np.isfinite(dedup.threshold_)
        planted = [g for g in groups if len(g) >= 3]
        assert len(planted) >= 18  # allow a couple of near-threshold misses

    def test_groups_sorted_by_size(self, duplicated_graph):
        _, graph = duplicated_graph
        groups = Deduplicator(DedupConfig(threshold=1e-6)).find_groups(graph)
        sizes = [len(g) for g in groups]
        assert sizes == sorted(sizes, reverse=True)

    def test_no_duplicates_dataset(self):
        x = uniform_hypercube(150, 8, seed=18)
        graph = WKNNGBuilder(BuildConfig(k=5, n_trees=3, leaf_size=24,
                                         refine_iters=1, seed=0)).build(x)
        groups = Deduplicator(DedupConfig(threshold=1e-9)).find_groups(graph)
        assert groups == []

    def test_duplicate_mask(self, duplicated_graph):
        _, graph = duplicated_graph
        mask = Deduplicator(DedupConfig(threshold=1e-6)).duplicate_mask(graph)
        assert mask.sum() == 60  # 20 groups x 3 members
        assert mask[200:].all()  # every appended copy is flagged

    def test_representatives_drop_copies(self, duplicated_graph):
        _, graph = duplicated_graph
        reps = Deduplicator(DedupConfig(threshold=1e-6)).representatives(graph)
        # 200 base + 40 copies; two copies dropped per each of 20 groups
        assert graph.n == 240
        assert len(reps) == 240 - 40
        assert set(range(200)) <= set(reps.tolist())  # base points all kept
