"""Tests for the global-memory k-NN list structure."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels.knn_state import EMPTY_ID, KnnState


class TestConstruction:
    def test_initial_state(self):
        s = KnnState(4, 3)
        assert (s.ids == EMPTY_ID).all()
        assert np.isinf(s.dists).all()

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            KnnState(0, 3)
        with pytest.raises(ConfigurationError):
            KnnState(3, 0)

    def test_dtypes(self):
        s = KnnState(2, 2)
        assert s.ids.dtype == np.int32 and s.dists.dtype == np.float32


class TestQueries:
    def test_row_max_empty_is_inf(self):
        s = KnnState(3, 2)
        assert np.isinf(s.row_max(np.array([0, 1]))).all()

    def test_row_max_after_fill(self):
        s = KnnState(2, 2)
        s.dists[0] = [1.0, 5.0]
        assert s.row_max(np.array([0]))[0] == 5.0

    def test_contains(self):
        s = KnnState(2, 3)
        s.ids[0] = [7, 8, EMPTY_ID]
        rows = np.array([0, 0, 1])
        cols = np.array([8, 9, 7])
        assert s.contains(rows, cols).tolist() == [True, False, False]

    def test_filled_counts(self):
        s = KnnState(2, 3)
        s.ids[0, 0] = 4
        assert s.filled_counts().tolist() == [1, 0]

    def test_sorted_arrays(self):
        s = KnnState(1, 3)
        s.ids[0] = [5, 6, 7]
        s.dists[0] = [3.0, 1.0, 2.0]
        ids, dists = s.sorted_arrays()
        assert ids[0].tolist() == [6, 7, 5]
        assert dists[0].tolist() == [1.0, 2.0, 3.0]


class TestMergeRows:
    def test_insert_into_empty(self):
        s = KnnState(2, 2)
        rows = np.array([0])
        n = s.merge_rows(rows, np.array([[3, 4]], dtype=np.int32),
                         np.array([[2.0, 1.0]], dtype=np.float32))
        assert n == 2
        ids, dists = s.sorted_arrays()
        assert ids[0].tolist() == [4, 3]

    def test_keeps_k_smallest(self):
        s = KnnState(1, 2)
        s.ids[0] = [1, 2]
        s.dists[0] = [1.0, 2.0]
        n = s.merge_rows(np.array([0]), np.array([[3, 4]], dtype=np.int32),
                         np.array([[0.5, 9.0]], dtype=np.float32))
        assert n == 1
        ids, dists = s.sorted_arrays()
        assert ids[0].tolist() == [3, 1]
        assert dists[0].tolist() == [0.5, 1.0]

    def test_inf_candidates_not_counted(self):
        s = KnnState(1, 2)
        n = s.merge_rows(np.array([0]),
                         np.array([[5, EMPTY_ID]], dtype=np.int32),
                         np.array([[1.0, np.inf]], dtype=np.float32))
        assert n == 1

    def test_empty_rows_noop(self):
        s = KnnState(2, 2)
        assert s.merge_rows(np.empty(0, dtype=np.int64),
                            np.empty((0, 1), dtype=np.int32),
                            np.empty((0, 1), dtype=np.float32)) == 0

    def test_multiple_rows(self):
        s = KnnState(3, 2)
        rows = np.array([0, 2])
        cand_i = np.array([[1, 2], [0, 1]], dtype=np.int32)
        cand_d = np.array([[1.0, 2.0], [3.0, 4.0]], dtype=np.float32)
        s.merge_rows(rows, cand_i, cand_d)
        assert s.filled_counts().tolist() == [2, 0, 2]

    def test_copy_independent(self):
        s = KnnState(1, 1)
        c = s.copy()
        s.ids[0, 0] = 9
        assert c.ids[0, 0] == EMPTY_ID
