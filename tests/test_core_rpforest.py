"""Tests for random projection trees and forests."""

import numpy as np
import pytest

from repro.core.rpforest import (
    RPForest,
    batch_leaves,
    build_forest,
    build_tree,
)
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(5)
    return rng.standard_normal((300, 10)).astype(np.float32)


class TestBuildTree:
    def test_leaves_partition_points(self, points):
        tree = build_tree(points, leaf_size=32, rng=0)
        all_ids = np.concatenate(tree.leaves)
        assert sorted(all_ids.tolist()) == list(range(300))

    def test_leaf_size_respected(self, points):
        tree = build_tree(points, leaf_size=25, rng=0)
        assert (tree.leaf_sizes() <= 25).all()

    def test_tiny_dataset_single_leaf(self):
        x = np.random.default_rng(0).standard_normal((5, 3)).astype(np.float32)
        tree = build_tree(x, leaf_size=10, rng=0)
        assert tree.n_leaves == 1
        assert tree.normals.shape == (0, 3)

    def test_reproducible(self, points):
        t1 = build_tree(points, leaf_size=20, rng=7)
        t2 = build_tree(points, leaf_size=20, rng=7)
        assert len(t1.leaves) == len(t2.leaves)
        for a, b in zip(t1.leaves, t2.leaves):
            assert np.array_equal(a, b)

    def test_different_seeds_differ(self, points):
        t1 = build_tree(points, leaf_size=20, rng=1)
        t2 = build_tree(points, leaf_size=20, rng=2)
        same = all(
            np.array_equal(a, b) for a, b in zip(t1.leaves, t2.leaves)
        ) and len(t1.leaves) == len(t2.leaves)
        assert not same

    def test_duplicate_points_terminate(self):
        x = np.ones((100, 4), dtype=np.float32)
        tree = build_tree(x, leaf_size=10, rng=0)
        assert (tree.leaf_sizes() <= 10).all()
        assert np.concatenate(tree.leaves).shape[0] == 100

    def test_normals_are_unit(self, points):
        tree = build_tree(points, leaf_size=32, rng=0)
        if tree.normals.shape[0]:
            norms = np.linalg.norm(tree.normals, axis=1)
            assert np.allclose(norms, 1.0, atol=1e-5)

    def test_bad_balance_range(self, points):
        with pytest.raises(ConfigurationError):
            build_tree(points, leaf_size=32, rng=0, balance_range=(0.8, 0.2))

    def test_leaf_size_minimum(self, points):
        with pytest.raises(ConfigurationError):
            build_tree(points, leaf_size=1, rng=0)


class TestLeafRouting:
    def test_training_points_route_to_their_leaf(self, points):
        tree = build_tree(points, leaf_size=40, rng=3)
        leaf_of = np.empty(300, dtype=np.int64)
        for li, leaf in enumerate(tree.leaves):
            leaf_of[leaf] = li
        routed = tree.leaf_for(points)
        # degenerate splits may misroute a handful; the bulk must match
        assert (routed == leaf_of).mean() > 0.95

    def test_single_leaf_tree_routes_everything_to_zero(self):
        x = np.random.default_rng(1).standard_normal((4, 3)).astype(np.float32)
        tree = build_tree(x, leaf_size=10, rng=0)
        assert (tree.leaf_for(x) == 0).all()

    def test_dimension_mismatch(self, points):
        tree = build_tree(points, leaf_size=40, rng=0)
        with pytest.raises(Exception):
            tree.leaf_for(np.zeros((2, 99), dtype=np.float32))

    def test_routing_deterministic(self, points):
        tree = build_tree(points, leaf_size=40, rng=0)
        q = np.random.default_rng(9).standard_normal((20, 10)).astype(np.float32)
        assert np.array_equal(tree.leaf_for(q), tree.leaf_for(q))


class TestForest:
    def test_tree_count(self, points):
        forest = build_forest(points, n_trees=5, leaf_size=30, seed=0)
        assert forest.n_trees == 5

    def test_trees_differ(self, points):
        forest = build_forest(points, n_trees=2, leaf_size=30, seed=0)
        t1, t2 = forest.trees
        same = len(t1.leaves) == len(t2.leaves) and all(
            np.array_equal(a, b) for a, b in zip(t1.leaves, t2.leaves)
        )
        assert not same

    def test_reproducible(self, points):
        f1 = build_forest(points, 3, 30, seed=9)
        f2 = build_forest(points, 3, 30, seed=9)
        for t1, t2 in zip(f1.trees, f2.trees):
            for a, b in zip(t1.leaves, t2.leaves):
                assert np.array_equal(a, b)

    def test_iter_leaves(self, points):
        forest = build_forest(points, 2, 50, seed=0)
        pairs = list(forest.iter_leaves())
        assert {ti for ti, _ in pairs} == {0, 1}
        total = sum(leaf.shape[0] for _, leaf in pairs)
        assert total == 600  # 2 trees x 300 points

    def test_leaf_sizes_concatenated(self, points):
        forest = build_forest(points, 2, 50, seed=0)
        assert forest.leaf_sizes().sum() == 600

    def test_empty_forest_leaf_sizes(self):
        assert RPForest(trees=[]).leaf_sizes().size == 0


class TestBatchLeaves:
    def test_all_points_covered_once(self, points):
        tree = build_tree(points, leaf_size=30, rng=0)
        batches = batch_leaves(tree.leaves)
        seen = []
        for mat, lengths in batches:
            for row, ln in zip(mat, lengths):
                seen.extend(row[:ln].tolist())
        assert sorted(seen) == sorted(np.concatenate(tree.leaves).tolist())

    def test_budget_respected(self, points):
        tree = build_tree(points, leaf_size=30, rng=0)
        budget = 5000
        for mat, _ in batch_leaves(tree.leaves, max_batch_cells=budget):
            b, m = mat.shape
            assert b * m * m <= budget or b == 1

    def test_tiny_leaves_skipped(self):
        leaves = [np.array([3]), np.array([1, 2])]
        batches = batch_leaves(leaves)
        total = sum(l.sum() for mat, lengths in batches for l in [lengths])
        assert total == 2  # only the 2-element leaf

    def test_empty_input(self):
        assert batch_leaves([]) == []

    def test_padding_masked_by_lengths(self, points):
        tree = build_tree(points, leaf_size=30, rng=0)
        for mat, lengths in batch_leaves(tree.leaves):
            assert (lengths <= mat.shape[1]).all()
            assert (lengths >= 2).all()
