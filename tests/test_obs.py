"""Tests for the unified observability layer (repro.obs).

Covers the tracer's span nesting, the typed metrics registry
(merge/reset/sections), profiling-hook ordering, the JSON-lines export
round-trip, the redesigned builder API and the legacy ``BuildReport``
back-compat surface - including the acceptance criterion that a traced
build's span tree covers every pipeline phase and its aggregated counters
equal the legacy counter snapshot exactly.
"""

import warnings

import numpy as np
import pytest

from repro.core.builder import PHASES, BuildReport, WKNNGBuilder
from repro.core.config import BuildConfig
from repro.obs import NULL_SPAN, Events, Observability
from repro.obs.export import read_trace, write_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def cfg(**kw):
    base = dict(k=10, n_trees=3, leaf_size=48, refine_iters=2, seed=0)
    base.update(kw)
    return BuildConfig(**base)


class TestSpans:
    def test_nesting_builds_slash_paths(self):
        tr = Tracer()
        with tr.span("build"):
            with tr.span("refine"):
                with tr.span("round-0"):
                    pass
                with tr.span("round-1"):
                    pass
        assert tr.tree_paths() == {
            "build", "build/refine",
            "build/refine/round-0", "build/refine/round-1",
        }

    def test_records_complete_in_child_first_order(self):
        tr = Tracer()
        with tr.span("a"):
            with tr.span("b"):
                pass
        assert [r.name for r in tr.records] == ["b", "a"]
        assert tr.records[0].depth == 1
        assert tr.records[1].depth == 0

    def test_children_in_start_order(self):
        tr = Tracer()
        with tr.span("root"):
            for name in ("x", "y", "z"):
                with tr.span(name):
                    pass
        assert [r.name for r in tr.children("root")] == ["x", "y", "z"]

    def test_attrs_via_constructor_and_set(self):
        tr = Tracer()
        with tr.span("s", fixed=1) as sp:
            sp.set(late=2)
        rec = tr.records[0]
        assert rec.attrs == {"fixed": 1, "late": 2}

    def test_sibling_spans_do_not_nest(self):
        tr = Tracer()
        with tr.span("a"):
            pass
        with tr.span("b"):
            pass
        assert all(r.depth == 0 for r in tr.records)

    def test_exception_recorded_and_propagated(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("outer"):
                with tr.span("inner"):
                    raise ValueError("boom")
        assert len(tr.records) == 2
        assert tr.records[0].attrs["error"] == "ValueError"
        # the stack unwound: a new span is a root again
        with tr.span("after"):
            pass
        assert tr.records[-1].depth == 0

    def test_durations_nonnegative_and_parent_covers_child(self):
        tr = Tracer()
        with tr.span("p"):
            with tr.span("c"):
                sum(range(1000))
        child, parent = tr.records
        assert child.seconds >= 0
        assert parent.seconds >= child.seconds

    def test_disabled_tracer_hands_out_the_shared_null_span(self):
        tr = Tracer(enabled=False)
        s1 = tr.span("a", attr=1)
        s2 = tr.span("b")
        # one shared no-op object (the <5% disabled-overhead design): no
        # allocation, no record-keeping
        assert s1 is NULL_SPAN and s2 is NULL_SPAN
        with s1 as sp:
            sp.set(x=1)
        assert len(tr.records) == 0

    def test_reset_clears_records(self):
        tr = Tracer()
        with tr.span("a"):
            pass
        tr.reset()
        assert len(tr) == 0

    def test_memory_capture(self):
        tr = Tracer(trace_memory=True)
        with tr.span("alloc"):
            _block = np.ones(200_000, dtype=np.float64)
        rec = tr.records[0]
        assert rec.mem_peak_bytes is not None
        assert rec.mem_peak_bytes >= 200_000 * 8 * 0.9
        tr.reset()  # stops tracemalloc if the tracer started it


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("k/c").inc(3)
        reg.counter("k/c").inc(4)
        reg.gauge("k/g").set(1.5)
        reg.gauge("k/g").set(2.5)
        reg.histogram("k/h").observe(1.0)
        reg.histogram("k/h").observe(3.0)
        assert reg.counter("k/c").get() == 7
        assert reg.gauge("k/g").get() == 2.5
        h = reg.histogram("k/h").get()
        assert h["count"] == 2 and h["min"] == 1.0 and h["max"] == 3.0
        assert h["mean"] == pytest.approx(2.0)

    def test_counters_are_monotone(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c").inc(-1)

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("name")
        with pytest.raises(TypeError):
            reg.gauge("name")

    def test_merge_accumulates_counters_and_overwrites_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc(10)
        b.counter("c").inc(5)
        a.gauge("g").set(1.0)
        b.gauge("g").set(9.0)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(5.0)
        a.merge(b)
        assert a.counter("c").get() == 15
        assert a.gauge("g").get() == 9.0
        assert a.histogram("h").get()["count"] == 2

    def test_reset_zeroes_but_keeps_names(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.reset()
        assert "c" in reg
        assert reg.counter("c").get() == 0

    def test_absorb_reproduces_legacy_dict_via_section(self):
        from repro.kernels.counters import METRICS_PREFIX, OpCounters

        counters = OpCounters(distance_evals=100, candidates_inserted=7)
        reg = MetricsRegistry()
        counters.emit(reg)
        assert reg.section(METRICS_PREFIX) == counters.as_dict()

    def test_section_strips_prefix_and_filters(self):
        reg = MetricsRegistry()
        reg.counter("a/x").inc(1)
        reg.counter("b/y").inc(2)
        assert reg.section("a/") == {"x": 1}


class TestHooks:
    def test_subscribers_called_in_order_with_wildcard_last(self):
        obs = Observability()
        calls = []
        obs.hooks.subscribe("ev", lambda e, p: calls.append(("first", p["x"])))
        obs.hooks.subscribe("ev", lambda e, p: calls.append(("second", p["x"])))
        obs.hooks.subscribe("*", lambda e, p: calls.append(("star", e)))
        obs.hooks.emit("ev", x=42)
        assert calls == [("first", 42), ("second", 42), ("star", "ev")]

    def test_unsubscribe(self):
        obs = Observability()
        calls = []
        unsub = obs.hooks.subscribe("ev", lambda e, p: calls.append(e))
        obs.hooks.emit("ev")
        unsub()
        obs.hooks.emit("ev")
        assert calls == ["ev"]

    def test_pair_subscribes_before_and_after(self):
        obs = Observability()
        seen = []
        obs.hooks.pair("kernel_dispatch", lambda e, p: seen.append(e))
        obs.hooks.emit(Events.KERNEL_DISPATCH_BEFORE)
        obs.hooks.emit(Events.KERNEL_DISPATCH_AFTER)
        assert seen == [Events.KERNEL_DISPATCH_BEFORE,
                        Events.KERNEL_DISPATCH_AFTER]

    def test_build_emits_paired_events_in_order(self, small_clustered):
        obs = Observability()
        events = []
        obs.hooks.subscribe("*", lambda e, p: events.append(e))
        WKNNGBuilder(cfg(), obs=obs).build(small_clustered)
        # per kind, before/after strictly alternate and balance (kinds may
        # nest in each other: dispatches happen inside refine rounds)
        kinds = {e.rsplit(":", 1)[0] for e in events}
        assert kinds == {"kernel_dispatch", "refine_round", "tree_build"}
        for kind in kinds:
            depth = 0
            for e in events:
                if e == f"{kind}:before":
                    depth += 1
                elif e == f"{kind}:after":
                    depth -= 1
                assert depth in (0, 1), f"unbalanced {kind} events"
            assert depth == 0, f"unbalanced {kind} events"

    def test_refine_round_payloads(self, small_clustered):
        obs = Observability()
        rounds = []
        obs.hooks.subscribe(
            Events.REFINE_ROUND_AFTER,
            lambda e, p: rounds.append((p["round"], p["inserted"])),
        )
        _, report = WKNNGBuilder(cfg(), obs=obs).build(
            small_clustered, return_report=True)
        assert [ins for _, ins in rounds] == report.refine_insertions


class TestBuilderApi:
    def test_build_returns_graph_and_report(self, small_clustered):
        graph, report = WKNNGBuilder(cfg()).build(
            small_clustered, return_report=True)
        assert isinstance(report, BuildReport)
        assert graph.report is report

    def test_report_attached_without_flag(self, small_clustered):
        graph = WKNNGBuilder(cfg()).build(small_clustered)
        assert isinstance(graph.report, BuildReport)

    def test_last_report_warns_but_matches(self, small_clustered):
        builder = WKNNGBuilder(cfg())
        graph = builder.build(small_clustered)
        with pytest.warns(DeprecationWarning):
            assert builder.last_report is graph.report

    def test_new_api_emits_no_deprecation_warning(self, small_clustered):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            graph, report = WKNNGBuilder(cfg()).build(
                small_clustered, return_report=True)
            _ = graph.report.phase_seconds

    def test_back_compat_attribute_surface(self, small_clustered):
        _, rep = WKNNGBuilder(cfg()).build(small_clustered, return_report=True)
        assert set(rep.phase_seconds) == set(PHASES)
        assert rep.total_seconds > 0
        assert rep.counters["distance_evals"] > 0
        assert len(rep.refine_insertions) >= 1
        assert rep.leaf_stats["n_leaves"] > 0
        d = rep.as_dict()
        assert set(d) == {"phase_seconds", "total_seconds", "counters",
                          "refine_insertions", "leaf_stats",
                          "metric", "strategy", "parallel"}
        # bench JSON is self-describing: resolved metric + strategy ride along
        assert d["metric"] == "sqeuclidean"
        assert d["strategy"] == cfg().strategy
        assert d["parallel"]["n_jobs"] == 1

    def test_report_constructible_directly(self):
        # the legacy constructor shape still works (old pickles/tests)
        rep = BuildReport(phase_seconds={"forest": 1.0},
                          counters={"distance_evals": 5})
        assert rep.total_seconds == 1.0
        assert rep.spans == ()

    def test_builder_reuse_reports_only_own_build(self, small_clustered,
                                                  small_uniform):
        obs = Observability()
        builder = WKNNGBuilder(cfg(), obs=obs)
        builder.build(small_clustered)
        _, rep2 = builder.build(small_uniform, return_report=True)
        # the second report derives from the second root span only
        root = max((r for r in obs.trace.records if r.depth == 0),
                   key=lambda r: r.start)
        assert rep2.total_seconds <= root.seconds * 1.001


class TestAcceptance:
    """The issue's acceptance criterion, end to end."""

    def test_traced_build_covers_phases_and_matches_legacy_counters(
            self, small_clustered, tmp_path):
        from repro.kernels.counters import METRICS_PREFIX, OpCounters

        obs = Observability()
        _, report = WKNNGBuilder(cfg(), obs=obs).build(
            small_clustered, return_report=True)
        out = tmp_path / "trace.jsonl"
        write_trace(out, obs, meta={"dataset": "small_clustered"})
        data = read_trace(out)

        # span tree covers the whole pipeline
        paths = data.span_paths()
        for phase in PHASES:
            assert f"build/{phase}" in paths
        assert "build" in paths

        # aggregated counters == the legacy OpCounters surface, exactly
        section = data.metrics.section(METRICS_PREFIX)
        assert section == report.counters
        assert set(section) == set(OpCounters().as_dict())

        # and an independent identically-seeded build agrees (the trace is
        # a faithful record, not a lossy summary)
        _, report2 = WKNNGBuilder(cfg()).build(
            small_clustered, return_report=True)
        assert report2.counters == report.counters
        assert report2.refine_insertions == report.refine_insertions

    def test_round_trip_preserves_spans_meta_and_metrics(self, tmp_path):
        obs = Observability()
        with obs.trace.span("build", n=10):
            with obs.trace.span("forest"):
                pass
        obs.metrics.counter("kernel/distance_evals").inc(123)
        obs.metrics.gauge("forest/n_leaves").set(4.0)
        obs.metrics.histogram("dispatch/x/seconds").observe(0.5)
        out = tmp_path / "t.jsonl"
        write_trace(out, obs, meta={"note": "unit"})
        data = read_trace(out)
        assert data.meta["note"] == "unit"
        assert data.meta["schema"] == 1
        assert [s.path for s in data.spans] == ["build/forest", "build"]
        assert data.spans[1].attrs == {"n": 10}
        assert data.metrics.counter("kernel/distance_evals").get() == 123
        assert data.metrics.gauge("forest/n_leaves").get() == 4.0
        assert data.metrics.histogram("dispatch/x/seconds").get()["count"] == 1

    def test_simt_backend_traces_too(self, tiny_points):
        obs = Observability()
        config = BuildConfig(k=5, n_trees=1, leaf_size=16, refine_iters=1,
                             backend="simt", strategy="atomic", seed=0)
        _, report = WKNNGBuilder(config, obs=obs).build(
            tiny_points, return_report=True)
        for phase in PHASES:
            assert f"build/{phase}" in obs.trace.tree_paths()
        # simt counters come from the device metrics
        assert report.counters["warps_launched"] > 0
        # the simulated launches surfaced through the dispatch namespace
        assert any(name.startswith("dispatch/simt/")
                   for name in obs.metrics.names())

    def test_disabled_observability_still_yields_report(self, small_clustered):
        obs = Observability.disabled()
        _, report = WKNNGBuilder(cfg(), obs=obs).build(
            small_clustered, return_report=True)
        assert len(obs.trace.records) == 0
        assert report.phase_seconds == {}   # no spans -> no phase timings
        assert report.counters["distance_evals"] > 0  # metrics still flow


class TestQuantileHistogram:
    def test_quantiles_of_known_distribution(self):
        from repro.obs.metrics import QuantileHistogram

        h = QuantileHistogram()
        for v in range(1, 1001):          # 1..1000, well under the reservoir
            h.observe(float(v))
        out = h.get()
        assert out["count"] == 1000
        assert out["p50"] == pytest.approx(500.5, rel=0.01)
        assert out["p95"] == pytest.approx(950.0, rel=0.01)
        assert out["p99"] == pytest.approx(990.0, rel=0.01)

    def test_reservoir_bounds_memory(self):
        from repro.obs.metrics import QuantileHistogram

        h = QuantileHistogram()
        for v in range(QuantileHistogram.RESERVOIR_CAP * 3):
            h.observe(float(v))
        assert len(h.samples) == QuantileHistogram.RESERVOIR_CAP
        assert h.count == QuantileHistogram.RESERVOIR_CAP * 3
        # sampled quantiles stay in the ballpark of the true ones
        n = QuantileHistogram.RESERVOIR_CAP * 3
        assert h.get()["p50"] == pytest.approx(n / 2, rel=0.10)

    def test_deterministic_across_instances(self):
        from repro.obs.metrics import QuantileHistogram

        a, b = QuantileHistogram(), QuantileHistogram()
        for v in range(20_000):
            a.observe(float(v))
            b.observe(float(v))
        assert a.get() == b.get()

    def test_merge_combines_counts(self):
        from repro.obs.metrics import QuantileHistogram

        a, b = QuantileHistogram(), QuantileHistogram()
        for v in range(100):
            a.observe(float(v))
        for v in range(100, 200):
            b.observe(float(v))
        a.merge(b)
        out = a.get()
        assert out["count"] == 200
        assert out["min"] == 0.0 and out["max"] == 199.0
        assert out["p50"] == pytest.approx(99.5, rel=0.05)

    def test_registry_accessor_and_kind_stability(self):
        reg = MetricsRegistry()
        h = reg.quantile_histogram("serve/latency")
        h.observe(1.0)
        assert reg.quantile_histogram("serve/latency") is h
        with pytest.raises(Exception):
            reg.counter("serve/latency")   # kind mismatch

    def test_trace_round_trip_preserves_percentiles(self, tmp_path):
        obs = Observability()
        h = obs.metrics.quantile_histogram("serve/latency_seconds")
        for v in range(500):
            h.observe(v / 1000.0)
        before = h.get()
        path = write_trace(tmp_path / "t.jsonl", obs)
        restored = read_trace(path).metrics
        after = restored.quantile_histogram("serve/latency_seconds").get()
        assert after["count"] == before["count"]
        for p in ("p50", "p95", "p99"):
            assert after[p] == pytest.approx(before[p])

    def test_empty_histogram_reports_zero_percentiles(self):
        from repro.obs.metrics import QuantileHistogram

        out = QuantileHistogram().get()
        assert out["count"] == 0
        assert out["p50"] == 0.0 and out["p99"] == 0.0
