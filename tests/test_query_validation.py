"""Cross-engine query-input validation (the shared ``check_query_matrix``).

Every engine behind the :class:`~repro.baselines.KNNIndex` protocol - and
the online server - must reject malformed query input with a clear
``ValueError`` naming the problem, instead of failing deep inside a GEMM
or silently broadcasting.
"""

import numpy as np
import pytest

from repro.baselines import ENGINES
from repro.errors import DataError
from repro.serve import KNNServer
from repro.utils.validation import check_query_matrix, check_query_vector

DIM = 8
N = 120


def _fitted(name):
    rng = np.random.default_rng(11)
    x = rng.standard_normal((N, DIM), dtype=np.float32)
    engine = ENGINES[name]()
    engine.fit(x)
    return engine


@pytest.fixture(scope="module", params=sorted(ENGINES))
def engine(request):
    return _fitted(request.param)


class TestEngineQueryValidation:
    def test_ok_query_accepted(self, engine):
        ids, dists = engine.query(np.zeros((2, DIM), dtype=np.float32), 3)
        assert ids.shape == (2, 3) and dists.shape == (2, 3)

    def test_float64_converted_not_rejected(self, engine):
        ids, _ = engine.query(np.zeros((1, DIM), dtype=np.float64), 3)
        assert ids.shape == (1, 3)

    def test_non_numeric_dtype_rejected(self, engine):
        bad = np.array([["a"] * DIM], dtype=object)
        with pytest.raises(ValueError, match="float32"):
            engine.query(bad, 3)

    def test_1d_rejected_with_reshape_hint(self, engine):
        with pytest.raises(ValueError, match="reshape"):
            engine.query(np.zeros(DIM, dtype=np.float32), 3)

    def test_3d_rejected(self, engine):
        with pytest.raises(ValueError, match="2-D"):
            engine.query(np.zeros((1, 2, DIM), dtype=np.float32), 3)

    def test_dimension_mismatch_rejected(self, engine):
        with pytest.raises(ValueError, match=f"{DIM}"):
            engine.query(np.zeros((2, DIM + 3), dtype=np.float32), 3)

    def test_nan_rejected(self, engine):
        q = np.zeros((2, DIM), dtype=np.float32)
        q[1, 0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            engine.query(q, 3)

    def test_inf_rejected(self, engine):
        q = np.zeros((1, DIM), dtype=np.float32)
        q[0, -1] = np.inf
        with pytest.raises(ValueError):
            engine.query(q, 3)

    def test_empty_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.query(np.zeros((0, DIM), dtype=np.float32), 3)


class TestServerSubmitValidation:
    @pytest.fixture(scope="class")
    def server(self):
        engine = _fitted("wknng")
        with KNNServer(engine.index if hasattr(engine, "index") else engine) \
                as srv:
            yield srv

    def test_wrong_dim(self, server):
        with pytest.raises(ValueError, match="dimension"):
            server.submit(np.zeros(DIM + 1, dtype=np.float32), 3)

    def test_nan(self, server):
        q = np.zeros(DIM, dtype=np.float32)
        q[0] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            server.submit(q, 3)

    def test_matrix_of_many_rows(self, server):
        with pytest.raises(ValueError, match="1-D"):
            server.submit(np.zeros((2, DIM), dtype=np.float32), 3)


class TestValidatorHelpers:
    def test_check_query_matrix_is_dataerror_and_valueerror(self):
        with pytest.raises(DataError):
            check_query_matrix(np.zeros(4, dtype=np.float32), 4)
        assert issubclass(DataError, ValueError)

    def test_check_query_matrix_dim_message_names_both_dims(self):
        with pytest.raises(DataError, match="3.*5|5.*3"):
            check_query_matrix(np.zeros((1, 5), dtype=np.float32), 3)

    def test_check_query_vector_accepts_row_matrix(self):
        out = check_query_vector(np.zeros((1, 4), dtype=np.float32), 4)
        assert out.shape == (4,)

    def test_check_query_vector_rejects_scalar(self):
        with pytest.raises(DataError):
            check_query_vector(np.float32(1.0), 4)
