"""Tests for the NN-descent local-join refinement."""

import numpy as np

from repro.core.refine import (
    RefineState,
    _new_flags,
    _reverse_lists,
    _sample_columns,
    local_join_candidates,
    refine_round,
)
from repro.kernels.knn_state import EMPTY_ID, KnnState
from repro.kernels.strategy import get_strategy


def make_state(ids):
    ids = np.asarray(ids, dtype=np.int32)
    state = KnnState(ids.shape[0], ids.shape[1])
    state.ids[...] = ids
    state.dists[...] = np.where(ids == EMPTY_ID, np.inf, 1.0)
    return state


class TestNewFlags:
    def test_everything_new_without_prev(self):
        state = make_state([[1, 2], [0, EMPTY_ID]])
        flags = _new_flags(state, None)
        assert flags.tolist() == [[True, True], [True, False]]

    def test_unchanged_entries_old(self):
        state = make_state([[1, 2], [0, 3]])
        prev = np.array([[2, 1], [3, 9]], dtype=np.int32)
        flags = _new_flags(state, prev)
        assert flags.tolist() == [[False, False], [True, False]]

    def test_empty_slots_never_new(self):
        state = make_state([[EMPTY_ID, 5]])
        flags = _new_flags(state, np.array([[9, 9]], dtype=np.int32))
        assert flags.tolist() == [[False, True]]


class TestSampleColumns:
    def test_samples_only_eligible(self):
        rng = np.random.default_rng(0)
        ids = np.array([[10, 20, 30, 40]], dtype=np.int32)
        eligible = np.array([[True, False, True, False]])
        out, ok = _sample_columns(ids, eligible, 4, rng)
        got = set(out[ok].tolist())
        assert got <= {10, 30}

    def test_sample_cap(self):
        rng = np.random.default_rng(0)
        ids = np.tile(np.arange(10, dtype=np.int32), (3, 1))
        eligible = np.ones((3, 10), dtype=bool)
        out, ok = _sample_columns(ids, eligible, 4, rng)
        assert out.shape == (3, 4)
        assert ok.all()

    def test_invalid_marked(self):
        rng = np.random.default_rng(0)
        ids = np.array([[5, 6]], dtype=np.int32)
        eligible = np.array([[False, False]])
        out, ok = _sample_columns(ids, eligible, 2, rng)
        assert (out == EMPTY_ID).all() and not ok.any()


class TestReverseLists:
    def test_reverse_edges_found(self):
        state = make_state([[1, 2], [2, EMPTY_ID], [EMPTY_ID, EMPTY_ID]])
        flags = state.ids != EMPTY_ID  # everything new
        rev_new, rev_old = _reverse_lists(state, flags, 4, np.random.default_rng(0))
        assert 0 in rev_new[1].tolist()  # 0 lists 1
        assert set(rev_new[2][rev_new[2] != EMPTY_ID].tolist()) == {0, 1}
        assert (rev_old == EMPTY_ID).all()

    def test_old_edges_go_to_old_list(self):
        state = make_state([[1, EMPTY_ID]])
        flags = np.zeros((1, 2), dtype=bool)  # nothing new
        rev_new, rev_old = _reverse_lists(state, flags, 2, np.random.default_rng(0))
        assert (rev_new == EMPTY_ID).all()
        assert 0 in rev_old[1].tolist() if state.n > 1 else True

    def test_sample_bound(self):
        # many rows all pointing at node 0
        n = 20
        ids = np.full((n, 2), EMPTY_ID, dtype=np.int32)
        ids[1:, 0] = 0
        state = make_state(ids)
        flags = state.ids != EMPTY_ID
        rev_new, _ = _reverse_lists(state, flags, 3, np.random.default_rng(0))
        assert (rev_new[0] != EMPTY_ID).sum() == 3


class TestLocalJoin:
    def test_pairs_are_deduplicated(self):
        state = make_state([[1, 2], [0, 2], [0, 1]])
        rows, cols = local_join_candidates(state, RefineState(), np.random.default_rng(0), 4)
        keys = rows * 3 + cols
        assert len(np.unique(keys)) == len(keys)

    def test_no_self_pairs(self):
        state = make_state([[1, 2], [0, 2], [0, 1]])
        rows, cols = local_join_candidates(state, RefineState(), np.random.default_rng(0), 4)
        assert (rows != cols).all()

    def test_join_proposes_shared_neighbour_pair(self):
        # 1 and 2 both appear in 0's list -> the join must propose (1, 2)
        state = make_state([[1, 2], [0, EMPTY_ID], [0, EMPTY_ID]])
        rows, cols = local_join_candidates(state, RefineState(), np.random.default_rng(0), 4)
        pairs = set(zip(rows.tolist(), cols.tolist()))
        assert (1, 2) in pairs and (2, 1) in pairs

    def test_converged_state_generates_nothing(self):
        state = make_state([[1, 2], [0, 2], [0, 1]])
        rs = RefineState(prev_ids=state.ids.copy())
        rows, cols = local_join_candidates(state, rs, np.random.default_rng(0), 4)
        assert rows.size == 0


class TestRefineRound:
    def test_improves_random_graph(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((200, 8)).astype(np.float32)
        state = KnnState(200, 6)
        strat = get_strategy("tiled")
        # seed with random neighbours
        for i in range(200):
            cand = rng.choice(np.delete(np.arange(200), i), 6, replace=False)
            d = ((x[i] - x[cand]) ** 2).sum(1)
            state.merge_rows(np.array([i]), cand[None, :].astype(np.int32),
                             d[None, :].astype(np.float32))
        before = state.dists.sum()
        rs = RefineState()
        inserted = refine_round(state, x, strat, rng, 6, rs)
        assert inserted > 0
        assert state.dists.sum() < before

    def test_rounds_converge_to_zero(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((150, 4)).astype(np.float32)
        state = KnnState(150, 5)
        strat = get_strategy("tiled")
        strat.update_leaf(state, x, np.arange(150))  # exact already
        rs = RefineState()
        for _ in range(3):
            inserted = refine_round(state, x, strat, rng, 5, rs)
        assert inserted == 0

    def test_refine_state_tracks_rounds(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((50, 4)).astype(np.float32)
        state = KnnState(50, 4)
        strat = get_strategy("tiled")
        strat.update_leaf(state, x, np.arange(25))
        rs = RefineState()
        refine_round(state, x, strat, rng, 4, rs)
        refine_round(state, x, strat, rng, 4, rs)
        assert rs.rounds_run == 2
        assert len(rs.insertions) == 2
