"""Tests for the warp-centric ADC (quantized scan) kernel."""

import numpy as np
import pytest

from repro.core.quant import QuantizedStore
from repro.data.synthetic import gaussian_mixture
from repro.kernels.distance import adc_l2_query_gather
from repro.simt.config import DeviceConfig
from repro.simt.device import Device
from repro.simt_kernels.adc_kernels import adc_topk_simt

K = 5


@pytest.fixture(scope="module")
def workload():
    """Small PQ workload (ksub = n keeps the staged LUT simulator-sized)."""
    x = gaussian_mixture(40, 8, n_clusters=4, seed=3)
    q = gaussian_mixture(9, 8, n_clusters=4, seed=4)
    store = QuantizedStore.fit(x, "pq4", seed=0)
    return store, q


@pytest.fixture(scope="module")
def run(workload):
    store, q = workload
    ids, dists, dev = adc_topk_simt(store.luts(q), store.codes, K)
    return store, q, ids, dists, dev


def _host_topk(store, q, k):
    """Reference: full ADC distance matrix via the NumPy microkernel."""
    m, n = q.shape[0], store.n
    cand = np.broadcast_to(np.arange(n, dtype=np.int64), (m, n)).copy()
    d = adc_l2_query_gather(store.luts(q), store.codes, cand)
    order = np.argsort(d, axis=1, kind="stable")[:, :k]
    return order, np.take_along_axis(d, order, axis=1)


class TestExactness:
    def test_matches_numpy_microkernel(self, run):
        store, q, ids, dists, _ = run
        _, gt_d = _host_topk(store, q, K)
        assert np.allclose(np.sort(dists, axis=1), gt_d, rtol=1e-4, atol=1e-4)

    def test_ids_agree_up_to_ties(self, run):
        """Every returned id sits within the true k-th ADC distance (ids can
        differ from the reference only where PQ collapses ties)."""
        store, q, ids, dists, _ = run
        m, n = q.shape[0], store.n
        cand = np.broadcast_to(np.arange(n, dtype=np.int64), (m, n)).copy()
        full = adc_l2_query_gather(store.luts(q), store.codes, cand)
        kth = np.sort(full, axis=1)[:, K - 1]
        for r in range(m):
            assert (ids[r] >= 0).all()
            assert (full[r, ids[r]] <= kth[r] + 1e-4).all()

    def test_multi_warp_blocks_match_single(self, workload):
        store, q = workload
        luts = store.luts(q)
        _, d1, _ = adc_topk_simt(luts, store.codes, K, queries_per_block=1)
        _, d4, _ = adc_topk_simt(luts, store.codes, K, queries_per_block=4)
        assert np.allclose(np.sort(d1, axis=1), np.sort(d4, axis=1))

    def test_sq8_codes_roundtrip(self):
        """The degenerate PQ (sq8) flows through the same kernel."""
        x = gaussian_mixture(24, 4, n_clusters=3, seed=5)
        q = x[:6]
        store = QuantizedStore.fit(x, "sq8", seed=0)
        ids, dists, _ = adc_topk_simt(store.luts(q), store.codes, 3)
        _, gt_d = _host_topk(store, q, 3)
        assert np.allclose(np.sort(dists, axis=1), gt_d, rtol=1e-4, atol=1e-4)


class TestGeometryAndValidation:
    def test_tail_block_handles_inactive_warps(self, workload):
        """m % queries_per_block != 0: tail warps idle but barrier cleanly."""
        store, q = workload
        luts = store.luts(q[:5])
        ids, dists, _ = adc_topk_simt(luts, store.codes, K, queries_per_block=4)
        assert ids.shape == (5, K)
        assert np.isfinite(dists).all()

    def test_k_exceeding_warp_rejected(self, workload):
        store, q = workload
        with pytest.raises(ValueError, match="warp_size"):
            adc_topk_simt(store.luts(q), store.codes, 12,
                          device=Device(DeviceConfig(warp_size=8)))

    def test_mismatched_subspaces_rejected(self, workload):
        store, q = workload
        with pytest.raises(ValueError, match="sub-spaces"):
            adc_topk_simt(store.luts(q), store.codes[:, :2], K)


class TestTrafficModel:
    def test_code_reads_beat_float_reads(self, run):
        """The scan's global word traffic is ~n*M codes + one LUT stage per
        query - far below the n*dim float gathers of the exact kernel."""
        store, q, _, _, dev = run
        n, m = store.n, q.shape[0]
        lut_words = store.subspaces * store.ksub
        loads = dev.metrics.global_loads
        # every candidate tile reads M words per lane; LUT staged once
        budget = m * (lut_words + n * store.subspaces) + 4 * n * K * m
        assert loads <= budget
