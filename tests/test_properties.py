"""Property-based tests (Hypothesis) for the core data structures and
invariants: packed encoding, top-k selection, bitonic networks, strategy
equivalence and recall bounds."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.kernels import KnnState, get_strategy
from repro.kernels.distance import pairwise_sq_l2_direct, pairwise_sq_l2_gemm
from repro.metrics.recall import knn_recall, per_point_recall
from repro.simt.atomics import pack_dist_id, unpack_dist_id
from repro.simt.config import DeviceConfig
from repro.simt.device import Device
from repro.simt.intrinsics import warp_bitonic_sort, warp_sorted_merge_max
from repro.simt.shared import SharedMemory
from repro.simt.warp import WarpContext
from repro.utils.arrays import dedupe_per_row, row_topk, segment_lengths

# allow_subnormal=False: this interpreter flushes subnormals to zero
# (compiled with FTZ), which Hypothesis refuses to generate silently
finite_f32 = st.floats(
    min_value=0.0,
    max_value=float(__import__('numpy').float32(1e30)),
    allow_nan=False,
    allow_infinity=False,
    allow_subnormal=False,
    width=32,
)


def make_ctx():
    dev = Device(DeviceConfig())
    return WarpContext(dev, SharedMemory(dev.config, dev.metrics), 0, 0, 1, 1)


class TestPackedEncoding:
    @given(
        hnp.arrays(np.float32, 20, elements=finite_f32),
        hnp.arrays(np.int32, 20, elements=st.integers(-1, 2**31 - 1)),
    )
    def test_round_trip(self, dists, ids):
        d, i = unpack_dist_id(pack_dist_id(dists, ids))
        assert np.array_equal(d, dists)
        assert np.array_equal(i, ids)

    @given(
        hnp.arrays(np.float32, 30, elements=finite_f32),
        hnp.arrays(np.float32, 30, elements=finite_f32),
    )
    def test_order_homomorphism(self, a, b):
        """packed(a) < packed(b) whenever dist(a) < dist(b), any ids."""
        ids = np.zeros(30, dtype=np.int32)
        pa = pack_dist_id(a, ids)
        pb = pack_dist_id(b, ids)
        lt = a < b
        assert (pa[lt] < pb[lt]).all()


class TestRowTopk:
    @given(
        hnp.arrays(
            np.float32,
            st.tuples(st.integers(1, 8), st.integers(1, 24)),
            elements=finite_f32,
        ),
        st.data(),
    )
    def test_matches_sort(self, dists, data):
        m = dists.shape[1]
        k = data.draw(st.integers(1, m))
        ids = np.broadcast_to(np.arange(m, dtype=np.int32), dists.shape).copy()
        td, ti = row_topk(dists, ids, k)
        ref = np.sort(dists, axis=1)[:, :k]
        assert np.array_equal(td, ref)
        assert (np.diff(td, axis=1) >= 0).all()

    @given(
        hnp.arrays(np.float32, st.tuples(st.integers(1, 5), st.integers(1, 12)),
                   elements=finite_f32)
    )
    def test_returned_ids_consistent(self, dists):
        m = dists.shape[1]
        ids = np.broadcast_to(np.arange(m, dtype=np.int32), dists.shape).copy()
        td, ti = row_topk(dists, ids, min(3, m))
        gathered = np.take_along_axis(dists, ti.astype(np.int64), axis=1)
        assert np.array_equal(gathered, td)


class TestSegments:
    @given(st.lists(st.integers(0, 10), min_size=0, max_size=50))
    def test_reconstruction(self, values):
        keys = np.sort(np.array(values, dtype=np.int64))
        u, s, c = segment_lengths(keys)
        assert c.sum() == keys.size
        rebuilt = np.concatenate([np.full(ci, ui) for ui, ci in zip(u, c)]) \
            if u.size else np.empty(0, dtype=np.int64)
        assert np.array_equal(rebuilt, keys)


class TestDedupe:
    @given(hnp.arrays(np.int64, st.tuples(st.integers(1, 6), st.integers(1, 15)),
                      elements=st.integers(0, 9)))
    def test_idempotent_and_set_preserving(self, ids):
        out = dedupe_per_row(ids.copy())
        for orig, row in zip(ids, out):
            kept = row[row != -1]
            assert set(kept.tolist()) == set(orig.tolist())
            assert len(kept) == len(set(kept.tolist()))


class TestDistanceSchedules:
    @given(
        hnp.arrays(np.float32, st.tuples(st.integers(1, 10), st.integers(1, 40)),
                   elements=st.floats(-128.0, 128.0, allow_nan=False,
                                      allow_subnormal=False, width=32))
    )
    @settings(max_examples=30)
    def test_schedules_agree(self, pts):
        g = pairwise_sq_l2_gemm(pts, pts)
        d = pairwise_sq_l2_direct(pts, pts)
        # the GEMM decomposition's absolute error scales with the squared
        # norms it cancels (classic float32 catastrophic cancellation)
        scale = float((pts.astype(np.float64) ** 2).sum(axis=1).max())
        atol = 1e-5 * scale + 1e-3
        assert np.allclose(g, d, rtol=1e-2, atol=atol)
        assert (g >= 0).all() and (d >= 0).all()


class TestWarpNetworks:
    @given(hnp.arrays(np.float32, 32, elements=finite_f32))
    @settings(max_examples=30)
    def test_bitonic_is_sort(self, keys):
        ctx = make_ctx()
        sk, sv = warp_bitonic_sort(ctx, keys, np.arange(32))
        assert np.array_equal(sk, np.sort(keys))
        assert sorted(sv.tolist()) == list(range(32))  # a permutation

    @given(
        hnp.arrays(np.float32, 32, elements=finite_f32),
        hnp.arrays(np.float32, 32, elements=finite_f32),
    )
    @settings(max_examples=30)
    def test_merge_keeps_smallest(self, a, b):
        ctx = make_ctx()
        a = np.sort(a)
        b = np.sort(b)
        mk, _ = warp_sorted_merge_max(ctx, a, np.arange(32), b, np.arange(32))
        assert np.array_equal(mk, np.sort(np.concatenate([a, b]))[:32])


class TestStrategyEquivalence:
    """All strategies converge to the same neighbour sets for the same
    candidate stream - the library's central invariant."""

    @given(st.integers(0, 10_000), st.integers(2, 8), st.integers(20, 60))
    @settings(max_examples=15, deadline=None)
    def test_same_final_distances(self, seed, k, n):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n, 5)).astype(np.float32)
        rows = rng.integers(0, n, 400)
        cols = rng.integers(0, n, 400)
        results = {}
        for name in ("atomic", "baseline", "tiled"):
            state = KnnState(n, k)
            get_strategy(name).update_pairs(state, x, rows, cols)
            results[name] = np.sort(state.dists, axis=1)
        # unordered strategies see both pair directions, directed only the
        # given ones -> compare on the symmetrised candidate stream
        both_rows = np.concatenate([rows, cols])
        both_cols = np.concatenate([cols, rows])
        state = KnnState(n, k)
        get_strategy("tiled").update_pairs(state, x, both_rows, both_cols)
        results["tiled_sym"] = np.sort(state.dists, axis=1)
        assert np.allclose(results["atomic"], results["baseline"], equal_nan=True)
        assert np.allclose(results["atomic"], results["tiled_sym"], equal_nan=True)


class TestRecallProperties:
    @given(hnp.arrays(np.int32, st.tuples(st.integers(1, 10), st.integers(1, 8)),
                      elements=st.integers(0, 50)))
    def test_self_recall_is_one(self, ids):
        # rows may contain duplicates; dedupe them to form a valid id matrix
        clean = np.sort(ids, axis=1)
        ok = np.ones(len(clean), dtype=bool)
        for r, row in enumerate(clean):
            ok[r] = len(np.unique(row)) == row.size
        clean = clean[ok]
        if clean.size:
            assert knn_recall(clean, clean) == 1.0

    @given(st.integers(0, 1000))
    def test_recall_bounds(self, seed):
        rng = np.random.default_rng(seed)
        a = np.array([rng.permutation(100)[:6] for _ in range(8)])
        b = np.array([rng.permutation(100)[:6] for _ in range(8)])
        r = per_point_recall(a, b)
        assert ((0 <= r) & (r <= 1)).all()
