"""Tests for graph-connectivity diagnostics."""

import numpy as np

from repro.core.graph import KNNGraph
from repro.metrics.connectivity import (
    UnionFind,
    connected_components,
    giant_component_fraction,
    min_out_degree,
)


def graph_from_edges(n, edges, k=2):
    ids = np.full((n, k), -1, dtype=np.int32)
    dists = np.full((n, k), np.inf, dtype=np.float32)
    counts = [0] * n
    for a, b in edges:
        ids[a, counts[a]] = b
        dists[a, counts[a]] = 1.0
        counts[a] += 1
    return KNNGraph(ids=ids, dists=dists)


class TestUnionFind:
    def test_initial_components(self):
        assert UnionFind(5).n_components() == 5

    def test_union_reduces(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.n_components() == 3

    def test_union_same_set_false(self):
        uf = UnionFind(3)
        uf.union(0, 1)
        assert not uf.union(1, 0)

    def test_transitive(self):
        uf = UnionFind(4)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.find(0) == uf.find(2)

    def test_component_sizes_sorted(self):
        uf = UnionFind(5)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.component_sizes().tolist() == [3, 1, 1]


class TestGraphConnectivity:
    def test_connected_chain(self):
        g = graph_from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert connected_components(g).tolist() == [4]
        assert giant_component_fraction(g) == 1.0

    def test_two_islands(self):
        g = graph_from_edges(4, [(0, 1), (2, 3)])
        assert connected_components(g).tolist() == [2, 2]
        assert giant_component_fraction(g) == 0.5

    def test_undirected_closure(self):
        # only one direction stored; closure still connects
        g = graph_from_edges(2, [(0, 1)])
        assert giant_component_fraction(g) == 1.0

    def test_isolated_point(self):
        g = graph_from_edges(3, [(0, 1)])
        assert connected_components(g).tolist() == [2, 1]

    def test_min_out_degree(self):
        g = graph_from_edges(3, [(0, 1), (0, 2), (1, 2)])
        assert min_out_degree(g) == 0  # node 2 has no out edges

    def test_real_build_matches_exact_structure(self, small_clustered):
        """A KNN graph of separated blobs is *correctly* disconnected; the
        approximate graph must reproduce the exact graph's component
        structure (same count, within one), not invent extra islands."""
        from repro import BuildConfig, WKNNGBuilder
        from repro.baselines import exact_knn_graph

        approx = WKNNGBuilder(BuildConfig(k=10, n_trees=4, leaf_size=48,
                                          refine_iters=2, seed=0)).build(small_clustered)
        exact = exact_knn_graph(small_clustered, 10)
        n_approx = connected_components(approx).size
        n_exact = connected_components(exact).size
        assert abs(n_approx - n_exact) <= 1
        assert min_out_degree(approx) == 10

    def test_uniform_data_graph_connected(self, small_uniform):
        """Uniform-cube data forms one component; the built graph must too."""
        from repro import BuildConfig, WKNNGBuilder

        g = WKNNGBuilder(BuildConfig(k=10, n_trees=4, leaf_size=48,
                                     refine_iters=3, seed=0)).build(small_uniform)
        assert giant_component_fraction(g) > 0.99
