"""Tests for the reproduction verifier, IVF cosine support, and
warp-size generality of the simulator kernels."""

import numpy as np
import pytest

from repro.baselines.bruteforce import BruteForceKNN
from repro.baselines.ivf import IVFConfig, IVFFlatIndex
from repro.data.synthetic import gaussian_mixture
from repro.errors import ConfigurationError
from repro.metrics.recall import knn_recall
from repro.simt.config import DeviceConfig
from repro.simt_kernels import simt_leaf_metrics


class TestVerifier:
    def test_cli_verify_passes(self, capsys):
        """n=2000 is the smallest scale at which the C2 (vs-IVF) claim is
        meaningful - below that, probing a handful of tiny cells is cheap
        enough that matched-recall comparisons lose their signal."""
        from repro.cli import main

        assert main(["verify", "--n", "2000"]) == 0
        out = capsys.readouterr().out
        assert out.count("[PASS]") == 6
        assert "[FAIL]" not in out


class TestIVFCosine:
    @pytest.fixture(scope="class")
    def data(self):
        x = gaussian_mixture(600, 12, n_clusters=12, seed=4)
        # cosine ground truth via normalised brute force
        gt, _ = BruteForceKNN(x, metric="cosine").search(x, 8, exclude_self=True)
        return x, gt

    def test_inner_product_rejected(self):
        with pytest.raises(ConfigurationError):
            IVFConfig(metric="inner_product")

    def test_cosine_knn_graph_recall(self, data):
        x, gt = data
        index = IVFFlatIndex(IVFConfig(metric="cosine", seed=0)).fit(x)
        g = index.knn_graph(8, nprobe=index.n_lists)
        assert knn_recall(g.ids, gt) > 0.999

    def test_cosine_vs_sqeuclidean_differ(self, data):
        x, _ = data
        g_cos = IVFFlatIndex(IVFConfig(metric="cosine", seed=0)).fit(x).knn_graph(8)
        g_l2 = IVFFlatIndex(IVFConfig(seed=0)).fit(x).knn_graph(8)
        assert not np.array_equal(g_cos.ids, g_l2.ids)


class TestWarpSizeGenerality:
    """The simulator and kernels must work at non-default warp widths."""

    @pytest.mark.parametrize("warp", [8, 16])
    @pytest.mark.parametrize("strategy", ["baseline", "atomic", "tiled"])
    def test_leaf_kernels_at_small_warps(self, warp, strategy):
        x = gaussian_mixture(20, 10, n_clusters=3, seed=1)
        cfg = DeviceConfig(warp_size=warp)
        m = simt_leaf_metrics(x, np.arange(20), k=4, strategy=strategy,
                              device_config=cfg)
        assert m.global_load_transactions > 0

    @pytest.mark.parametrize("warp", [8, 16])
    def test_pipeline_correct_at_small_warps(self, warp):
        from repro.core.config import BuildConfig
        from repro.simt.device import Device
        from repro.simt_kernels.pipeline import build_knng_simt

        x = gaussian_mixture(60, 6, n_clusters=4, seed=2)
        gt, _ = BruteForceKNN(x).search(x, 4, exclude_self=True)
        cfg = BuildConfig(k=4, strategy="tiled", n_trees=2, leaf_size=10,
                          refine_iters=1, seed=1, backend="simt")
        device = Device(DeviceConfig(warp_size=warp))
        graph, _ = build_knng_simt(x, cfg, device=device)
        assert knn_recall(graph.ids, gt) > 0.5

    def test_k_bounded_by_warp(self):
        from repro.core.config import BuildConfig
        from repro.simt.device import Device
        from repro.simt_kernels.pipeline import build_knng_simt

        x = gaussian_mixture(40, 4, n_clusters=3, seed=0)
        cfg = BuildConfig(k=10, strategy="atomic", n_trees=1, leaf_size=12,
                          seed=0, backend="simt")
        with pytest.raises(ConfigurationError, match="warp_size"):
            build_knng_simt(x, cfg, device=Device(DeviceConfig(warp_size=8)))
