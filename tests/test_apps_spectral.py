"""Tests for the spectral embedding application."""

import numpy as np
import pytest

from repro import BuildConfig, WKNNGBuilder
from repro.apps.spectral import SpectralConfig, SpectralEmbedding
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def blob_graph():
    """Three *touching* blobs: the graph is connected with bottleneck
    edges, so the Laplacian spectrum is non-degenerate and the Fiedler
    vectors are well-defined (fully separated blobs would put the test at
    the mercy of an arbitrary rotation of a degenerate null space)."""
    rng = np.random.default_rng(8)
    centers = rng.standard_normal((3, 12)) * 4.0
    labels = np.repeat(np.arange(3), 120)
    x = (centers[labels] + rng.standard_normal((360, 12))).astype(np.float32)
    graph = WKNNGBuilder(BuildConfig(k=8, n_trees=4, leaf_size=40,
                                     refine_iters=2, seed=0)).build(x)
    return graph, labels


class TestConfig:
    def test_bad_components(self):
        with pytest.raises(ConfigurationError):
            SpectralConfig(n_components=0)

    def test_bad_scale(self):
        with pytest.raises(ConfigurationError):
            SpectralConfig(kernel_scale=-1)


class TestSpectralEmbedding:
    def test_shape(self, blob_graph):
        graph, _ = blob_graph
        emb = SpectralEmbedding(SpectralConfig(n_components=2)).fit_transform(graph)
        assert emb.shape == (360, 2)
        assert np.isfinite(emb).all()

    def test_separates_clusters(self, blob_graph):
        """The Fiedler vectors of a bottlenecked graph separate the
        clusters: inter-cluster embedding distances dominate intra."""
        graph, labels = blob_graph
        model = SpectralEmbedding(SpectralConfig(n_components=2))
        emb = model.fit_transform(graph)
        d = ((emb[:, None, :] - emb[None, :, :]) ** 2).sum(-1)
        same = labels[:, None] == labels[None, :]
        np.fill_diagonal(same, False)
        intra = d[same].mean()
        inter = d[~same].mean()
        assert inter > 2 * max(intra, 1e-12)

    def test_deterministic(self, blob_graph):
        graph, _ = blob_graph
        e1 = SpectralEmbedding(SpectralConfig(n_components=2)).fit_transform(graph)
        e2 = SpectralEmbedding(SpectralConfig(n_components=2)).fit_transform(graph)
        assert np.allclose(e1, e2, atol=1e-8)

    def test_eigenvalues_sorted_nonnegative(self, blob_graph):
        graph, _ = blob_graph
        model = SpectralEmbedding(SpectralConfig(n_components=3))
        model.fit_transform(graph)
        vals = model.eigenvalues_
        assert (np.diff(vals) >= -1e-9).all()
        assert (vals > -1e-8).all()

    def test_too_many_components(self, blob_graph):
        graph, _ = blob_graph
        with pytest.raises(ConfigurationError):
            SpectralEmbedding(SpectralConfig(n_components=360)).fit_transform(graph)

    def test_keep_trivial_option(self, blob_graph):
        graph, _ = blob_graph
        emb = SpectralEmbedding(
            SpectralConfig(n_components=1, drop_trivial=False)
        ).fit_transform(graph)
        assert emb.shape == (360, 1)


class TestLaplacianParity:
    """The Laplacian must be exactly I - gaussian_affinity, bitwise equal
    to the original inline construction."""

    @staticmethod
    def _legacy_laplacian(graph, kernel_scale):
        import numpy as np
        from scipy import sparse
        valid = graph.ids >= 0
        rows = np.repeat(np.arange(graph.n), valid.sum(axis=1))
        cols = graph.ids[valid].astype(np.int64)
        d2 = graph.dists[valid].astype(np.float64)
        mean_d2 = float(d2.mean()) if d2.size else 1.0
        if mean_d2 <= 0:
            mean_d2 = 1.0
        w = np.exp(-d2 / (kernel_scale * mean_d2))
        a = sparse.csr_matrix((w, (rows, cols)), shape=(graph.n, graph.n))
        a = a.maximum(a.T)
        deg = np.asarray(a.sum(axis=1)).reshape(-1)
        deg[deg == 0] = 1.0
        inv_sqrt = sparse.diags(1.0 / np.sqrt(deg))
        return (sparse.identity(graph.n, format="csr")
                - inv_sqrt @ a @ inv_sqrt)

    @pytest.mark.parametrize("kernel_scale", [0.5, 1.0])
    def test_bitwise_identical_to_legacy(self, blob_graph, kernel_scale):
        graph, _ = blob_graph
        legacy = self._legacy_laplacian(graph, kernel_scale).tocsr()
        model = SpectralEmbedding(SpectralConfig(kernel_scale=kernel_scale))
        ported = model._normalized_laplacian(graph).tocsr()
        legacy.sort_indices()
        ported.sort_indices()
        assert (legacy != ported).nnz == 0
        assert np.array_equal(legacy.data, ported.data)
