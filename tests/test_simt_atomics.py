"""Tests for simulated atomics and the packed (distance, id) encoding."""

import numpy as np
import pytest

from repro.errors import AtomicError
from repro.simt.atomics import (
    EMPTY_PACKED,
    AtomicUnit,
    pack_dist_id,
    unpack_dist_id,
)
from repro.simt.memory import GlobalBuffer
from repro.simt.metrics import KernelMetrics

W = 32
ALL = np.ones(W, dtype=bool)


def unit():
    return AtomicUnit(KernelMetrics()), KernelMetrics()


class TestPacking:
    def test_round_trip(self):
        rng = np.random.default_rng(0)
        d = (rng.random(500) * 1e6).astype(np.float32)
        i = rng.integers(-1, 2**31 - 1, 500).astype(np.int32)
        d2, i2 = unpack_dist_id(pack_dist_id(d, i))
        assert np.array_equal(d, d2)
        assert np.array_equal(i, i2)

    def test_order_preserved(self):
        d = np.sort(np.random.default_rng(1).random(200).astype(np.float32))
        p = pack_dist_id(d, np.arange(200, dtype=np.int32))
        assert (p[:-1] <= p[1:]).all()

    def test_distance_dominates_id(self):
        small = pack_dist_id(np.float32(1.0), np.int32(2**31 - 1))
        large = pack_dist_id(np.float32(2.0), np.int32(0))
        assert small < large

    def test_inf_distance_sorts_last(self):
        p_inf = pack_dist_id(np.float32(np.inf), np.int32(-1))
        p_big = pack_dist_id(np.float32(3.4e38), np.int32(0))
        assert p_big < p_inf

    def test_empty_packed_is_inf_minus_one(self):
        d, i = unpack_dist_id(np.array([EMPTY_PACKED], dtype=np.uint64))
        assert np.isinf(d[0]) and i[0] == -1

    def test_negative_distance_rejected(self):
        with pytest.raises(AtomicError):
            pack_dist_id(np.float32(-1.0), np.int32(0))

    def test_zero_distance_ok(self):
        d, i = unpack_dist_id(pack_dist_id(np.float32(0.0), np.int32(5)))
        assert d == 0.0 and i == 5


class TestAtomicOps:
    def test_add_returns_old_values(self):
        metrics = KernelMetrics()
        au = AtomicUnit(metrics)
        buf = GlobalBuffer(np.zeros(4, dtype=np.int64))
        idx = np.zeros(W, dtype=np.int64)
        old = au.add(buf, idx, np.ones(W, dtype=np.int64), ALL)
        # serialised in lane order: lane l sees sum of previous lanes
        assert np.array_equal(old, np.arange(W))
        assert buf.to_host()[0] == W

    def test_max_semantics(self):
        au, _ = unit()
        buf = GlobalBuffer(np.array([5], dtype=np.int64))
        vals = np.arange(W, dtype=np.int64)
        au.max(buf, np.zeros(W, dtype=np.int64), vals, ALL)
        assert buf.to_host()[0] == W - 1

    def test_min_semantics(self):
        au, _ = unit()
        buf = GlobalBuffer(np.array([100], dtype=np.int64))
        au.min(buf, np.zeros(W, dtype=np.int64), np.arange(W, dtype=np.int64) + 3, ALL)
        assert buf.to_host()[0] == 3

    def test_exch(self):
        au, _ = unit()
        buf = GlobalBuffer(np.array([42], dtype=np.int64))
        mask = np.zeros(W, dtype=bool)
        mask[0] = True
        old = au.exch(buf, np.zeros(W, dtype=np.int64), np.full(W, 7, dtype=np.int64), mask)
        assert old[0] == 42 and buf.to_host()[0] == 7

    def test_cas_success_and_failure(self):
        au, _ = unit()
        buf = GlobalBuffer(np.array([10], dtype=np.int64))
        mask = np.zeros(W, dtype=bool)
        mask[0] = True
        old = au.cas(buf, np.zeros(W, dtype=np.int64), 10, 20, mask)
        assert old[0] == 10 and buf.to_host()[0] == 20
        old = au.cas(buf, np.zeros(W, dtype=np.int64), 10, 30, mask)
        assert old[0] == 20 and buf.to_host()[0] == 20  # failed, unchanged

    def test_cas_serialises_in_lane_order(self):
        au, _ = unit()
        buf = GlobalBuffer(np.array([0], dtype=np.int64))
        # all lanes CAS 0 -> lane_id + 1; only lane 0 must win
        old = au.cas(
            buf,
            np.zeros(W, dtype=np.int64),
            np.zeros(W, dtype=np.int64),
            np.arange(W, dtype=np.int64) + 1,
            ALL,
        )
        assert buf.to_host()[0] == 1
        assert old[0] == 0 and (old[1:] == 1).all()

    def test_max_on_float_rejected(self):
        au, _ = unit()
        buf = GlobalBuffer(np.zeros(4, dtype=np.float32))
        with pytest.raises(AtomicError):
            au.max(buf, np.zeros(W, dtype=np.int64), np.zeros(W, dtype=np.float32), ALL)

    def test_add_on_float_allowed(self):
        au, _ = unit()
        buf = GlobalBuffer(np.zeros(1, dtype=np.float32))
        au.add(buf, np.zeros(W, dtype=np.int64), np.ones(W, dtype=np.float32), ALL)
        assert buf.to_host()[0] == W

    def test_conflict_accounting(self):
        metrics = KernelMetrics()
        au = AtomicUnit(metrics)
        buf = GlobalBuffer(np.zeros(4, dtype=np.int64))
        idx = np.zeros(W, dtype=np.int64)
        idx[: W // 2] = 1  # two addresses, 16 lanes each
        au.add(buf, idx, np.ones(W, dtype=np.int64), ALL)
        assert metrics.atomic_ops == W
        assert metrics.atomic_conflicts == W - 2

    def test_no_conflict_distinct_addresses(self):
        metrics = KernelMetrics()
        au = AtomicUnit(metrics)
        buf = GlobalBuffer(np.zeros(W, dtype=np.int64))
        au.add(buf, np.arange(W, dtype=np.int64), np.ones(W, dtype=np.int64), ALL)
        assert metrics.atomic_conflicts == 0

    def test_packed_max_orders_by_distance(self):
        au, _ = unit()
        buf = GlobalBuffer(np.array([pack_dist_id(np.float32(5.0), np.int32(1))], dtype=np.uint64))
        cand = pack_dist_id(np.full(W, 2.0, dtype=np.float32), np.arange(W, dtype=np.int32))
        mask = np.zeros(W, dtype=bool)
        mask[0] = True
        au.min(buf, np.zeros(W, dtype=np.int64), cand, mask)
        d, i = unpack_dist_id(buf.to_host())
        assert d[0] == 2.0 and i[0] == 0


class TestPackIdValidation:
    """Out-of-int32-range ids must raise instead of aliasing other points."""

    def test_sentinel_minus_one_round_trips(self):
        p = pack_dist_id(np.float32(1.0), np.int32(-1))
        _, i = unpack_dist_id(np.array([p], dtype=np.uint64))
        assert i[0] == -1

    def test_id_too_large_raises(self):
        from repro.errors import AtomicError

        with pytest.raises(AtomicError, match="int32"):
            pack_dist_id(np.float32(1.0), np.int64(2**31))

    def test_id_too_negative_raises(self):
        from repro.errors import AtomicError

        with pytest.raises(AtomicError, match="int32"):
            pack_dist_id(np.float32(1.0), np.int64(-(2**31) - 1))

    def test_vector_with_one_bad_id_raises(self):
        from repro.errors import AtomicError

        ids = np.arange(W, dtype=np.int64)
        ids[-1] = 2**32 - 1  # would alias -1 after masking
        with pytest.raises(AtomicError, match="alias"):
            pack_dist_id(np.full(W, 2.0, dtype=np.float32), ids)

    def test_int32_extremes_accepted(self):
        ids = np.array([-(2**31), 2**31 - 1], dtype=np.int64)
        packed = pack_dist_id(np.full(2, 1.0, dtype=np.float32), ids)
        _, got = unpack_dist_id(packed)
        assert got.tolist() == ids.tolist()
