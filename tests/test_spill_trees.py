"""Tests for the spill-tree extension (overlapping leaf splits)."""

import numpy as np
import pytest

from repro import BuildConfig, WKNNGBuilder
from repro.baselines import exact_knn_graph
from repro.core.rpforest import build_tree
from repro.data.synthetic import gaussian_mixture
from repro.errors import ConfigurationError
from repro.metrics.recall import knn_recall


@pytest.fixture(scope="module")
def points():
    return gaussian_mixture(600, 12, n_clusters=30, cluster_std=1.5,
                            center_scale=3.0, seed=9)


class TestSpillTree:
    def test_zero_spill_is_partition(self, points):
        tree = build_tree(points, 40, rng=0, spill=0.0)
        all_ids = np.concatenate(tree.leaves)
        assert len(all_ids) == 600
        assert len(np.unique(all_ids)) == 600

    def test_spill_duplicates_boundary_points(self, points):
        tree = build_tree(points, 40, rng=0, spill=0.2)
        all_ids = np.concatenate(tree.leaves)
        assert len(all_ids) > 600  # overlap duplicates points
        assert set(np.unique(all_ids)) == set(range(600))  # still covers all

    def test_leaf_size_still_respected(self, points):
        tree = build_tree(points, 40, rng=0, spill=0.2)
        assert (tree.leaf_sizes() <= 40).all()

    def test_invalid_spill_rejected(self, points):
        with pytest.raises(ConfigurationError):
            build_tree(points, 40, rng=0, spill=0.5)
        with pytest.raises(ConfigurationError):
            build_tree(points, 40, rng=0, spill=-0.1)

    def test_duplicate_points_terminate_with_spill(self):
        x = np.ones((150, 4), dtype=np.float32)
        tree = build_tree(x, 20, rng=0, spill=0.3)
        assert (tree.leaf_sizes() <= 20).all()

    def test_spill_reproducible(self, points):
        t1 = build_tree(points, 40, rng=3, spill=0.15)
        t2 = build_tree(points, 40, rng=3, spill=0.15)
        for a, b in zip(t1.leaves, t2.leaves):
            assert np.array_equal(a, b)


class TestSpillBuild:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            BuildConfig(spill=0.5)
        assert BuildConfig(spill=0.2).spill == 0.2

    def test_spill_improves_per_tree_recall(self, points):
        gt = exact_knn_graph(points, 8)

        def recall_at(spill):
            g = WKNNGBuilder(BuildConfig(k=8, n_trees=2, leaf_size=40,
                                         refine_iters=0, spill=spill,
                                         seed=0)).build(points)
            return knn_recall(g.ids, gt.ids)

        assert recall_at(0.25) > recall_at(0.0)

    @pytest.mark.parametrize("strategy", ["atomic", "baseline", "tiled"])
    def test_no_duplicate_neighbours_with_spill(self, points, strategy):
        g = WKNNGBuilder(BuildConfig(k=8, strategy=strategy, n_trees=3,
                                     leaf_size=40, refine_iters=1,
                                     spill=0.2, seed=0)).build(points)
        for i in range(0, 600, 23):
            row = g.ids[i][g.ids[i] >= 0]
            assert len(row) == len(np.unique(row)), f"row {i}"

    def test_spill_graph_valid(self, points):
        g = WKNNGBuilder(BuildConfig(k=8, n_trees=3, leaf_size=40,
                                     spill=0.15, seed=0)).build(points)
        assert g.is_complete()
        assert not (g.ids == np.arange(600)[:, None]).any()
