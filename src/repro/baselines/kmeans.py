"""Mini-batch-free Lloyd k-means - the IVF coarse quantiser's trainer.

FAISS trains its IVF coarse quantiser with plain Lloyd iterations on a
training sample; this module does the same: k-means++ seeding, blocked
GEMM-based assignment, mean update, and empty-cluster reseeding (an empty
cluster steals a random point from the largest cluster, FAISS-style).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.kernels.distance import pairwise_sq_l2_gemm
from repro.utils.arrays import blockwise_ranges
from repro.utils.rng import RngStream, as_generator

#: assignment block: rows of x per distance GEMM
_ASSIGN_BLOCK = 2048


def kmeans_pp_init(
    x: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: D^2-weighted sequential centroid sampling."""
    n = x.shape[0]
    centroids = np.empty((n_clusters, x.shape[1]), dtype=np.float32)
    first = int(rng.integers(n))
    centroids[0] = x[first]
    closest = pairwise_sq_l2_gemm(x, centroids[:1]).reshape(-1)
    for c in range(1, n_clusters):
        total = float(closest.sum())
        if total <= 0:  # all points coincide with chosen centroids
            centroids[c:] = x[rng.integers(0, n, n_clusters - c)]
            break
        probs = closest / total
        pick = int(rng.choice(n, p=probs))
        centroids[c] = x[pick]
        d_new = pairwise_sq_l2_gemm(x, centroids[c : c + 1]).reshape(-1)
        np.minimum(closest, d_new, out=closest)
    return centroids


def assign(x: np.ndarray, centroids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Nearest-centroid assignment; returns ``(labels, sq_distances)``."""
    n = x.shape[0]
    labels = np.empty(n, dtype=np.int64)
    dists = np.empty(n, dtype=np.float32)
    for s, e in blockwise_ranges(n, _ASSIGN_BLOCK):
        d = pairwise_sq_l2_gemm(x[s:e], centroids)
        labels[s:e] = d.argmin(axis=1)
        dists[s:e] = d[np.arange(e - s), labels[s:e]]
    return labels, dists


def kmeans(
    x: np.ndarray,
    n_clusters: int,
    n_iters: int = 10,
    seed: RngStream = None,
    train_sample: int | None = None,
) -> np.ndarray:
    """Train ``n_clusters`` centroids with Lloyd iterations.

    Parameters
    ----------
    x:
        ``(n, d)`` float32 data.
    n_clusters:
        Number of centroids; must not exceed ``n``.
    n_iters:
        Lloyd iterations after seeding.
    seed:
        Random source.
    train_sample:
        Optional cap on training points (a uniform subsample is used), the
        standard large-dataset practice.

    Returns
    -------
    ``(n_clusters, d)`` float32 centroid matrix.
    """
    if n_clusters < 1:
        raise ConfigurationError(f"n_clusters must be >= 1, got {n_clusters}")
    if n_clusters > x.shape[0]:
        raise ConfigurationError(
            f"n_clusters={n_clusters} exceeds the number of points {x.shape[0]}"
        )
    rng = as_generator(seed)
    train = x
    if train_sample is not None and train_sample < x.shape[0]:
        pick = rng.choice(x.shape[0], size=train_sample, replace=False)
        train = x[pick]
        n_clusters = min(n_clusters, train.shape[0])
    centroids = kmeans_pp_init(train, n_clusters, rng)
    n = train.shape[0]
    for _ in range(max(0, n_iters)):
        labels, _ = assign(train, centroids)
        counts = np.bincount(labels, minlength=n_clusters)
        sums = np.zeros_like(centroids, dtype=np.float64)
        np.add.at(sums, labels, train)
        nonempty = counts > 0
        centroids[nonempty] = (
            sums[nonempty] / counts[nonempty, None]
        ).astype(np.float32)
        empty = np.flatnonzero(~nonempty)
        if empty.size:
            # reseed empties from points of the largest clusters
            donors = rng.choice(n, size=empty.size, replace=False)
            centroids[empty] = train[donors]
    return centroids
