"""NN-descent (Dong et al., WWW'11) - the classical CPU KNNG baseline.

NN-descent starts from a random graph and repeatedly applies the *local
join*: neighbours of neighbours are proposed as candidates, and each
point's list keeps the best ``k`` seen.  It converges in a handful of
rounds on most data and is the algorithm behind pynndescent/kgraph.

This implementation shares the candidate-generation machinery with the
w-KNNG refinement phase (:mod:`repro.core.refine`) - the two are the same
mathematical operator - but runs it from a random start to convergence,
with the plain bulk-merge maintenance (no warp-centric discipline), which
is what a CPU implementation does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.graph import KNNGraph
from repro.core.refine import RefineState, refine_round
from repro.kernels.knn_state import KnnState
from repro.kernels.strategy import get_strategy
from repro.kernels.distance import sq_l2_pairs
from repro.utils.rng import RngStream, as_generator
from repro.utils.validation import (
    check_k_fits,
    check_points_matrix,
    check_query_matrix,
)


@dataclass
class NNDescent:
    """NN-descent KNNG builder.

    Attributes
    ----------
    k:
        Neighbours per point.
    max_iters:
        Local-join rounds before giving up on convergence.
    sample:
        Candidate pairs examined per point per round (``None`` -> ``2k``,
        the rho=1 setting of the paper scaled to list size).
    delta:
        Convergence threshold: stop when fewer than ``delta * n * k``
        insertions happened in a round.
    seed:
        Random source.
    """

    k: int = 16
    max_iters: int = 12
    sample: int | None = None
    delta: float = 0.001
    seed: RngStream = None

    def __post_init__(self) -> None:
        self._x: np.ndarray | None = None
        self._graph: KNNGraph | None = None
        #: work counters of the most recent :meth:`query` call
        self.last_search_stats: dict[str, int] = {}

    def fit(self, points: np.ndarray) -> "NNDescent":
        """Build the KNNG and keep it (plus the points) for :meth:`query`."""
        x = check_points_matrix(points, "points")
        self._graph = self.build(x)
        self._x = x
        return self

    @property
    def is_fitted(self) -> bool:
        return self._graph is not None

    def query(
        self, queries: np.ndarray, k: int, *,
        ef: int | None = None, pool_size: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Answer out-of-sample queries by greedy graph descent.

        The standard way an NN-descent graph serves search: seed a
        candidate pool with random points, then repeatedly expand the
        nearest not-yet-expanded candidate along its graph edges, keeping
        the best ``pool_size`` (default ``max(2k, 16)``) seen, until the
        whole pool has been expanded.  Returns ``(ids, dists)`` - ``(m,
        k)``, squared-L2, ascending.

        ``ef`` (the protocol's per-call quality dial) maps onto this
        engine's pool size and wins over ``pool_size`` when both are
        given.
        """
        if self._graph is None or self._x is None:
            raise ValueError("query() before fit(): no graph built")
        x = self._x
        graph_ids = self._graph.ids
        q = check_query_matrix(queries, x.shape[1], "queries")
        n = x.shape[0]
        k = min(int(k), n)
        if ef is not None:
            pool_size = ef
        pool = max(pool_size or 0, 2 * k, 16)
        rng = as_generator(self.seed)
        m = q.shape[0]
        out_ids = np.full((m, k), -1, dtype=np.int32)
        out_dists = np.full((m, k), np.inf, dtype=np.float32)
        n_seeds = min(n, pool)
        distance_evals = 0
        hops = 0
        for qi in range(m):
            qv = q[qi]
            seeds = rng.choice(n, size=n_seeds, replace=False)
            visited = np.zeros(n, dtype=bool)
            visited[seeds] = True
            d = ((x[seeds] - qv) ** 2).sum(axis=1)
            distance_evals += int(seeds.size)
            order = np.argsort(d, kind="stable")[:pool]
            cand_ids, cand_d = seeds[order], d[order]
            expanded = np.zeros(n, dtype=bool)
            while True:
                unexpanded = cand_ids[~expanded[cand_ids]]
                if unexpanded.size == 0:
                    break
                c = int(unexpanded[0])  # pool is sorted: nearest first
                expanded[c] = True
                hops += 1
                nbrs = graph_ids[c]
                nbrs = nbrs[nbrs >= 0]
                new = nbrs[~visited[nbrs]]
                if new.size == 0:
                    continue
                visited[new] = True
                nd = ((x[new] - qv) ** 2).sum(axis=1)
                distance_evals += int(new.size)
                cand_ids = np.concatenate([cand_ids, new])
                cand_d = np.concatenate([cand_d, nd])
                order = np.argsort(cand_d, kind="stable")[:pool]
                cand_ids, cand_d = cand_ids[order], cand_d[order]
            take = min(k, cand_ids.size)
            out_ids[qi, :take] = cand_ids[:take].astype(np.int32)
            out_dists[qi, :take] = cand_d[:take].astype(np.float32)
        self.last_search_stats = {
            "queries": m,
            "distance_evals": distance_evals,
            "graph_hops": hops,
        }
        return out_ids, out_dists

    def stats(self) -> dict:
        """Build convergence info plus the most recent query's counters."""
        out: dict = {"engine": "nn-descent"}
        if self._graph is not None:
            out["iters_run"] = self._graph.meta.get("iters_run")
            out["insertions"] = int(sum(self._graph.meta.get("insertions", [])))
        out.update(self.last_search_stats)
        return out

    def build(self, points: np.ndarray) -> KNNGraph:
        """Run NN-descent and return the resulting graph."""
        x = check_points_matrix(points, "points")
        n = x.shape[0]
        check_k_fits(self.k, n)
        rng = as_generator(self.seed)
        state = self._random_init(x, rng)
        strategy = get_strategy("tiled")  # plain bulk merge maintenance
        sample = self.sample if self.sample is not None else max(4, self.k // 2)
        threshold = self.delta * n * self.k
        iters_run = 0
        insertions: list[int] = []
        refine_state = RefineState()
        for _ in range(self.max_iters):
            inserted = refine_round(state, x, strategy, rng, sample, refine_state)
            insertions.append(inserted)
            iters_run += 1
            if inserted <= threshold:
                break
        ids, dists = state.sorted_arrays()
        return KNNGraph(
            ids=ids,
            dists=dists,
            meta={
                "algorithm": "nn-descent",
                "iters_run": iters_run,
                "insertions": insertions,
            },
        )

    def _random_init(self, x: np.ndarray, rng: np.random.Generator) -> KnnState:
        """Fill every list with ``k`` distinct random non-self neighbours."""
        n = x.shape[0]
        state = KnnState(n, self.k)
        # draw k+1 non-self ids per row (the +1 slack absorbs duplicates)
        cand = rng.integers(0, n - 1, size=(n, self.k + 1), dtype=np.int64)
        # map to "exclude self" range: values >= row shift by one
        rows = np.arange(n, dtype=np.int64)[:, None]
        cand = cand + (cand >= rows)
        # dedupe within row by re-drawing collisions via sort trick
        cand_sorted = np.sort(cand, axis=1)
        dup = np.zeros_like(cand_sorted, dtype=bool)
        dup[:, 1:] = cand_sorted[:, 1:] == cand_sorted[:, :-1]
        # rows with duplicates: patch sequentially (rare for k << n)
        bad_rows = np.flatnonzero(dup.any(axis=1))
        for r in bad_rows:
            seen: set[int] = set()
            for j in range(self.k + 1):
                while int(cand[r, j]) in seen or int(cand[r, j]) == r:
                    cand[r, j] = int(rng.integers(0, n))
                seen.add(int(cand[r, j]))
        cols = cand[:, : self.k].reshape(-1)
        rows_flat = np.repeat(np.arange(n, dtype=np.int64), self.k)
        dists = sq_l2_pairs(x, rows_flat, cols)
        state.ids[...] = cols.reshape(n, self.k).astype(np.int32)
        state.dists[...] = dists.reshape(n, self.k)
        return state


def nn_descent_graph(points: np.ndarray, k: int, **kwargs) -> KNNGraph:
    """One-shot NN-descent KNNG (see :class:`NNDescent`)."""
    return NNDescent(k=k, **kwargs).build(points)
