"""FAISS-like IVF-Flat index - the paper's comparison system.

The paper's headline result ("up to 639% faster than FAISS at equivalent
accuracy") compares w-KNNG against the FAISS library's approximate K-NNG
construction, which is an **IVF-Flat** index searched with every database
point as a query.  FAISS is unavailable here, so this module implements the
same index from scratch:

* a k-means **coarse quantiser** partitions the space into ``n_lists``
  Voronoi cells (:mod:`repro.baselines.kmeans`);
* every point is stored in the **inverted list** of its nearest centroid;
* a query scans the ``nprobe`` nearest cells exhaustively ("Flat" = raw
  vectors, no compression) and keeps the best ``k``.

``nprobe`` is the accuracy/time dial - exactly the knob the benchmark
harness tunes to match w-KNNG's recall before comparing build+search time
(experiment T1).

The search loop is organised list-major (for each probed list, batch all
queries probing it), which turns the whole search into ``n_lists`` GEMMs -
the vectorised analogue of how GPU FAISS batches IVF scans.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.kmeans import kmeans
from repro.core.graph import KNNGraph
from repro.errors import ConfigurationError
from repro.kernels.distance import pairwise_sq_l2_gemm
from repro.utils.arrays import blockwise_ranges, row_topk
from repro.utils.rng import RngStream
from repro.utils.validation import (
    check_points_matrix,
    check_positive_int,
    check_query_matrix,
)

#: queries per block when computing query->centroid distances
_PROBE_BLOCK = 4096


@dataclass
class IVFConfig:
    """IVF-Flat parameters.

    Attributes
    ----------
    n_lists:
        Number of Voronoi cells; ``None`` -> the FAISS heuristic
        ``~sqrt(n)`` (rounded to at least 1).
    nprobe:
        Cells scanned per query.
    kmeans_iters:
        Lloyd iterations for the coarse quantiser.
    train_sample:
        Training subsample size for k-means (``None`` = all points).
    seed:
        Random source for training.
    metric:
        ``"sqeuclidean"`` (default) or ``"cosine"`` (inputs are
        L2-normalised, exactly as FAISS handles cosine on L2 indexes).
    """

    n_lists: int | None = None
    nprobe: int = 8
    kmeans_iters: int = 10
    train_sample: int | None = 50_000
    seed: RngStream = None
    metric: str = "sqeuclidean"

    def __post_init__(self) -> None:
        if self.n_lists is not None:
            self.n_lists = check_positive_int(self.n_lists, "n_lists")
        self.nprobe = check_positive_int(self.nprobe, "nprobe")
        self.kmeans_iters = check_positive_int(self.kmeans_iters, "kmeans_iters", minimum=0)
        from repro.core.metric import check_metric

        check_metric(self.metric)
        if self.metric == "inner_product":
            raise ConfigurationError(
                "inner_product is not supported by the IVF KNNG baseline; "
                "use sqeuclidean or cosine"
            )

    def resolve_n_lists(self, n_points: int) -> int:
        if self.n_lists is not None:
            if self.n_lists > n_points:
                raise ConfigurationError(
                    f"n_lists={self.n_lists} exceeds the number of points {n_points}"
                )
            return self.n_lists
        return max(1, int(round(np.sqrt(n_points))))


class IVFFlatIndex:
    """Inverted-file index with exact (flat) residual scan.

    Usage::

        index = IVFFlatIndex(IVFConfig(nprobe=8, seed=0))
        index.fit(points)                       # train + add
        ids, dists = index.search(queries, k=10)
        graph = index.knn_graph(k=10)           # FAISS-style approx KNNG
    """

    def __init__(self, config: IVFConfig | None = None, **kwargs) -> None:
        if config is not None and kwargs:
            raise TypeError("pass either an IVFConfig or keyword options, not both")
        self.config = config if config is not None else IVFConfig(**kwargs)
        self._x: np.ndarray | None = None
        self._raw_dim = 0
        self.centroids: np.ndarray | None = None
        #: list -> array of member point ids
        self.lists: list[np.ndarray] = []
        #: work counters of the most recent :meth:`search` call
        self.last_search_stats: dict[str, int] = {}

    # -- construction -----------------------------------------------------------

    def fit(self, points: np.ndarray) -> "IVFFlatIndex":
        """Train the coarse quantiser on ``points`` and add them all."""
        from repro.core.metric import prepare_points

        x = check_points_matrix(points, "points")
        self._raw_dim = x.shape[1]
        x, _ = prepare_points(x, self.config.metric)
        cfg = self.config
        n_lists = cfg.resolve_n_lists(x.shape[0])
        self.centroids = kmeans(
            x,
            n_lists,
            n_iters=cfg.kmeans_iters,
            seed=cfg.seed,
            train_sample=cfg.train_sample,
        )
        labels = self._assign_lists(x)
        order = np.argsort(labels, kind="stable")
        sorted_labels = labels[order]
        bounds = np.searchsorted(sorted_labels, np.arange(n_lists + 1))
        self.lists = [
            order[bounds[c] : bounds[c + 1]].astype(np.int64) for c in range(n_lists)
        ]
        self._x = x
        return self

    def _assign_lists(self, x: np.ndarray) -> np.ndarray:
        assert self.centroids is not None
        labels = np.empty(x.shape[0], dtype=np.int64)
        for s, e in blockwise_ranges(x.shape[0], _PROBE_BLOCK):
            labels[s:e] = pairwise_sq_l2_gemm(x[s:e], self.centroids).argmin(axis=1)
        return labels

    # -- search -----------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._x is not None

    @property
    def n_lists(self) -> int:
        return len(self.lists)

    def list_sizes(self) -> np.ndarray:
        return np.array([lst.shape[0] for lst in self.lists], dtype=np.int64)

    def search(
        self,
        queries: np.ndarray,
        k: int,
        nprobe: int | None = None,
        exclude_ids: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate top-``k`` search.

        Parameters
        ----------
        queries:
            ``(m, d)`` query matrix.
        k:
            Neighbours to return.
        nprobe:
            Override of the configured probe count.
        exclude_ids:
            Optional ``(m,)`` ids excluded per query (the KNNG
            self-exclusion).

        Returns
        -------
        ``(ids, dists)`` - ``(m, k)``, ascending; unfilled slots (not
        enough candidates in the probed cells) carry ``-1`` / ``+inf``.
        """
        if not self.is_fitted:
            raise ConfigurationError("search() before fit()")
        from repro.core.metric import prepare_points

        q = check_query_matrix(queries, self._raw_dim, "queries")
        q, _ = prepare_points(q, self.config.metric, is_query=True)
        k = check_positive_int(k, "k")
        nprobe = self.config.nprobe if nprobe is None else check_positive_int(nprobe, "nprobe")
        nprobe = min(nprobe, self.n_lists)
        m = q.shape[0]

        probe = np.empty((m, nprobe), dtype=np.int64)
        for s, e in blockwise_ranges(m, _PROBE_BLOCK):
            cd = pairwise_sq_l2_gemm(q[s:e], self.centroids)
            if nprobe < self.n_lists:
                part = np.argpartition(cd, nprobe - 1, axis=1)[:, :nprobe]
            else:
                part = np.broadcast_to(np.arange(self.n_lists), (e - s, nprobe)).copy()
            probe[s:e] = part

        best_d = np.full((m, k), np.inf, dtype=np.float32)
        best_i = np.full((m, k), -1, dtype=np.int32)
        stats = {
            "centroid_distance_evals": m * self.n_lists,
            "candidate_distance_evals": 0,
            "candidates_selected": 0,
        }

        # list-major scan: all queries probing cell c are scanned together
        flat_lists = probe.reshape(-1)
        flat_queries = np.repeat(np.arange(m, dtype=np.int64), nprobe)
        order = np.argsort(flat_lists, kind="stable")
        flat_lists = flat_lists[order]
        flat_queries = flat_queries[order]
        bounds = np.searchsorted(flat_lists, np.arange(self.n_lists + 1))
        assert self._x is not None
        for c in range(self.n_lists):
            members = self.lists[c]
            qs = flat_queries[bounds[c] : bounds[c + 1]]
            if members.size == 0 or qs.size == 0:
                continue
            d = pairwise_sq_l2_gemm(q[qs], self._x[members])
            stats["candidate_distance_evals"] += int(qs.size) * int(members.size)
            ids = np.broadcast_to(members.astype(np.int32), d.shape)
            if exclude_ids is not None:
                d = np.where(ids == exclude_ids[qs, None], np.inf, d)
            kk = min(k, members.size)
            td, ti = row_topk(d, ids, kk)
            # merge the cell's top-kk into the running top-k of these rows
            all_d = np.concatenate([best_d[qs], td], axis=1)
            all_i = np.concatenate([best_i[qs], ti], axis=1)
            md, mi = row_topk(all_d, all_i, k)
            best_d[qs] = md
            best_i[qs] = mi
        stats["candidates_selected"] = stats["candidate_distance_evals"]
        self.last_search_stats = stats
        return best_i, best_d

    def query(self, queries: np.ndarray, k: int, *,
              ef: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """:class:`~repro.baselines.KNNIndex` alias of :meth:`search`.

        ``ef`` (the protocol's per-call quality dial) maps onto this
        engine's probe count: ``nprobe = ef`` when given, else the
        configured default.  No exclusions.
        """
        return self.search(queries, k, nprobe=ef)

    def stats(self) -> dict:
        """Index shape plus the work counters of the most recent search."""
        return {
            "engine": "ivf-flat",
            "n_lists": self.n_lists,
            "nprobe": self.config.nprobe,
            **self.last_search_stats,
        }

    def knn_graph(self, k: int, nprobe: int | None = None) -> KNNGraph:
        """FAISS-style approximate KNNG: search the index with every point."""
        if not self.is_fitted:
            raise ConfigurationError("knn_graph() before fit()")
        assert self._x is not None
        n = self._x.shape[0]
        ids, dists = self.search(
            self._x, k, nprobe=nprobe, exclude_ids=np.arange(n, dtype=np.int64)
        )
        return KNNGraph(
            ids=ids,
            dists=dists,
            meta={
                "algorithm": "ivf-flat",
                "n_lists": self.n_lists,
                "nprobe": nprobe if nprobe is not None else self.config.nprobe,
            },
        )


def ivf_knn_graph(
    points: np.ndarray, k: int, config: IVFConfig | None = None, **kwargs
) -> KNNGraph:
    """One-shot IVF-Flat KNNG (fit + search; see :class:`IVFFlatIndex`)."""
    index = IVFFlatIndex(config, **kwargs) if config is None else IVFFlatIndex(config)
    return index.fit(points).knn_graph(k)
