"""Exact K-NN by blocked brute force.

Serves two roles: the ground truth all recall numbers are computed against,
and the "exact" end of the speed/accuracy benchmark curves.  The
computation is blocked so memory stays bounded at
``block_rows * n`` distance entries, and uses the GEMM decomposition (one
BLAS call per block), which is also how exact GPU brute force (and FAISS's
``IndexFlat``) schedules it.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import KNNGraph
from repro.kernels.distance import pairwise_sq_l2_gemm
from repro.utils.arrays import blockwise_ranges, row_topk
from repro.utils.validation import (
    check_k_fits,
    check_points_matrix,
    check_query_matrix,
)

#: default rows per block: 512 rows x 50k points x 4B = ~100 MB of distances
DEFAULT_BLOCK_ROWS = 512


class BruteForceKNN:
    """Exact K-NN search over a fixed dataset.

    Usage::

        index = BruteForceKNN(points)
        ids, dists = index.search(queries, k)     # exact top-k
        graph = index.knn_graph(k)                # exact KNNG (no self-loops)

    or through the :class:`~repro.baselines.KNNIndex` protocol::

        index = BruteForceKNN().fit(points)
        ids, dists = index.query(queries, k)
        index.stats()                             # distance-eval counters

    ``metric`` may be ``"sqeuclidean"`` (default), ``"cosine"`` or
    ``"inner_product"``; the latter two reduce to L2 by input
    transformation (:mod:`repro.core.metric`) so returned ``dists`` are in
    the transformed space - order-faithful to the requested metric;
    ``inner_product`` is search-only (``knn_graph`` rejects it).
    """

    def __init__(
        self,
        points: np.ndarray | None = None,
        block_rows: int = DEFAULT_BLOCK_ROWS,
        metric: str = "sqeuclidean",
    ) -> None:
        from repro.core.metric import check_metric

        self.metric = check_metric(metric)
        if block_rows < 1:
            raise ValueError(f"block_rows must be >= 1, got {block_rows}")
        self._block_rows = int(block_rows)
        self._x: np.ndarray | None = None
        self._metric_info: dict = {}
        self._raw_dim = 0
        #: work counters of the most recent search/query/knn_graph call
        self.last_search_stats: dict[str, int] = {}
        if points is not None:
            self.fit(points)

    def fit(self, points: np.ndarray) -> "BruteForceKNN":
        """Ingest the dataset (transforming it for the configured metric)."""
        from repro.core.metric import prepare_points

        x = check_points_matrix(points, "points")
        self._x, self._metric_info = prepare_points(x, self.metric)
        self._raw_dim = x.shape[1]
        return self

    @property
    def is_fitted(self) -> bool:
        return self._x is not None

    def _require_fitted(self) -> np.ndarray:
        if self._x is None:
            raise ValueError("search() before fit(): no dataset indexed")
        return self._x

    @property
    def n(self) -> int:
        return self._require_fitted().shape[0]

    @property
    def dim(self) -> int:
        return self._require_fitted().shape[1]

    def search(
        self, queries: np.ndarray, k: int, exclude_self: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact top-``k``: returns ``(ids, dists)`` sorted ascending.

        With ``exclude_self=True`` the queries are assumed to *be* the
        dataset rows in order, and each row's own index is excluded - the
        KNN-graph convention.
        """
        from repro.core.metric import prepare_points

        x = self._require_fitted()
        q = check_query_matrix(queries, self._raw_dim, "queries")
        q, _ = prepare_points(
            q, self.metric, is_query=True,
            max_norm=self._metric_info.get("max_norm"),
        )
        k = check_k_fits(k, self.n) if exclude_self else min(int(k), self.n)
        m = q.shape[0]
        out_ids = np.empty((m, k), dtype=np.int32)
        out_dists = np.empty((m, k), dtype=np.float32)
        for s, e in blockwise_ranges(m, self._block_rows):
            d = pairwise_sq_l2_gemm(q[s:e], x)
            if exclude_self:
                d[np.arange(e - s), np.arange(s, e)] = np.inf
            ids = np.broadcast_to(np.arange(self.n, dtype=np.int32), d.shape)
            td, ti = row_topk(d, ids, k)
            out_dists[s:e] = td
            out_ids[s:e] = ti
        self.last_search_stats = {
            "distance_evals": m * self.n,
            "queries": m,
        }
        return out_ids, out_dists

    def query(self, queries: np.ndarray, k: int, *,
              ef: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """:class:`~repro.baselines.KNNIndex` alias of :meth:`search`.

        ``ef`` (the protocol's per-call quality dial) is accepted and
        ignored: an exact scan has no accuracy knob to turn.
        """
        return self.search(queries, k)

    def stats(self) -> dict:
        """Work counters of the most recent search (exact scan: ``m * n``)."""
        return {"engine": "bruteforce", **self.last_search_stats}

    def knn_graph(self, k: int) -> KNNGraph:
        """The exact K-NN graph of the indexed points."""
        if self.metric == "inner_product":
            raise ValueError(
                "inner_product is search-only (the L2 reduction is "
                "query-vs-database); use sqeuclidean or cosine for graphs"
            )
        # self._x is already transformed; search() must not transform again,
        # so go through the blocked scan directly
        x = self._require_fitted()
        k = check_k_fits(k, self.n)
        m = x.shape[0]
        out_ids = np.empty((m, k), dtype=np.int32)
        out_dists = np.empty((m, k), dtype=np.float32)
        for s, e in blockwise_ranges(m, self._block_rows):
            d = pairwise_sq_l2_gemm(x[s:e], x)
            d[np.arange(e - s), np.arange(s, e)] = np.inf
            ids = np.broadcast_to(np.arange(self.n, dtype=np.int32), d.shape)
            td, ti = row_topk(d, ids, k)
            out_dists[s:e] = td
            out_ids[s:e] = ti
        return KNNGraph(
            ids=out_ids,
            dists=out_dists,
            meta={"algorithm": "bruteforce", "metric": self.metric},
        )


def exact_knn_graph(
    points: np.ndarray, k: int, block_rows: int = DEFAULT_BLOCK_ROWS
) -> KNNGraph:
    """One-shot exact K-NN graph (see :class:`BruteForceKNN`)."""
    return BruteForceKNN(points, block_rows=block_rows).knn_graph(k)
