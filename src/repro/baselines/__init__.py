"""Comparison baselines: exact brute force, FAISS-like IVF-Flat, NN-descent.

These are the systems the paper's evaluation compares against.  FAISS
itself is closed off to this environment, so :mod:`repro.baselines.ivf`
reimplements the relevant index (IVF-Flat: k-means coarse quantiser +
inverted lists + ``nprobe`` search, applied to every point for KNNG
construction) with the same accuracy/cost trade-off knobs.

All engines conform to the :class:`KNNIndex` protocol - ``fit(points)`` /
``query(q, k)`` / ``stats()`` - so benchmark harnesses (and
``bench_t1_vs_faiss.py`` in particular) can drive every engine through one
interface.  The library's own graph-guided engine
(:class:`repro.apps.search.GraphSearchIndex`) registers here as
``"wknng"``, so it slots into the same harnesses::

    for engine in (BruteForceKNN(), IVFFlatIndex(), NNDescent()):
        engine.fit(points)
        ids, dists = engine.query(queries, k=10)
        engine.stats()    # engine-specific work counters
"""

from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.baselines.bruteforce import BruteForceKNN, exact_knn_graph
from repro.baselines.ivf import IVFFlatIndex, IVFConfig, ivf_knn_graph
from repro.baselines.nndescent import NNDescent, nn_descent_graph


@runtime_checkable
class KNNIndex(Protocol):
    """The common engine interface of every comparison baseline.

    ``fit`` ingests the dataset (returning ``self`` for chaining),
    ``query`` answers batched top-``k`` searches with ``(ids, dists)``
    matrices sorted by ascending distance (unfilled slots carry ``-1`` /
    ``+inf``), and ``stats`` reports engine-specific work counters of the
    most recent operation as a flat dict.

    ``ef`` is the protocol-wide *per-call* quality dial: every engine
    accepts it as keyword-only and maps it onto its own search-effort
    knob (beam width for the graph engine, probe count for IVF, pool
    size for NN-descent) or ignores it when exact (brute force).  One
    signature means one harness - :func:`repro.bench.sweep.run_index`
    and the serving layer drive every engine identically.
    """

    def fit(self, points: np.ndarray) -> "KNNIndex": ...

    def query(self, queries: np.ndarray, k: int, *,
              ef: int | None = None) -> tuple[np.ndarray, np.ndarray]: ...

    def stats(self) -> dict[str, Any]: ...


def _wknng_factory(**kwargs: Any) -> "KNNIndex":
    """Factory for the library's own graph-guided search engine.

    Imported lazily: :mod:`repro.apps.search` pulls in the full build
    pipeline, which the lightweight baselines should not pay for.
    """
    from repro.apps.search import GraphSearchIndex

    return GraphSearchIndex(**kwargs)


#: engine-name -> zero-argument factory of a default-configured instance
ENGINES = {
    "bruteforce": BruteForceKNN,
    "ivf-flat": IVFFlatIndex,
    "nn-descent": NNDescent,
    "wknng": _wknng_factory,
}


def get_engine(name: str, **kwargs) -> KNNIndex:
    """Instantiate a baseline engine by registry name."""
    try:
        factory = ENGINES[name]
    except KeyError:
        raise KeyError(
            f"unknown engine {name!r}; available: {sorted(ENGINES)}"
        ) from None
    return factory(**kwargs)


__all__ = [
    "KNNIndex",
    "ENGINES",
    "get_engine",
    "BruteForceKNN",
    "exact_knn_graph",
    "IVFFlatIndex",
    "IVFConfig",
    "ivf_knn_graph",
    "NNDescent",
    "nn_descent_graph",
]
