"""Comparison baselines: exact brute force, FAISS-like IVF-Flat, NN-descent.

These are the systems the paper's evaluation compares against.  FAISS
itself is closed off to this environment, so :mod:`repro.baselines.ivf`
reimplements the relevant index (IVF-Flat: k-means coarse quantiser +
inverted lists + ``nprobe`` search, applied to every point for KNNG
construction) with the same accuracy/cost trade-off knobs.
"""

from repro.baselines.bruteforce import BruteForceKNN, exact_knn_graph
from repro.baselines.ivf import IVFFlatIndex, IVFConfig, ivf_knn_graph
from repro.baselines.nndescent import NNDescent, nn_descent_graph

__all__ = [
    "BruteForceKNN",
    "exact_knn_graph",
    "IVFFlatIndex",
    "IVFConfig",
    "ivf_knn_graph",
    "NNDescent",
    "nn_descent_graph",
]
