"""One-command reproduction check: ``python -m repro verify``.

Runs a scaled-down version of every headline claim from EXPERIMENTS.md
end to end (a few minutes) and prints PASS/FAIL per claim:

C1. all three strategies produce equivalent graphs (central invariant);
C2. w-KNNG beats the IVF-Flat baseline in modeled cycles at a
    high-recall operating point (T1 shape);
C3. the atomic strategy is cheaper at low dimensionality and the tiled
    strategy at high dimensionality (F2 crossover / abstract claim 3);
C4. baseline (locks) never wins (T2);
C5. the local-join refinement converges and lifts recall (F5);
C6. the simulator's warp kernels agree with the vectorised backend and
    show tiled's global-transaction savings at high d (F6).

Exit code 0 iff every claim holds at these scales.  Use ``--n`` >= 2000:
below that, IVF cells are so small that matched-recall comparisons (C2)
lose their signal.
"""

from __future__ import annotations

import time

import numpy as np


class _Check:
    def __init__(self) -> None:
        self.results: list[tuple[str, bool, str]] = []

    def record(self, claim: str, ok: bool, detail: str) -> None:
        self.results.append((claim, ok, detail))
        print(f"  [{'PASS' if ok else 'FAIL'}] {claim}: {detail}")

    @property
    def all_ok(self) -> bool:
        return all(ok for _, ok, _ in self.results)


def run_verification(n: int = 3000, seed: int = 0, verbose: bool = True) -> bool:
    """Run all claim checks; returns True when every claim holds."""
    from repro.baselines.bruteforce import BruteForceKNN
    from repro.baselines.ivf import IVFConfig
    from repro.bench.match import match_ivf_recall, match_wknng_recall
    from repro.bench.sweep import run_wknng
    from repro.core.config import BuildConfig
    from repro.data.synthetic import gaussian_mixture
    from repro.metrics.quality import edge_overlap
    from repro.metrics.recall import knn_recall
    from repro.simt_kernels import simt_leaf_metrics

    t_start = time.perf_counter()
    check = _Check()
    k = 16

    print("generating workload + exact ground truth ...")
    x = gaussian_mixture(n, 128, n_clusters=max(8, n // 20), cluster_std=2.0,
                         center_scale=3.0, seed=seed + 5)
    gt, _ = BruteForceKNN(x).search(x, k, exclude_self=True)

    # -- C1: strategy equivalence ------------------------------------------------
    print("C1: strategy equivalence ...")
    from repro.core.builder import WKNNGBuilder

    graphs = {}
    for s in ("tiled", "atomic", "baseline"):
        graphs[s] = WKNNGBuilder(BuildConfig(
            k=k, strategy=s, n_trees=4, leaf_size=64, refine_iters=2,
            seed=seed)).build(x)
    overlap_at = edge_overlap(graphs["tiled"], graphs["atomic"])
    overlap_bt = edge_overlap(graphs["tiled"], graphs["baseline"])
    check.record("C1 strategies equivalent",
                 overlap_at > 0.9 and overlap_bt > 0.9,
                 f"edge overlap tiled/atomic={overlap_at:.3f}, "
                 f"tiled/baseline={overlap_bt:.3f}")

    # -- C2: beats IVF at high recall ---------------------------------------------
    print("C2: vs IVF at matched recall ...")
    target = 0.99
    base = BuildConfig(k=k, strategy="tiled", n_trees=1, leaf_size=64,
                       refine_iters=8, refine_fanout=2, seed=seed)
    try:
        wk = match_wknng_recall(x, gt, base, target).achieved
        ivf = match_ivf_recall(x, gt, k, target, IVFConfig(seed=seed + 7)).achieved
        speedup = ivf.modeled_cycles / max(1, wk.modeled_cycles)
        check.record("C2 beats IVF at recall>=0.99 (modeled)", speedup > 1.2,
                     f"speedup {speedup:.2f}x "
                     f"(wknng {wk.modeled_cycles / 1e6:.0f}M vs "
                     f"ivf {ivf.modeled_cycles / 1e6:.0f}M, nprobe="
                     f"{ivf.params['nprobe']})")
    except Exception as exc:  # pragma: no cover - depends on workload
        check.record("C2 beats IVF at recall>=0.99 (modeled)", False, str(exc))

    # -- C3 + C4: dimensionality crossover ----------------------------------------
    print("C3/C4: dimensionality crossover ...")
    ratios = {}
    baseline_wins = 0
    for d in (8, 960):
        xd = gaussian_mixture(min(n, 2000), d, n_clusters=32,
                              cluster_std=1.5, center_scale=4.0, seed=seed + 3)
        gtd, _ = BruteForceKNN(xd).search(xd, k, exclude_self=True)
        cycles = {}
        for s in ("atomic", "tiled", "baseline"):
            cfg = BuildConfig(k=k, strategy=s, n_trees=4, leaf_size=64,
                              refine_iters=2, seed=seed)
            cycles[s] = run_wknng(xd, gtd, cfg).modeled_cycles
        ratios[d] = cycles["atomic"] / cycles["tiled"]
        if cycles["baseline"] < min(cycles["atomic"], cycles["tiled"]):
            baseline_wins += 1
    check.record("C3 atomic wins low-d, tiled wins high-d",
                 ratios[8] < 1.0 < ratios[960],
                 f"atomic/tiled @8d={ratios[8]:.2f}, @960d={ratios[960]:.2f}")
    check.record("C4 baseline never wins", baseline_wins == 0,
                 f"baseline won {baseline_wins} of 2 settings")

    # -- C5: refinement converges ---------------------------------------------------
    print("C5: refinement convergence ...")
    recalls = []
    for iters in (0, 4):
        g = WKNNGBuilder(BuildConfig(k=k, strategy="tiled", n_trees=2,
                                     leaf_size=64, refine_iters=iters,
                                     seed=seed)).build(x)
        recalls.append(knn_recall(g.ids, gt))
    check.record("C5 local join lifts recall",
                 recalls[1] > recalls[0] + 0.05 and recalls[1] > 0.8,
                 f"recall {recalls[0]:.3f} -> {recalls[1]:.3f}")

    # -- C6: simulator mechanism ------------------------------------------------------
    print("C6: simulator kernel metrics ...")
    xs = gaussian_mixture(24, 96, n_clusters=4, seed=seed)
    leaf = np.arange(24)
    m_atomic = simt_leaf_metrics(xs, leaf, k=8, strategy="atomic")
    m_tiled = simt_leaf_metrics(xs, leaf, k=8, strategy="tiled")
    m_base = simt_leaf_metrics(xs, leaf, k=8, strategy="baseline")
    ok = (
        m_tiled.global_load_transactions < m_atomic.global_load_transactions
        and m_tiled.atomic_ops == 0
        and m_base.atomic_ops > m_atomic.atomic_ops
    )
    check.record(
        "C6 warp metrics explain the mechanism", ok,
        f"ld-tx tiled={m_tiled.global_load_transactions} < "
        f"atomic={m_atomic.global_load_transactions}; atomics "
        f"base={m_base.atomic_ops} > atomic={m_atomic.atomic_ops} > tiled=0",
    )

    elapsed = time.perf_counter() - t_start
    passed = sum(1 for _, ok, _ in check.results if ok)
    print(f"\n{passed}/{len(check.results)} claims hold "
          f"({elapsed:.0f}s at n={n}); see EXPERIMENTS.md for full runs")
    return check.all_ok


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=3000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    return 0 if run_verification(n=args.n, seed=args.seed) else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
