"""Unified observability: tracing spans, metrics registry, profiling hooks.

One :class:`Observability` object bundles the three channels every build
phase reports through:

* :attr:`Observability.trace` - nestable wall-clock spans
  (:mod:`repro.obs.trace`);
* :attr:`Observability.metrics` - a typed counter/gauge/histogram registry
  (:mod:`repro.obs.metrics`) that the legacy ``OpCounters`` and SIMT
  ``KernelMetrics`` dataclasses emit into;
* :attr:`Observability.hooks` - before/after callback points at kernel
  dispatches, refinement rounds and tree builds (:mod:`repro.obs.hooks`).

Typical use::

    from repro import BuildConfig, WKNNGBuilder
    from repro.obs import Observability, write_trace

    obs = Observability()
    graph, report = WKNNGBuilder(BuildConfig(k=16), obs=obs).build(
        points, return_report=True)
    report.phase_seconds            # derived from the span tree
    write_trace("build.jsonl", obs)  # machine-readable record

Span/metric naming scheme, hook payloads and the export format are
documented in ``docs/observability.md``.
"""

from repro.obs.export import (
    TraceData,
    iter_jsonl,
    read_trace,
    trace_rows,
    write_jsonl,
    write_trace,
)
from repro.obs.hooks import Events, ProfilingHooks
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileHistogram,
)
from repro.obs.trace import NULL_SPAN, Span, SpanRecord, Tracer


class Observability:
    """The bundle of one tracing session: tracer + registry + hooks.

    Parameters
    ----------
    enabled:
        When ``False`` the tracer hands out no-op spans (metrics and hooks
        stay live - they are cheap and gated at the call sites anyway).
    trace_memory:
        Capture per-span ``tracemalloc`` peak growth (starts tracemalloc on
        demand; roughly 2-4x slower builds - for memory investigations).
    """

    def __init__(self, enabled: bool = True, trace_memory: bool = False) -> None:
        self.trace = Tracer(enabled=enabled, trace_memory=trace_memory)
        self.metrics = MetricsRegistry()
        self.hooks = ProfilingHooks()

    @classmethod
    def disabled(cls) -> "Observability":
        """An observability bundle whose tracer is a no-op."""
        return cls(enabled=False)

    @property
    def enabled(self) -> bool:
        return self.trace.enabled

    def reset(self) -> None:
        """Clear spans and zero metrics (hook subscriptions are kept)."""
        self.trace.reset()
        self.metrics.reset()


__all__ = [
    "Observability",
    "Tracer",
    "Span",
    "SpanRecord",
    "NULL_SPAN",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "QuantileHistogram",
    "ProfilingHooks",
    "Events",
    "TraceData",
    "write_trace",
    "read_trace",
    "trace_rows",
    "write_jsonl",
    "iter_jsonl",
]
