"""Typed metrics registry: counters, gauges, histograms.

The registry is the single sink the pipeline's existing ad-hoc counter
channels feed into: :class:`repro.kernels.counters.OpCounters` and
:class:`repro.simt.metrics.KernelMetrics` both *emit* their fields here
(see their ``emit`` methods), and instrumented code can register its own
metrics directly::

    reg = MetricsRegistry()
    reg.counter("kernel/distance_evals").inc(1024)
    reg.gauge("forest/max_leaf_size").set(48.0)
    reg.histogram("kernel/dispatch_seconds").observe(0.003)

Metric names are slash-namespaced (``section/name``); :meth:`MetricsRegistry.section`
slices one namespace back out as a plain dict, which is how the legacy
``BuildReport.counters`` surface is reconstructed from a trace.
"""

from __future__ import annotations

import math
import random
from typing import Any, Iterator, Mapping


class Counter:
    """A monotonically-increasing integer metric."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = int(value)

    def inc(self, n: int = 1) -> "Counter":
        if n < 0:
            raise ValueError(f"counters only increase; got inc({n})")
        self.value += int(n)
        return self

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def reset(self) -> None:
        self.value = 0

    def get(self) -> int:
        return self.value

    def as_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """A last-value-wins float metric."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = float(value)

    def set(self, v: float) -> "Gauge":
        self.value = float(v)
        return self

    def merge(self, other: "Gauge") -> None:
        self.value = other.value

    def reset(self) -> None:
        self.value = 0.0

    def get(self) -> float:
        return self.value

    def as_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.value}


class Histogram:
    """A streaming summary (count/sum/min/max) of observed values."""

    kind = "histogram"
    __slots__ = ("count", "total", "vmin", "vmax")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    def observe(self, v: float) -> "Histogram":
        v = float(v)
        self.count += 1
        self.total += v
        self.vmin = min(self.vmin, v)
        self.vmax = max(self.vmax, v)
        return self

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        self.vmin = min(self.vmin, other.vmin)
        self.vmax = max(self.vmax, other.vmax)

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf

    def get(self) -> dict[str, float]:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {"count": self.count, "sum": self.total,
                "min": self.vmin, "max": self.vmax, "mean": self.mean}

    def as_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "value": self.get()}


class QuantileHistogram(Histogram):
    """A histogram that additionally estimates p50/p95/p99 quantiles.

    Keeps a bounded reservoir of observed values (uniform reservoir
    sampling, deterministic seed) next to the streaming
    count/sum/min/max summary, so tail latencies stay reportable at
    serving volumes without unbounded memory.  Up to ``RESERVOIR_CAP``
    observations the quantiles are exact.
    """

    kind = "quantile_histogram"
    __slots__ = ("samples", "_rng", "_restored_quantiles")

    #: reservoir size: exact quantiles below this many observations
    RESERVOIR_CAP = 8192
    #: the tail points every summary reports
    QUANTILES = (0.5, 0.95, 0.99)

    def __init__(self) -> None:
        super().__init__()
        self.samples: list[float] = []
        self._rng = random.Random(0x5EED)
        self._restored_quantiles: dict[str, float] | None = None

    def observe(self, v: float) -> "QuantileHistogram":
        super().observe(float(v))
        self._restored_quantiles = None
        if len(self.samples) < self.RESERVOIR_CAP:
            self.samples.append(float(v))
        else:
            # classic Algorithm R: keep each of the `count` observations
            # with equal probability cap/count
            j = self._rng.randrange(self.count)
            if j < self.RESERVOIR_CAP:
                self.samples[j] = float(v)
        return self

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile of the reservoir (0 when empty)."""
        if self._restored_quantiles is not None:
            key = f"p{int(round(q * 100))}"
            if key in self._restored_quantiles:
                return self._restored_quantiles[key]
        if not self.samples:
            return 0.0
        s = sorted(self.samples)
        pos = q * (len(s) - 1)
        lo = int(math.floor(pos))
        hi = min(lo + 1, len(s) - 1)
        return s[lo] + (s[hi] - s[lo]) * (pos - lo)

    def merge(self, other: "Histogram") -> None:
        super().merge(other)
        if isinstance(other, QuantileHistogram):
            self._restored_quantiles = None
            self.samples.extend(other.samples)
            while len(self.samples) > self.RESERVOIR_CAP:
                self.samples.pop(self._rng.randrange(len(self.samples)))

    def reset(self) -> None:
        super().reset()
        self.samples.clear()
        self._restored_quantiles = None

    def get(self) -> dict[str, float]:
        out = super().get()
        for q in self.QUANTILES:
            out[f"p{int(round(q * 100))}"] = self.quantile(q)
        return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram,
          "quantile_histogram": QuantileHistogram}


class MetricsRegistry:
    """Name -> typed metric store with create-on-first-use accessors."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    # -- accessors -----------------------------------------------------------

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls()
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def quantile_histogram(self, name: str) -> QuantileHistogram:
        return self._get(name, QuantileHistogram)

    def scoped(self, prefix: str) -> "ScopedMetrics":
        """A view of this registry that namespaces every accessor.

        ``reg.scoped("query/").counter("expansions")`` is
        ``reg.counter("query/expansions")`` - instrumented subsystems take
        a scoped view so their metric names stay consistent without
        repeating the prefix at every call site.
        """
        return ScopedMetrics(self, prefix)

    # -- bulk operations -----------------------------------------------------

    def absorb(self, values: Mapping[str, int | float], prefix: str = "") -> None:
        """Add a mapping of numeric values as counter increments.

        This is how legacy counter dataclasses (``OpCounters``,
        ``KernelMetrics``) pour a snapshot into the registry.
        """
        for key, value in values.items():
            self.counter(prefix + key).inc(int(value))

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold ``other`` into ``self``: counters/histograms accumulate,
        gauges take the other registry's value.  Returns ``self``."""
        for name, metric in other._metrics.items():
            self._get(name, type(metric)).merge(metric)
        return self

    def reset(self) -> None:
        """Zero every registered metric (names stay registered)."""
        for metric in self._metrics.values():
            metric.reset()

    # -- views ---------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._metrics))

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def as_dict(self) -> dict[str, Any]:
        """Flat ``name -> value`` view (histograms render as summary dicts)."""
        return {name: self._metrics[name].get() for name in sorted(self._metrics)}

    def typed_dict(self) -> dict[str, dict[str, Any]]:
        """``name -> {kind, value}`` view (the JSON-lines export shape)."""
        return {name: self._metrics[name].as_dict() for name in sorted(self._metrics)}

    def section(self, prefix: str) -> dict[str, Any]:
        """Metrics under ``prefix``, with the prefix stripped.

        ``section("kernel/")`` over counters named ``kernel/distance_evals``
        etc. reproduces the legacy ``OpCounters.as_dict()`` mapping.
        """
        return {
            name[len(prefix):]: metric.get()
            for name, metric in sorted(self._metrics.items())
            if name.startswith(prefix)
        }

    @classmethod
    def from_typed_dict(cls, data: Mapping[str, Mapping[str, Any]]) -> "MetricsRegistry":
        """Inverse of :meth:`typed_dict` (used by the JSON-lines reader)."""
        reg = cls()
        for name, entry in data.items():
            kind = entry["kind"]
            value = entry["value"]
            if kind == "counter":
                reg.counter(name).inc(int(value))
            elif kind == "gauge":
                reg.gauge(name).set(float(value))
            elif kind in ("histogram", "quantile_histogram"):
                h = (reg.histogram(name) if kind == "histogram"
                     else reg.quantile_histogram(name))
                h.count = int(value["count"])
                h.total = float(value["sum"])
                if h.count:
                    h.vmin = float(value["min"])
                    h.vmax = float(value["max"])
                if isinstance(h, QuantileHistogram):
                    # the raw reservoir is not persisted; freeze the
                    # exported quantiles so the round-trip reports them
                    h._restored_quantiles = {
                        k: float(v) for k, v in value.items()
                        if k.startswith("p") and k[1:].isdigit()
                    }
            else:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
        return reg


class ScopedMetrics:
    """A prefix-namespaced view over a :class:`MetricsRegistry`.

    Shares the parent's storage: metrics created through the view are
    visible in the parent under ``prefix + name`` (and vice versa).
    Obtained via :meth:`MetricsRegistry.scoped`.
    """

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: MetricsRegistry, prefix: str) -> None:
        self._registry = registry
        self._prefix = str(prefix)

    @property
    def prefix(self) -> str:
        return self._prefix

    def counter(self, name: str) -> Counter:
        return self._registry.counter(self._prefix + name)

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(self._prefix + name)

    def histogram(self, name: str) -> Histogram:
        return self._registry.histogram(self._prefix + name)

    def quantile_histogram(self, name: str) -> QuantileHistogram:
        return self._registry.quantile_histogram(self._prefix + name)

    def absorb(self, values: Mapping[str, int | float]) -> None:
        self._registry.absorb(values, prefix=self._prefix)

    def section(self) -> dict[str, Any]:
        """The parent-registry section under this view's prefix."""
        return self._registry.section(self._prefix)
