"""JSON-lines trace export/import.

A trace file is newline-delimited JSON, one record per line, each tagged
with a ``type``:

``{"type": "meta", ...}``
    One header line: schema version plus caller-supplied context (dataset,
    config, command line).
``{"type": "span", "name", "path", "start", "seconds", "depth", ...}``
    One completed tracing span (completion order, children before parents).
``{"type": "metric", "name", "kind", "value"}``
    One registry metric (counters/gauges as scalars, histograms as
    count/sum/min/max/mean summaries).
``{"type": "record", ...}``
    Free-form rows (benchmark tables re-emitted machine-readably).

The format is append-friendly and greppable; :func:`read_trace` restores a
:class:`TraceData` with reconstructed :class:`~repro.obs.trace.SpanRecord`
objects and a :class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import SpanRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability

#: bump when the line shapes change incompatibly
SCHEMA_VERSION = 1


def _default(obj: Any) -> Any:
    """JSON fallback: numpy scalars and anything with ``as_dict``/``item``."""
    if hasattr(obj, "item"):
        return obj.item()
    if hasattr(obj, "as_dict"):
        return obj.as_dict()
    return str(obj)


def write_jsonl(path: str | Path, rows: Iterable[dict[str, Any]]) -> Path:
    """Write an iterable of dicts as JSON lines; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        for row in rows:
            fh.write(json.dumps(row, default=_default) + "\n")
    return path


def write_json_summary(path: str | Path, payload: dict[str, Any]) -> Path:
    """Write one experiment summary as a single pretty-printed JSON file.

    The perf-trajectory CI job uploads these (``BENCH_T*.json``) as
    workflow artifacts, one file per bench target, so the trajectory can
    be diffed run-over-run; the payload is schema-tagged like the
    JSON-lines records.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps({"schema": SCHEMA_VERSION, **payload},
                   default=_default, indent=2, sort_keys=True) + "\n"
    )
    return path


def iter_jsonl(path: str | Path) -> Iterator[dict[str, Any]]:
    """Yield the parsed records of a JSON-lines file (blank lines skipped)."""
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)


def trace_rows(obs: "Observability", meta: dict[str, Any] | None = None
               ) -> Iterator[dict[str, Any]]:
    """The JSON-lines rows of one observability session, header first."""
    header: dict[str, Any] = {"type": "meta", "schema": SCHEMA_VERSION}
    if meta:
        header.update(meta)
    yield header
    for rec in obs.trace.records:
        yield {"type": "span", **rec.as_dict()}
    for name, entry in obs.metrics.typed_dict().items():
        yield {"type": "metric", "name": name, **entry}


def write_trace(path: str | Path, obs: "Observability",
                meta: dict[str, Any] | None = None) -> Path:
    """Export an observability session to a JSON-lines trace file."""
    return write_jsonl(path, trace_rows(obs, meta))


@dataclass
class TraceData:
    """A parsed trace file."""

    meta: dict[str, Any] = field(default_factory=dict)
    spans: list[SpanRecord] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    records: list[dict[str, Any]] = field(default_factory=list)

    def span_paths(self) -> set[str]:
        return {s.path for s in self.spans}

    def find(self, path_prefix: str) -> list[SpanRecord]:
        want = path_prefix.rstrip("/")
        return [s for s in self.spans
                if s.path == want or s.path.startswith(want + "/")]


def read_trace(path: str | Path) -> TraceData:
    """Parse a JSON-lines trace file back into structured objects."""
    data = TraceData()
    metric_lines: dict[str, dict[str, Any]] = {}
    for row in iter_jsonl(path):
        kind = row.get("type")
        if kind == "meta":
            data.meta = {k: v for k, v in row.items() if k != "type"}
        elif kind == "span":
            data.spans.append(SpanRecord(
                name=row["name"],
                path=row["path"],
                start=float(row["start"]),
                seconds=float(row["seconds"]),
                depth=int(row["depth"]),
                mem_peak_bytes=row.get("mem_peak_bytes"),
                attrs=row.get("attrs", {}),
            ))
        elif kind == "metric":
            metric_lines[row["name"]] = {"kind": row["kind"], "value": row["value"]}
        elif kind == "record":
            data.records.append({k: v for k, v in row.items() if k != "type"})
        # unknown types are skipped: forward compatibility
    data.metrics = MetricsRegistry.from_typed_dict(metric_lines)
    return data
