"""Profiling hooks: subscribable callback points in the build pipeline.

The pipeline emits paired ``<event>:before`` / ``<event>:after`` events at
its interesting boundaries; benchmarks and users subscribe callbacks::

    hooks = ProfilingHooks()
    unsub = hooks.subscribe(Events.KERNEL_DISPATCH_AFTER,
                            lambda event, payload: print(payload["kernel"]))
    ...
    unsub()

Callbacks receive ``(event_name, payload_dict)`` and run synchronously in
subscription order; exceptions propagate to the instrumented call site (a
profiling callback that raises is a bug worth surfacing, not swallowing).
``"*"`` subscribes to every event - how a streaming exporter taps the
whole build.
"""

from __future__ import annotations

from typing import Any, Callable

HookFn = Callable[[str, dict[str, Any]], None]


class Events:
    """Well-known event names emitted by the instrumented pipeline."""

    #: one strategy kernel dispatch (vectorised backend: a leaf batch or a
    #: refinement pair batch; simt backend: one simulated grid launch)
    KERNEL_DISPATCH_BEFORE = "kernel_dispatch:before"
    KERNEL_DISPATCH_AFTER = "kernel_dispatch:after"
    #: one neighbour-of-neighbour refinement round
    REFINE_ROUND_BEFORE = "refine_round:before"
    REFINE_ROUND_AFTER = "refine_round:after"
    #: one RP tree of the forest phase
    TREE_BUILD_BEFORE = "tree_build:before"
    TREE_BUILD_AFTER = "tree_build:after"
    #: one batched query-engine invocation (all lock-step rounds of one
    #: query matrix; the ``after`` payload carries the work totals)
    QUERY_BATCH_BEFORE = "query_batch:before"
    QUERY_BATCH_AFTER = "query_batch:after"
    #: one wksan sanitizer finding in report-only mode (payload: the
    #: structured :meth:`repro.simt.sanitizer.Finding.as_dict` fields)
    SANITIZER_FINDING = "sanitizer:finding"
    #: serving lifecycle: the query server's batcher/worker threads
    #: starting and stopping (payload: the serve configuration)
    SERVE_START = "serve:start"
    SERVE_STOP = "serve:stop"
    #: one micro-batch flush through the engine (``before`` payload:
    #: batch size, queue depth, effective ef; ``after`` adds seconds)
    SERVE_BATCH_BEFORE = "serve_batch:before"
    SERVE_BATCH_AFTER = "serve_batch:after"
    #: admission control rejected a request (queue at its limit)
    SERVE_REQUEST_REJECTED = "serve:rejected"
    #: a request's deadline expired (payload says whether it was dropped
    #: while queued or discarded after execution finished late)
    SERVE_REQUEST_TIMEOUT = "serve:timeout"
    #: a request was answered from the result cache without scoring
    SERVE_CACHE_HIT = "serve:cache_hit"
    #: the degradation controller changed its shed level (payload: old
    #: and new level, queue depth)
    SERVE_SHED_CHANGE = "serve:shed_change"
    #: cluster lifecycle: shard replica workers + router starting/stopping
    CLUSTER_START = "cluster:start"
    CLUSTER_STOP = "cluster:stop"
    #: one scatter-gather micro-batch through the shard cluster
    #: (``before`` payload: batch size, k, per-shard ef; ``after`` adds
    #: seconds and per-shard work counters)
    CLUSTER_BATCH_BEFORE = "cluster_batch:before"
    CLUSTER_BATCH_AFTER = "cluster_batch:after"
    #: a shard call failed over from a dead/slow replica to a sibling
    CLUSTER_FAILOVER = "cluster:failover"
    #: replica health transitions (heartbeat monitor or in-band failure)
    REPLICA_EJECTED = "replica:ejected"
    REPLICA_READMITTED = "replica:readmitted"
    #: a mutable index published a new epoch snapshot (payload: epoch,
    #: kind insert|delete|compact, batch size, live/total point counts)
    INDEX_FLIP = "index:flip"
    #: tombstone compaction rebuilding graph + forest over the survivors
    INDEX_COMPACT_BEFORE = "index_compact:before"
    INDEX_COMPACT_AFTER = "index_compact:after"


class ProfilingHooks:
    """Event-name -> ordered subscriber lists."""

    def __init__(self) -> None:
        self._subs: dict[str, list[HookFn]] = {}

    @property
    def active(self) -> bool:
        """True when at least one subscriber is registered (emit fast-path)."""
        return bool(self._subs)

    def subscribe(self, event: str, fn: HookFn) -> Callable[[], None]:
        """Register ``fn`` for ``event`` (or ``"*"``); returns an unsubscriber."""
        self._subs.setdefault(event, []).append(fn)

        def unsubscribe() -> None:
            subs = self._subs.get(event)
            if subs and fn in subs:
                subs.remove(fn)
                if not subs:
                    del self._subs[event]

        return unsubscribe

    def pair(self, event_base: str, fn: HookFn) -> Callable[[], None]:
        """Subscribe ``fn`` to both ``<base>:before`` and ``<base>:after``."""
        u1 = self.subscribe(f"{event_base}:before", fn)
        u2 = self.subscribe(f"{event_base}:after", fn)

        def unsubscribe() -> None:
            u1()
            u2()

        return unsubscribe

    def emit(self, event: str, **payload: Any) -> None:
        """Invoke the event's subscribers, then the ``"*"`` subscribers."""
        if not self._subs:
            return
        for fn in tuple(self._subs.get(event, ())):
            fn(event, payload)
        for fn in tuple(self._subs.get("*", ())):
            fn(event, payload)

    def clear(self) -> None:
        self._subs.clear()
