"""Nestable tracing spans with wall-clock and optional memory capture.

A :class:`Tracer` produces :class:`Span` context managers::

    with tracer.span("refine"):
        with tracer.span("round-3") as sp:
            ...
            sp.set(inserted=123)

Each completed span is appended to :attr:`Tracer.records` as an immutable
:class:`SpanRecord` carrying its slash-joined ``path``
(``"build/refine/round-3"``), start offset, duration, nesting depth and
free-form attributes.  Records are stored in *completion* order (children
before parents), which is also the order a streaming JSON-lines exporter
would emit them in.

A disabled tracer hands out a shared no-op span, so instrumented code pays
one attribute check per call and nothing else - the <5% disabled-overhead
budget of the observability layer.

Memory capture: when ``trace_memory=True`` and :mod:`tracemalloc` is
tracing (the tracer starts it on demand), each span records the growth of
the traced peak over its lifetime in ``mem_peak_bytes`` - an upper bound on
the span's own allocation peak (nested allocations attribute to every
enclosing span).
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class SpanRecord:
    """One completed span (immutable)."""

    #: leaf name, e.g. ``"round-3"``
    name: str
    #: slash-joined ancestry, e.g. ``"build/refine/round-3"``
    path: str
    #: seconds since the tracer's epoch at span entry
    start: float
    #: wall-clock duration
    seconds: float
    #: nesting depth (0 = root span)
    depth: int
    #: growth of the tracemalloc peak during the span (None = not captured)
    mem_peak_bytes: int | None = None
    #: free-form attributes attached via :meth:`Span.set`
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def parent_path(self) -> str:
        """Path of the enclosing span (empty for roots)."""
        return self.path.rsplit("/", 1)[0] if "/" in self.path else ""

    def as_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "path": self.path,
            "start": self.start,
            "seconds": self.seconds,
            "depth": self.depth,
        }
        if self.mem_peak_bytes is not None:
            out["mem_peak_bytes"] = self.mem_peak_bytes
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out


class Span:
    """A live span; use as a context manager (see module docstring)."""

    __slots__ = ("_tracer", "name", "path", "depth", "attrs",
                 "_t0", "_mem0", "record")

    def __init__(self, tracer: "Tracer", name: str, path: str, depth: int,
                 attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.path = path
        self.depth = depth
        self.attrs = attrs
        self._t0 = 0.0
        self._mem0: int | None = None
        #: the SpanRecord, available after exit
        self.record: SpanRecord | None = None

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span; returns ``self`` for chaining."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        tr = self._tracer
        tr._stack.append(self)
        if tr.trace_memory:
            tr._ensure_tracemalloc()
            _size, peak = tracemalloc.get_traced_memory()
            self._mem0 = peak
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        seconds = time.perf_counter() - self._t0
        tr = self._tracer
        mem_peak = None
        if self._mem0 is not None:
            _size, peak = tracemalloc.get_traced_memory()
            mem_peak = max(0, peak - self._mem0)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.record = SpanRecord(
            name=self.name,
            path=self.path,
            start=self._t0 - tr._epoch,
            seconds=seconds,
            depth=self.depth,
            mem_peak_bytes=mem_peak,
            attrs=self.attrs,
        )
        tr.records.append(self.record)
        # unwind even if user code raised inside the span
        if tr._stack and tr._stack[-1] is self:
            tr._stack.pop()


class _NullSpan:
    """Shared no-op span handed out by disabled tracers."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SPAN = _NullSpan()


class Tracer:
    """Span factory + flat store of completed :class:`SpanRecord` objects."""

    def __init__(self, enabled: bool = True, trace_memory: bool = False) -> None:
        self.enabled = bool(enabled)
        self.trace_memory = bool(trace_memory)
        self.records: list[SpanRecord] = []
        self._stack: list[Span] = []
        self._epoch = time.perf_counter()
        self._started_tracemalloc = False

    # -- span creation -------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a span named ``name`` nested under the current span."""
        if not self.enabled:
            return NULL_SPAN
        if self._stack:
            parent = self._stack[-1]
            path = f"{parent.path}/{name}"
            depth = parent.depth + 1
        else:
            path = name
            depth = 0
        return Span(self, name, path, depth, dict(attrs))

    def _ensure_tracemalloc(self) -> None:
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True

    # -- queries -------------------------------------------------------------

    def find(self, path_prefix: str) -> list[SpanRecord]:
        """Completed spans whose path equals or starts under the prefix."""
        want = path_prefix.rstrip("/")
        return [
            r for r in self.records
            if r.path == want or r.path.startswith(want + "/")
        ]

    def roots(self) -> list[SpanRecord]:
        """Completed depth-0 spans in start order."""
        return sorted((r for r in self.records if r.depth == 0),
                      key=lambda r: r.start)

    def children(self, path: str) -> list[SpanRecord]:
        """Direct children of ``path``, in start order."""
        depth = path.count("/") + 1
        return sorted(
            (r for r in self.records
             if r.depth == depth and r.parent_path == path),
            key=lambda r: r.start,
        )

    def tree_paths(self) -> set[str]:
        """The set of all completed span paths (for coverage assertions)."""
        return {r.path for r in self.records}

    def reset(self) -> None:
        """Drop all records and reset the epoch; open spans are abandoned."""
        self.records.clear()
        self._stack.clear()
        self._epoch = time.perf_counter()
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
            self._started_tracemalloc = False

    def __len__(self) -> int:
        return len(self.records)
