"""Dynamic K-NN graph maintenance: incremental point insertion.

Production similarity systems rarely rebuild from scratch when data
arrives; they insert.  :class:`DynamicKNNG` extends a built w-KNNG graph
with new points using the same machinery the batch pipeline uses:

1. **Routing**: each new point descends every retained RP tree to a leaf
   (:meth:`~repro.core.rpforest.RPTree.leaf_for`); the leaf members are
   its candidate pool, and the new point joins those leaves so *later*
   insertions see it too.
2. **Candidate pairs**: (new point, leaf member) pairs in both directions
   go through the configured maintenance strategy - existing points'
   lists are updated in place, exactly as a concurrent GPU insertion
   kernel would.
3. **Local repair**: one local-join round whose *new* flags are exactly
   the entries the insertion touched, so refinement work concentrates
   around the new points instead of rescanning the whole graph.

Leaves grow over time, so per-insertion cost creeps up; the
:attr:`DynamicKNNG.growth_factor` property tells callers when a full
rebuild is worthwhile (the usual policy: rebuild at ~2x).
"""

from __future__ import annotations

import numpy as np

from repro.core.builder import WKNNGBuilder
from repro.core.config import BuildConfig
from repro.core.graph import KNNGraph
from repro.core.metric import prepare_points
from repro.core.refine import RefineState, refine_round
from repro.core.rpforest import RPForest, RPTree
from repro.errors import ConfigurationError, DataError
from repro.kernels.knn_state import KnnState
from repro.kernels.strategy import Strategy, get_strategy
from repro.utils.rng import as_generator
from repro.utils.validation import check_points_matrix


class DynamicKNNG:
    """A K-NN graph that accepts new points after construction.

    Usage::

        dyn = DynamicKNNG.build(points, BuildConfig(k=16, seed=0))
        new_ids = dyn.add(more_points)      # graph now covers both
        graph = dyn.snapshot()              # KNNGraph over all points
    """

    def __init__(
        self,
        points: np.ndarray,
        state: KnnState,
        forest: RPForest,
        config: BuildConfig,
    ) -> None:
        self._x = points
        self._state = state
        # Private copy of the forest: ``add`` grows leaves as points join
        # them, and sharing that mutation with the caller's forest would
        # leak ids that other consumers (a second ``extend_graph`` on the
        # same builder, a search index holding the forest) cannot resolve.
        self._forest = RPForest(
            trees=[
                RPTree(
                    normals=tree.normals,
                    thresholds=tree.thresholds,
                    children=tree.children,
                    leaves=[leaf.copy() for leaf in tree.leaves],
                )
                for tree in forest.trees
            ]
        )
        if config.strategy == "auto":
            from dataclasses import replace

            from repro.bench.costmodel import preferred_strategy

            config = replace(
                config,
                strategy=preferred_strategy(
                    points.shape[1], config.k, config.leaf_size
                ),
            )
        self.config = config
        self._strategy: Strategy = get_strategy(
            config.strategy, **config.strategy_kwargs
        )
        self._rng = as_generator(config.seed).spawn(1)[0]
        self._initial_n = points.shape[0]

    # -- construction -----------------------------------------------------------

    @classmethod
    def build(cls, points: np.ndarray, config: BuildConfig | None = None) -> "DynamicKNNG":
        """Build the initial graph and wrap it for dynamic updates."""
        config = config or BuildConfig()
        builder = WKNNGBuilder(config)
        graph = builder.build(points)
        assert builder.last_forest is not None
        x = check_points_matrix(points, "points")
        x, _ = prepare_points(x, config.metric)
        state = KnnState(graph.n, graph.k)
        state.ids[...] = graph.ids
        state.dists[...] = graph.dists
        return cls(x, state, builder.last_forest, config)

    # -- inspection ------------------------------------------------------------

    @property
    def n(self) -> int:
        """Points currently covered by the graph."""
        return self._x.shape[0]

    @property
    def growth_factor(self) -> float:
        """Current size relative to the size the forest was built for.

        Above ~2 the grown leaves make insertions noticeably more
        expensive and per-point recall of *old* points starts to lag;
        rebuild via :meth:`DynamicKNNG.build` on :meth:`points`.
        """
        return self.n / max(1, self._initial_n)

    @property
    def points(self) -> np.ndarray:
        """The (metric-transformed) point matrix backing the graph."""
        return self._x

    def snapshot(self) -> KNNGraph:
        """An immutable KNNGraph over the current point set."""
        ids, dists = self._state.sorted_arrays()
        return KNNGraph(
            ids=ids,
            dists=dists,
            meta={
                "algorithm": "w-knng/dynamic",
                "strategy": self.config.strategy,
                "metric": self.config.metric,
                "initial_n": self._initial_n,
                "n": self.n,
            },
        )

    # -- updates -----------------------------------------------------------------

    def add(self, new_points: np.ndarray, repair_rounds: int = 1) -> np.ndarray:
        """Insert new points; returns their assigned ids.

        ``repair_rounds`` local-join rounds run after the insertions
        (0 disables repair; 1 is usually enough because the join flags
        concentrate on the fresh entries).
        """
        new_points = np.asarray(new_points, dtype=np.float32)
        # shape validation comes before the empty early-return: an empty
        # batch of the wrong dimensionality is still a malformed input
        if new_points.ndim == 2 and new_points.shape[1] != self._x.shape[1]:
            raise DataError(
                f"new points have dim {new_points.shape[1]}, graph has "
                f"{self._x.shape[1]}"
            )
        if new_points.ndim == 2 and new_points.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        q = check_points_matrix(new_points, "new_points")
        if self.config.metric == "cosine":
            q, _ = prepare_points(q, "cosine")
        m = q.shape[0]
        if m == 0:
            return np.empty(0, dtype=np.int64)
        new_ids = np.arange(self.n, self.n + m, dtype=np.int64)

        # grow storage
        prev_ids_snapshot = self._state.ids.copy()
        self._x = np.concatenate([self._x, q], axis=0)
        self._grow_state(m)

        # route and collect candidate pairs
        rows_list: list[np.ndarray] = []
        cols_list: list[np.ndarray] = []
        for tree in self._forest.trees:
            leaf_idx = tree.leaf_for(q)
            for local, li in enumerate(leaf_idx):
                members = tree.leaves[int(li)]
                nid = new_ids[local]
                rows_list.append(np.full(members.shape[0], nid))
                cols_list.append(members)
                # the new point becomes part of the leaf for future adds
                tree.leaves[int(li)] = np.concatenate([members, [nid]])
        rows = np.concatenate(rows_list) if rows_list else np.empty(0, dtype=np.int64)
        cols = np.concatenate(cols_list) if cols_list else np.empty(0, dtype=np.int64)
        # both directions: new -> member and member -> new
        all_rows = np.concatenate([rows, cols])
        all_cols = np.concatenate([cols, rows])
        self._strategy.update_pairs(self._state, self._x, all_rows, all_cols)

        # local repair: flag exactly what changed as "new"
        refine_state = RefineState(
            prev_ids=np.concatenate(
                [prev_ids_snapshot,
                 np.full((m, self._state.k), -1, dtype=prev_ids_snapshot.dtype)]
            )
        )
        sample = self.config.effective_refine_sample()
        for _ in range(max(0, repair_rounds)):
            if self.config.n_jobs > 1:
                # repair rounds shard by point ranges like the builder's
                # (same RNG consumption order as the serial round)
                from repro.core.sharding import refine_round_sharded

                inserted, _ = refine_round_sharded(
                    self._state, self._x, self._strategy, self._rng, sample,
                    refine_state, n_jobs=self.config.n_jobs,
                    strategy_kwargs=self.config.strategy_kwargs,
                )
            else:
                inserted = refine_round(
                    self._state, self._x, self._strategy, self._rng, sample,
                    refine_state,
                )
            if inserted == 0:
                break
        return new_ids

    def _grow_state(self, m: int) -> None:
        old = self._state
        grown = KnnState(old.n + m, old.k)
        grown.ids[: old.n] = old.ids
        grown.dists[: old.n] = old.dists
        self._state = grown


def extend_graph(
    points: np.ndarray,
    graph: KNNGraph,
    forest: RPForest,
    new_points: np.ndarray,
    config: BuildConfig | None = None,
) -> KNNGraph:
    """One-shot convenience: extend an existing build with new points.

    ``points``/``graph``/``forest`` come from a prior
    :class:`~repro.core.builder.WKNNGBuilder` run (the builder retains the
    forest on ``last_forest``).  The metric is inherited from
    ``graph.meta["metric"]`` - the extension must prepare points and score
    candidates in the space the graph was built in - and an explicit
    ``config`` whose metric disagrees with the graph's is rejected.
    """
    graph_metric = graph.meta.get("metric")
    if config is None:
        config = BuildConfig(
            k=graph.k, metric=graph_metric or "sqeuclidean"
        )
    elif graph_metric is not None and config.metric != graph_metric:
        raise ConfigurationError(
            f"config metric={config.metric!r} does not match the graph's "
            f"build metric {graph_metric!r}"
        )
    if config.k != graph.k:
        raise ConfigurationError(
            f"config k={config.k} does not match the graph's k={graph.k}"
        )
    x = check_points_matrix(points, "points")
    x, _ = prepare_points(x, config.metric)
    state = KnnState(graph.n, graph.k)
    state.ids[...] = graph.ids
    state.dists[...] = graph.dists
    dyn = DynamicKNNG(x, state, forest, config)
    dyn.add(new_points)
    return dyn.snapshot()
