"""Neighbour-of-neighbour refinement: the NN-descent local join.

After the forest phase each point's list is good but imperfect: true
neighbour pairs that never co-located in any leaf are missing.  Refinement
exploits the transitivity of proximity with the **local join** of
NN-descent (Dong et al., WWW'11): for every point ``i``, the members of its
*general neighbourhood* ``B[i]`` (forward neighbours plus reverse
neighbours - points listing ``i``) are proposed **to each other** as
candidates.  Two points that share any common neighbour therefore meet,
which is a much stronger generator than forward-only two-hop walks.

Two standard optimisations keep rounds cheap:

* **new/old flags** - a pair is only joined if at least one endpoint
  entered its list since the previous round (``new x new`` and
  ``new x old`` pairs); converged regions stop generating work, which is
  what makes the iteration terminate;
* **sampling** - at most ``sample`` new and ``sample`` old entries per
  list (forward and reverse separately) participate per round, bounding
  the join to O(sample^2) pairs per point.

Everything is vectorised: neighbourhoods are padded ``(n, s)`` matrices,
the join is one broadcast, and duplicate proposals are removed with a
single sort over encoded ``(row, col)`` keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.kernels.knn_state import EMPTY_ID, KnnState
from repro.kernels.strategy import Strategy

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs import Observability


@dataclass
class RefineState:
    """Cross-round bookkeeping for the local join.

    ``prev_ids`` snapshots the lists at the end of the previous round so the
    next round can derive the *new* flags (entries not present before).
    ``None`` means "everything is new" (the first round after the forest
    phase joins every entry).
    """

    prev_ids: np.ndarray | None = None
    rounds_run: int = 0
    insertions: list[int] = field(default_factory=list)


def _new_flags(state: KnnState, prev_ids: np.ndarray | None) -> np.ndarray:
    """Boolean (n, k): True where the entry was not in the row last round."""
    ids = state.ids
    valid = ids != EMPTY_ID
    if prev_ids is None:
        return valid
    # row-wise membership of ids in prev_ids via offset-encoded searchsorted
    n, k = ids.shape
    span = np.int64(2) ** 34
    offs = (np.arange(n, dtype=np.int64) * span)[:, None]
    prev_sorted = np.sort(prev_ids.astype(np.int64) + offs, axis=1).reshape(-1)
    flat = (ids.astype(np.int64) + offs).reshape(-1)
    pos = np.clip(np.searchsorted(prev_sorted, flat), 0, prev_sorted.size - 1)
    present = prev_sorted[pos] == flat
    return valid & ~present.reshape(n, k)


def sample_columns_with_keys(
    ids: np.ndarray,
    eligible: np.ndarray,
    sample: int,
    keys: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row sample of up to ``sample`` eligible entries (vectorised).

    Returns a padded ``(n, sample)`` id matrix and its validity mask.
    Sampling is by the given random ``keys`` (same shape as ``ids``):
    ineligible entries get pushed past the horizon, then the ``sample``
    smallest keys per row are kept.  Row-local, so the sharded refine
    path can pre-draw the keys once and slice them per row range.
    """
    n, k = ids.shape
    s = min(sample, k)
    keys = keys.copy()
    keys[~eligible] = 2.0  # beyond any real key
    take = np.argsort(keys, axis=1)[:, :s]
    out = np.take_along_axis(ids, take, axis=1).astype(np.int64)
    ok = np.take_along_axis(eligible, take, axis=1)
    out[~ok] = EMPTY_ID
    return out, ok


def _sample_columns(
    ids: np.ndarray,
    eligible: np.ndarray,
    sample: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`sample_columns_with_keys` drawing its keys from ``rng``."""
    return sample_columns_with_keys(ids, eligible, sample, rng.random(ids.shape))


def _reverse_lists(
    state: KnnState,
    flags_new: np.ndarray,
    sample: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Sampled reverse neighbourhoods, split by the forward entry's flag.

    Returns two padded ``(n, sample)`` matrices: reverse-new and
    reverse-old (``EMPTY_ID`` padding).  An edge ``i -> j`` contributes
    ``i`` to ``j``'s reverse list, carrying the *forward* entry's new/old
    flag, as in the reference NN-descent.
    """
    n, k = state.ids.shape
    valid = state.ids != EMPTY_ID
    src = np.repeat(np.arange(n, dtype=np.int64), k)
    dst = state.ids.reshape(-1).astype(np.int64)
    is_new = flags_new.reshape(-1)
    keep = valid.reshape(-1)
    src, dst, is_new = src[keep], dst[keep], is_new[keep]

    out = []
    for select in (is_new, ~is_new):
        s_src, s_dst = src[select], dst[select]
        # random order within each destination group, then take first `sample`
        order = np.lexsort((rng.random(s_dst.shape[0]), s_dst))
        s_src, s_dst = s_src[order], s_dst[order]
        first = np.searchsorted(s_dst, np.arange(n))
        last = np.searchsorted(s_dst, np.arange(n), side="right")
        counts = np.minimum(last - first, sample)
        mat = np.full((n, sample), EMPTY_ID, dtype=np.int64)
        rows_with = np.flatnonzero(counts > 0)
        if rows_with.size:
            pos = first[rows_with, None] + np.arange(sample)[None, :]
            ok = np.arange(sample)[None, :] < counts[rows_with, None]
            pos = np.where(ok, pos, 0)
            mat[rows_with] = np.where(ok, s_src[pos], EMPTY_ID)
        out.append(mat)
    return out[0], out[1]


def local_join_candidates(
    state: KnnState,
    refine_state: RefineState,
    rng: np.random.Generator,
    sample: int,
) -> tuple[np.ndarray, np.ndarray]:
    """One round's candidate pairs from the sampled local join.

    Returns deduplicated ``(rows, cols)`` pair arrays: for every point, each
    sampled *new* neighbourhood member is paired with every sampled member
    (new or old), in both directions.
    """
    flags = _new_flags(state, refine_state.prev_ids)
    valid = state.ids != EMPTY_ID
    fwd_new, _ = _sample_columns(state.ids, flags, sample, rng)
    fwd_old, _ = _sample_columns(state.ids, valid & ~flags, sample, rng)
    rev_new, rev_old = _reverse_lists(state, flags, sample, rng)

    b_new = np.concatenate([fwd_new, rev_new], axis=1)
    b_all = np.concatenate([fwd_new, rev_new, fwd_old, rev_old], axis=1)

    # join: every new member meets every member (both directions).  Pairs
    # are canonicalised to (lo, hi) *before* the dedupe sort - halving the
    # sort volume - and expanded back to both directions afterwards.
    a = np.broadcast_to(b_new[:, :, None], (state.n, b_new.shape[1], b_all.shape[1]))
    b = np.broadcast_to(b_all[:, None, :], a.shape)
    a = a.reshape(-1)
    b = b.reshape(-1)
    ok = (a != EMPTY_ID) & (b != EMPTY_ID) & (a != b)
    a, b = a[ok], b[ok]
    if a.size == 0:
        return a, b
    lo = np.minimum(a, b)
    hi = np.maximum(a, b)
    uniq = np.unique(lo * np.int64(state.n) + hi)
    lo = (uniq // state.n).astype(np.int64)
    hi = (uniq % state.n).astype(np.int64)
    return np.concatenate([lo, hi]), np.concatenate([hi, lo])


def refine_round(
    state: KnnState,
    x: np.ndarray,
    strategy: Strategy,
    rng: np.random.Generator,
    sample: int,
    refine_state: RefineState | None = None,
    obs: "Observability | None" = None,
) -> int:
    """Run one local-join round; returns the number of list insertions.

    Passing the same :class:`RefineState` across rounds enables the
    new/old-flag optimisation; without it every round joins everything
    (correct, just more work).  A return of 0 means the round converged.

    With an :class:`~repro.obs.Observability` attached, the round emits
    ``refine_round:before``/``:after`` profiling hooks and accumulates the
    ``refine/candidate_pairs`` and ``refine/insertions`` counters.
    """
    rs = refine_state if refine_state is not None else RefineState()
    round_index = rs.rounds_run
    if obs is not None:
        from repro.obs.hooks import Events

        obs.hooks.emit(Events.REFINE_ROUND_BEFORE, round=round_index,
                       sample=sample)
    rows, cols = local_join_candidates(state, rs, rng, sample)
    rs.prev_ids = state.ids.copy()
    inserted = 0
    if rows.size:
        inserted = strategy.update_pairs(state, x, rows, cols)
    rs.rounds_run += 1
    rs.insertions.append(inserted)
    if obs is not None:
        from repro.obs.hooks import Events

        obs.metrics.counter("refine/candidate_pairs").inc(int(rows.size))
        obs.metrics.counter("refine/insertions").inc(inserted)
        obs.hooks.emit(Events.REFINE_ROUND_AFTER, round=round_index,
                       candidates=int(rows.size), inserted=inserted)
    return inserted
