"""Metric spaces for graph construction and search.

The kernels compute *squared Euclidean* distances - the right primitive,
because the other metrics in practical ANN use reduce to it by input
transformation:

* ``"sqeuclidean"`` - identity (the default; what the paper evaluates);
* ``"cosine"`` - cosine distance ``1 - cos(a, b)``: L2-normalise the
  inputs, then ``|a - b|^2 = 2 (1 - cos(a, b))``, so squared Euclidean on
  the normalised vectors is monotone in (exactly twice) cosine distance -
  neighbour sets are identical;
* ``"inner_product"`` - maximum inner product *search* via the standard
  augmentation (Bachrach et al., RecSys'14): append the coordinate
  ``sqrt(M^2 - |a|^2)`` to every database vector (``M`` = max norm) and
  ``0`` to queries; L2 order on the augmented vectors equals descending
  inner-product order.  **Query-vs-database only**: for database-database
  pairs both augmented coordinates are non-zero and the equivalence breaks,
  so inner product is supported by the search paths but not by graph
  construction (``BuildConfig`` rejects it).

This is also how FAISS handles cosine/IP on L2 index structures, so the
baseline comparisons stay apples-to-apples.  :func:`prepare_points`
applies the transformation; :func:`edge_distances` converts the kernel's
squared-L2 edge values back to the user's metric for reporting.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DataError

#: metrics accepted by BuildConfig / baselines
METRICS = ("sqeuclidean", "cosine", "inner_product")


def check_metric(metric: str) -> str:
    if metric not in METRICS:
        raise ConfigurationError(
            f"unknown metric {metric!r}; available: {METRICS}"
        )
    return metric


def prepare_points(
    x: np.ndarray, metric: str, *, is_query: bool = False, max_norm: float | None = None
) -> tuple[np.ndarray, dict]:
    """Transform points so squared-L2 order realises ``metric`` order.

    Returns ``(transformed, info)``; ``info`` carries whatever
    :func:`edge_distances` and query-side preparation need (the cosine
    norms, the IP augmentation constant).

    For ``inner_product``, database preparation computes ``max_norm`` and
    query preparation must receive it (pass the database's ``info``
    value).
    """
    check_metric(metric)
    x = np.asarray(x, dtype=np.float32)
    if metric == "sqeuclidean":
        return x, {}
    if metric == "cosine":
        norms = np.linalg.norm(x, axis=1, keepdims=True)
        if (norms == 0).any():
            raise DataError(
                "cosine metric is undefined for zero vectors; remove them "
                "or use sqeuclidean"
            )
        return (x / norms).astype(np.float32), {"normalized": True}
    # inner product: norm augmentation
    norms_sq = np.einsum("ij,ij->i", x, x).astype(np.float64)
    if is_query:
        if max_norm is None:
            raise ConfigurationError(
                "inner_product query preparation needs the database max_norm"
            )
        extra = np.zeros((x.shape[0], 1), dtype=np.float32)
    else:
        max_norm = float(np.sqrt(norms_sq.max()))
        extra = np.sqrt(np.maximum(max_norm**2 - norms_sq, 0.0))[:, None].astype(
            np.float32
        )
    return np.concatenate([x, extra], axis=1), {"max_norm": max_norm}


def edge_distances(
    sq_l2: np.ndarray,
    metric: str,
    info: dict,
    query_sq_norms: np.ndarray | None = None,
) -> np.ndarray:
    """Convert kernel squared-L2 values back to the user's metric.

    * sqeuclidean: identity;
    * cosine: ``1 - cos = sq_l2 / 2`` (unit vectors);
    * inner_product (query-vs-database results only): with augmented
      database vectors of norm ``M`` and un-augmented queries,
      ``sq_l2 = |q|^2 + M^2 - 2 <a, q>``, so
      ``<a, q> = (|q|^2 + M^2 - sq_l2) / 2``.  Pass the *original* query
      squared norms (``(m,)``, broadcast against ``(m, k)`` results);
      the return value is a similarity (higher = closer).
    """
    check_metric(metric)
    if metric == "sqeuclidean":
        return sq_l2
    if metric == "cosine":
        return sq_l2 / 2.0
    if query_sq_norms is None:
        raise ConfigurationError(
            "inner_product conversion needs the original query squared norms"
        )
    m = float(info.get("max_norm", 0.0))
    q = np.asarray(query_sq_norms, dtype=np.float64)
    if sq_l2.ndim == 2:
        q = q[:, None]
    return ((q + m * m) - sq_l2) / 2.0
