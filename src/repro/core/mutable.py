"""Online mutable index: epoch-versioned inserts/deletes under live traffic.

Production corpora churn while queries keep arriving.  This module makes
the graph index *mutable* without ever making a reader see a half-updated
graph, by separating two roles:

* :class:`IndexSnapshot` - an **immutable, epoch-stamped view**: prepared
  points, graph, forest, tombstone mask and the external-id mapping, all
  frozen.  Readers (the :class:`~repro.serve.server.KNNServer`'s batch
  workers, or anyone calling :meth:`MutableIndex.search`) grab the current
  snapshot reference once and run entirely against it; nothing the writer
  does afterwards can change what that reader observes.
* :class:`MutableIndex` - the **writer**: batched inserts, tombstone
  deletes and threshold-triggered compaction, each producing a *new*
  snapshot (copy-on-write: untouched arrays are shared, mutated ones are
  fresh) that is published with one atomic reference flip.  The epoch
  counter increments on every flip, which is what lets the serving layer
  key its result cache by epoch - a cached answer from before a flip can
  never be served after it.

**Inserts** attach new points through graph-guided search, not through
RP-tree leaf mutation: each new point's neighbour candidates are the
result of a :class:`~repro.apps.search.BatchedGraphSearch` beam search
over the current snapshot (beam width :attr:`MutableConfig.attach_ef`),
the candidates adopt the new point back through the configured
maintenance strategy, and one NN-descent local-join round repairs the
neighbourhood (per GRNND, local repair around the insertion site is
sufficient - the join's *new* flags concentrate exactly there).  The
forest is left untouched between compactions: new points are reachable
through graph edges from the seeds the forest still routes to.

**Deletes** are tombstones: the point stays in the graph as a waypoint
(searches may traverse it) but is filtered from every result.  Queries
over-fetch proportionally to the tombstone count so filtering does not
shrink result sets.  When the tombstone fraction passes
:attr:`MutableConfig.compact_threshold`, compaction rebuilds graph and
forest over the survivors and re-bases the internal ids - external ids
(the ids callers see and delete by) are stable across compactions.

Usage::

    mut = MutableIndex.build(points, BuildConfig(k=16), SearchConfig(ef=64))
    new_ids = mut.insert(batch)          # epoch flips, readers unaffected
    mut.delete(new_ids[:8])              # tombstoned (or compacted)
    ids, dists = mut.search(queries, 10)  # external ids, tombstones filtered

Architecture notes and serving integration: ``docs/mutable.md``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.apps.search import GraphSearchIndex, SearchConfig
from repro.core.builder import WKNNGBuilder
from repro.core.config import BuildConfig
from repro.core.graph import KNNGraph
from repro.core.metric import prepare_points
from repro.core.refine import RefineState, refine_round
from repro.errors import ConfigurationError, DataError
from repro.kernels.knn_state import KnnState
from repro.kernels.strategy import Strategy, get_strategy
from repro.obs import Events, Observability
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

#: registry namespace the mutable index's metrics emit under
INDEX_METRICS_PREFIX = "index/"


@dataclass(frozen=True)
class MutableConfig:
    """Write-path knobs of a :class:`MutableIndex`.

    Attributes
    ----------
    compact_threshold:
        Tombstone fraction (dead / total internal points) above which a
        delete triggers compaction (full rebuild over survivors).  ``1.0``
        disables automatic compaction.
    repair_rounds:
        NN-descent local-join rounds run after each insert batch (``0``
        disables repair; ``1`` is usually enough because the join flags
        concentrate on the fresh entries).
    attach_ef:
        Beam width of the graph-guided search that finds each new point's
        neighbour candidates.  ``None`` means ``max(2 * k, search ef)`` -
        wide enough that attach recall tracks query recall.
    drift_threshold:
        Quantized indexes only: when an insert batch's reconstruction MSE
        exceeds this multiple of the store's training-time baseline
        (``QuantizedStore.train_mse``), the insert compacts immediately -
        rebuild + quantizer retrain over survivors plus the fresh batch,
        still one flip - instead of encoding a badly-fitting batch with
        the frozen codebooks.  ``None`` (default) disables the trigger;
        the ``index/quant_drift`` gauge is exported either way.

        The comparison uses the EWMA-smoothed drift (see
        ``drift_ewma_alpha``), so one outlier batch does not force a
        retrain but sustained drift does.
    drift_ewma_alpha:
        Weight of the newest batch in the exponentially-smoothed drift
        signal ``ewma = alpha * drift + (1 - alpha) * ewma`` that
        ``drift_threshold`` triggers on.  ``1.0`` (default) means no
        smoothing - the threshold sees each batch's raw ratio, the
        pre-smoothing behaviour.  Lower values damp bursts: a single
        out-of-distribution batch moves the signal by only ``alpha`` of
        its excursion, while a sustained shift converges to the raw
        ratio within a few batches.  The smoothed value is exported as
        the ``index/quant_drift_ewma`` gauge and resets whenever a
        compaction retrains the codebooks.
    """

    compact_threshold: float = 0.25
    repair_rounds: int = 1
    attach_ef: int | None = None
    drift_threshold: float | None = None
    drift_ewma_alpha: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.compact_threshold <= 1.0:
            raise ConfigurationError(
                f"compact_threshold must lie in (0, 1], got "
                f"{self.compact_threshold}"
            )
        if self.repair_rounds < 0:
            raise ConfigurationError(
                f"repair_rounds must be >= 0, got {self.repair_rounds}"
            )
        if self.attach_ef is not None:
            object.__setattr__(
                self, "attach_ef",
                check_positive_int(self.attach_ef, "attach_ef"))
        if self.drift_threshold is not None and self.drift_threshold <= 0:
            raise ConfigurationError(
                f"drift_threshold must be > 0, got {self.drift_threshold}"
            )
        if not 0.0 < self.drift_ewma_alpha <= 1.0:
            raise ConfigurationError(
                f"drift_ewma_alpha must lie in (0, 1], got "
                f"{self.drift_ewma_alpha}"
            )


class IndexSnapshot:
    """One immutable, epoch-stamped view of a mutable index.

    Everything a reader needs is frozen here: the wrapped
    :class:`~repro.apps.search.GraphSearchIndex` (prepared points, graph,
    forest), the tombstone mask, and the internal-row -> external-id
    mapping.  :meth:`search` returns **external** ids with tombstoned
    points filtered out, over-fetching internally so filtering does not
    shrink result sets.

    Snapshots satisfy the engine surface the serving layer drives
    (``dim`` / ``search(queries, k, *, ef=None)``) plus ``epoch``, so a
    server worker that pins one snapshot for a micro-batch gets a
    consistent graph *and* the epoch to stamp its results with.
    """

    __slots__ = ("epoch", "index", "ext_ids", "deleted", "n_dead")

    def __init__(
        self,
        epoch: int,
        index: GraphSearchIndex,
        ext_ids: np.ndarray,
        deleted: np.ndarray,
    ) -> None:
        self.epoch = int(epoch)
        self.index = index
        self.ext_ids = ext_ids
        self.deleted = deleted
        self.n_dead = int(deleted.sum())

    # -- read surface ----------------------------------------------------------

    @property
    def dim(self) -> int:
        return self.index.dim

    @property
    def n_total(self) -> int:
        """Internal points, live and tombstoned."""
        return self.index.n

    @property
    def n_live(self) -> int:
        return self.n_total - self.n_dead

    @property
    def tombstone_fraction(self) -> float:
        return self.n_dead / max(1, self.n_total)

    @property
    def config(self) -> SearchConfig:
        return self.index.config

    @property
    def store(self):
        """The snapshot's compressed tier (``QuantizedStore`` or ``None``).

        Versioned with the snapshot: codes cover exactly this epoch's
        internal rows, tombstones mask codes and vectors alike, and a
        compaction's retrained store becomes visible only through the
        same flip that publishes the rebuilt graph and forest.
        """
        return self.index.store

    def live_ids(self) -> np.ndarray:
        """External ids of all live points (ascending insertion order)."""
        return self.ext_ids[~self.deleted]

    def live_points(self) -> np.ndarray:
        """The live points in prepared (kernel) space, aligned with
        :meth:`live_ids` - what an exact ground-truth computation or an
        external rebuild needs."""
        return self.index._engine._x[~self.deleted]

    def search(
        self, queries: np.ndarray, k: int, *, ef: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate k-NN over the live points, as external ids.

        Tombstoned points are filtered from the results; the internal
        search over-fetches ``k + min(n_dead, max(k, 16))`` so a beam full
        of tombstones still yields ``k`` answers in the usual case.
        Unfilled slots carry ``-1`` / ``+inf``, like every engine.
        """
        k = check_positive_int(k, "k")
        fetch = k
        if self.n_dead:
            fetch = min(self.n_total, k + min(self.n_dead, max(k, 16)))
        ids, dists = self.index.search(queries, fetch, ef=ef)
        keep = ids >= 0
        if self.n_dead:
            keep &= ~self.deleted[np.where(keep, ids, 0)]
        if fetch > k or not keep.all():
            # stable-compact each row: live entries first, order preserved
            order = np.argsort(~keep, axis=1, kind="stable")
            ids = np.take_along_axis(ids, order, axis=1)
            dists = np.take_along_axis(dists, order, axis=1)
            keep = np.take_along_axis(keep, order, axis=1)
            ids = np.where(keep, ids, -1)[:, :k]
            dists = np.where(keep, dists, np.float32(np.inf))[:, :k]
        valid = ids >= 0
        out = np.where(valid, self.ext_ids[np.where(valid, ids, 0)], -1)
        return out.astype(np.int64), dists


class MutableIndex:
    """A serving index that accepts inserts and deletes while being read.

    All mutation goes through one internal writer lock, so concurrent
    writers serialise; readers never take it.  The currently published
    :class:`IndexSnapshot` is available as :attr:`snapshot` - reading it
    is a single reference load, atomic under the interpreter - and every
    mutation publishes a successor and bumps :attr:`epoch`.

    The class satisfies the engine surface
    (``dim``/``config``/``search``/``stats``) so it drops into
    :class:`~repro.serve.server.KNNServer` unchanged; the server
    additionally pins a snapshot per micro-batch and keys its result
    cache by epoch (see ``docs/mutable.md``).
    """

    def __init__(
        self,
        snapshot: IndexSnapshot,
        build_config: BuildConfig,
        config: MutableConfig | None = None,
        *,
        obs: Observability | None = None,
    ) -> None:
        self._snapshot = snapshot
        self._build_config = build_config
        self.mutable_config = config or MutableConfig()
        self.obs = obs
        self._write_lock = threading.Lock()
        if build_config.strategy == "auto":
            from dataclasses import replace

            from repro.bench.costmodel import preferred_strategy

            build_config = replace(
                build_config,
                strategy=preferred_strategy(
                    snapshot.dim, build_config.k, build_config.leaf_size
                ),
            )
            self._build_config = build_config
        self._strategy: Strategy = get_strategy(
            build_config.strategy, **build_config.strategy_kwargs
        )
        self._rng = as_generator(build_config.seed).spawn(1)[0]
        self._ext_to_int: dict[int, int] = {
            int(e): i for i, e in enumerate(snapshot.ext_ids)
            if not snapshot.deleted[i]
        }
        self._next_ext = int(snapshot.ext_ids.max()) + 1 \
            if snapshot.ext_ids.size else 0
        self.counters: dict[str, int] = {
            "inserted": 0, "deleted": 0, "compactions": 0, "flips": 0,
        }
        #: drift ratio of the most recent insert batch (None until the
        #: first insert on a quantized index)
        self.last_drift: float | None = None
        #: EWMA-smoothed drift the threshold triggers on; resets whenever
        #: a compaction retrains the codebooks
        self.last_drift_ewma: float | None = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(
        cls,
        points: np.ndarray,
        build_config: BuildConfig | None = None,
        search_config: SearchConfig | None = None,
        config: MutableConfig | None = None,
        *,
        obs: Observability | None = None,
    ) -> "MutableIndex":
        """Build the initial graph and wrap it as epoch 0."""
        build_config = build_config or BuildConfig()
        builder = WKNNGBuilder(build_config, obs=obs)
        graph = builder.build(points)
        assert builder.last_forest is not None
        x, _ = prepare_points(
            np.asarray(points, dtype=np.float32), build_config.metric
        )
        index = GraphSearchIndex.from_parts(
            x, graph, builder.last_forest, search_config,
            prepared=True, obs=obs,
        )
        snapshot = IndexSnapshot(
            epoch=0,
            index=index,
            ext_ids=np.arange(graph.n, dtype=np.int64),
            deleted=np.zeros(graph.n, dtype=bool),
        )
        return cls(snapshot, build_config, config, obs=obs)

    # -- read surface ----------------------------------------------------------

    @property
    def snapshot(self) -> IndexSnapshot:
        """The currently published snapshot (atomic reference read)."""
        return self._snapshot

    @property
    def epoch(self) -> int:
        return self._snapshot.epoch

    @property
    def dim(self) -> int:
        return self._snapshot.dim

    @property
    def n(self) -> int:
        """Live points in the current snapshot."""
        return self._snapshot.n_live

    @property
    def config(self) -> SearchConfig:
        """The search configuration (what the serving layer reads ef from)."""
        return self._snapshot.config

    def live_ids(self) -> np.ndarray:
        return self._snapshot.live_ids()

    def search(
        self, queries: np.ndarray, k: int, *, ef: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Search the current snapshot (one atomic reference read)."""
        return self._snapshot.search(queries, k, ef=ef)

    def stats(self) -> dict[str, Any]:
        snap = self._snapshot
        with self._write_lock:
            counters = dict(self.counters)
        return {
            "engine": "mutable-index",
            "epoch": snap.epoch,
            "n_live": snap.n_live,
            "n_total": snap.n_total,
            "tombstone_fraction": snap.tombstone_fraction,
            "quantization": snap.config.quantization,
            "quant_drift": self.last_drift,
            "quant_drift_ewma": self.last_drift_ewma,
            **counters,
        }

    # -- write path ------------------------------------------------------------

    def insert(self, points: np.ndarray) -> np.ndarray:
        """Insert a batch of points; returns their external ids.

        Candidates come from a graph-guided beam search over the current
        snapshot; the configured maintenance strategy inserts the reverse
        edges; ``repair_rounds`` local joins repair the neighbourhood.
        One epoch flip publishes the grown graph.

        On a quantized index the batch is encoded against the current
        store's *frozen* codebooks (existing codes stay bit-identical; no
        retrain on the hot path) and the batch's reconstruction MSE is
        compared to the training-time baseline: the ratio is exported as
        the ``index/quant_drift`` gauge, and when it exceeds
        :attr:`MutableConfig.drift_threshold` the insert compacts instead
        - rebuild + retrain over survivors plus this batch, still one
        flip.
        """
        points = np.asarray(points, dtype=np.float32)
        if points.ndim != 2:
            raise DataError(
                f"points must be a 2-D (n, d) matrix, got ndim={points.ndim}"
            )
        with self._write_lock:
            snap = self._snapshot
            if points.shape[1] != snap.dim:
                raise DataError(
                    f"new points have dim {points.shape[1]}, index has "
                    f"{snap.dim}"
                )
            m = points.shape[0]
            if m == 0:
                return np.empty(0, dtype=np.int64)
            engine = snap.index
            graph = engine.graph
            assert graph is not None and engine.forest is not None
            kg = graph.k
            cfg = self.mutable_config
            attach_ef = cfg.attach_ef or max(2 * kg, engine.config.ef)
            q, _ = prepare_points(points, self._build_config.metric)

            # 0. compressed tier: encode against the *frozen* codebooks
            #    (existing codes stay bit-identical, no retrain on the hot
            #    path) and measure how well they still fit this batch
            store = engine.store
            new_codes = None
            if store is not None:
                new_codes = store.encode(q)
                drift = store.drift_ratio(store.reconstruction_mse(q, new_codes))
                self.last_drift = drift
                smoothed = drift
                if drift is not None:
                    alpha = cfg.drift_ewma_alpha
                    prev = self.last_drift_ewma
                    if prev is not None:
                        smoothed = alpha * drift + (1.0 - alpha) * prev
                    self.last_drift_ewma = smoothed
                if drift is not None and self.obs is not None:
                    im = self.obs.metrics.scoped(INDEX_METRICS_PREFIX)
                    im.gauge("quant_drift").set(drift)
                    im.gauge("quant_drift_ewma").set(smoothed)
                # the threshold reads the smoothed signal: a lone outlier
                # batch moves it by only alpha of its excursion, sustained
                # drift converges to the raw ratio and trips it
                if (smoothed is not None and cfg.drift_threshold is not None
                        and smoothed > cfg.drift_threshold):
                    # the frozen codebooks no longer fit the incoming
                    # distribution: skip the graph attach and compact now,
                    # retraining over survivors plus this batch - the
                    # whole insert is still exactly one flip
                    new_ext = np.arange(
                        self._next_ext, self._next_ext + m, dtype=np.int64
                    )
                    self._next_ext += m
                    self.counters["inserted"] += m
                    live = ~snap.deleted
                    self._rebuild_locked(
                        snap,
                        np.concatenate([engine._engine._x[live], q], axis=0),
                        np.concatenate([snap.ext_ids[live], new_ext]),
                        n_dead=snap.n_dead,
                    )
                    return new_ext

            # 1. attach: graph-guided search finds each new point's
            #    neighbour candidates (internal ids; tombstones allowed -
            #    they are waypoints and get filtered at query time)
            cand_ids, cand_dists = engine.search(points, kg, ef=attach_ef)

            # 2. grow: copy-on-write state over old + new rows
            n_old = graph.n
            x = np.concatenate([engine._engine._x, q], axis=0)
            state = KnnState(n_old + m, kg)
            state.ids[:n_old] = graph.ids
            state.dists[:n_old] = graph.dists
            state.ids[n_old:] = cand_ids
            state.dists[n_old:] = cand_dists
            new_int = np.arange(n_old, n_old + m, dtype=np.int64)

            # 3. reverse edges: every candidate is offered the new point
            rows_new, cols = np.nonzero(cand_ids >= 0)
            self._strategy.update_pairs(
                state, x,
                cand_ids[rows_new, cols].astype(np.int64),
                new_int[rows_new],
            )

            # 4. local repair: the join's new flags are exactly what the
            #    insertion touched (new rows + adopters)
            refine_state = RefineState(
                prev_ids=np.concatenate(
                    [graph.ids,
                     np.full((m, kg), -1, dtype=graph.ids.dtype)]
                )
            )
            sample = self._build_config.effective_refine_sample()
            for _ in range(cfg.repair_rounds):
                if refine_round(
                    state, x, self._strategy, self._rng, sample, refine_state
                ) == 0:
                    break

            ids_sorted, dists_sorted = state.sorted_arrays()
            new_graph = KNNGraph(
                ids=ids_sorted, dists=dists_sorted,
                meta={**graph.meta, "algorithm": "w-knng/mutable",
                      "n": n_old + m},
            )
            new_ext = np.arange(
                self._next_ext, self._next_ext + m, dtype=np.int64
            )
            self._next_ext += m
            ext_ids = np.concatenate([snap.ext_ids, new_ext])
            deleted = np.concatenate([snap.deleted, np.zeros(m, dtype=bool)])
            # frozen-codebook append: the grown store shares the trained
            # quantizer (and MSE baseline) by reference, so old codes are
            # the same bytes and only the new rows' codes are fresh
            new_store = None if store is None else store.with_codes(
                np.concatenate([store.codes, new_codes], axis=0)
            )
            index = GraphSearchIndex.from_parts(
                x, new_graph, engine.forest, engine.config,
                prepared=True, store=new_store, obs=self.obs,
            )
            for i, e in zip(new_int, new_ext):
                self._ext_to_int[int(e)] = int(i)
            self.counters["inserted"] += m
            self._flip(IndexSnapshot(snap.epoch + 1, index, ext_ids, deleted),
                       kind="insert", batch=m)
            return new_ext

    def delete(self, ext_ids: np.ndarray) -> int:
        """Tombstone the listed external ids; returns how many died.

        Unknown (never assigned or already deleted) ids raise
        :class:`~repro.errors.DataError`.  Crossing
        :attr:`MutableConfig.compact_threshold` triggers compaction in
        the same call - either way, exactly one epoch flip publishes the
        result.
        """
        ids = np.atleast_1d(np.asarray(ext_ids, dtype=np.int64))
        if ids.ndim != 1:
            raise DataError(f"delete expects ids, got shape {ids.shape}")
        with self._write_lock:
            snap = self._snapshot
            if ids.size == 0:
                return 0
            unknown = [int(e) for e in ids if int(e) not in self._ext_to_int]
            if unknown:
                raise DataError(
                    f"cannot delete unknown or already-deleted id(s) "
                    f"{unknown[:8]}{'...' if len(unknown) > 8 else ''}"
                )
            internal = np.array(
                [self._ext_to_int.pop(int(e)) for e in ids], dtype=np.int64
            )
            deleted = snap.deleted.copy()
            deleted[internal] = True
            self.counters["deleted"] += ids.size
            dead_frac = deleted.sum() / max(1, snap.n_total)
            if dead_frac > self.mutable_config.compact_threshold:
                self._compact_locked(snap, deleted)
            else:
                self._flip(
                    IndexSnapshot(
                        snap.epoch + 1, snap.index, snap.ext_ids, deleted
                    ),
                    kind="delete", batch=int(ids.size),
                )
            return int(ids.size)

    def compact(self) -> None:
        """Force compaction now (rebuild over survivors, one epoch flip)."""
        with self._write_lock:
            snap = self._snapshot
            self._compact_locked(snap, snap.deleted)

    # -- internals -------------------------------------------------------------

    def _compact_locked(self, snap: IndexSnapshot, deleted: np.ndarray) -> None:
        """Rebuild graph + forest over the survivors (write lock held)."""
        live = ~deleted
        self._rebuild_locked(
            snap, snap.index._engine._x[live], snap.ext_ids[live],
            n_dead=int(deleted.sum()),
        )

    def _rebuild_locked(
        self,
        snap: IndexSnapshot,
        x_live: np.ndarray,
        ext_live: np.ndarray,
        *,
        n_dead: int,
    ) -> None:
        """Rebuild graph + forest over ``x_live`` (prepared rows, write
        lock held) and publish the result as one compaction flip.

        No store is threaded through: when the config is quantized,
        ``from_parts`` refits the quantizer (seed 0, deterministic) on
        exactly these rows - compaction is where retrain-and-re-encode
        happens, both for tombstone-triggered and drift-forced paths.
        """
        self._emit(Events.INDEX_COMPACT_BEFORE, epoch=snap.epoch,
                   n_live=int(x_live.shape[0]), n_dead=n_dead)
        builder = WKNNGBuilder(self._build_config, obs=self.obs)
        graph = builder.build(x_live)
        assert builder.last_forest is not None
        # points are already in prepared space; the builder re-prepared a
        # copy internally, but the index must keep serving the same bytes
        index = GraphSearchIndex.from_parts(
            x_live, graph, builder.last_forest, snap.index.config,
            prepared=True, obs=self.obs,
        )
        self._ext_to_int = {int(e): i for i, e in enumerate(ext_live)}
        self.counters["compactions"] += 1
        # fresh codebooks -> the smoothed drift history no longer applies
        self.last_drift_ewma = None
        self._emit(Events.INDEX_COMPACT_AFTER, epoch=snap.epoch + 1,
                   n_live=int(x_live.shape[0]))
        self._flip(
            IndexSnapshot(
                snap.epoch + 1, index, ext_live,
                np.zeros(x_live.shape[0], dtype=bool),
            ),
            kind="compact", batch=n_dead,
        )

    def _flip(self, snapshot: IndexSnapshot, *, kind: str, batch: int) -> None:
        """Publish a successor snapshot (the one atomic write)."""
        self._snapshot = snapshot
        self.counters["flips"] += 1
        if self.obs is not None:
            im = self.obs.metrics.scoped(INDEX_METRICS_PREFIX)
            im.gauge("epoch").set(snapshot.epoch)
            im.gauge("n_live").set(snapshot.n_live)
            im.gauge("n_total").set(snapshot.n_total)
            im.gauge("tombstone_fraction").set(snapshot.tombstone_fraction)
            im.counter(kind if kind != "compact" else "compactions").inc(
                batch if kind != "compact" else 1
            )
        self._emit(Events.INDEX_FLIP, epoch=snapshot.epoch, kind=kind,
                   batch=batch, n_live=snapshot.n_live,
                   n_total=snapshot.n_total)

    def _emit(self, event: str, **payload: Any) -> None:
        if self.obs is not None:
            self.obs.hooks.emit(event, **payload)
