"""Process-parallel (sharded) execution of the leaf and refine phases.

PR 2 proved the fork-shard recipe on the query path; this module applies
it to the two dominant *build* costs so the whole pipeline scales with
worker count (the paper's premise - saturate the processor - translated
to CPU processes):

* **leaf phase** - the serially-enumerated list of padded leaf batches
  (all trees, tree order) is split into contiguous shards; each forked
  worker replays its shard through the configured strategy kernel into a
  private empty :class:`~repro.kernels.knn_state.KnnState`, then the
  per-worker lists are combined row-range-parallel through the existing
  bulk merge kernel (:meth:`~repro.kernels.knn_state.KnnState.merge_rows`)
  in **fixed shard order** - when one neighbour id is offered by several
  shards, the earliest shard's distance survives, exactly like the serial
  "first offer wins" membership filter;
* **refine rounds** - candidate generation is row-local once the global
  inputs (new/old flags, sampling keys, reverse neighbourhoods) are fixed,
  so the parent draws them once (in the serial code's exact RNG order),
  workers join + canonicalise their row ranges, the parent takes the
  global union, and a second row-sharded stage computes distances and
  inserts.  All three maintenance disciplines are row-independent, so
  splitting the insert by row ranges is *exact*, not just equivalent.

Determinism: with ``n_jobs=1`` the same code runs inline over a single
shard, so serial and parallel builds execute identical per-row candidate
sequences and are bitwise identical (see ``docs/parallel.md`` for the
one tie-related caveat in the leaf merge).
"""

from __future__ import annotations

import time
from typing import Any

import numpy as np

from repro.core.refine import (
    RefineState,
    _new_flags,
    _reverse_lists,
    sample_columns_with_keys,
)
from repro.kernels.counters import OpCounters
from repro.kernels.distance import sq_l2_pairs
from repro.kernels.knn_state import EMPTY_ID, KnnState
from repro.kernels.strategy import Strategy, get_strategy
from repro.utils.parallel import map_forked, shard_ranges

__all__ = ["run_leaf_phase_sharded", "refine_round_sharded", "shard_partition"]


def shard_partition(n: int, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous near-even ``[lo, hi)`` point ranges for index shards.

    The serving cluster's partition discipline (see
    :mod:`repro.serve.cluster`): shard ``s`` indexes rows ``[lo_s, hi_s)``
    of the dataset.  Contiguity is load-bearing - it makes shard ``s``'s
    local->global id map the monotone ``global = local + lo_s``, so each
    shard's packed ``(dist, local_id)`` result ordering is already the
    global ``(dist, global_id)`` ordering restricted to that shard, and
    the router's packed-key merge reproduces the flat index's results
    bitwise.  Requires at least one point per shard.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if n < n_shards:
        raise ValueError(
            f"cannot partition {n} points into {n_shards} non-empty shards"
        )
    return shard_ranges(n, n_shards)


# -- leaf phase -----------------------------------------------------------------


def _leaf_build_worker(shared: tuple, lo: int, hi: int) -> tuple:
    """Replay leaf batches ``[lo, hi)`` into a private empty state."""
    x, batches, name, kwargs, n, k, dedupe = shared
    t0 = time.perf_counter()
    strat = get_strategy(name, **kwargs)
    local = KnnState(n, k)
    for mat, lengths in batches[lo:hi]:
        strat.update_leaf_batch(local, x, mat, lengths, dedupe=dedupe)
    return local.ids, local.dists, strat.counters.as_dict(), time.perf_counter() - t0


def _leaf_merge_worker(shared: tuple, lo: int, hi: int) -> tuple:
    """Combine the per-worker lists for rows ``[lo, hi)`` (select-k merge).

    A neighbour id may appear in several workers' lists for the same row
    (trees overlap); only the **earliest shard's** occurrence is kept -
    the serial build's membership filter drops every later re-offer of an
    id already present, so first-offer-wins is what matches it.
    """
    ids_list, dists_list, k = shared
    t0 = time.perf_counter()
    cand_i = np.concatenate([w[lo:hi] for w in ids_list], axis=1)
    cand_d = np.concatenate([w[lo:hi] for w in dists_list], axis=1)
    # stable sort by id: among equal ids the earliest shard sorts first
    order = np.argsort(cand_i, axis=1, kind="stable")
    sorted_i = np.take_along_axis(cand_i, order, axis=1)
    dup_sorted = np.zeros_like(sorted_i, dtype=bool)
    dup_sorted[:, 1:] = (sorted_i[:, 1:] == sorted_i[:, :-1]) & (
        sorted_i[:, 1:] != EMPTY_ID
    )
    dup = np.zeros_like(dup_sorted)
    np.put_along_axis(dup, order, dup_sorted, axis=1)
    cand_i[dup] = EMPTY_ID
    cand_d[dup] = np.inf
    sub = KnnState(hi - lo, k)
    inserted = sub.merge_rows(np.arange(hi - lo), cand_i, cand_d)
    return sub.ids, sub.dists, inserted, time.perf_counter() - t0


def run_leaf_phase_sharded(
    state: KnnState,
    x: np.ndarray,
    batches: list,
    strategy: Strategy,
    n_jobs: int,
    *,
    dedupe: bool = False,
    strategy_kwargs: dict | None = None,
) -> dict[str, Any]:
    """Run the leaf all-pairs phase sharded across forked workers.

    ``batches`` is the full serial-order list of padded ``(mat, lengths)``
    leaf batches (all trees).  Mutates ``state`` to the merged result,
    accumulates worker counters into ``strategy.counters``, and returns a
    summary dict (shard count, per-shard wall seconds, merge seconds).
    """
    n, k = state.n, state.k
    kwargs = dict(strategy_kwargs or {})
    shards = shard_ranges(len(batches), n_jobs)
    kernel = f"leaf_allpairs/{strategy.name}"
    t0 = strategy._dispatch_begin(
        kernel, sharded=True, shards=len(shards), batches=len(batches)
    )
    results = map_forked(
        _leaf_build_worker,
        (x, batches, strategy.name, kwargs, n, k, dedupe),
        shards,
        n_jobs,
    )
    for result in results:
        strategy.counters.add(OpCounters(**result[2]))
    shard_seconds = [float(result[3]) for result in results]
    m0 = time.perf_counter()
    if len(results) == 1:
        state.ids[...] = results[0][0]
        state.dists[...] = results[0][1]
        inserted = int((state.ids != EMPTY_ID).sum())
    else:
        ids_list = [result[0] for result in results]
        dists_list = [result[1] for result in results]
        inserted = 0
        row_shards = shard_ranges(n, n_jobs)
        merged = map_forked(
            _leaf_merge_worker, (ids_list, dists_list, k), row_shards, n_jobs
        )
        for (lo, hi), (mids, mdists, ins, _sec) in zip(row_shards, merged):
            state.ids[lo:hi] = mids
            state.dists[lo:hi] = mdists
            inserted += int(ins)
    merge_seconds = time.perf_counter() - m0
    strategy._dispatch_end(t0, kernel, inserted, sharded=True, shards=len(shards))
    return {
        "shards": len(shards),
        "shard_seconds": shard_seconds,
        "merge_seconds": float(merge_seconds),
        "inserted": int(inserted),
    }


# -- refine rounds --------------------------------------------------------------


def _refine_candidates_worker(shared: tuple, lo: int, hi: int) -> tuple:
    """Local join for rows ``[lo, hi)``: canonical unique pair keys."""
    ids, flags, keys_new, keys_old, rev_new, rev_old, sample, n = shared
    t0 = time.perf_counter()
    ids_s = ids[lo:hi]
    flags_s = flags[lo:hi]
    valid = ids_s != EMPTY_ID
    fwd_new, _ = sample_columns_with_keys(ids_s, flags_s, sample, keys_new[lo:hi])
    fwd_old, _ = sample_columns_with_keys(
        ids_s, valid & ~flags_s, sample, keys_old[lo:hi]
    )
    b_new = np.concatenate([fwd_new, rev_new[lo:hi]], axis=1)
    b_all = np.concatenate(
        [fwd_new, rev_new[lo:hi], fwd_old, rev_old[lo:hi]], axis=1
    )
    shape = (hi - lo, b_new.shape[1], b_all.shape[1])
    a = np.broadcast_to(b_new[:, :, None], shape).reshape(-1)
    b = np.broadcast_to(b_all[:, None, :], shape).reshape(-1)
    ok = (a != EMPTY_ID) & (b != EMPTY_ID) & (a != b)
    a, b = a[ok], b[ok]
    if a.size == 0:
        return np.empty(0, dtype=np.int64), time.perf_counter() - t0
    keys = np.minimum(a, b) * np.int64(n) + np.maximum(a, b)
    return np.unique(keys), time.perf_counter() - t0


def _refine_insert_worker(shared: tuple, lo: int, hi: int) -> tuple:
    """Distances + insertion for the candidates targeting rows ``[lo, hi)``.

    Every maintenance discipline is row-independent, so running it on a
    row slice with the row's full (order-preserved) candidate sequence is
    exactly the serial computation for those rows.  Distances are
    computed once per unordered pair within the shard and mirrored
    (``(a-b)**2 == (b-a)**2`` holds bitwise in IEEE arithmetic).
    """
    ids, dists, x, rows, cols, name, kwargs, k, n = shared
    t0 = time.perf_counter()
    mask = (rows >= lo) & (rows < hi)
    r, c = rows[mask], cols[mask]
    sub = KnnState(hi - lo, k)
    sub.ids = ids[lo:hi]
    sub.dists = dists[lo:hi]
    strat = get_strategy(name, **kwargs)
    inserted = 0
    if r.size:
        pair_keys = np.minimum(r, c) * np.int64(n) + np.maximum(r, c)
        uniq, inverse = np.unique(pair_keys, return_inverse=True)
        d = sq_l2_pairs(x, uniq // n, uniq % n)[inverse]
        strat.counters.distance_evals += int(uniq.size)
        inserted = strat.insert(sub, r - lo, c, d)
    return (
        sub.ids,
        sub.dists,
        inserted,
        strat.counters.as_dict(),
        time.perf_counter() - t0,
    )


def refine_round_sharded(
    state: KnnState,
    x: np.ndarray,
    strategy: Strategy,
    rng: np.random.Generator,
    sample: int,
    refine_state: RefineState | None = None,
    *,
    n_jobs: int = 1,
    strategy_kwargs: dict | None = None,
    obs=None,
) -> tuple[int, dict[str, Any]]:
    """One local-join round, row-sharded across ``n_jobs`` forked workers.

    Drop-in for :func:`repro.core.refine.refine_round` on the builder
    path: consumes the round RNG in the same order (forward-new keys,
    forward-old keys, then the two reverse-list draws), emits the same
    profiling hooks and counters, and with ``n_jobs=1`` runs the very
    same code inline over one shard - which is what makes serial and
    parallel builds bitwise identical.  Returns ``(inserted, info)``
    where ``info`` carries per-shard wall times for the report.
    """
    rs = refine_state if refine_state is not None else RefineState()
    round_index = rs.rounds_run
    if obs is not None:
        from repro.obs.hooks import Events

        obs.hooks.emit(
            Events.REFINE_ROUND_BEFORE, round=round_index, sample=sample
        )
    n, k = state.ids.shape
    flags = _new_flags(state, rs.prev_ids)
    keys_new = rng.random((n, k))
    keys_old = rng.random((n, k))
    rev_new, rev_old = _reverse_lists(state, flags, sample, rng)
    shards = shard_ranges(n, max(1, n_jobs))
    parts = map_forked(
        _refine_candidates_worker,
        (state.ids, flags, keys_new, keys_old, rev_new, rev_old, sample, n),
        shards,
        n_jobs,
    )
    gen_seconds = [float(part[1]) for part in parts]
    key_parts = [part[0] for part in parts if part[0].size]
    uniq = (
        np.unique(np.concatenate(key_parts))
        if key_parts
        else np.empty(0, dtype=np.int64)
    )
    rs.prev_ids = state.ids.copy()
    inserted = 0
    insert_seconds: list[float] = []
    pair_count = 0
    if uniq.size:
        klo = (uniq // n).astype(np.int64)
        khi = (uniq % n).astype(np.int64)
        rows = np.concatenate([klo, khi])
        cols = np.concatenate([khi, klo])
        pair_count = int(rows.size)
        kernel = f"refine_pairs/{strategy.name}"
        t0 = strategy._dispatch_begin(kernel, pairs=pair_count)
        ins_parts = map_forked(
            _refine_insert_worker,
            (state.ids, state.dists, x, rows, cols, strategy.name,
             dict(strategy_kwargs or {}), k, n),
            shards,
            n_jobs,
        )
        for (lo, hi), part in zip(shards, ins_parts):
            state.ids[lo:hi] = part[0]
            state.dists[lo:hi] = part[1]
            inserted += int(part[2])
            strategy.counters.add(OpCounters(**part[3]))
            insert_seconds.append(float(part[4]))
        strategy._dispatch_end(t0, kernel, inserted, pairs=pair_count)
    rs.rounds_run += 1
    rs.insertions.append(inserted)
    if obs is not None:
        from repro.obs.hooks import Events

        obs.metrics.counter("refine/candidate_pairs").inc(pair_count)
        obs.metrics.counter("refine/insertions").inc(inserted)
        obs.hooks.emit(Events.REFINE_ROUND_AFTER, round=round_index,
                       candidates=pair_count, inserted=inserted)
    info = {
        "shards": len(shards),
        "gen_seconds": gen_seconds,
        "insert_seconds": insert_seconds,
    }
    return inserted, info
