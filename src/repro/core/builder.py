"""The w-KNNG builder: the paper's end-to-end construction pipeline."""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.core.config import BuildConfig
from repro.core.graph import KNNGraph
from repro.core.metric import prepare_points
from repro.core.refine import RefineState, refine_round
from repro.core.rpforest import RPForest, batch_leaves, build_forest
from repro.kernels.counters import METRICS_PREFIX as KERNEL_PREFIX
from repro.kernels.knn_state import KnnState
from repro.kernels.strategy import Strategy, get_strategy
from repro.obs import Observability
from repro.obs.trace import SpanRecord
from repro.utils.rng import as_generator, spawn_streams
from repro.utils.validation import check_k_fits, check_points_matrix

#: root span name of one build
ROOT_SPAN = "build"
#: the pipeline phases, in order (direct children of the root span)
PHASES = ("forest", "leaf_pairs", "refine", "finalize")


@dataclass(frozen=True)
class BuildReport:
    """An immutable view over the observability trace of one build.

    Constructed from a finished :class:`~repro.obs.Observability` session
    via :meth:`from_obs`; the legacy attribute surface is preserved:

    Attributes
    ----------
    phase_seconds:
        Wall-clock per pipeline phase (``forest``, ``leaf_pairs``,
        ``refine``, ``finalize``) - the durations of the root span's
        children.
    counters:
        The work-counter section of the metrics registry: the strategy's
        :class:`~repro.kernels.counters.OpCounters` snapshot for the
        vectorised backend, the device
        :class:`~repro.simt.metrics.KernelMetrics` for the simt backend.
    refine_insertions:
        Insertions per refinement round (length <= refine_iters; shorter if
        a round converged and stopped early) - the ``inserted`` attributes
        of the ``refine/round-*`` spans.
    leaf_stats:
        Forest shape diagnostics (leaf count, mean/max leaf size) - the
        ``forest/`` gauges.
    spans:
        The raw :class:`~repro.obs.trace.SpanRecord` tuple of the build
        (empty when constructed directly rather than from a trace).
    metrics:
        Full flat snapshot of the metrics registry at report time.
    """

    phase_seconds: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    refine_insertions: list[int] = field(default_factory=list)
    leaf_stats: dict[str, float] = field(default_factory=dict)
    spans: tuple[SpanRecord, ...] = ()
    metrics: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def counters_snapshot(
        cls, obs: Observability, counters_prefix: str = KERNEL_PREFIX
    ) -> dict[str, int]:
        """Current integer counters under ``counters_prefix``.

        Taken *before* a build and passed to :meth:`from_obs` as
        ``counters_baseline`` so a shared long-lived observability session
        yields per-build counter deltas instead of running totals.
        """
        return {
            name: int(value)
            for name, value in obs.metrics.section(counters_prefix).items()
            if isinstance(value, (int, np.integer))
        }

    @classmethod
    def from_obs(
        cls,
        obs: Observability,
        counters_prefix: str = KERNEL_PREFIX,
        counters_baseline: dict[str, int] | None = None,
    ) -> "BuildReport":
        """Derive the report from a finished observability session.

        Uses the most recent completed root (``"build"``) span; when the
        tracer is disabled (no spans) the span-derived fields are empty but
        the metric-derived fields (``counters``, ``leaf_stats``) still
        populate.  ``counters_baseline`` (a :meth:`counters_snapshot` taken
        before the build) is subtracted so reports count only their own
        build even when one registry outlives several builds.
        """
        tracer = obs.trace
        roots = [r for r in tracer.records
                 if r.depth == 0 and r.name == ROOT_SPAN]
        phase_seconds: dict[str, float] = {}
        refine_insertions: list[int] = []
        spans: tuple[SpanRecord, ...] = ()
        if roots:
            root = max(roots, key=lambda r: r.start)
            lo, hi = root.start, root.start + root.seconds
            spans = tuple(
                r for r in tracer.records
                if lo <= r.start <= hi and (r is root or r.depth > 0)
            )
            for rec in sorted(spans, key=lambda r: r.start):
                if rec.depth == 1 and rec.parent_path == ROOT_SPAN:
                    phase_seconds[rec.name] = rec.seconds
                if (rec.depth == 2 and rec.parent_path == f"{ROOT_SPAN}/refine"
                        and "inserted" in rec.attrs):
                    refine_insertions.append(int(rec.attrs["inserted"]))
        baseline = counters_baseline or {}
        counters = {
            name: int(value) - baseline.get(name, 0)
            for name, value in obs.metrics.section(counters_prefix).items()
            if isinstance(value, (int, np.integer))
        }
        leaf_stats = {
            name: float(value)
            for name, value in obs.metrics.section("forest/").items()
            if isinstance(value, (int, float))
        }
        return cls(
            phase_seconds=phase_seconds,
            counters=counters,
            refine_insertions=refine_insertions,
            leaf_stats=leaf_stats,
            spans=spans,
            metrics=obs.metrics.as_dict(),
        )

    @property
    def total_seconds(self) -> float:
        return float(sum(self.phase_seconds.values()))

    def as_dict(self) -> dict[str, Any]:
        return {
            "phase_seconds": dict(self.phase_seconds),
            "total_seconds": self.total_seconds,
            "counters": dict(self.counters),
            "refine_insertions": list(self.refine_insertions),
            "leaf_stats": dict(self.leaf_stats),
        }


class WKNNGBuilder:
    """Builds approximate K-NN graphs with the w-KNNG algorithm.

    Usage::

        from repro import BuildConfig, WKNNGBuilder
        builder = WKNNGBuilder(BuildConfig(k=16, strategy="tiled", seed=0))
        graph, report = builder.build(points, return_report=True)
        graph.ids, graph.dists                 # (n, 16) neighbour matrices
        report.phase_seconds                   # where the time went

    The report is also attached as ``graph.report``.  Pass an
    :class:`~repro.obs.Observability` to capture the full span trace,
    subscribe profiling hooks, or disable tracing::

        obs = Observability()
        obs.hooks.subscribe("kernel_dispatch:after", my_callback)
        graph = WKNNGBuilder(config, obs=obs).build(points)

    The builder is reusable: each :meth:`build` call derives fresh RNG
    streams from the configured seed, so repeated builds on the same data
    are identical.  Without an explicit ``obs``, every build gets a fresh
    observability session (available afterwards as :attr:`last_obs`).
    """

    def __init__(self, config: BuildConfig | None = None, *,
                 obs: Observability | None = None, **kwargs) -> None:
        """``kwargs`` are a convenience for ``BuildConfig(**kwargs)``."""
        if config is not None and kwargs:
            raise TypeError("pass either a BuildConfig or keyword options, not both")
        self.config = config if config is not None else BuildConfig(**kwargs)
        self.obs = obs
        self.last_obs: Observability | None = None
        self._last_report: BuildReport | None = None
        self.last_forest: RPForest | None = None

    @property
    def last_report(self) -> BuildReport | None:
        """Deprecated: use ``build(points, return_report=True)`` or
        ``graph.report`` instead."""
        warnings.warn(
            "WKNNGBuilder.last_report is deprecated; use "
            "build(points, return_report=True) or graph.report",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._last_report

    # -- pipeline ---------------------------------------------------------------

    def build(
        self, points: np.ndarray, return_report: bool = False
    ) -> KNNGraph | tuple[KNNGraph, BuildReport]:
        """Construct the K-NN graph of ``points`` (``(n, d)``, any float).

        With ``return_report=True`` returns ``(graph, report)``; either
        way the :class:`BuildReport` is attached as ``graph.report``.

        Under ``metric="cosine"`` the points are L2-normalised first and
        the graph's ``dists`` are squared L2 in the normalised space
        (exactly twice the cosine distance); neighbour sets are identical
        to true cosine ranking.
        """
        x = check_points_matrix(points, "points")
        cfg = self.config
        check_k_fits(cfg.k, x.shape[0])
        x, metric_info = prepare_points(x, cfg.metric)
        resolved = self._resolve_strategy(x.shape[1])
        if resolved != cfg.strategy:
            cfg = replace(cfg, strategy=resolved)
        obs = self.obs if self.obs is not None else Observability()
        self.last_obs = obs
        if cfg.backend == "simt":
            graph, report = self._build_simt(x, cfg, obs)
        else:
            graph, report = self._build_vectorized(x, cfg, obs)
        graph.meta["metric"] = cfg.metric
        graph.meta["metric_info"] = metric_info
        graph.meta["strategy"] = resolved
        if return_report:
            return graph, report
        return graph

    def _resolve_strategy(self, dim: int) -> str:
        """Resolve ``strategy="auto"`` via the device cost model."""
        cfg = self.config
        if cfg.strategy != "auto":
            return cfg.strategy
        from repro.bench.costmodel import preferred_strategy
        from repro.kernels.tiled import DEFAULT_TILE_SIZE

        choice = preferred_strategy(
            dim, cfg.k, cfg.leaf_size,
            tile_size=cfg.strategy_kwargs.get("tile_size", DEFAULT_TILE_SIZE),
        )
        self._resolved_strategy = choice
        return choice

    def _build_vectorized(
        self, x: np.ndarray, cfg: BuildConfig, obs: Observability
    ) -> tuple[KNNGraph, BuildReport]:
        n = x.shape[0]
        counters_before = BuildReport.counters_snapshot(obs, KERNEL_PREFIX)
        forest_rng, refine_rng = spawn_streams(cfg.seed, 2)
        strategy: Strategy = get_strategy(cfg.strategy, **cfg.strategy_kwargs)
        strategy.obs = obs
        state = KnnState(n, cfg.k)

        with obs.trace.span(ROOT_SPAN, backend="vectorized", n=n,
                            dim=int(x.shape[1]), k=cfg.k,
                            strategy=cfg.strategy):
            with obs.trace.span("forest"):
                forest = build_forest(x, cfg.n_trees, cfg.leaf_size, forest_rng,
                                      n_jobs=cfg.n_jobs, spill=cfg.spill, obs=obs)
                sizes = forest.leaf_sizes()
                obs.metrics.gauge("forest/n_leaves").set(float(sizes.size))
                obs.metrics.gauge("forest/mean_leaf_size").set(float(sizes.mean()))
                obs.metrics.gauge("forest/max_leaf_size").set(float(sizes.max()))
            self.last_forest = forest

            # one tree at a time: leaves of a classic tree are disjoint, so a
            # batch carries no duplicate pairs; spill trees overlap and need
            # the dedupe pass
            with obs.trace.span("leaf_pairs"):
                for tree in forest.trees:
                    for leaf_mat, lengths in batch_leaves(tree.leaves):
                        strategy.update_leaf_batch(
                            state, x, leaf_mat, lengths, dedupe=cfg.spill > 0.0
                        )

            with obs.trace.span("refine"):
                sample = cfg.effective_refine_sample()
                rng = as_generator(refine_rng)
                refine_state = RefineState()
                threshold = cfg.refine_delta * n * cfg.k
                for round_idx in range(cfg.refine_iters):
                    with obs.trace.span(f"round-{round_idx}") as round_span:
                        inserted = refine_round(
                            state, x, strategy, rng, sample, refine_state, obs=obs
                        )
                        round_span.set(inserted=inserted)
                    if inserted <= threshold:
                        break

            with obs.trace.span("finalize"):
                ids, dists = state.sorted_arrays()

        strategy.counters.emit(obs.metrics)
        report = BuildReport.from_obs(
            obs, counters_prefix=KERNEL_PREFIX, counters_baseline=counters_before
        )
        self._last_report = report
        graph = KNNGraph(
            ids=ids,
            dists=dists,
            meta={
                "algorithm": "w-knng",
                "strategy": cfg.strategy,
                "backend": "vectorized",
                "config": cfg,
                "report": report.as_dict(),
            },
            report=report,
        )
        return graph, report

    def _build_simt(
        self, x: np.ndarray, cfg: BuildConfig, obs: Observability
    ) -> tuple[KNNGraph, BuildReport]:
        """Route the pipeline through the warp-level simulator backend.

        Practical only for small ``n`` (the simulator interprets every warp
        instruction in Python); produces the microarchitecture metrics used
        by experiment F6.
        """
        from repro.simt_kernels.pipeline import build_knng_simt

        graph, report = build_knng_simt(x, cfg, obs=obs)
        self._last_report = report
        return graph, report
