"""The w-KNNG builder: the paper's end-to-end construction pipeline."""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.core.config import BuildConfig
from repro.core.graph import KNNGraph
from repro.core.metric import prepare_points
from repro.core.refine import RefineState, refine_round
from repro.core.rpforest import RPForest, batch_leaves, build_forest
from repro.kernels.knn_state import KnnState
from repro.kernels.strategy import Strategy, get_strategy
from repro.utils.rng import as_generator, spawn_streams
from repro.utils.validation import check_k_fits, check_points_matrix


@dataclass
class BuildReport:
    """Phase timings and work counters of one build.

    Attributes
    ----------
    phase_seconds:
        Wall-clock per pipeline phase (``forest``, ``leaf_pairs``,
        ``refine``, ``finalize``).
    counters:
        The strategy's :class:`~repro.kernels.counters.OpCounters` snapshot
        as a dict.
    refine_insertions:
        Insertions per refinement round (length <= refine_iters; shorter if
        a round converged and stopped early).
    leaf_stats:
        Forest shape diagnostics (leaf count, mean/max leaf size).
    """

    phase_seconds: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    refine_insertions: list[int] = field(default_factory=list)
    leaf_stats: dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return float(sum(self.phase_seconds.values()))

    def as_dict(self) -> dict[str, Any]:
        return {
            "phase_seconds": dict(self.phase_seconds),
            "total_seconds": self.total_seconds,
            "counters": dict(self.counters),
            "refine_insertions": list(self.refine_insertions),
            "leaf_stats": dict(self.leaf_stats),
        }


class WKNNGBuilder:
    """Builds approximate K-NN graphs with the w-KNNG algorithm.

    Usage::

        from repro import BuildConfig, WKNNGBuilder
        builder = WKNNGBuilder(BuildConfig(k=16, strategy="tiled", seed=0))
        graph = builder.build(points)          # (n, d) float array
        graph.ids, graph.dists                 # (n, 16) neighbour matrices
        builder.last_report.phase_seconds      # where the time went

    The builder is reusable: each :meth:`build` call derives fresh RNG
    streams from the configured seed, so repeated builds on the same data
    are identical.
    """

    def __init__(self, config: BuildConfig | None = None, **kwargs) -> None:
        """``kwargs`` are a convenience for ``BuildConfig(**kwargs)``."""
        if config is not None and kwargs:
            raise TypeError("pass either a BuildConfig or keyword options, not both")
        self.config = config if config is not None else BuildConfig(**kwargs)
        self.last_report: BuildReport | None = None
        self.last_forest: RPForest | None = None

    # -- pipeline ---------------------------------------------------------------

    def build(self, points: np.ndarray) -> KNNGraph:
        """Construct the K-NN graph of ``points`` (``(n, d)``, any float).

        Under ``metric="cosine"`` the points are L2-normalised first and
        the graph's ``dists`` are squared L2 in the normalised space
        (exactly twice the cosine distance); neighbour sets are identical
        to true cosine ranking.
        """
        x = check_points_matrix(points, "points")
        cfg = self.config
        check_k_fits(cfg.k, x.shape[0])
        x, metric_info = prepare_points(x, cfg.metric)
        resolved = self._resolve_strategy(x.shape[1])
        if resolved != cfg.strategy:
            cfg = replace(cfg, strategy=resolved)
        if cfg.backend == "simt":
            graph = self._build_simt(x, cfg)
        else:
            graph = self._build_vectorized(x, cfg)
        graph.meta["metric"] = cfg.metric
        graph.meta["metric_info"] = metric_info
        graph.meta["strategy"] = resolved
        return graph

    def _resolve_strategy(self, dim: int) -> str:
        """Resolve ``strategy="auto"`` via the device cost model."""
        cfg = self.config
        if cfg.strategy != "auto":
            return cfg.strategy
        from repro.bench.costmodel import preferred_strategy
        from repro.kernels.tiled import DEFAULT_TILE_SIZE

        choice = preferred_strategy(
            dim, cfg.k, cfg.leaf_size,
            tile_size=cfg.strategy_kwargs.get("tile_size", DEFAULT_TILE_SIZE),
        )
        self._resolved_strategy = choice
        return choice

    def _build_vectorized(self, x: np.ndarray, cfg: BuildConfig | None = None) -> KNNGraph:
        cfg = cfg or self.config
        n = x.shape[0]
        report = BuildReport()
        forest_rng, refine_rng = spawn_streams(cfg.seed, 2)
        strategy: Strategy = get_strategy(cfg.strategy, **cfg.strategy_kwargs)
        state = KnnState(n, cfg.k)

        t0 = time.perf_counter()
        forest = build_forest(x, cfg.n_trees, cfg.leaf_size, forest_rng,
                              n_jobs=cfg.n_jobs, spill=cfg.spill)
        t1 = time.perf_counter()
        report.phase_seconds["forest"] = t1 - t0
        sizes = forest.leaf_sizes()
        report.leaf_stats = {
            "n_leaves": float(sizes.size),
            "mean_leaf_size": float(sizes.mean()),
            "max_leaf_size": float(sizes.max()),
        }
        self.last_forest = forest

        # one tree at a time: leaves of a classic tree are disjoint, so a
        # batch carries no duplicate pairs; spill trees overlap and need
        # the dedupe pass
        for tree in forest.trees:
            for leaf_mat, lengths in batch_leaves(tree.leaves):
                strategy.update_leaf_batch(
                    state, x, leaf_mat, lengths, dedupe=cfg.spill > 0.0
                )
        t2 = time.perf_counter()
        report.phase_seconds["leaf_pairs"] = t2 - t1

        sample = cfg.effective_refine_sample()
        rng = as_generator(refine_rng)
        refine_state = RefineState()
        threshold = cfg.refine_delta * n * cfg.k
        for _round in range(cfg.refine_iters):
            inserted = refine_round(state, x, strategy, rng, sample, refine_state)
            report.refine_insertions.append(inserted)
            if inserted <= threshold:
                break
        t3 = time.perf_counter()
        report.phase_seconds["refine"] = t3 - t2

        ids, dists = state.sorted_arrays()
        t4 = time.perf_counter()
        report.phase_seconds["finalize"] = t4 - t3
        report.counters = strategy.counters.as_dict()
        self.last_report = report
        return KNNGraph(
            ids=ids,
            dists=dists,
            meta={
                "algorithm": "w-knng",
                "strategy": cfg.strategy,
                "backend": "vectorized",
                "config": cfg,
                "report": report.as_dict(),
            },
        )

    def _build_simt(self, x: np.ndarray, cfg: BuildConfig | None = None) -> KNNGraph:
        """Route the pipeline through the warp-level simulator backend.

        Practical only for small ``n`` (the simulator interprets every warp
        instruction in Python); produces the microarchitecture metrics used
        by experiment F6.
        """
        from repro.simt_kernels.pipeline import build_knng_simt

        graph, report = build_knng_simt(x, cfg or self.config)
        self.last_report = report
        return graph
