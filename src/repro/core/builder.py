"""The w-KNNG builder: the paper's end-to-end construction pipeline."""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.core.config import BuildConfig
from repro.core.graph import KNNGraph
from repro.core.metric import prepare_points
from repro.core.refine import RefineState
from repro.core.rpforest import RPForest, build_forest, forest_leaf_batches
from repro.core.sharding import refine_round_sharded, run_leaf_phase_sharded
from repro.kernels.counters import METRICS_PREFIX as KERNEL_PREFIX
from repro.kernels.knn_state import KnnState
from repro.kernels.strategy import Strategy, get_strategy
from repro.obs import Observability
from repro.obs.trace import SpanRecord
from repro.utils.parallel import fork_available
from repro.utils.rng import as_generator, spawn_streams
from repro.utils.validation import check_k_fits, check_points_matrix

#: root span name of one build
ROOT_SPAN = "build"
#: the pipeline phases, in order (direct children of the root span)
PHASES = ("forest", "leaf_pairs", "refine", "finalize")


@dataclass(frozen=True)
class BuildReport:
    """An immutable view over the observability trace of one build.

    Constructed from a finished :class:`~repro.obs.Observability` session
    via :meth:`from_obs`; the legacy attribute surface is preserved:

    Attributes
    ----------
    phase_seconds:
        Wall-clock per pipeline phase (``forest``, ``leaf_pairs``,
        ``refine``, ``finalize``) - the durations of the root span's
        children.
    counters:
        The work-counter section of the metrics registry: the strategy's
        :class:`~repro.kernels.counters.OpCounters` snapshot for the
        vectorised backend, the device
        :class:`~repro.simt.metrics.KernelMetrics` for the simt backend.
    refine_insertions:
        Insertions per refinement round (length <= refine_iters; shorter if
        a round converged and stopped early) - the ``inserted`` attributes
        of the ``refine/round-*`` spans.
    leaf_stats:
        Forest shape diagnostics (leaf count, mean/max leaf size) - the
        ``forest/`` gauges.
    spans:
        The raw :class:`~repro.obs.trace.SpanRecord` tuple of the build
        (empty when constructed directly rather than from a trace).
    metrics:
        Full flat snapshot of the metrics registry at report time.
    metric:
        The distance metric actually resolved at build time
        (``"sqeuclidean"``/``"cosine"``), so bench JSON derived from
        :meth:`as_dict` is self-describing.
    strategy:
        The maintenance strategy actually resolved at build time (after
        ``"auto"`` resolution).
    parallel:
        Process-parallel execution summary: worker count plus per-shard
        wall times and merge times for the sharded phases (empty detail
        for serial builds).
    """

    phase_seconds: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    refine_insertions: list[int] = field(default_factory=list)
    leaf_stats: dict[str, float] = field(default_factory=dict)
    spans: tuple[SpanRecord, ...] = ()
    metrics: dict[str, Any] = field(default_factory=dict)
    metric: str = ""
    strategy: str = ""
    parallel: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def counters_snapshot(
        cls, obs: Observability, counters_prefix: str = KERNEL_PREFIX
    ) -> dict[str, int]:
        """Current integer counters under ``counters_prefix``.

        Taken *before* a build and passed to :meth:`from_obs` as
        ``counters_baseline`` so a shared long-lived observability session
        yields per-build counter deltas instead of running totals.
        """
        return {
            name: int(value)
            for name, value in obs.metrics.section(counters_prefix).items()
            if isinstance(value, (int, np.integer))
        }

    @classmethod
    def from_obs(
        cls,
        obs: Observability,
        counters_prefix: str = KERNEL_PREFIX,
        counters_baseline: dict[str, int] | None = None,
        metric: str = "",
        strategy: str = "",
        parallel: dict[str, Any] | None = None,
    ) -> "BuildReport":
        """Derive the report from a finished observability session.

        Uses the most recent completed root (``"build"``) span; when the
        tracer is disabled (no spans) the span-derived fields are empty but
        the metric-derived fields (``counters``, ``leaf_stats``) still
        populate.  ``counters_baseline`` (a :meth:`counters_snapshot` taken
        before the build) is subtracted so reports count only their own
        build even when one registry outlives several builds.
        """
        tracer = obs.trace
        roots = [r for r in tracer.records
                 if r.depth == 0 and r.name == ROOT_SPAN]
        phase_seconds: dict[str, float] = {}
        refine_insertions: list[int] = []
        spans: tuple[SpanRecord, ...] = ()
        if roots:
            root = max(roots, key=lambda r: r.start)
            lo, hi = root.start, root.start + root.seconds
            spans = tuple(
                r for r in tracer.records
                if lo <= r.start <= hi and (r is root or r.depth > 0)
            )
            for rec in sorted(spans, key=lambda r: r.start):
                if rec.depth == 1 and rec.parent_path == ROOT_SPAN:
                    phase_seconds[rec.name] = rec.seconds
                if (rec.depth == 2 and rec.parent_path == f"{ROOT_SPAN}/refine"
                        and "inserted" in rec.attrs):
                    refine_insertions.append(int(rec.attrs["inserted"]))
        baseline = counters_baseline or {}
        counters = {
            name: int(value) - baseline.get(name, 0)
            for name, value in obs.metrics.section(counters_prefix).items()
            if isinstance(value, (int, np.integer))
        }
        leaf_stats = {
            name: float(value)
            for name, value in obs.metrics.section("forest/").items()
            if isinstance(value, (int, float))
        }
        return cls(
            phase_seconds=phase_seconds,
            counters=counters,
            refine_insertions=refine_insertions,
            leaf_stats=leaf_stats,
            spans=spans,
            metrics=obs.metrics.as_dict(),
            metric=metric,
            strategy=strategy,
            parallel=dict(parallel or {}),
        )

    @property
    def total_seconds(self) -> float:
        return float(sum(self.phase_seconds.values()))

    def as_dict(self) -> dict[str, Any]:
        return {
            "phase_seconds": dict(self.phase_seconds),
            "total_seconds": self.total_seconds,
            "counters": dict(self.counters),
            "refine_insertions": list(self.refine_insertions),
            "leaf_stats": dict(self.leaf_stats),
            "metric": self.metric,
            "strategy": self.strategy,
            "parallel": dict(self.parallel),
        }


class WKNNGBuilder:
    """Builds approximate K-NN graphs with the w-KNNG algorithm.

    Usage::

        from repro import BuildConfig, WKNNGBuilder
        builder = WKNNGBuilder(BuildConfig(k=16, strategy="tiled", seed=0))
        graph, report = builder.build(points, return_report=True)
        graph.ids, graph.dists                 # (n, 16) neighbour matrices
        report.phase_seconds                   # where the time went

    The report is also attached as ``graph.report``.  Pass an
    :class:`~repro.obs.Observability` to capture the full span trace,
    subscribe profiling hooks, or disable tracing::

        obs = Observability()
        obs.hooks.subscribe("kernel_dispatch:after", my_callback)
        graph = WKNNGBuilder(config, obs=obs).build(points)

    The builder is reusable: each :meth:`build` call derives fresh RNG
    streams from the configured seed, so repeated builds on the same data
    are identical.  Without an explicit ``obs``, every build gets a fresh
    observability session (available afterwards as :attr:`last_obs`).
    """

    def __init__(self, config: BuildConfig | None = None, *,
                 obs: Observability | None = None, **kwargs) -> None:
        """``kwargs`` are a convenience for ``BuildConfig(**kwargs)``."""
        if config is not None and kwargs:
            raise TypeError("pass either a BuildConfig or keyword options, not both")
        self.config = config if config is not None else BuildConfig(**kwargs)
        self.obs = obs
        self.last_obs: Observability | None = None
        self._last_report: BuildReport | None = None
        self.last_forest: RPForest | None = None

    @property
    def last_report(self) -> BuildReport | None:
        """Deprecated: use ``build(points, return_report=True)`` or
        ``graph.report`` instead."""
        warnings.warn(
            "WKNNGBuilder.last_report is deprecated; use "
            "build(points, return_report=True) or graph.report",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._last_report

    # -- pipeline ---------------------------------------------------------------

    def build(
        self, points: np.ndarray, return_report: bool = False
    ) -> KNNGraph | tuple[KNNGraph, BuildReport]:
        """Construct the K-NN graph of ``points`` (``(n, d)``, any float).

        With ``return_report=True`` returns ``(graph, report)``; either
        way the :class:`BuildReport` is attached as ``graph.report``.

        Under ``metric="cosine"`` the points are L2-normalised first and
        the graph's ``dists`` are squared L2 in the normalised space
        (exactly twice the cosine distance); neighbour sets are identical
        to true cosine ranking.
        """
        x = check_points_matrix(points, "points")
        cfg = self.config
        check_k_fits(cfg.k, x.shape[0])
        x, metric_info = prepare_points(x, cfg.metric)
        resolved = self._resolve_strategy(x.shape[1])
        if resolved != cfg.strategy:
            cfg = replace(cfg, strategy=resolved)
        obs = self.obs if self.obs is not None else Observability()
        self.last_obs = obs
        if cfg.backend == "simt":
            graph, report = self._build_simt(x, cfg, obs)
        else:
            graph, report = self._build_vectorized(x, cfg, obs)
        graph.meta["metric"] = cfg.metric
        graph.meta["metric_info"] = metric_info
        graph.meta["strategy"] = resolved
        if return_report:
            return graph, report
        return graph

    def _resolve_strategy(self, dim: int) -> str:
        """Resolve ``strategy="auto"`` via the device cost model."""
        cfg = self.config
        if cfg.strategy != "auto":
            return cfg.strategy
        from repro.bench.costmodel import preferred_strategy
        from repro.kernels.tiled import DEFAULT_TILE_SIZE

        choice = preferred_strategy(
            dim, cfg.k, cfg.leaf_size,
            tile_size=cfg.strategy_kwargs.get("tile_size", DEFAULT_TILE_SIZE),
        )
        self._resolved_strategy = choice
        return choice

    def _build_vectorized(
        self, x: np.ndarray, cfg: BuildConfig, obs: Observability
    ) -> tuple[KNNGraph, BuildReport]:
        n = x.shape[0]
        counters_before = BuildReport.counters_snapshot(obs, KERNEL_PREFIX)
        forest_rng, refine_rng = spawn_streams(cfg.seed, 2)
        strategy: Strategy = get_strategy(cfg.strategy, **cfg.strategy_kwargs)
        strategy.obs = obs
        state = KnnState(n, cfg.k)

        sharded = cfg.n_jobs > 1 and fork_available()
        parallel_info: dict[str, Any] = {
            "n_jobs": cfg.n_jobs,
            "workers": cfg.n_jobs if sharded else 1,
        }
        with obs.trace.span(ROOT_SPAN, backend="vectorized", n=n,
                            dim=int(x.shape[1]), k=cfg.k,
                            strategy=cfg.strategy, metric=cfg.metric,
                            n_jobs=cfg.n_jobs):
            with obs.trace.span("forest"):
                forest = build_forest(x, cfg.n_trees, cfg.leaf_size, forest_rng,
                                      n_jobs=cfg.n_jobs, spill=cfg.spill, obs=obs)
                sizes = forest.leaf_sizes()
                obs.metrics.gauge("forest/n_leaves").set(float(sizes.size))
                obs.metrics.gauge("forest/mean_leaf_size").set(float(sizes.mean()))
                obs.metrics.gauge("forest/max_leaf_size").set(float(sizes.max()))
            self.last_forest = forest

            # one tree at a time: leaves of a classic tree are disjoint, so a
            # batch carries no duplicate pairs; spill trees overlap and need
            # the dedupe pass.  With n_jobs > 1 the batch list is sharded
            # across forked workers and merged back in fixed shard order.
            with obs.trace.span("leaf_pairs"):
                batches = forest_leaf_batches(forest)
                if sharded and len(batches) > 1:
                    leaf_info = run_leaf_phase_sharded(
                        state, x, batches, strategy, cfg.n_jobs,
                        dedupe=cfg.spill > 0.0,
                        strategy_kwargs=cfg.strategy_kwargs,
                    )
                    parallel_info["leaf"] = {
                        "shards": leaf_info["shards"],
                        "shard_seconds": leaf_info["shard_seconds"],
                        "merge_seconds": leaf_info["merge_seconds"],
                    }
                    for sec in leaf_info["shard_seconds"]:
                        obs.metrics.histogram(
                            "parallel/leaf_shard_seconds").observe(sec)
                    obs.metrics.gauge("parallel/leaf_merge_seconds").set(
                        leaf_info["merge_seconds"])
                else:
                    for leaf_mat, lengths in batches:
                        strategy.update_leaf_batch(
                            state, x, leaf_mat, lengths, dedupe=cfg.spill > 0.0
                        )
                # slot order is history-dependent (serial insertion vs shard
                # merge); refine samples by (row, slot), so hand over the
                # canonical arrangement regardless of how we got here
                state.canonicalize()

            with obs.trace.span("refine"):
                sample = cfg.effective_refine_sample()
                rng = as_generator(refine_rng)
                refine_state = RefineState()
                threshold = cfg.refine_delta * n * cfg.k
                refine_shard_seconds: list[float] = []
                refine_merge_seconds = 0.0
                for round_idx in range(cfg.refine_iters):
                    with obs.trace.span(f"round-{round_idx}") as round_span:
                        round_t0 = time.perf_counter()
                        inserted, round_info = refine_round_sharded(
                            state, x, strategy, rng, sample, refine_state,
                            n_jobs=cfg.n_jobs if sharded else 1,
                            strategy_kwargs=cfg.strategy_kwargs, obs=obs,
                        )
                        round_span.set(inserted=inserted)
                    worker_secs = [
                        g + i for g, i in zip(
                            round_info["gen_seconds"],
                            round_info["insert_seconds"]
                            or [0.0] * len(round_info["gen_seconds"]),
                        )
                    ]
                    refine_shard_seconds.extend(worker_secs)
                    refine_merge_seconds += (
                        time.perf_counter() - round_t0 - sum(worker_secs)
                        if sharded else 0.0
                    )
                    if inserted <= threshold:
                        break
                if sharded:
                    parallel_info["refine"] = {
                        "shard_seconds": refine_shard_seconds,
                        "merge_seconds": max(0.0, refine_merge_seconds),
                    }
                    for sec in refine_shard_seconds:
                        obs.metrics.histogram(
                            "parallel/refine_shard_seconds").observe(sec)

            with obs.trace.span("finalize"):
                ids, dists = state.sorted_arrays()

        obs.metrics.gauge("parallel/n_jobs").set(float(cfg.n_jobs))
        obs.metrics.gauge("parallel/workers").set(float(parallel_info["workers"]))
        strategy.counters.emit(obs.metrics)
        report = BuildReport.from_obs(
            obs, counters_prefix=KERNEL_PREFIX, counters_baseline=counters_before,
            metric=cfg.metric, strategy=cfg.strategy, parallel=parallel_info,
        )
        self._last_report = report
        graph = KNNGraph(
            ids=ids,
            dists=dists,
            meta={
                "algorithm": "w-knng",
                "strategy": cfg.strategy,
                "backend": "vectorized",
                "config": cfg,
                "report": report.as_dict(),
            },
            report=report,
        )
        return graph, report

    def _build_simt(
        self, x: np.ndarray, cfg: BuildConfig, obs: Observability
    ) -> tuple[KNNGraph, BuildReport]:
        """Route the pipeline through the warp-level simulator backend.

        Practical only for small ``n`` (the simulator interprets every warp
        instruction in Python); produces the microarchitecture metrics used
        by experiment F6.
        """
        from repro.simt_kernels.pipeline import build_knng_simt

        graph, report = build_knng_simt(x, cfg, obs=obs)
        self._last_report = report
        return graph, report
