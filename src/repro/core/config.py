"""Build configuration for :class:`repro.core.builder.WKNNGBuilder`."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError
from repro.kernels.strategy import available_strategies
from repro.utils.rng import RngStream
from repro.utils.validation import check_positive_int

#: execution backends; "vectorized" is the scalable NumPy layer,
#: "simt" routes kernels through the warp-level simulator (small inputs only)
BACKENDS = ("vectorized", "simt")


@dataclass
class BuildConfig:
    """All knobs of a w-KNNG build.

    Attributes
    ----------
    k:
        Neighbours per point in the output graph.
    strategy:
        k-NN maintenance strategy: ``"baseline"``, ``"atomic"``,
        ``"tiled"`` (see :mod:`repro.kernels`), or ``"auto"``.  The
        paper's guidance: ``atomic`` for low-dimensional data, ``tiled``
        for high-dimensional or unknown data (the library default);
        ``"auto"`` applies that guidance at build time via the device cost
        model (:func:`repro.bench.costmodel.preferred_strategy`).
    strategy_kwargs:
        Extra constructor arguments for the strategy (e.g. ``tile_size``
        for ``tiled``).
    n_trees:
        Trees in the random projection forest.  More trees -> more candidate
        pairs -> higher recall, linearly more work.
    leaf_size:
        Maximum points per leaf.  The leaf all-pairs kernel is
        O(leaf_size^2) per leaf, so this is the accuracy/time dial within a
        tree.
    spill:
        Spill-tree overlap fraction in ``[0, 0.45)``: boundary points
        descend both children, trading larger leaf volume for more
        neighbour pairs caught per tree (see
        :func:`repro.core.rpforest.build_tree`).  ``0`` (default) gives
        classic disjoint RP trees.
    refine_iters:
        NN-descent local-join refinement rounds after the forest phase.
    refine_sample:
        Neighbourhood sample size of the local join (entries sampled per
        list per new/old category and direction; a round joins
        O(refine_sample^2) pairs per point).  ``None`` means
        ``max(4, k // 2) * refine_fanout`` - the rho ~ 0.5 setting of the
        NN-descent paper.
    refine_fanout:
        Multiplier applied to the default ``refine_sample``.
    refine_delta:
        Convergence threshold: refinement stops early once a round inserts
        fewer than ``refine_delta * n * k`` entries (the NN-descent
        stopping rule), so a generous ``refine_iters`` budget is safe.
    metric:
        ``"sqeuclidean"`` (default) or ``"cosine"``.  Cosine reduces to
        squared L2 on normalised inputs (see :mod:`repro.core.metric`);
        the graph's stored ``dists`` are then in the transformed space and
        halve to cosine distances.  ``"inner_product"`` is search-only and
        rejected here (its L2 reduction breaks for point-point pairs).
    seed:
        Random seed (int / Generator / SeedSequence / None).
    backend:
        ``"vectorized"`` (default) or ``"simt"`` (warp simulator;
        orders of magnitude slower, used for microarchitecture metrics).
    n_jobs:
        Worker processes for the whole vectorized build: the forest phase
        (trees are independent), the leaf all-pairs phase (leaf batches
        sharded, per-worker lists merged in fixed shard order), and the
        refinement rounds (candidate generation and insertion sharded by
        point ranges).  Results are bitwise identical for any value; >1
        uses forked workers on POSIX and silently falls back to serial
        elsewhere.  See ``docs/parallel.md``.
    """

    k: int = 16
    strategy: str = "tiled"
    strategy_kwargs: dict[str, Any] = field(default_factory=dict)
    n_trees: int = 8
    leaf_size: int = 128
    spill: float = 0.0
    refine_iters: int = 2
    refine_sample: int | None = None
    refine_fanout: int = 1
    refine_delta: float = 0.001
    metric: str = "sqeuclidean"
    seed: RngStream = None
    backend: str = "vectorized"
    n_jobs: int = 1

    def __post_init__(self) -> None:
        self.k = check_positive_int(self.k, "k")
        self.n_trees = check_positive_int(self.n_trees, "n_trees")
        self.leaf_size = check_positive_int(self.leaf_size, "leaf_size", minimum=2)
        self.refine_fanout = check_positive_int(self.refine_fanout, "refine_fanout")
        if self.refine_iters < 0:
            raise ConfigurationError(
                f"refine_iters must be >= 0, got {self.refine_iters}"
            )
        if self.refine_sample is not None:
            self.refine_sample = check_positive_int(self.refine_sample, "refine_sample")
        if not 0.0 <= float(self.refine_delta) < 1.0:
            raise ConfigurationError(
                f"refine_delta must lie in [0, 1), got {self.refine_delta}"
            )
        if self.strategy != "auto" and self.strategy not in available_strategies():
            raise ConfigurationError(
                f"unknown strategy {self.strategy!r}; "
                f"available: {available_strategies() + ('auto',)}"
            )
        self.n_jobs = check_positive_int(self.n_jobs, "n_jobs")
        if not 0.0 <= float(self.spill) < 0.45:
            raise ConfigurationError(
                f"spill must lie in [0, 0.45), got {self.spill}"
            )
        from repro.core.metric import check_metric

        check_metric(self.metric)
        if self.metric == "inner_product":
            raise ConfigurationError(
                "inner_product is a search-only metric (its L2 reduction is "
                "query-vs-database); build the graph with sqeuclidean or "
                "cosine instead"
            )
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {self.backend!r}; available: {BACKENDS}"
            )
        if self.leaf_size <= self.k:
            # a leaf must be able to supply at least k candidates for its
            # members, otherwise the forest phase cannot fill the lists
            raise ConfigurationError(
                f"leaf_size ({self.leaf_size}) must exceed k ({self.k}); "
                f"leaves are each point's candidate pool"
            )

    def effective_refine_sample(self) -> int:
        """Local-join neighbourhood sample size per round (see class docs)."""
        if self.refine_sample is not None:
            return self.refine_sample
        return max(4, self.k // 2) * self.refine_fanout
