"""The K-NN graph result object."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import DataError


def _denumpy(value: Any) -> Any:
    """Coerce numpy scalars to native Python numbers, recursively.

    Containers are rebuilt (dicts/lists/tuples) so nested stats like
    ``{"recall": np.float32(0.99)}`` survive the JSON-serialisability check
    in :meth:`KNNGraph.save`.  Non-scalar objects pass through unchanged.
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {k: _denumpy(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_denumpy(v) for v in value]
    return value


@dataclass
class KNNGraph:
    """An (approximate) K-nearest-neighbour graph over ``n`` points.

    Attributes
    ----------
    ids:
        ``(n, k)`` int32 neighbour indices, each row sorted by ascending
        distance.  Unfilled slots (possible only in pathological configs)
        carry ``-1`` and ``+inf`` distance.
    dists:
        ``(n, k)`` float32 *squared* Euclidean distances.
    meta:
        Free-form provenance (build configuration, timings, counters).
    report:
        The :class:`~repro.core.builder.BuildReport` of the build that
        produced this graph (``None`` for graphs from other sources or
        loaded from disk; not persisted by :meth:`save`).
    """

    ids: np.ndarray
    dists: np.ndarray
    meta: dict[str, Any] = field(default_factory=dict)
    report: Any | None = None

    def __post_init__(self) -> None:
        if self.ids.shape != self.dists.shape or self.ids.ndim != 2:
            raise DataError(
                f"ids/dists must be matching (n, k) matrices, got "
                f"{self.ids.shape} and {self.dists.shape}"
            )

    # -- basic properties ------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of points."""
        return self.ids.shape[0]

    @property
    def k(self) -> int:
        """Neighbours per point."""
        return self.ids.shape[1]

    def neighbors(self, i: int) -> np.ndarray:
        """Valid neighbour ids of point ``i`` (ascending distance)."""
        row = self.ids[i]
        return row[row >= 0]

    def is_complete(self) -> bool:
        """True when every point has a full, valid neighbour list."""
        return bool((self.ids >= 0).all())

    # -- quality ---------------------------------------------------------------

    def recall(self, exact: "KNNGraph | np.ndarray") -> float:
        """Mean per-point recall against an exact graph (or its id matrix).

        recall@k = |approx_neighbours(i)  ∩  exact_neighbours(i)| / k,
        averaged over points - the standard KNNG accuracy measure the
        paper's "equivalent accuracy" comparisons use.
        """
        exact_ids = exact.ids if isinstance(exact, KNNGraph) else np.asarray(exact)
        if exact_ids.shape[0] != self.n:
            raise DataError(
                f"exact graph has {exact_ids.shape[0]} points, this graph has {self.n}"
            )
        k = min(self.k, exact_ids.shape[1])
        from repro.metrics.recall import knn_recall  # local import: avoid cycle

        return knn_recall(self.ids[:, : self.k], exact_ids[:, :k])

    def mean_distance(self) -> float:
        """Mean valid edge distance (lower = tighter graph at fixed k)."""
        valid = self.ids >= 0
        if not valid.any():
            return float("nan")
        return float(self.dists[valid].mean())

    # -- conversions -------------------------------------------------------------

    def to_csr(self):
        """Adjacency as ``scipy.sparse.csr_matrix`` with distance weights.

        Edges with unfilled slots are omitted.  Distances of exactly zero
        (duplicate points) are kept by storing ``eps`` instead, so the
        explicit sparsity structure is preserved.
        """
        from scipy import sparse

        valid = self.ids >= 0
        rows = np.repeat(np.arange(self.n), valid.sum(axis=1))
        cols = self.ids[valid]
        vals = self.dists[valid].astype(np.float64)
        vals[vals == 0.0] = np.finfo(np.float64).tiny
        return sparse.csr_matrix((vals, (rows, cols)), shape=(self.n, self.n))

    def to_networkx(self):
        """Directed NetworkX graph with ``weight`` = squared distance."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self.n))
        valid = self.ids >= 0
        rows = np.repeat(np.arange(self.n), valid.sum(axis=1))
        cols = self.ids[valid]
        vals = self.dists[valid]
        g.add_weighted_edges_from(zip(rows.tolist(), cols.tolist(), vals.tolist()))
        return g

    def to_coo(
        self, *, symmetrize: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Edge list as ``(edge_index, dists)`` COO arrays.

        ``edge_index`` is ``(2, E)`` int64 with row 0 the source point
        (the graph row) and row 1 its neighbour; ``dists`` is the
        ``(E,)`` per-edge squared distance (the graph's native dtype).
        Unfilled slots are omitted.

        With ``symmetrize=False`` (default) the directed graph edges are
        emitted row-major: points in order, neighbours by ascending
        distance - exactly the valid ``(ids, dists)`` slots.

        With ``symmetrize=True`` the undirected closure is emitted: every
        unique pair ``{i, j}`` stored in either direction contributes
        *both* directions, each carrying the minimum distance over
        whichever directions the graph stores (for a Gaussian kernel this
        reproduces the classic ``A.maximum(A.T)`` symmetrisation exactly,
        since ``exp`` is monotone).  Edges are sorted by (source, dest).
        """
        valid = self.ids >= 0
        src = np.repeat(np.arange(self.n, dtype=np.int64), valid.sum(axis=1))
        dst = self.ids[valid].astype(np.int64)
        d = self.dists[valid]
        if not symmetrize:
            return np.stack([src, dst]), d
        n = np.int64(self.n)
        lo = np.minimum(src, dst)
        hi = np.maximum(src, dst)
        key = lo * n + hi
        # sort by (pair, distance); the first entry per pair is its min
        order = np.lexsort((d, key))
        key_s, d_s = key[order], d[order]
        first = np.ones(key_s.shape[0], dtype=bool)
        first[1:] = key_s[1:] != key_s[:-1]
        ukey, ud = key_s[first], d_s[first]
        ulo, uhi = ukey // n, ukey % n
        off_diag = ulo != uhi  # self-loops (if any) are emitted once
        out_src = np.concatenate([ulo, uhi[off_diag]])
        out_dst = np.concatenate([uhi, ulo[off_diag]])
        out_d = np.concatenate([ud, ud[off_diag]])
        order = np.lexsort((out_dst, out_src))
        return np.stack([out_src[order], out_dst[order]]), out_d[order]

    def gaussian_affinity(self, kernel_scale: float = 1.0):
        """Symmetrised, Gaussian-weighted, symmetrically-normalised affinity.

        The shared affinity stage of label propagation and spectral
        embedding: edges are weighted ``exp(-d2 / (kernel_scale *
        mean_d2))`` with ``mean_d2`` the mean *directed* valid edge
        distance, symmetrised over the undirected closure (per-pair
        weight = max of the two directions, via :meth:`to_coo`'s
        min-distance closure), then normalised as ``D^-1/2 A D^-1/2``.
        Returns a ``scipy.sparse.csr_matrix``.
        """
        from scipy import sparse

        _, d_dir = self.to_coo()
        d_dir = d_dir.astype(np.float64)
        mean_d2 = float(d_dir.mean()) if d_dir.size else 1.0
        if mean_d2 <= 0:
            mean_d2 = 1.0
        sym, d2 = self.to_coo(symmetrize=True)
        w = np.exp(-d2.astype(np.float64) / (kernel_scale * mean_d2))
        a = sparse.csr_matrix((w, (sym[0], sym[1])), shape=(self.n, self.n))
        deg = np.asarray(a.sum(axis=1)).reshape(-1)
        deg[deg == 0] = 1.0
        inv_sqrt = sparse.diags(1.0 / np.sqrt(deg))
        return inv_sqrt @ a @ inv_sqrt

    def symmetrized_ids(self) -> list[np.ndarray]:
        """Per-point neighbour sets of the undirected closure (i~j if either
        direction is present).  Used by t-SNE, which symmetrises affinities.

        Vectorized: one concatenate + sort over all edges (both directions),
        split back into per-point unique neighbour arrays - O(E log E)
        instead of the former O(n*k) Python-level append loop.
        """
        valid = self.ids >= 0
        src = np.repeat(np.arange(self.n, dtype=np.int64), valid.sum(axis=1))
        dst = self.ids[valid].astype(np.int64)
        # every edge contributes both directions to the closure
        rows = np.concatenate([src, dst])
        nbrs = np.concatenate([dst, src])
        # sort by (row, neighbour); unique keys collapse duplicate edges
        key = rows * np.int64(self.n) + nbrs
        key = np.unique(key)
        rows = key // self.n
        nbrs = key % self.n
        # split the sorted edge list at row boundaries
        starts = np.searchsorted(rows, np.arange(self.n + 1, dtype=np.int64))
        return [nbrs[starts[i]:starts[i + 1]] for i in range(self.n)]

    # -- persistence -----------------------------------------------------------

    def save(self, path) -> None:
        """Save to an ``.npz`` file (ids, dists, and the JSON-serialisable
        subset of ``meta``).

        Meta entries that JSON cannot encode (arrays, reports, arbitrary
        objects) are silently dropped; everything else - crucially the
        build ``metric``, which :class:`repro.apps.search.GraphSearchIndex`
        needs to prepare queries correctly after a reload - round-trips.
        NumPy scalars (``np.float32`` recall values, ``np.int64`` counters,
        anywhere in a nested dict/list) are coerced to native Python numbers
        first - previously they failed ``json.dumps`` and the whole entry
        silently vanished from the saved file.
        """
        keep: dict[str, Any] = {}
        for key, value in self.meta.items():
            value = _denumpy(value)
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                continue
            keep[key] = value
        np.savez_compressed(
            path, ids=self.ids, dists=self.dists,
            meta_json=np.array(json.dumps(keep)),
        )

    @classmethod
    def load(cls, path) -> "KNNGraph":
        with np.load(path) as data:
            meta: dict[str, Any] = {}
            if "meta_json" in data.files:
                meta = json.loads(str(data["meta_json"]))
            return cls(ids=data["ids"], dists=data["dists"], meta=meta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KNNGraph(n={self.n}, k={self.k}, complete={self.is_complete()})"
