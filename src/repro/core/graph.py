"""The K-NN graph result object."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import DataError


def _denumpy(value: Any) -> Any:
    """Coerce numpy scalars to native Python numbers, recursively.

    Containers are rebuilt (dicts/lists/tuples) so nested stats like
    ``{"recall": np.float32(0.99)}`` survive the JSON-serialisability check
    in :meth:`KNNGraph.save`.  Non-scalar objects pass through unchanged.
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {k: _denumpy(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_denumpy(v) for v in value]
    return value


@dataclass
class KNNGraph:
    """An (approximate) K-nearest-neighbour graph over ``n`` points.

    Attributes
    ----------
    ids:
        ``(n, k)`` int32 neighbour indices, each row sorted by ascending
        distance.  Unfilled slots (possible only in pathological configs)
        carry ``-1`` and ``+inf`` distance.
    dists:
        ``(n, k)`` float32 *squared* Euclidean distances.
    meta:
        Free-form provenance (build configuration, timings, counters).
    report:
        The :class:`~repro.core.builder.BuildReport` of the build that
        produced this graph (``None`` for graphs from other sources or
        loaded from disk; not persisted by :meth:`save`).
    """

    ids: np.ndarray
    dists: np.ndarray
    meta: dict[str, Any] = field(default_factory=dict)
    report: Any | None = None

    def __post_init__(self) -> None:
        if self.ids.shape != self.dists.shape or self.ids.ndim != 2:
            raise DataError(
                f"ids/dists must be matching (n, k) matrices, got "
                f"{self.ids.shape} and {self.dists.shape}"
            )

    # -- basic properties ------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of points."""
        return self.ids.shape[0]

    @property
    def k(self) -> int:
        """Neighbours per point."""
        return self.ids.shape[1]

    def neighbors(self, i: int) -> np.ndarray:
        """Valid neighbour ids of point ``i`` (ascending distance)."""
        row = self.ids[i]
        return row[row >= 0]

    def is_complete(self) -> bool:
        """True when every point has a full, valid neighbour list."""
        return bool((self.ids >= 0).all())

    # -- quality ---------------------------------------------------------------

    def recall(self, exact: "KNNGraph | np.ndarray") -> float:
        """Mean per-point recall against an exact graph (or its id matrix).

        recall@k = |approx_neighbours(i)  ∩  exact_neighbours(i)| / k,
        averaged over points - the standard KNNG accuracy measure the
        paper's "equivalent accuracy" comparisons use.
        """
        exact_ids = exact.ids if isinstance(exact, KNNGraph) else np.asarray(exact)
        if exact_ids.shape[0] != self.n:
            raise DataError(
                f"exact graph has {exact_ids.shape[0]} points, this graph has {self.n}"
            )
        k = min(self.k, exact_ids.shape[1])
        from repro.metrics.recall import knn_recall  # local import: avoid cycle

        return knn_recall(self.ids[:, : self.k], exact_ids[:, :k])

    def mean_distance(self) -> float:
        """Mean valid edge distance (lower = tighter graph at fixed k)."""
        valid = self.ids >= 0
        if not valid.any():
            return float("nan")
        return float(self.dists[valid].mean())

    # -- conversions -------------------------------------------------------------

    def to_csr(self):
        """Adjacency as ``scipy.sparse.csr_matrix`` with distance weights.

        Edges with unfilled slots are omitted.  Distances of exactly zero
        (duplicate points) are kept by storing ``eps`` instead, so the
        explicit sparsity structure is preserved.
        """
        from scipy import sparse

        valid = self.ids >= 0
        rows = np.repeat(np.arange(self.n), valid.sum(axis=1))
        cols = self.ids[valid]
        vals = self.dists[valid].astype(np.float64)
        vals[vals == 0.0] = np.finfo(np.float64).tiny
        return sparse.csr_matrix((vals, (rows, cols)), shape=(self.n, self.n))

    def to_networkx(self):
        """Directed NetworkX graph with ``weight`` = squared distance."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self.n))
        valid = self.ids >= 0
        rows = np.repeat(np.arange(self.n), valid.sum(axis=1))
        cols = self.ids[valid]
        vals = self.dists[valid]
        g.add_weighted_edges_from(zip(rows.tolist(), cols.tolist(), vals.tolist()))
        return g

    def symmetrized_ids(self) -> list[np.ndarray]:
        """Per-point neighbour sets of the undirected closure (i~j if either
        direction is present).  Used by t-SNE, which symmetrises affinities.

        Vectorized: one concatenate + sort over all edges (both directions),
        split back into per-point unique neighbour arrays - O(E log E)
        instead of the former O(n*k) Python-level append loop.
        """
        valid = self.ids >= 0
        src = np.repeat(np.arange(self.n, dtype=np.int64), valid.sum(axis=1))
        dst = self.ids[valid].astype(np.int64)
        # every edge contributes both directions to the closure
        rows = np.concatenate([src, dst])
        nbrs = np.concatenate([dst, src])
        # sort by (row, neighbour); unique keys collapse duplicate edges
        key = rows * np.int64(self.n) + nbrs
        key = np.unique(key)
        rows = key // self.n
        nbrs = key % self.n
        # split the sorted edge list at row boundaries
        starts = np.searchsorted(rows, np.arange(self.n + 1, dtype=np.int64))
        return [nbrs[starts[i]:starts[i + 1]] for i in range(self.n)]

    # -- persistence -----------------------------------------------------------

    def save(self, path) -> None:
        """Save to an ``.npz`` file (ids, dists, and the JSON-serialisable
        subset of ``meta``).

        Meta entries that JSON cannot encode (arrays, reports, arbitrary
        objects) are silently dropped; everything else - crucially the
        build ``metric``, which :class:`repro.apps.search.GraphSearchIndex`
        needs to prepare queries correctly after a reload - round-trips.
        NumPy scalars (``np.float32`` recall values, ``np.int64`` counters,
        anywhere in a nested dict/list) are coerced to native Python numbers
        first - previously they failed ``json.dumps`` and the whole entry
        silently vanished from the saved file.
        """
        keep: dict[str, Any] = {}
        for key, value in self.meta.items():
            value = _denumpy(value)
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                continue
            keep[key] = value
        np.savez_compressed(
            path, ids=self.ids, dists=self.dists,
            meta_json=np.array(json.dumps(keep)),
        )

    @classmethod
    def load(cls, path) -> "KNNGraph":
        with np.load(path) as data:
            meta: dict[str, Any] = {}
            if "meta_json" in data.files:
                meta = json.loads(str(data["meta_json"]))
            return cls(ids=data["ids"], dists=data["dists"], meta=meta)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KNNGraph(n={self.n}, k={self.k}, complete={self.is_complete()})"
