"""Random projection trees and forests.

An RP tree recursively splits the point set with random hyperplanes: a node
draws a random unit normal ``r``, projects its points onto ``r`` and sends
those below the (jittered) median to the left child, the rest right, until
nodes shrink to ``leaf_size`` points.  Nearby points in Euclidean space end
up in the same leaf with high probability, so leaf all-pairs comparisons
are good K-NN candidates; a *forest* of independently-drawn trees boosts
the probability that every true neighbour pair co-locates at least once.

The split threshold is drawn uniformly between the 25th and 75th percentile
of the projections rather than exactly at the median: perturbed splits
decorrelate the trees of a forest (two trees that draw similar normals
would otherwise produce near-identical leaves, wasting work), while the
percentile bounds keep the tree depth O(log n).

Trees remember their internal hyperplanes, so they can also *route* unseen
query points to a leaf (:meth:`RPTree.leaf_for`) - used by the similarity
search application.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.utils.rng import RngStream, as_generator, spawn_streams
from repro.utils.validation import check_points_matrix, check_positive_int

#: children entries >= 0 index internal nodes; negative entries encode
#: leaf slot ``l`` as ``-(l + 1)``
_LEAF_TAG = -1


def _encode_leaf(leaf_index: int) -> int:
    return -(leaf_index + 1)


def _decode_leaf(code: int) -> int:
    return -code - 1


@dataclass
class RPTree:
    """One random projection tree over a fixed dataset.

    Attributes
    ----------
    normals:
        ``(n_internal, d)`` hyperplane normals (unit vectors).
    thresholds:
        ``(n_internal,)`` split thresholds on the projections.
    children:
        ``(n_internal, 2)`` child links; negative values encode leaf ids
        (see :func:`_encode_leaf`).
    leaves:
        List of int64 arrays of point indices, covering all points.
        Disjoint for classic trees (``spill=0``); overlapping for spill
        trees.
    """

    normals: np.ndarray
    thresholds: np.ndarray
    children: np.ndarray
    leaves: list[np.ndarray] = field(default_factory=list)

    @property
    def n_leaves(self) -> int:
        return len(self.leaves)

    @property
    def depth_estimate(self) -> int:
        """Upper bound on depth from the internal-node count."""
        return int(np.ceil(np.log2(max(2, self.normals.shape[0] + 1)))) + 1

    def leaf_sizes(self) -> np.ndarray:
        return np.array([leaf.shape[0] for leaf in self.leaves], dtype=np.int64)

    def leaf_for(self, queries: np.ndarray) -> np.ndarray:
        """Route query points to their leaf index (vectorised).

        Parameters
        ----------
        queries:
            ``(m, d)`` query matrix.

        Returns
        -------
        ``(m,)`` leaf indices into :attr:`leaves`.
        """
        q = check_points_matrix(queries, "queries")
        if self.normals.size and q.shape[1] != self.normals.shape[1]:
            raise DataError(
                f"query dimensionality {q.shape[1]} does not match tree "
                f"dimensionality {self.normals.shape[1]}"
            )
        m = q.shape[0]
        out = np.empty(m, dtype=np.int64)
        if self.normals.shape[0] == 0:  # single-leaf tree
            out[:] = 0
            return out
        if m == 1:
            # scalar descent for per-query callers; the projection kernel
            # (einsum row-dot) matches the batched path below so a query
            # routes identically regardless of call shape
            node = 0
            while True:
                proj = np.einsum("j,j->", q[0], self.normals[node])
                side = 1 if proj >= self.thresholds[node] else 0
                child = int(self.children[node, side])
                if child < 0:
                    out[0] = -child - 1
                    return out
                node = child
        # level-synchronous routing: every still-internal query advances
        # one level per iteration, so the loop runs depth times (not once
        # per visited node) and each level is a single gathered projection
        active = np.arange(m)
        node = np.zeros(m, dtype=np.int64)
        while active.size:
            proj = np.einsum("ij,ij->i", q[active], self.normals[node])
            go_right = proj >= self.thresholds[node]
            child = self.children[node, go_right.astype(np.int64)]
            at_leaf = child < 0
            if at_leaf.any():
                out[active[at_leaf]] = -child[at_leaf] - 1
                keep = ~at_leaf
                active, node = active[keep], child[keep]
            else:
                node = child
        return out


def build_tree(
    x: np.ndarray,
    leaf_size: int,
    rng: RngStream = None,
    *,
    balance_range: tuple[float, float] = (0.25, 0.75),
    spill: float = 0.0,
) -> RPTree:
    """Build one RP tree over all rows of ``x``.

    Parameters
    ----------
    x:
        ``(n, d)`` float32 points.
    leaf_size:
        Maximum points per leaf (``>= 2``).
    rng:
        Random source.
    balance_range:
        Fractile bounds the split threshold is drawn between (see module
        docstring).
    spill:
        Spill-tree fraction in ``[0, 0.45)`` (Liu et al., NIPS'04): points
        whose projection falls within the ``spill``-quantile band around
        the threshold descend into *both* children.  Overlapping leaves
        catch neighbour pairs that a hard split separates, buying recall
        per tree at the cost of larger total leaf volume - and of leaves
        no longer being disjoint (duplicate candidate pairs are handled by
        the builder).  ``0`` gives classic disjoint RP trees.

    Notes
    -----
    Degenerate nodes (all projections equal, e.g. duplicated points) are
    split by random halving so construction always terminates.
    """
    x = check_points_matrix(x, "points")
    leaf_size = check_positive_int(leaf_size, "leaf_size", minimum=2)
    lo, hi = balance_range
    if not 0.0 < lo <= hi < 1.0:
        raise ConfigurationError(
            f"balance_range must satisfy 0 < lo <= hi < 1, got {balance_range}"
        )
    if not 0.0 <= spill < 0.45:
        raise ConfigurationError(f"spill must lie in [0, 0.45), got {spill}")
    gen = as_generator(rng)
    n, d = x.shape

    normals: list[np.ndarray] = []
    thresholds: list[float] = []
    children: list[list[int]] = []
    leaves: list[np.ndarray] = []

    if n <= leaf_size:
        leaves.append(np.arange(n, dtype=np.int64))
        return RPTree(
            normals=np.empty((0, d), dtype=np.float32),
            thresholds=np.empty(0, dtype=np.float32),
            children=np.empty((0, 2), dtype=np.int64),
            leaves=leaves,
        )

    # stack entries: (point indices, parent node, side) ; parent -1 == root
    stack: list[tuple[np.ndarray, int, int]] = [(np.arange(n, dtype=np.int64), -1, 0)]
    while stack:
        idx, parent, side = stack.pop()
        if idx.shape[0] <= leaf_size:
            code = _encode_leaf(len(leaves))
            leaves.append(idx)
            children[parent][side] = code
            continue
        node_id = len(normals)
        normal = gen.standard_normal(d).astype(np.float32)
        norm = float(np.linalg.norm(normal))
        normal /= norm if norm > 0 else 1.0
        proj = x[idx] @ normal
        frac = float(gen.uniform(lo, hi))
        thr = float(np.quantile(proj, frac))
        go_right = proj >= thr
        n_right = int(go_right.sum())
        degenerate = n_right == 0 or n_right == idx.shape[0]
        if degenerate:
            # degenerate projection: force a random balanced split
            perm = gen.permutation(idx.shape[0])
            half = idx.shape[0] // 2
            go_right = np.zeros(idx.shape[0], dtype=bool)
            go_right[perm[:half]] = True
            thr = float(np.inf)  # routing sends queries left; harmless
        go_left = ~go_right
        if spill > 0.0 and not degenerate:
            lo_band = float(np.quantile(proj, max(0.0, frac - spill / 2)))
            hi_band = float(np.quantile(proj, min(1.0, frac + spill / 2)))
            in_band = (proj >= lo_band) & (proj <= hi_band)
            # boundary points descend both ways, unless that would stall
            # the recursion (a child must stay strictly smaller)
            if (go_left | in_band).sum() < idx.shape[0] and (
                go_right | in_band
            ).sum() < idx.shape[0]:
                go_left = go_left | in_band
                go_right = go_right | in_band
        normals.append(normal)
        thresholds.append(thr)
        children.append([0, 0])
        if parent >= 0:
            children[parent][side] = node_id
        stack.append((idx[go_left], node_id, 0))
        stack.append((idx[go_right], node_id, 1))

    return RPTree(
        normals=np.asarray(normals, dtype=np.float32),
        thresholds=np.asarray(thresholds, dtype=np.float32),
        children=np.asarray(children, dtype=np.int64),
        leaves=leaves,
    )


@dataclass
class RPForest:
    """A collection of independent RP trees over one dataset."""

    trees: list[RPTree]

    @property
    def n_trees(self) -> int:
        return len(self.trees)

    # -- persistence -----------------------------------------------------------

    def save(self, path) -> None:
        """Save the forest to an ``.npz`` file (all trees, flat arrays)."""
        payload: dict[str, np.ndarray] = {
            "n_trees": np.array([self.n_trees], dtype=np.int64)
        }
        for ti, tree in enumerate(self.trees):
            payload[f"t{ti}_normals"] = tree.normals
            payload[f"t{ti}_thresholds"] = tree.thresholds
            payload[f"t{ti}_children"] = tree.children
            payload[f"t{ti}_leaf_lens"] = tree.leaf_sizes()
            payload[f"t{ti}_leaf_ids"] = (
                np.concatenate(tree.leaves)
                if tree.leaves
                else np.empty(0, dtype=np.int64)
            )
        np.savez_compressed(path, **payload)

    @classmethod
    def load(cls, path) -> "RPForest":
        """Inverse of :meth:`save`."""
        trees: list[RPTree] = []
        with np.load(path) as data:
            n_trees = int(data["n_trees"][0])
            for ti in range(n_trees):
                lens = data[f"t{ti}_leaf_lens"]
                flat = data[f"t{ti}_leaf_ids"]
                bounds = np.concatenate(([0], np.cumsum(lens)))
                leaves = [
                    flat[bounds[i]: bounds[i + 1]].astype(np.int64)
                    for i in range(lens.shape[0])
                ]
                trees.append(
                    RPTree(
                        normals=data[f"t{ti}_normals"],
                        thresholds=data[f"t{ti}_thresholds"],
                        children=data[f"t{ti}_children"],
                        leaves=leaves,
                    )
                )
        return cls(trees=trees)

    def leaf_sizes(self) -> np.ndarray:
        """Concatenated leaf sizes across trees (for diagnostics/ablation)."""
        if not self.trees:
            return np.empty(0, dtype=np.int64)
        return np.concatenate([t.leaf_sizes() for t in self.trees])

    def iter_leaves(self):
        """Yield ``(tree_index, leaf_indices)`` over all trees."""
        for ti, tree in enumerate(self.trees):
            for leaf in tree.leaves:
                yield ti, leaf


def batch_leaves(
    leaves: list[np.ndarray],
    max_batch_cells: int = 1 << 23,
) -> "list[tuple[np.ndarray, np.ndarray]]":
    """Group disjoint leaves into padded batches for the batched kernel.

    Leaves are sorted by size and chunked so that each batch's all-pairs
    distance tensor (``b * m * m`` float32 cells, with ``m`` the batch's
    widest leaf) stays under ``max_batch_cells``; sorting first keeps the
    padding waste small because co-batched leaves have similar sizes.

    Returns a list of ``(ids_matrix, lengths)`` pairs: ``ids_matrix`` is
    ``(b, m)`` int64 padded with id 0 (masked via ``lengths``).
    """
    nonempty = [leaf for leaf in leaves if leaf.shape[0] >= 2]
    if not nonempty:
        return []
    order = np.argsort([leaf.shape[0] for leaf in nonempty], kind="stable")
    batches: list[tuple[np.ndarray, np.ndarray]] = []
    group: list[np.ndarray] = []
    group_width = 0
    for li in order:
        leaf = nonempty[li]
        width = max(group_width, leaf.shape[0])
        if group and (len(group) + 1) * width * width > max_batch_cells:
            batches.append(_pack_leaf_group(group))
            group, group_width = [], 0
            width = leaf.shape[0]
        group.append(leaf)
        group_width = width
    if group:
        batches.append(_pack_leaf_group(group))
    return batches


def _pack_leaf_group(group: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    lengths = np.array([leaf.shape[0] for leaf in group], dtype=np.int64)
    width = int(lengths.max())
    mat = np.zeros((len(group), width), dtype=np.int64)
    for i, leaf in enumerate(group):
        mat[i, : leaf.shape[0]] = leaf
    return mat, lengths


def forest_leaf_batches(
    forest: RPForest,
    max_batch_cells: int = 1 << 23,
) -> "list[tuple[np.ndarray, np.ndarray]]":
    """Every tree's padded leaf batches, flattened in serial (tree) order.

    This is the canonical enumeration the builder replays - one tree at a
    time, each tree's leaves grouped by :func:`batch_leaves` - and the
    unit of work the sharded leaf phase splits across workers: shard
    boundaries fall between batches, so shard order equals serial order.
    """
    return [
        batch
        for tree in forest.trees
        for batch in batch_leaves(tree.leaves, max_batch_cells)
    ]


def _build_tree_task(x: np.ndarray, leaf_size: int, seed_seq, spill: float) -> RPTree:
    """Module-level worker for the process pool (fork-inheritable)."""
    return build_tree(x, leaf_size, np.random.default_rng(seed_seq), spill=spill)


def build_forest(
    x: np.ndarray, n_trees: int, leaf_size: int, seed: RngStream = None,
    n_jobs: int = 1, spill: float = 0.0, obs=None,
) -> RPForest:
    """Build ``n_trees`` independent RP trees.

    Each tree gets its own spawned RNG stream, so the forest is
    reproducible for a given seed and independent of build order *and*
    of ``n_jobs``: trees are independent, so with ``n_jobs > 1`` they
    build in forked worker processes (the points matrix is inherited
    copy-on-write, never pickled) with bitwise-identical results.

    With an :class:`~repro.obs.Observability` attached, the serial path
    wraps each tree in a ``tree-<i>`` span and emits paired
    ``tree_build:before``/``:after`` hooks; the forked path cannot observe
    workers individually, so it emits one hook pair for the whole batch
    (``tree=-1``, ``n_trees`` in the payload).
    """
    n_trees = check_positive_int(n_trees, "n_trees")
    if n_jobs > 1:
        from repro.utils.parallel import map_forked

        # spawn SeedSequences (picklable and tiny) rather than generators
        if isinstance(seed, np.random.Generator):
            child_seqs = [g.bit_generator.seed_seq for g in seed.spawn(n_trees)]
        elif isinstance(seed, np.random.SeedSequence):
            child_seqs = seed.spawn(n_trees)
        else:
            child_seqs = np.random.SeedSequence(seed).spawn(n_trees)
        if obs is not None:
            from repro.obs.hooks import Events

            obs.hooks.emit(Events.TREE_BUILD_BEFORE, tree=-1, n_trees=n_trees,
                           n_jobs=n_jobs)
        trees = map_forked(
            _build_tree_task, x, [(leaf_size, s, spill) for s in child_seqs], n_jobs
        )
        if obs is not None:
            from repro.obs.hooks import Events

            obs.hooks.emit(Events.TREE_BUILD_AFTER, tree=-1, n_trees=n_trees,
                           n_jobs=n_jobs)
        return RPForest(trees=trees)
    streams = spawn_streams(seed, n_trees)
    if obs is None:
        return RPForest(
            trees=[build_tree(x, leaf_size, s, spill=spill) for s in streams]
        )
    from repro.obs.hooks import Events

    trees = []
    for ti, stream in enumerate(streams):
        obs.hooks.emit(Events.TREE_BUILD_BEFORE, tree=ti, n_trees=n_trees)
        with obs.trace.span(f"tree-{ti}") as span:
            tree = build_tree(x, leaf_size, stream, spill=spill)
            span.set(n_leaves=tree.n_leaves)
        trees.append(tree)
        obs.hooks.emit(Events.TREE_BUILD_AFTER, tree=ti, n_trees=n_trees,
                       n_leaves=tree.n_leaves)
    return RPForest(trees=trees)
