"""Compressed vector storage: scalar / product quantization + ADC scoring.

At millions of points the float32 matrix - not the graph - dominates both
memory and gather bandwidth (the paper's 639%-vs-FAISS framing is exactly
a fight about vector bandwidth).  This module adds the standard compressed
tier the large-scale GPU KNN literature leans on (GGNN, FAISS IVFPQ):

* :class:`ScalarQuantizer` (``"sq8"``) - uint8 codes with per-dimension
  affine ``min/scale`` parameters: a fixed 4x reduction with decode error
  bounded by half a quantization step per dimension;
* :class:`ProductQuantizer` (``"pq{M}"``) - the vector is split into ``M``
  sub-spaces, each encoded as the id of its nearest entry in a 256-entry
  codebook trained with :func:`repro.baselines.kmeans.kmeans` - ``4d/M``x
  reduction (16x for ``d=32, M=8``) at the cost of codebook training;
* :class:`QuantizedStore` - the uniform container the search engine and
  the serving stack hold next to (or instead of) the float32 matrix:
  codes + parameters, persistence, and the per-query lookup tables that
  feed the asymmetric-distance microkernel
  (:func:`repro.kernels.distance.adc_l2_query_gather`).

**Asymmetric distance (ADC)**: queries stay in full precision; only the
database side is quantized.  For every query a table of partial squared
distances to each codebook entry is built once (``(M, ksub)`` floats), and
scoring a candidate reduces to ``M`` table lookups summed - no decode, no
subtraction, and code gathers touch ``M`` bytes instead of ``4d``.  Both
quantizers expose the same LUT contract, so one microkernel (and one SIMT
kernel, :mod:`repro.simt_kernels.adc_kernels`) serves both: SQ8 is simply
the degenerate PQ with one sub-space per dimension and the affine grid as
its 256-entry codebook.

Quantized beams are *re-ranked*: the search engine re-scores the top beam
with the full-precision vectors before emitting results, so returned
distances are exact and recall loss stays within the rerank budget (see
``docs/quantization.md`` for the measured trade-off).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, NamedTuple

import numpy as np

from repro.errors import ConfigurationError, DataError
from repro.utils.arrays import blockwise_ranges
from repro.utils.rng import RngStream

#: codebook entries per sub-space (uint8 codes)
KSUB_MAX = 256

#: kmeans training caps: Lloyd iterations and the training subsample
_PQ_TRAIN_ITERS = 10
_PQ_TRAIN_SAMPLE = 65_536

#: rows of ``x`` encoded per block (bounds the assignment temporaries)
_ENCODE_BLOCK = 4096


class QuantSpec(NamedTuple):
    """A parsed quantization spec: kind, sub-space count, canonical string.

    ``spec`` is the canonical form (``"none"``, ``"sq8"``, ``"pq8"``):
    the string every config field and persisted store holds, so spec
    equality is string equality regardless of how the user typed it.
    """

    kind: str
    m: int
    spec: str


def parse_quantization(spec: str) -> QuantSpec:
    """Validate a quantization spec; returns ``(kind, m_subspaces, spec)``.

    ``"none"`` (or ``""``) -> ``("none", 0, "none")``, ``"sq8"`` ->
    ``("sq8", 0, "sq8")``, and ``"pq{M}"`` (``M`` bare digits, e.g.
    ``"pq8"``) -> ``("pq", M, "pq{M}")``.  Parsing is case-insensitive
    and strips surrounding whitespace; the returned ``spec`` is the
    canonical lowercase form, which callers must store instead of the
    raw input (``SearchConfig`` / ``QuantizationPolicy`` /
    ``QuantizedStore.spec`` all do).
    """
    s = str(spec).strip().lower()
    if s in ("none", ""):
        return QuantSpec("none", 0, "none")
    if s == "sq8":
        return QuantSpec("sq8", 0, "sq8")
    if s.startswith("pq") and s[2:].isascii() and s[2:].isdigit():
        # bare digits only: int() would also tolerate "pq+8" / "pq 8",
        # and those non-canonical forms would leak into persisted specs
        m = int(s[2:])
        if m >= 1:
            return QuantSpec("pq", m, f"pq{m}")
    raise ConfigurationError(
        f"unknown quantization spec {spec!r}; use 'none', 'sq8' or 'pq<M>' (e.g. 'pq8')"
    )


def _check_points(x: np.ndarray, name: str = "points") -> np.ndarray:
    x = np.ascontiguousarray(x, dtype=np.float32)
    if x.ndim != 2 or x.shape[0] < 1:
        raise DataError(f"{name} must be a non-empty (n, d) matrix, got shape {x.shape}")
    return x


class ScalarQuantizer:
    """Per-dimension affine uint8 quantization (``"sq8"``).

    ``encode(x)[i, d] = round((x[i, d] - lo[d]) / scale[d])`` clipped to
    ``[0, 255]``; constant dimensions get ``scale=1`` so they encode to
    ``0`` and decode exactly.  The ADC view treats every dimension as a
    sub-space whose 256-entry codebook is the affine grid
    ``lo[d] + scale[d] * c``.
    """

    kind = "sq8"

    def __init__(self, lo: np.ndarray, scale: np.ndarray) -> None:
        self.lo = np.ascontiguousarray(lo, dtype=np.float32)
        self.scale = np.ascontiguousarray(scale, dtype=np.float32)
        if self.lo.shape != self.scale.shape or self.lo.ndim != 1:
            raise DataError("lo/scale must be matching (d,) vectors")

    @property
    def dim(self) -> int:
        return self.lo.shape[0]

    @property
    def subspaces(self) -> int:
        return self.lo.shape[0]

    @property
    def ksub(self) -> int:
        return KSUB_MAX

    @classmethod
    def fit(cls, x: np.ndarray) -> "ScalarQuantizer":
        """Fit the per-dimension grid to ``x``'s min/max envelope.

        Deterministic - no sampling, so no ``seed`` parameter (it used
        to accept one and silently ignore it; dropped for honesty with
        :meth:`ProductQuantizer.fit`, which genuinely consumes its seed).
        """
        x = _check_points(x)
        lo = x.min(axis=0)
        hi = x.max(axis=0)
        scale = (hi - lo) / np.float32(KSUB_MAX - 1)
        # constant dimensions: any positive scale works (codes are all 0)
        scale = np.where(scale > 0, scale, np.float32(1.0)).astype(np.float32)
        return cls(lo, scale)

    def encode(self, x: np.ndarray) -> np.ndarray:
        x = _check_points(x)
        if x.shape[1] != self.dim:
            raise DataError(f"expected dim {self.dim}, got {x.shape[1]}")
        codes = np.empty(x.shape, dtype=np.uint8)
        for s, e in blockwise_ranges(x.shape[0], _ENCODE_BLOCK):
            q = np.rint((x[s:e] - self.lo) / self.scale)
            codes[s:e] = np.clip(q, 0, KSUB_MAX - 1).astype(np.uint8)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        return (self.lo + self.scale * codes.astype(np.float32)).astype(np.float32)

    def luts(self, queries: np.ndarray) -> np.ndarray:
        """Per-query ADC tables: ``(m, d, 256)`` squared partial distances."""
        q = _check_points(queries, "queries")
        if q.shape[1] != self.dim:
            raise DataError(f"expected dim {self.dim}, got {q.shape[1]}")
        grid = self.lo[:, None] + self.scale[:, None] * np.arange(
            KSUB_MAX, dtype=np.float32
        )
        diff = q[:, :, None] - grid[None, :, :]
        np.square(diff, out=diff)
        return diff

    def nbytes(self) -> int:
        return int(self.lo.nbytes + self.scale.nbytes)

    def params(self) -> dict[str, np.ndarray]:
        return {"lo": self.lo, "scale": self.scale}

    @classmethod
    def from_params(cls, data: dict[str, np.ndarray]) -> "ScalarQuantizer":
        return cls(data["lo"], data["scale"])


class ProductQuantizer:
    """Product quantization: ``M`` sub-spaces, one trained codebook each.

    Sub-spaces are the ``np.array_split`` partition of the dimensions, so
    any ``d >= M`` works (uneven tails allowed).  Codebooks are trained
    with the library's own Lloyd k-means (:mod:`repro.baselines.kmeans`),
    ``ksub = min(256, n_train)`` entries shared across sub-spaces.
    """

    kind = "pq"

    def __init__(self, codebooks: list[np.ndarray]) -> None:
        if not codebooks:
            raise DataError("ProductQuantizer needs at least one codebook")
        self.codebooks = [np.ascontiguousarray(c, dtype=np.float32) for c in codebooks]
        ksubs = {c.shape[0] for c in self.codebooks}
        if len(ksubs) != 1:
            raise DataError(f"codebooks disagree on ksub: {sorted(ksubs)}")
        if self.codebooks[0].shape[0] > KSUB_MAX:
            raise DataError(
                f"ksub {self.codebooks[0].shape[0]} exceeds uint8 capacity {KSUB_MAX}"
            )
        dims = np.array([c.shape[1] for c in self.codebooks])
        self._splits = np.concatenate([[0], np.cumsum(dims)])

    @property
    def dim(self) -> int:
        return int(self._splits[-1])

    @property
    def subspaces(self) -> int:
        return len(self.codebooks)

    @property
    def ksub(self) -> int:
        return int(self.codebooks[0].shape[0])

    @classmethod
    def fit(cls, x: np.ndarray, m_subspaces: int, seed: RngStream = None) -> "ProductQuantizer":
        from repro.baselines.kmeans import kmeans
        from repro.utils.rng import as_generator

        x = _check_points(x)
        n, d = x.shape
        if m_subspaces < 1 or m_subspaces > d:
            raise ConfigurationError(
                f"pq needs 1 <= M <= dim, got M={m_subspaces} for dim={d}"
            )
        ksub = min(KSUB_MAX, n)
        rng = as_generator(seed)
        bounds = np.linspace(0, d, m_subspaces + 1).astype(int)
        codebooks = []
        for m in range(m_subspaces):
            sub = x[:, bounds[m] : bounds[m + 1]]
            codebooks.append(
                kmeans(
                    sub,
                    ksub,
                    n_iters=_PQ_TRAIN_ITERS,
                    seed=rng,
                    train_sample=_PQ_TRAIN_SAMPLE,
                )
            )
        return cls(codebooks)

    def encode(self, x: np.ndarray) -> np.ndarray:
        from repro.baselines.kmeans import assign

        x = _check_points(x)
        if x.shape[1] != self.dim:
            raise DataError(f"expected dim {self.dim}, got {x.shape[1]}")
        codes = np.empty((x.shape[0], self.subspaces), dtype=np.uint8)
        for m, cb in enumerate(self.codebooks):
            lo, hi = self._splits[m], self._splits[m + 1]
            labels, _ = assign(x[:, lo:hi], cb)
            codes[:, m] = labels.astype(np.uint8)
        return codes

    def decode(self, codes: np.ndarray) -> np.ndarray:
        out = np.empty((codes.shape[0], self.dim), dtype=np.float32)
        for m, cb in enumerate(self.codebooks):
            lo, hi = self._splits[m], self._splits[m + 1]
            out[:, lo:hi] = cb[codes[:, m]]
        return out

    def luts(self, queries: np.ndarray) -> np.ndarray:
        """Per-query ADC tables: ``(m, M, ksub)`` squared sub-distances."""
        from repro.kernels.distance import pairwise_sq_l2_gemm

        q = _check_points(queries, "queries")
        if q.shape[1] != self.dim:
            raise DataError(f"expected dim {self.dim}, got {q.shape[1]}")
        out = np.empty((q.shape[0], self.subspaces, self.ksub), dtype=np.float32)
        for m, cb in enumerate(self.codebooks):
            lo, hi = self._splits[m], self._splits[m + 1]
            out[:, m, :] = pairwise_sq_l2_gemm(q[:, lo:hi], cb)
        return out

    def nbytes(self) -> int:
        return int(sum(c.nbytes for c in self.codebooks))

    def params(self) -> dict[str, np.ndarray]:
        return {f"codebook_{m}": c for m, c in enumerate(self.codebooks)}

    @classmethod
    def from_params(cls, data: dict[str, np.ndarray]) -> "ProductQuantizer":
        books = []
        m = 0
        while f"codebook_{m}" in data:
            books.append(data[f"codebook_{m}"])
            m += 1
        return cls(books)


class QuantizedStore:
    """A quantized copy of the point matrix plus everything ADC needs.

    The store lives beside (hot path) or instead of (cold storage) the
    float32 matrix: ``codes`` is the ``(n, M)`` uint8 code matrix the
    microkernels gather from, ``quantizer`` holds the trained parameters,
    and :meth:`luts` builds the per-query tables that
    :func:`repro.kernels.distance.adc_l2_query_gather` consumes.

    Under churn (see ``docs/quantization.md``) the store is versioned
    with the mutable index's snapshot epoch: inserted rows are encoded
    against the *frozen* trained parameters (:meth:`encode` +
    :meth:`with_codes` - no retrain on the hot path), encode drift is
    tracked as :meth:`reconstruction_mse` against the training-time
    baseline :attr:`train_mse`, and compaction retrains via :meth:`fit`
    on the surviving distribution.
    """

    def __init__(
        self,
        spec: str,
        quantizer: Any,
        codes: np.ndarray,
        *,
        train_mse: float | None = None,
    ) -> None:
        self.spec = parse_quantization(spec).spec
        self.quantizer = quantizer
        self.codes = np.ascontiguousarray(codes, dtype=np.uint8)
        #: training-time reconstruction MSE - the drift baseline; ``None``
        #: for stores persisted before drift tracking existed
        self.train_mse = None if train_mse is None else float(train_mse)
        if self.codes.ndim != 2 or self.codes.shape[1] != quantizer.subspaces:
            raise DataError(
                f"codes shape {self.codes.shape} does not match "
                f"{quantizer.subspaces} sub-spaces"
            )

    # -- construction -----------------------------------------------------------

    @classmethod
    def fit(cls, x: np.ndarray, spec: str, seed: RngStream = None) -> "QuantizedStore":
        """Train the quantizer named by ``spec`` on ``x`` and encode it."""
        kind, m, canon = parse_quantization(spec)
        if kind == "none":
            raise ConfigurationError("QuantizedStore.fit() needs sq8 or pq<M>, not 'none'")
        if kind == "sq8":
            quantizer: Any = ScalarQuantizer.fit(x)
        else:
            quantizer = ProductQuantizer.fit(x, m, seed=seed)
        codes = quantizer.encode(x)
        store = cls(canon, quantizer, codes)
        store.train_mse = store.reconstruction_mse(x, codes)
        return store

    def with_codes(self, codes: np.ndarray) -> "QuantizedStore":
        """A new store over ``codes`` sharing this store's frozen quantizer.

        The epoch-versioning primitive: the mutable index publishes each
        insert as ``store.with_codes(concat(store.codes, new_codes))`` -
        parameters (and the drift baseline) are shared by reference, so
        existing codes are bit-stable across flips and no retrain happens
        on the write path.
        """
        return QuantizedStore(
            self.spec, self.quantizer, codes, train_mse=self.train_mse
        )

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Encode rows with the *frozen* trained parameters (no retrain)."""
        return self.quantizer.encode(x)

    def reconstruction_mse(
        self, x: np.ndarray, codes: np.ndarray | None = None
    ) -> float:
        """Mean squared reconstruction error of ``x`` under this quantizer.

        Compared against :attr:`train_mse` this is the *encode drift*
        signal: a batch drawn from the training distribution reconstructs
        at ~baseline MSE, while a shifted batch (codes clipped at the sq8
        grid edge, centroids far from the pq sub-vectors) reconstructs
        measurably worse - the gauge the mutable index exports and the
        trigger for drift-forced compaction.
        """
        x = _check_points(x)
        if codes is None:
            codes = self.quantizer.encode(x)
        total = 0.0
        for s, e in blockwise_ranges(x.shape[0], _ENCODE_BLOCK):
            diff = self.quantizer.decode(codes[s:e]) - x[s:e]
            total += float(np.sum(np.square(diff, out=diff)))
        return total / float(x.shape[0] * x.shape[1])

    def drift_ratio(self, batch_mse: float) -> float | None:
        """``batch_mse`` relative to the training baseline (``None`` when
        the baseline is unknown or degenerate-zero)."""
        if not self.train_mse:
            return None
        return float(batch_mse) / self.train_mse

    # -- properties -------------------------------------------------------------

    @property
    def kind(self) -> str:
        """``"sq8"`` or ``"pq"`` - which scoring kernel fits this store.

        sq8 candidates score fastest by decode-and-subtract
        (:func:`repro.kernels.distance.sq8_l2_query_gather`: one byte
        gathered per dimension, no tables); pq candidates score by
        table-lookup ADC (``M`` lookups instead of ``d`` float ops).
        """
        return parse_quantization(self.spec)[0]

    @property
    def n(self) -> int:
        return self.codes.shape[0]

    @property
    def dim(self) -> int:
        return int(self.quantizer.dim)

    @property
    def subspaces(self) -> int:
        return int(self.quantizer.subspaces)

    @property
    def ksub(self) -> int:
        return int(self.quantizer.ksub)

    def nbytes(self) -> int:
        """Bytes held by the compressed tier (codes + parameters)."""
        return int(self.codes.nbytes) + int(self.quantizer.nbytes())

    def memory_stats(self) -> dict[str, Any]:
        """The memory-math summary the benchmarks and docs report."""
        full = 4 * self.n * self.dim
        return {
            "quantization": self.spec,
            "n": self.n,
            "dim": self.dim,
            "float32_bytes": int(full),
            "quantized_bytes": self.nbytes(),
            "code_bytes": int(self.codes.nbytes),
            "param_bytes": int(self.quantizer.nbytes()),
            "reduction": float(full) / float(max(1, self.nbytes())),
        }

    # -- scoring ----------------------------------------------------------------

    def luts(self, queries: np.ndarray) -> np.ndarray:
        """ADC lookup tables for a query block: ``(m, M, ksub)`` float32."""
        return self.quantizer.luts(queries)

    def decode(self, ids: np.ndarray | None = None) -> np.ndarray:
        """Reconstructed float32 vectors (all rows, or the listed ids)."""
        codes = self.codes if ids is None else self.codes[np.asarray(ids)]
        return self.quantizer.decode(codes)

    # -- persistence ------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Persist spec, codes, quantizer parameters and the drift
        baseline as one ``.npz``."""
        extra: dict[str, np.ndarray] = {}
        if self.train_mse is not None:
            extra["train_mse"] = np.float64(self.train_mse)
        np.savez_compressed(
            path,
            spec=np.array(self.spec),
            codes=self.codes,
            **extra,
            **self.quantizer.params(),
        )

    @classmethod
    def load(cls, path: str | Path) -> "QuantizedStore":
        _meta_keys = ("spec", "codes", "train_mse")
        with np.load(path) as data:
            spec = str(data["spec"])
            kind = parse_quantization(spec).kind
            arrays = {k: data[k] for k in data.files if k not in _meta_keys}
            if kind == "sq8":
                quantizer: Any = ScalarQuantizer.from_params(arrays)
            else:
                quantizer = ProductQuantizer.from_params(arrays)
            train_mse = (
                float(data["train_mse"]) if "train_mse" in data.files else None
            )
            return cls(spec, quantizer, data["codes"], train_mse=train_mse)
