"""The paper's primary contribution: w-KNNG construction.

Pipeline (one :meth:`~repro.core.builder.WKNNGBuilder.build` call):

1. build a **random projection forest** over the dataset
   (:mod:`repro.core.rpforest`);
2. for every leaf of every tree, run the **leaf all-pairs kernel**: each
   pair of co-located points is a candidate edge, maintained in the
   global-memory k-NN lists by the configured warp-centric strategy
   (:mod:`repro.kernels`);
3. optionally run **neighbour-of-neighbour refinement** rounds
   (:mod:`repro.core.refine`) that propose each point's neighbours'
   neighbours as additional candidates;
4. sort the lists and return a :class:`~repro.core.graph.KNNGraph`.
"""

from repro.core.config import BuildConfig
from repro.core.builder import WKNNGBuilder, BuildReport
from repro.core.graph import KNNGraph
from repro.core.mutable import IndexSnapshot, MutableConfig, MutableIndex
from repro.core.quant import (
    ProductQuantizer,
    QuantizedStore,
    ScalarQuantizer,
    parse_quantization,
)
from repro.core.rpforest import RPForest, RPTree

__all__ = [
    "BuildConfig",
    "WKNNGBuilder",
    "BuildReport",
    "KNNGraph",
    "IndexSnapshot",
    "MutableConfig",
    "MutableIndex",
    "ProductQuantizer",
    "QuantizedStore",
    "RPForest",
    "RPTree",
    "ScalarQuantizer",
    "parse_quantization",
]
