"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``build``
    Build a K-NN graph from an ``.fvecs``/``.npy`` file (or a named
    synthetic dataset) and save it as ``.npz``.
``eval``
    Compare a saved graph against exact ground truth (recall, distance
    ratio).
``bench``
    Run one quick named-workload comparison (w-KNNG vs IVF at a recall
    target) and print the table.
``search``
    Build (or load) a graph-guided search index and answer a query
    batch, reporting recall and throughput per engine.
``serve``
    Run the micro-batching query server under a closed-loop client
    swarm and report throughput + latency percentiles.
``loadgen``
    Drive open-loop load (target arrival rate, per-request deadlines)
    against the server: the overload/SLO instrument.
``neighbors``
    Emit a GNN-style COO edge list (``knn_graph``/``radius_graph``)
    through a serving frontend - single server or sharded cluster - and
    optionally run KNN-DBSCAN over the built graph.
``info``
    Show the library version, available strategies, datasets, workloads.

Examples
--------
::

    python -m repro build --dataset gaussian --n 10000 --k 16 -o graph.npz
    python -m repro build --input base.fvecs --k 10 --strategy atomic -o g.npz
    python -m repro eval --input base.fvecs --graph g.npz
    python -m repro bench --workload clustered-128d --target 0.99 --scale 0.1
    python -m repro search --dataset gaussian --n 20000 --ef 64 --compare-legacy
    python -m repro search --dataset gaussian --metric cosine --save-index idx/
    python -m repro serve --dataset gaussian --n 20000 --clients 16 --cache-size 512
    python -m repro loadgen --load-index idx/ --rate 3000 --deadline-ms 50
    python -m repro neighbors --dataset gaussian --n 20000 --topk 8 -o edges.npz
    python -m repro neighbors --dataset clustered --radius 2.5 --dbscan-eps 2.5
    python -m repro info
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

import numpy as np


def _load_points(args) -> np.ndarray:
    from repro.data.loaders import read_fvecs
    from repro.data.synthetic import make_dataset

    if args.input:
        path = Path(args.input)
        if path.suffix == ".fvecs":
            return read_fvecs(path)
        if path.suffix == ".npy":
            return np.load(path).astype(np.float32)
        raise SystemExit(f"unsupported input format: {path.suffix} (.fvecs/.npy)")
    if args.dataset:
        return make_dataset(args.dataset, args.n, seed=args.seed, dim=args.dim) \
            if args.dim else make_dataset(args.dataset, args.n, seed=args.seed)
    raise SystemExit("provide --input FILE or --dataset NAME")


def _add_data_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--input", help=".fvecs or .npy points file")
    p.add_argument("--dataset", help="synthetic dataset name (see `info`)")
    p.add_argument("--n", type=int, default=10_000, help="synthetic point count")
    p.add_argument("--dim", type=int, default=None, help="synthetic dimensionality")
    p.add_argument("--seed", type=int, default=0)


def cmd_build(args) -> int:
    import os

    from repro import BuildConfig, WKNNGBuilder
    from repro.obs import Observability

    if args.sanitize is not None:
        if args.backend != "simt":
            raise SystemExit(
                "--sanitize requires --backend simt (the wksan race detector "
                "instruments the simulated device)"
            )
        # the env switch is how the sanitizer reaches the DeviceConfig the
        # pipeline constructs internally (and any worker processes)
        os.environ["WKNN_SANITIZE"] = args.sanitize
    x = _load_points(args)
    cfg = BuildConfig(
        k=args.k,
        strategy=args.strategy,
        backend=args.backend,
        n_trees=args.trees,
        leaf_size=args.leaf_size,
        refine_iters=args.refine,
        seed=args.seed,
        n_jobs=args.jobs,
    )
    obs = Observability(trace_memory=args.trace_memory)
    builder = WKNNGBuilder(cfg, obs=obs)
    t0 = time.perf_counter()
    graph, rep = builder.build(x, return_report=True)
    dt = time.perf_counter() - t0
    graph.save(args.output)
    print(f"built {graph} from {x.shape} in {dt:.2f}s -> {args.output}")
    for phase, secs in rep.phase_seconds.items():
        print(f"  {phase:<12s} {secs:8.3f}s")
    if "distance_evals" in rep.counters:
        print(f"  distance evals/point: "
              f"{rep.counters['distance_evals'] / graph.n:.0f}")
    san = graph.meta.get("sanitizer")
    if san is not None:
        if san["findings"] == 0:
            print("  wksan: clean (no findings)")
        else:
            kinds = ", ".join(f"{k}={v}" for k, v in sorted(san["by_kind"].items()))
            print(f"  wksan: {san['findings']} findings ({kinds})")
            for msg in san["messages"][:5]:
                print(f"    {msg}")
    if rep.parallel.get("n_jobs", 1) > 1:
        leaf = rep.parallel.get("leaf", {})
        print(f"  parallel: {rep.parallel['workers']} workers, "
              f"leaf merge {leaf.get('merge_seconds', 0.0):.3f}s")
    if args.trace_out:
        from repro.obs.export import write_trace

        path = write_trace(
            args.trace_out, obs,
            meta={"command": "build", "output": str(args.output),
                  "n": graph.n, "k": graph.k, "strategy": cfg.strategy},
        )
        print(f"  trace: {len(obs.trace.records)} spans -> {path}")
    return 0


def cmd_eval(args) -> int:
    from repro.baselines import exact_knn_graph
    from repro.core.graph import KNNGraph
    from repro.metrics.quality import distance_ratio

    x = _load_points(args)
    graph = KNNGraph.load(args.graph)
    if graph.n != x.shape[0]:
        raise SystemExit(
            f"graph has {graph.n} nodes but points file has {x.shape[0]} rows"
        )
    exact = exact_knn_graph(x, graph.k)
    print(f"recall@{graph.k}:       {graph.recall(exact):.4f}")
    print(f"distance ratio:  {distance_ratio(graph, exact):.4f}")
    print(f"complete:        {graph.is_complete()}")
    return 0


def cmd_bench(args) -> int:
    from repro.baselines.bruteforce import BruteForceKNN
    from repro.baselines.ivf import IVFConfig
    from repro.bench.match import match_ivf_recall, match_wknng_recall
    from repro.bench.workloads import get_workload
    from repro.core.config import BuildConfig

    w = get_workload(args.workload)
    x = w.materialize(args.scale)
    print(f"workload {args.workload}: n={x.shape[0]}, d={x.shape[1]}, "
          f"k={w.k}, target recall {args.target}")
    gt, _ = BruteForceKNN(x).search(x, w.k, exclude_self=True)
    base = BuildConfig(k=w.k, strategy=args.strategy, n_trees=1, leaf_size=64,
                       refine_iters=8, refine_fanout=2, seed=0)
    wk = match_wknng_recall(x, gt, base, args.target).achieved
    ivf = match_ivf_recall(x, gt, w.k, args.target, IVFConfig(seed=7)).achieved
    print(f"w-knng/{args.strategy}: recall={wk.recall:.4f} "
          f"modeled={wk.modeled_cycles / 1e6:.1f} Mcycles "
          f"(trees={wk.params['n_trees']}, refine={wk.params['refine_iters']})")
    print(f"ivf-flat:      recall={ivf.recall:.4f} "
          f"modeled={ivf.modeled_cycles / 1e6:.1f} Mcycles "
          f"(nprobe={ivf.params['nprobe']})")
    print(f"modeled speedup (ivf/wknng): "
          f"{ivf.modeled_cycles / max(1, wk.modeled_cycles):.2f}x")
    return 0


def cmd_search(args) -> int:
    from repro.apps.search import GraphSearchIndex, SearchConfig
    from repro.baselines.bruteforce import BruteForceKNN
    from repro.core.config import BuildConfig

    search_cfg = SearchConfig(
        ef=args.ef, frontier=args.frontier, n_jobs=args.jobs,
        seeds_per_tree=args.seeds_per_tree,
        quantization=args.quantization, rerank=args.rerank,
    )
    if args.load_index:
        index = GraphSearchIndex.load(args.load_index, search_cfg)
        x = index._engine._x  # prepared space; fine for self-queries below
        print(f"loaded index from {args.load_index}: "
              f"n={index.graph.n}, k={index.graph.k}, metric={index.metric}")
    else:
        x = _load_points(args)
        t0 = time.perf_counter()
        index = GraphSearchIndex.build(
            x,
            build_config=BuildConfig(
                k=args.k, strategy=args.strategy, n_trees=args.trees,
                leaf_size=args.leaf_size, seed=args.seed, metric=args.metric,
            ),
            search_config=search_cfg,
        )
        print(f"built index over {x.shape} ({args.metric}) "
              f"in {time.perf_counter() - t0:.2f}s")
    if args.save_index:
        index.save(args.save_index)
        print(f"saved index -> {args.save_index}")

    rng = np.random.default_rng(args.seed + 1)
    q = x[rng.choice(x.shape[0], size=min(args.queries, x.shape[0]),
                     replace=False)]
    engines = ("batched", "legacy") if args.compare_legacy else (args.engine,)
    gt_ids, _ = BruteForceKNN(x, metric=index.metric).search(q, args.topk)
    for engine in engines:
        run = index.search if engine == "batched" else index.search_legacy
        t0 = time.perf_counter()
        ids, _ = run(q, args.topk)
        dt = time.perf_counter() - t0
        hits = sum(
            np.intersect1d(ids[i][ids[i] >= 0], gt_ids[i]).size
            for i in range(q.shape[0])
        )
        recall = hits / (q.shape[0] * args.topk)
        print(f"{engine:<8s} recall@{args.topk}={recall:.4f}  "
              f"{q.shape[0] / dt:9.0f} queries/s  ({dt:.3f}s)")
    return 0


def _serving_index(args):
    """Build or load the GraphSearchIndex the serve/loadgen commands use."""
    from repro.apps.search import GraphSearchIndex, SearchConfig
    from repro.core.config import BuildConfig

    search_cfg = SearchConfig(ef=args.ef, quantization=args.quantization,
                              rerank=args.rerank)
    if args.load_index:
        index = GraphSearchIndex.load(args.load_index, search_cfg)
        print(f"loaded index from {args.load_index}: "
              f"n={index.n}, k={index.graph.k}, metric={index.metric}")
    else:
        x = _load_points(args)
        t0 = time.perf_counter()
        index = GraphSearchIndex.build(
            x,
            build_config=BuildConfig(k=args.k, strategy="tiled",
                                     seed=args.seed, metric=args.metric),
            search_config=search_cfg,
        )
        print(f"built index over {x.shape} ({args.metric}) "
              f"in {time.perf_counter() - t0:.2f}s")
    return index


def _serve_config(args):
    from repro.serve import (
        AdmissionPolicy,
        CachePolicy,
        DeadlinePolicy,
        QuantizationPolicy,
        ServeConfig,
        ShedPolicy,
    )

    return ServeConfig(
        admission=AdmissionPolicy(
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            queue_limit=args.queue_limit,
            n_workers=args.workers,
        ),
        deadline=DeadlinePolicy(default_ms=args.deadline_ms),
        cache=CachePolicy(size=args.cache_size),
        quant=QuantizationPolicy(mode=args.quantization, rerank=args.rerank),
        shed=ShedPolicy(enabled=not args.no_shed),
        default_k=args.topk,
        ef=args.ef,
    )


def _make_client(args, obs):
    """Build the SearchClient the serve/loadgen commands drive.

    ``--shards``/``--replicas`` select the sharded cluster; otherwise a
    single-process :class:`~repro.serve.KNNServer`.  Returns ``(client,
    query_pool)`` - the pool the request stream is sampled from.
    """
    cfg = _serve_config(args)
    if args.shards > 1 or args.replicas > 1:
        if args.load_index:
            raise SystemExit(
                "--load-index cannot be combined with --shards/--replicas: "
                "sharding re-partitions the raw points at build time"
            )
        from repro.apps.search import SearchConfig
        from repro.core.config import BuildConfig
        from repro.serve import ClusterClient, ClusterConfig

        x = _load_points(args)
        ccfg = ClusterConfig(
            n_shards=args.shards,
            n_replicas=args.replicas,
            backend=args.cluster_backend,
            shard_ef_policy=args.shard_ef_policy,
            serve=cfg,
        )
        t0 = time.perf_counter()
        client = ClusterClient.build(
            x,
            build_config=BuildConfig(k=args.k, strategy="tiled",
                                     seed=args.seed, metric=args.metric),
            search_config=SearchConfig(ef=args.ef, **cfg.quant.to_search_fields()),
            seed=args.seed,
            config=ccfg,
            obs=obs,
        )
        print(f"built {args.shards}x{args.replicas} "
              f"{client.backend}-backend cluster over {x.shape} "
              f"({args.metric}) in {time.perf_counter() - t0:.2f}s")
        return client, x
    from repro.serve import KNNServer

    index = _serving_index(args)
    return KNNServer(index, cfg, obs=obs), index._engine._x


def _print_serve_report(client, report) -> None:
    lat = report.latency_summary()
    print(f"  requests={report.requests}  ok={report.ok}  "
          f"rejected={report.rejected}  timeouts={report.timeouts}  "
          f"cached={report.cached}  shed={report.shed_served}")
    print(f"  throughput {report.throughput_qps:9.0f} q/s  "
          f"(offered {report.offered_qps:.0f} q/s)")
    print(f"  latency ms  p50={lat['p50']:.2f}  p95={lat['p95']:.2f}  "
          f"p99={lat['p99']:.2f}  mean={lat['mean']:.2f}")
    stats = client.stats()
    print(f"  server: batches={stats['batches']}  "
          f"shed_level={stats['shed_level']}  "
          f"deadline_violations={report.deadline_violations}")
    router = stats.get("router")
    if router is not None:
        print(f"  cluster: shards={stats['n_shards']}  "
              f"replicas={stats['n_replicas']}  "
              f"healthy={router['healthy_replicas']}  "
              f"failovers={router['failovers']}  "
              f"ejections={router['ejections']}")


def _maybe_write_serve_trace(args, obs, command: str) -> None:
    if getattr(args, "trace_out", None):
        from repro.obs.export import write_trace

        path = write_trace(args.trace_out, obs, meta={"command": command})
        print(f"  trace -> {path}")


def _add_quant_args(p) -> None:
    p.add_argument("--quantization", default="none",
                   help="compressed vector tier: none, sq8 or pq<M> "
                        "(e.g. pq16); candidates score via ADC lookup "
                        "tables, the top beam reranks in full precision")
    p.add_argument("--rerank", type=int, default=0,
                   help="beam entries reranked in full precision "
                        "(0 = whole beam; quantized modes only)")


def _add_serve_args(p, include_rate: bool) -> None:
    _add_data_args(p)
    _add_quant_args(p)
    p.add_argument("-k", "--k", type=int, default=16, help="graph degree")
    p.add_argument("--metric", default="sqeuclidean",
                   choices=("sqeuclidean", "cosine"))
    p.add_argument("--load-index", dest="load_index", default=None,
                   help="serve a previously saved index directory")
    p.add_argument("--topk", type=int, default=10, help="neighbours per query")
    p.add_argument("--ef", type=int, default=64, help="full-quality beam width")
    p.add_argument("--max-batch", type=int, default=64, dest="max_batch")
    p.add_argument("--max-wait-ms", type=float, default=2.0, dest="max_wait_ms")
    p.add_argument("--queue-limit", type=int, default=256, dest="queue_limit")
    p.add_argument("--workers", type=int, default=1)
    p.add_argument("--cache-size", type=int, default=0, dest="cache_size",
                   help="LRU result-cache entries (0 disables)")
    p.add_argument("--deadline-ms", type=float, default=None,
                   dest="deadline_ms", help="per-request deadline")
    p.add_argument("--no-shed", action="store_true", dest="no_shed",
                   help="disable ef-shedding degradation under load")
    p.add_argument("--shards", type=int, default=1,
                   help="index shards; >1 serves through the sharded "
                        "cluster (repro.serve.cluster)")
    p.add_argument("--replicas", type=int, default=1,
                   help="replica workers per shard (cluster serving)")
    p.add_argument("--cluster-backend", dest="cluster_backend",
                   default="auto", choices=("auto", "process", "thread"),
                   help="replica isolation: forked processes or in-process "
                        "threads ('auto' forks where available)")
    p.add_argument("--shard-ef-policy", dest="shard_ef_policy",
                   default="scaled", choices=("full", "scaled"),
                   help="per-shard beam width: 'full' sends the request ef "
                        "to every shard (flat-index parity), 'scaled' sends "
                        "~ef/S (throughput scales with shards)")
    p.add_argument("--queries", type=int, default=2000,
                   help="dataset rows sampled as the request stream")
    if include_rate:
        p.add_argument("--rate", type=float, default=2000.0,
                       help="offered arrival rate (requests/s)")
        p.add_argument("--duration", type=float, default=5.0,
                       help="seconds of open-loop load")
    else:
        p.add_argument("--clients", type=int, default=8,
                       help="closed-loop client threads")
        p.add_argument("--repeat", type=int, default=1,
                       help="passes over the sampled query stream")
        p.add_argument("--churn", type=float, default=None,
                       help="serve a MUTABLE index and apply this many "
                            "insert/delete batches per second while the "
                            "closed loop runs (epoch-versioned snapshots; "
                            "see docs/mutable.md)")
        p.add_argument("--churn-batch", type=int, default=32,
                       dest="churn_batch",
                       help="points per mutation batch (churn mode)")
        p.add_argument("--delete-fraction", type=float, default=0.5,
                       dest="delete_fraction",
                       help="fraction of mutation batches that delete "
                            "instead of insert (churn mode)")
    p.add_argument("--trace-out", dest="trace_out", default=None,
                   help="write the serving JSON-lines trace here")


def cmd_serve(args) -> int:
    """Closed-loop serving session over a server or sharded cluster."""
    from repro.obs import Observability
    from repro.serve import closed_loop

    if getattr(args, "churn", None) is not None:
        return _cmd_serve_churn(args)
    obs = Observability()
    client, x = _make_client(args, obs)
    rng = np.random.default_rng(args.seed + 1)
    q = x[rng.choice(x.shape[0], size=min(args.queries, x.shape[0]),
                     replace=False)]
    print(f"serving closed-loop: {q.shape[0]} queries x{args.repeat} over "
          f"{args.clients} clients (max_batch={args.max_batch}, "
          f"max_wait={args.max_wait_ms}ms, ef={args.ef})")
    with client:
        report = closed_loop(client, q, args.topk, clients=args.clients,
                             repeat=args.repeat, deadline_ms=args.deadline_ms,
                             collect_ids=False)
        _print_serve_report(client, report)
    _maybe_write_serve_trace(args, obs, "serve")
    return 0


def _cmd_serve_churn(args) -> int:
    """``serve --churn``: query a mutable index while mutating it.

    Half the dataset seeds the initial index; the other half is the
    insert pool the churn loop cycles through.  The closed-loop query
    stream samples from the *initial* half so it stays meaningful while
    points come and go.
    """
    import threading

    from repro.apps.search import SearchConfig
    from repro.core import BuildConfig, MutableIndex
    from repro.obs import Observability
    from repro.serve import KNNServer, churn_loop, closed_loop

    if args.shards > 1 or args.replicas > 1 or args.load_index:
        raise SystemExit(
            "--churn serves a freshly built mutable index; it cannot be "
            "combined with --shards/--replicas/--load-index"
        )
    obs = Observability()
    cfg = _serve_config(args)
    x = _load_points(args)
    half = x.shape[0] // 2
    base, pool = x[:half], x[half:]
    t0 = time.perf_counter()
    # quantization composes with churn: inserts encode against the frozen
    # codebooks, compaction retrains (see docs/quantization.md)
    mut = MutableIndex.build(
        base,
        BuildConfig(k=args.k, strategy="tiled", seed=args.seed,
                    metric=args.metric),
        SearchConfig(ef=args.ef, **cfg.quant.to_search_fields()),
        obs=obs,
    )
    print(f"built mutable index over {base.shape} ({args.metric}) "
          f"in {time.perf_counter() - t0:.2f}s; insert pool {pool.shape}")
    rng = np.random.default_rng(args.seed + 1)
    q = base[rng.choice(base.shape[0], size=min(args.queries, base.shape[0]),
                        replace=False)]
    print(f"serving closed-loop under churn: {q.shape[0]} queries "
          f"x{args.repeat} over {args.clients} clients, "
          f"{args.churn:.0f} mutation batches/s "
          f"(batch={args.churn_batch}, delete_fraction="
          f"{args.delete_fraction})")
    stop = threading.Event()
    churn_out: dict = {}

    def churner() -> None:
        churn_out["report"] = churn_loop(
            mut, pool, ops_per_sec=args.churn, duration_s=3600.0,
            batch_size=args.churn_batch,
            delete_fraction=args.delete_fraction,
            seed=args.seed + 2, stop=stop,
        )

    with KNNServer(mut, cfg, obs=obs) as server:
        thread = threading.Thread(target=churner, daemon=True)
        thread.start()
        try:
            report = closed_loop(
                server, q, args.topk, clients=args.clients,
                repeat=args.repeat, deadline_ms=args.deadline_ms,
                collect_ids=False,
            )
        finally:
            stop.set()
            thread.join()
        _print_serve_report(server, report)
        churn = churn_out["report"]
        print(f"  churn: ops={churn.ops} ({churn.ops_per_sec:.0f}/s)  "
              f"inserted={churn.inserted}  deleted={churn.deleted}  "
              f"errors={churn.errors}")
        stats = mut.stats()
        print(f"  index: epoch {churn.start_epoch} -> {churn.end_epoch} "
              f"({churn.flips} flips)  "
              f"n_live={stats['n_live']}  "
              f"compactions={stats['compactions']}")
        if stats["quantization"] != "none":
            drift = stats["quant_drift"]
            print(f"  quant: {stats['quantization']}  drift="
                  f"{'n/a' if drift is None else format(drift, '.2f')}")
    _maybe_write_serve_trace(args, obs, "serve")
    return 0


def cmd_loadgen(args) -> int:
    """Open-loop load generation: arrivals at a target rate with deadlines."""
    from repro.obs import Observability
    from repro.serve import open_loop

    obs = Observability()
    client, x = _make_client(args, obs)
    rng = np.random.default_rng(args.seed + 1)
    q = x[rng.choice(x.shape[0], size=min(args.queries, x.shape[0]),
                     replace=False)]
    print(f"loadgen open-loop: {args.rate:.0f} req/s for {args.duration:.1f}s "
          f"(deadline={args.deadline_ms}ms, queue_limit={args.queue_limit})")
    with client:
        report = open_loop(client, q, args.topk, rate_qps=args.rate,
                           duration_s=args.duration,
                           deadline_ms=args.deadline_ms, seed=args.seed)
        _print_serve_report(client, report)
    _maybe_write_serve_trace(args, obs, "loadgen")
    return 0


def cmd_neighbors(args) -> int:
    """COO edge lists (and optional DBSCAN labels) via a serving frontend."""
    from repro.neighbors import DBSCANConfig, KNNDBSCAN, knn_graph, radius_graph
    from repro.obs import Observability

    obs = Observability()
    client, x = _make_client(args, obs)
    query_mask = None
    if args.query_limit is not None:
        query_mask = np.arange(min(args.query_limit, x.shape[0]))
    t0 = time.perf_counter()
    with client:
        kwargs = dict(query_mask=query_mask, metric=args.metric,
                      backend=client, ef=args.ef, obs=obs, return_dists=True)
        if args.radius is not None:
            edges, dists = radius_graph(
                x, args.radius, max_num_neighbors=args.topk,
                loop=args.loop, **kwargs)
        else:
            edges, dists = knn_graph(x, args.topk, loop=args.loop, **kwargs)
        dt = time.perf_counter() - t0
        scoped = obs.metrics.scoped("neighbors/")
        truncated = scoped.counter("radius_truncated").get()
        mode = (f"radius_graph(r={args.radius}, "
                f"max_num_neighbors={args.topk})"
                if args.radius is not None else f"knn_graph(k={args.topk})")
        print(f"{mode}: {edges.shape[1]} edges over "
              f"{np.unique(edges[1]).size} queries in {dt:.2f}s "
              f"({edges.shape[1] / max(dt, 1e-9):.0f} edges/s, "
              f"loop={args.loop}, truncated_rows={truncated})")

        labels = None
        if args.dbscan_eps is not None:
            cfg = DBSCANConfig(eps=args.dbscan_eps,
                               min_pts=args.dbscan_min_pts,
                               metric=args.metric)
            model = KNNDBSCAN(cfg, obs=obs)
            # reuse the served graph when the frontend exposes one with
            # enough degree; otherwise build one for the clustering pass
            graph = getattr(getattr(client, "index", None), "graph", None)
            t0 = time.perf_counter()
            if graph is not None and graph.k >= cfg.min_pts - 1:
                labels = model.fit_predict(graph)
            else:
                labels = model.fit_predict(x)
            print(f"knn-dbscan(eps={args.dbscan_eps}, "
                  f"min_pts={args.dbscan_min_pts}): "
                  f"{model.n_clusters_} clusters, "
                  f"{int((labels == -1).sum())} noise, "
                  f"{int(model.core_mask_.sum())} core points "
                  f"in {time.perf_counter() - t0:.2f}s")
    if args.output:
        payload = {"edge_index": edges, "dists": dists}
        if labels is not None:
            payload["labels"] = labels
        np.savez_compressed(args.output, **payload)
        print(f"wrote {', '.join(payload)} -> {args.output}")
    _maybe_write_serve_trace(args, obs, "neighbors")
    return 0


def cmd_verify(args) -> int:
    from repro.verify import run_verification

    return 0 if run_verification(n=args.n, seed=args.seed) else 1


def cmd_info(args) -> int:
    from repro import __version__, available_strategies
    from repro.bench.workloads import WORKLOADS
    from repro.data.synthetic import DATASETS

    print(f"repro (w-KNNG reproduction) version {__version__}")
    print(f"strategies: {', '.join(available_strategies())}")
    print(f"datasets:   {', '.join(sorted(DATASETS))}")
    print(f"workloads:  {', '.join(sorted(WORKLOADS))}")
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="w-KNNG: warp-centric K-NN graph construction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("build", help="build a K-NN graph and save it")
    _add_data_args(p)
    p.add_argument("-k", "--k", type=int, default=16)
    p.add_argument("--strategy", default="tiled",
                   choices=("baseline", "atomic", "tiled"))
    p.add_argument("--backend", default="vectorized",
                   choices=("vectorized", "simt"),
                   help="vectorized NumPy kernels (fast) or the event-level "
                        "SIMT simulator (faithful, slow)")
    p.add_argument("--sanitize", nargs="?", const="raise", default=None,
                   choices=("raise", "report"),
                   help="run the simt build under the wksan race detector "
                        "(simt backend only; 'report' logs findings instead "
                        "of raising)")
    p.add_argument("--trees", type=int, default=4)
    p.add_argument("--leaf-size", type=int, default=64, dest="leaf_size")
    p.add_argument("--refine", type=int, default=2)
    p.add_argument("--jobs", type=int, default=1,
                   help="fork-shard the leaf and refine phases across workers "
                        "(bitwise identical to the serial build)")
    p.add_argument("-o", "--output", required=True, help="output .npz path")
    p.add_argument("--trace-out", dest="trace_out", default=None,
                   help="write the build's JSON-lines trace here")
    p.add_argument("--trace-memory", dest="trace_memory", action="store_true",
                   help="capture per-span tracemalloc peaks (slow)")
    p.set_defaults(func=cmd_build)

    p = sub.add_parser("eval", help="evaluate a saved graph against exact KNN")
    _add_data_args(p)
    p.add_argument("--graph", required=True, help="graph .npz from `build`")
    p.set_defaults(func=cmd_eval)

    p = sub.add_parser("bench", help="quick matched-recall comparison vs IVF")
    p.add_argument("--workload", default="clustered-128d")
    p.add_argument("--target", type=float, default=0.99)
    p.add_argument("--scale", type=float, default=0.1,
                   help="workload size multiplier")
    p.add_argument("--strategy", default="tiled",
                   choices=("baseline", "atomic", "tiled"))
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "search", help="build (or load) a search index and answer queries"
    )
    _add_data_args(p)
    p.add_argument("-k", "--k", type=int, default=16, help="graph degree")
    p.add_argument("--strategy", default="tiled",
                   choices=("baseline", "atomic", "tiled"))
    p.add_argument("--trees", type=int, default=4)
    p.add_argument("--leaf-size", type=int, default=64, dest="leaf_size")
    p.add_argument("--metric", default="sqeuclidean",
                   choices=("sqeuclidean", "cosine"))
    p.add_argument("--queries", type=int, default=1000,
                   help="dataset rows sampled as the query batch")
    p.add_argument("--topk", type=int, default=10, help="neighbours per query")
    p.add_argument("--ef", type=int, default=64, help="beam width")
    p.add_argument("--frontier", type=int, default=1,
                   help="beam entries expanded per round")
    p.add_argument("--jobs", type=int, default=1,
                   help="fork-shard the query batch across workers")
    p.add_argument("--seeds-per-tree", type=int, default=4,
                   dest="seeds_per_tree")
    p.add_argument("--engine", default="batched", choices=("batched", "legacy"))
    p.add_argument("--compare-legacy", action="store_true", dest="compare_legacy",
                   help="time both engines on the same batch")
    _add_quant_args(p)
    p.add_argument("--save-index", dest="save_index", default=None,
                   help="persist points+graph+forest to this directory")
    p.add_argument("--load-index", dest="load_index", default=None,
                   help="load a previously saved index instead of building")
    p.set_defaults(func=cmd_search)

    p = sub.add_parser(
        "serve",
        help="run a micro-batching query server under closed-loop clients",
    )
    _add_serve_args(p, include_rate=False)
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="drive open-loop load (rate + deadlines) against the server",
    )
    _add_serve_args(p, include_rate=True)
    p.set_defaults(func=cmd_loadgen)

    p = sub.add_parser(
        "neighbors",
        help="emit GNN-style COO edge lists (knn_graph/radius_graph) "
             "through a serving frontend, optionally with KNN-DBSCAN",
    )
    _add_data_args(p)
    _add_quant_args(p)
    p.add_argument("-k", "--k", type=int, default=16, help="graph degree")
    p.add_argument("--metric", default="sqeuclidean",
                   choices=("sqeuclidean", "cosine"))
    p.add_argument("--load-index", dest="load_index", default=None,
                   help="serve a previously saved index directory")
    p.add_argument("--topk", type=int, default=10,
                   help="neighbours per query (radius mode: "
                        "max_num_neighbors cap)")
    p.add_argument("--ef", type=int, default=64, help="beam width")
    p.add_argument("--loop", action="store_true",
                   help="keep self-loop edges (the self-edge counts "
                        "toward --topk)")
    p.add_argument("--radius", type=float, default=None,
                   help="squared-distance radius cutoff: emit "
                        "radius_graph edges instead of plain k-NN")
    p.add_argument("--query-limit", type=int, default=None,
                   dest="query_limit",
                   help="only the first N points emit edges (query mask)")
    p.add_argument("--shards", type=int, default=1,
                   help="index shards; >1 emits through the sharded "
                        "cluster")
    p.add_argument("--replicas", type=int, default=1,
                   help="replica workers per shard (cluster mode)")
    p.add_argument("--cluster-backend", dest="cluster_backend",
                   default="auto", choices=("auto", "process", "thread"))
    p.add_argument("--cache-size", type=int, default=0, dest="cache_size",
                   help="LRU result-cache entries (0 disables)")
    p.add_argument("--dbscan-eps", type=float, default=None,
                   dest="dbscan_eps",
                   help="also run KNN-DBSCAN at this squared-distance eps")
    p.add_argument("--dbscan-min-pts", type=int, default=5,
                   dest="dbscan_min_pts",
                   help="DBSCAN core threshold (the point itself counts)")
    p.add_argument("-o", "--output", default=None,
                   help="write .npz (edge_index, dists[, labels]) here")
    p.add_argument("--trace-out", dest="trace_out", default=None,
                   help="write the JSON-lines trace here")
    p.set_defaults(func=cmd_neighbors, max_batch=64, max_wait_ms=2.0,
                   queue_limit=256, workers=1, deadline_ms=None,
                   no_shed=False, shard_ef_policy="scaled")

    p = sub.add_parser("info", help="show version and registries")
    p.set_defaults(func=cmd_info)

    p = sub.add_parser(
        "verify", help="run the scaled-down reproduction claim checks"
    )
    p.add_argument("--n", type=int, default=3000)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=cmd_verify)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
