"""Spectral embedding on the K-NN graph (Laplacian eigenmaps).

Belkin & Niyogi (2003): embed points as the bottom non-trivial
eigenvectors of the normalised graph Laplacian ``L = I - D^-1/2 W D^-1/2``
built from the K-NN graph's (symmetrised, Gaussian-weighted) affinities.
Spectral embedding is the standard initialisation of UMAP and a common
clustering front end - another downstream consumer whose dominant cost at
scale is exactly the K-NN graph this library builds.

Sparse end to end: the Laplacian is CSR and the eigensolve is Lanczos
(``scipy.sparse.linalg.eigsh``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import eigsh

from repro.core.graph import KNNGraph
from repro.errors import ConfigurationError


@dataclass
class SpectralConfig:
    """Embedding parameters.

    Attributes
    ----------
    n_components:
        Output dimensions (eigenvectors kept, excluding the trivial one).
    kernel_scale:
        Gaussian affinity bandwidth as a multiple of the mean edge
        distance (as in :mod:`repro.apps.labelprop`).
    drop_trivial:
        Drop the constant eigenvector (the usual choice).  With a
        disconnected graph the first ``n_comp`` eigenvectors indicate
        components instead; set False to keep them.
    """

    n_components: int = 2
    kernel_scale: float = 1.0
    drop_trivial: bool = True

    def __post_init__(self) -> None:
        if self.n_components < 1:
            raise ConfigurationError("n_components must be >= 1")
        if self.kernel_scale <= 0:
            raise ConfigurationError("kernel_scale must be positive")


class SpectralEmbedding:
    """Laplacian-eigenmap embedding of a :class:`KNNGraph`.

    Usage::

        emb = SpectralEmbedding(SpectralConfig(n_components=2)).fit_transform(graph)
    """

    def __init__(self, config: SpectralConfig | None = None) -> None:
        self.config = config or SpectralConfig()
        self.eigenvalues_: np.ndarray | None = None

    def fit_transform(self, graph: KNNGraph) -> np.ndarray:
        """Embed the graph's nodes; returns ``(n, n_components)``."""
        cfg = self.config
        n = graph.n
        want = cfg.n_components + (1 if cfg.drop_trivial else 0)
        if want >= n:
            raise ConfigurationError(
                f"n_components={cfg.n_components} too large for n={n}"
            )
        lap = self._normalized_laplacian(graph)
        # smallest eigenpairs; a fixed Lanczos start vector makes the
        # result deterministic (eigsh defaults to a random v0, which
        # rotates degenerate eigenspaces arbitrarily between runs)
        v0 = np.full(n, 1.0 / np.sqrt(n))
        vals, vecs = eigsh(lap, k=want, which="SA", v0=v0)
        order = np.argsort(vals)
        vals, vecs = vals[order], vecs[:, order]
        if cfg.drop_trivial:
            vals, vecs = vals[1:], vecs[:, 1:]
        self.eigenvalues_ = vals
        return vecs

    def _normalized_laplacian(self, graph: KNNGraph) -> sparse.csr_matrix:
        s = graph.gaussian_affinity(self.config.kernel_scale)
        return sparse.identity(graph.n, format="csr") - s
