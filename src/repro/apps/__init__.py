"""Applications built on the w-KNNG library.

The paper motivates K-NN graph construction with two downstream consumers;
both are implemented here end to end:

* :mod:`repro.apps.tsne` - t-SNE dimensionality reduction whose affinity
  stage consumes a K-NN graph (the dominant cost at scale);
* :mod:`repro.apps.search` - a similarity-search service that routes
  queries through the retained RP forest and refines with greedy graph
  walks over the K-NN graph;
* :mod:`repro.apps.labelprop` - semi-supervised label propagation along
  the graph's edges (a third classic K-NN graph consumer);
* :class:`~repro.neighbors.KNNDBSCAN` - density clustering reduced to
  the k-NN graph (re-exported from :mod:`repro.neighbors`, alongside the
  :func:`~repro.neighbors.knn_graph` / :func:`~repro.neighbors.radius_graph`
  GNN edge-list builders).
"""

from repro.apps.tsne import TSNE, TSNEConfig
from repro.apps.search import BatchedGraphSearch, GraphSearchIndex, SearchConfig
from repro.apps.labelprop import LabelPropagation, LabelPropConfig
from repro.apps.spectral import SpectralConfig, SpectralEmbedding
from repro.apps.dedup import DedupConfig, Deduplicator

# imported last: repro.neighbors pulls in nothing from repro.apps at
# module level (engine imports are lazy), so no cycle
from repro.neighbors import DBSCANConfig, KNNDBSCAN, knn_graph, radius_graph

__all__ = [
    "TSNE",
    "TSNEConfig",
    "BatchedGraphSearch",
    "GraphSearchIndex",
    "SearchConfig",
    "LabelPropagation",
    "LabelPropConfig",
    "SpectralConfig",
    "SpectralEmbedding",
    "DedupConfig",
    "Deduplicator",
    "DBSCANConfig",
    "KNNDBSCAN",
    "knn_graph",
    "radius_graph",
]
