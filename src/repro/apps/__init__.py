"""Applications built on the w-KNNG library.

The paper motivates K-NN graph construction with two downstream consumers;
both are implemented here end to end:

* :mod:`repro.apps.tsne` - t-SNE dimensionality reduction whose affinity
  stage consumes a K-NN graph (the dominant cost at scale);
* :mod:`repro.apps.search` - a similarity-search service that routes
  queries through the retained RP forest and refines with greedy graph
  walks over the K-NN graph;
* :mod:`repro.apps.labelprop` - semi-supervised label propagation along
  the graph's edges (a third classic K-NN graph consumer).
"""

from repro.apps.tsne import TSNE, TSNEConfig
from repro.apps.search import BatchedGraphSearch, GraphSearchIndex, SearchConfig
from repro.apps.labelprop import LabelPropagation, LabelPropConfig
from repro.apps.spectral import SpectralConfig, SpectralEmbedding
from repro.apps.dedup import DedupConfig, Deduplicator

__all__ = [
    "TSNE",
    "TSNEConfig",
    "BatchedGraphSearch",
    "GraphSearchIndex",
    "SearchConfig",
    "LabelPropagation",
    "LabelPropConfig",
    "SpectralConfig",
    "SpectralEmbedding",
    "DedupConfig",
    "Deduplicator",
]
