"""Near-duplicate detection on a K-NN graph.

A fourth classic graph consumer: find groups of (near-)identical records
in a collection - repeated images, plagiarised documents, double-entered
rows.  With the K-NN graph in hand the problem is two cheap passes:

1. **edge selection**: keep graph edges whose distance falls below a
   threshold - either absolute or calibrated automatically from the edge
   distance distribution (duplicate edges sit in a separated low-distance
   mode; the default takes a low quantile with a floor);
2. **clustering**: union-find over the kept edges; each component with
   more than one member is a duplicate group.

Everything after graph construction is O(edges), so the K-NN build - the
part this library accelerates - dominates, exactly as in the paper's
other motivating applications.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.graph import KNNGraph
from repro.errors import ConfigurationError
from repro.metrics.connectivity import UnionFind


@dataclass
class DedupConfig:
    """Duplicate-detection parameters.

    Attributes
    ----------
    threshold:
        Absolute squared-distance threshold for "duplicate" edges;
        ``None`` calibrates automatically (see ``quantile``).
    quantile:
        When auto-calibrating: the edge-distance quantile taken as the
        threshold, bounded below by ``floor`` (guards against a dataset
        with *no* duplicates, where even low quantiles are real
        distances).
    floor:
        Lower bound used by auto-calibration; edges above it are never
        considered duplicates.
    """

    threshold: float | None = None
    quantile: float = 0.01
    floor: float = 1e-6

    def __post_init__(self) -> None:
        if self.threshold is not None and self.threshold < 0:
            raise ConfigurationError("threshold must be non-negative")
        if not 0.0 < self.quantile < 1.0:
            raise ConfigurationError("quantile must be in (0, 1)")
        if self.floor < 0:
            raise ConfigurationError("floor must be non-negative")


class Deduplicator:
    """Find near-duplicate groups in a :class:`KNNGraph`.

    Usage::

        groups = Deduplicator(DedupConfig(threshold=1e-4)).find_groups(graph)
        # [[3, 17, 240], [55, 81], ...]  (each group sorted; singletons omitted)
    """

    def __init__(self, config: DedupConfig | None = None) -> None:
        self.config = config or DedupConfig()
        self.threshold_: float = float("nan")

    def _resolve_threshold(self, graph: KNNGraph) -> float:
        cfg = self.config
        if cfg.threshold is not None:
            return float(cfg.threshold)
        valid = graph.ids >= 0
        dists = graph.dists[valid]
        if dists.size == 0:
            return cfg.floor
        return max(float(np.quantile(dists, cfg.quantile)), cfg.floor)

    def find_groups(self, graph: KNNGraph) -> list[list[int]]:
        """Return duplicate groups (size >= 2), each sorted, ordered by size."""
        thr = self._resolve_threshold(graph)
        self.threshold_ = thr
        valid = graph.ids >= 0
        rows = np.repeat(np.arange(graph.n), valid.sum(axis=1))
        cols = graph.ids[valid].astype(np.int64)
        close = graph.dists[valid] <= thr
        uf = UnionFind(graph.n)
        for a, b in zip(rows[close].tolist(), cols[close].tolist()):
            uf.union(a, b)
        members: dict[int, list[int]] = {}
        for i in range(graph.n):
            members.setdefault(uf.find(i), []).append(i)
        groups = [sorted(g) for g in members.values() if len(g) > 1]
        groups.sort(key=len, reverse=True)
        return groups

    def duplicate_mask(self, graph: KNNGraph) -> np.ndarray:
        """Boolean (n,): True for every point that belongs to some group."""
        mask = np.zeros(graph.n, dtype=bool)
        for group in self.find_groups(graph):
            mask[group] = True
        return mask

    def representatives(self, graph: KNNGraph) -> np.ndarray:
        """Deduplicated id set: all points, keeping one (the smallest id)
        per duplicate group."""
        drop = np.zeros(graph.n, dtype=bool)
        for group in self.find_groups(graph):
            drop[group[1:]] = True
        return np.flatnonzero(~drop)
