"""Similarity search on top of a w-KNNG graph + RP forest.

The paper motivates K-NN graph construction with similarity search: once
the graph exists, unseen queries can be answered by **graph-guided greedy
search** (the idea behind HNSW/NSG-style engines):

1. *entry points*: route the query down each retained RP tree to a leaf
   (:meth:`repro.core.rpforest.RPTree.leaf_for`) and take a handful of
   leaf members as seeds - cheap and already well-located;
2. *best-first expansion*: maintain a beam of the best candidates seen;
   repeatedly expand the nearest unexpanded candidate by scoring its graph
   neighbours, until the beam stops improving;
3. return the top ``k`` of everything scored.

Recall is controlled by the beam width (``ef``), exactly like ``efSearch``
in HNSW - giving the same accuracy/time dial the benchmarks use.

Two engines implement those semantics:

* :class:`BatchedGraphSearch` - the production engine.  All live queries
  advance in **lock-step rounds**: each round selects every query's best
  unexpanded beam entries, gathers their graph neighbours as one
  ``(m, frontier, k)`` index matrix, masks already-visited nodes with
  per-query uint64 bitsets, scores all fresh candidates with a single
  batched gather (:func:`repro.kernels.distance.sq_l2_query_gather`) and
  merges them into the per-query beams with the same ``argpartition``
  select-k the build-time :meth:`~repro.kernels.knn_state.KnnState.merge_rows`
  uses.  Large batches shard across forked workers
  (:func:`repro.utils.parallel.map_forked`).
* the legacy per-query loop (:meth:`GraphSearchIndex.search_legacy`) -
  heapq best-first expansion, kept as the semantic reference; with
  ``frontier=1`` the batched engine expands nodes in exactly the same
  order and returns identical results on tie-free inputs.

**Metric handling**: the builder constructs graph and forest in the
*prepared* space of ``BuildConfig.metric`` (L2-normalised for cosine, see
:mod:`repro.core.metric`), so the index transforms its stored points and
every incoming query batch the same way - routing, seeding and beam
scoring all happen in the space the graph's edges live in.  Returned
distances are squared L2 in that space (for cosine: exactly twice the
cosine distance).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.builder import WKNNGBuilder
from repro.core.config import BuildConfig
from repro.core.graph import KNNGraph
from repro.core.metric import check_metric, prepare_points
from repro.core.quant import QuantizedStore, parse_quantization
from repro.core.rpforest import RPForest
from repro.errors import ConfigurationError
from repro.kernels.distance import (
    adc_l2_query_gather,
    sq8_l2_query_gather,
    rowwise_sq_norm,
    sq_l2_query_gather,
)
from repro.obs import Events, Observability
from repro.utils.arrays import blockwise_ranges
from repro.utils.parallel import map_forked, shard_ranges
from repro.utils.validation import (
    check_points_matrix,
    check_positive_int,
    check_query_matrix,
)

#: queries processed per lock-step block (bounds the candidate/bitset
#: temporaries at roughly block * ef and block * ceil(n/64) entries)
_QUERY_BLOCK = 4096

#: registry namespace the query engine's metrics emit under
QUERY_METRICS_PREFIX = "query/"

# Packed beam-key layout (see BatchedGraphSearch._search_chunk): the high
# 32 bits hold the float32 distance's bit pattern (order-preserving for
# the non-negative squared distances this library uses), bit 31 flags an
# expanded entry, bits 0..30 hold the node id.
_EXPANDED_BIT = np.int64(1) << 31
_ID_MASK = np.int64((1 << 31) - 1)
_ID_CAPACITY = 1 << 31
#: any key at or above this has a non-finite distance (inf bit pattern)
_INF_KEY = np.int64(0x7F800000) << 32
#: empty beam slot: quiet-NaN distance bits, sorts after every real entry
_EMPTY_KEY = np.int64(0x7FC00000) << 32
#: visited-filter budget: dense boolean matrix below, uint64 bitsets above
_DENSE_VISITED_BYTES = 1 << 27
#: byte budget for a chunk's ADC lookup tables; quantized chunks shrink
#: below _QUERY_BLOCK so per-query (M, ksub) tables stay cache-resident
_LUT_BYTE_BUDGET = 1 << 27


@dataclass
class SearchConfig:
    """Query-time parameters.

    Attributes
    ----------
    ef:
        Beam width (candidates kept alive); recall rises with ``ef``.
    seeds_per_tree:
        Entry points sampled from each tree's leaf.
    max_expansions:
        Safety cap on node expansions per query.
    frontier:
        Beam entries expanded per query per lock-step round (batched
        engine only).  ``1`` reproduces the legacy best-first expansion
        order exactly; larger values trade a few wasted expansions for
        fewer, fatter rounds.
    n_jobs:
        Fork-shard query batches across this many worker processes
        (batched engine only; ``1`` = serial, results are identical).
    quantization:
        Compressed-tier spec for candidate scoring: ``"none"`` (score
        float32 vectors, the default), ``"sq8"`` or ``"pq<M>"`` (score
        uint8 codes with the ADC lookup-table kernel; see
        :mod:`repro.core.quant`).  Quantized beams are re-ranked with
        full-precision vectors before results are emitted, so returned
        distances are always exact.
    rerank:
        Beam entries re-scored in the full-precision rerank stage when
        quantization is on.  ``0`` (default) reranks the whole ``ef``
        beam; smaller values trade rerank gathers for a little recall.
        Values below ``k`` are raised to ``k`` at query time.
    """

    ef: int = 32
    seeds_per_tree: int = 4
    max_expansions: int = 512
    frontier: int = 1
    n_jobs: int = 1
    quantization: str = "none"
    rerank: int = 0

    def __post_init__(self) -> None:
        self.ef = check_positive_int(self.ef, "ef")
        self.seeds_per_tree = check_positive_int(self.seeds_per_tree, "seeds_per_tree")
        self.max_expansions = check_positive_int(self.max_expansions, "max_expansions")
        self.frontier = check_positive_int(self.frontier, "frontier")
        self.n_jobs = check_positive_int(self.n_jobs, "n_jobs")
        # canonicalize (fail fast on bad specs): keeping the raw string
        # ("NONE", " sq8 ") used to defeat every `!= "none"` / persisted-
        # spec equality check downstream
        self.quantization = parse_quantization(self.quantization).spec
        self.rerank = int(self.rerank)
        if self.rerank < 0:
            raise ConfigurationError(f"rerank must be >= 0, got {self.rerank}")


def _dedupe_rows(ids: np.ndarray) -> np.ndarray:
    """Mask repeated ids within each row to ``-1`` (first occurrence wins)."""
    order = np.argsort(ids, axis=1, kind="stable")
    in_order = np.take_along_axis(ids, order, axis=1)
    dup_sorted = np.zeros(ids.shape, dtype=bool)
    dup_sorted[:, 1:] = in_order[:, 1:] == in_order[:, :-1]
    dup = np.zeros(ids.shape, dtype=bool)
    np.put_along_axis(dup, order, dup_sorted, axis=1)
    return np.where(dup, -1, ids)


def _forked_search_block(shared, start: int, end: int, k: int, config: SearchConfig):
    """Worker body for fork-sharded batched search (module-level for fork)."""
    engine, queries = shared
    return engine._search_block(queries[start:end], k, config)


class BatchedGraphSearch:
    """Batched, vectorized graph-guided beam search.

    Operates in the *prepared* (kernel) space: ``points`` must already be
    transformed for the graph's metric, and so must every query matrix
    passed to :meth:`search` - :class:`GraphSearchIndex` owns that
    transformation.  The engine itself is metric-agnostic, exactly like
    the build kernels.

    Per-query state during a search: a beam of ``ef`` ``(id, dist,
    expanded)`` slots and a visited bitset of ``ceil(n / 64)`` uint64
    words.  All queries of a block advance together; a query leaves the
    lock-step as soon as every beam entry is expanded (nothing left that
    could improve its result) or its expansion budget is exhausted.

    With a :class:`~repro.core.quant.QuantizedStore` attached, beam
    scoring runs over uint8 codes via the asymmetric-distance kernel
    (:func:`repro.kernels.distance.adc_l2_query_gather`): per-chunk
    lookup tables replace the float32 gathers, and a final *rerank*
    stage re-scores the top beam with the full-precision matrix so the
    emitted ``(ids, dists)`` carry exact distances.
    """

    def __init__(
        self,
        points: np.ndarray,
        graph: KNNGraph,
        forest: RPForest,
        config: SearchConfig | None = None,
        *,
        store: QuantizedStore | None = None,
        obs: Observability | None = None,
    ) -> None:
        self._x = check_points_matrix(points, "points")
        if graph.n != self._x.shape[0]:
            raise ConfigurationError(
                f"graph has {graph.n} nodes but points has {self._x.shape[0]} rows"
            )
        if store is not None and (store.n, store.dim) != self._x.shape:
            raise ConfigurationError(
                f"quantized store shape ({store.n}, {store.dim}) does not "
                f"match points {self._x.shape}"
            )
        self.graph = graph
        self.forest = forest
        self.config = config or SearchConfig()
        self.store = store
        self.obs = obs
        #: work counters of the most recent :meth:`search` call
        self.last_query_stats: dict[str, Any] = {}

    # -- seeding -----------------------------------------------------------------

    def _seed_matrix(self, q: np.ndarray, config: SearchConfig) -> np.ndarray:
        """Per-query entry points: ``(m, n_trees * seeds_per_tree)`` ids.

        Routes the whole query block down every tree at once; invalid
        slots (short leaves, intra-row duplicates) carry ``-1``.
        """
        m = q.shape[0]
        n = self._x.shape[0]
        spt = config.seeds_per_tree
        if not self.forest.trees:
            fallback = np.arange(min(config.ef, n), dtype=np.int64)
            return np.broadcast_to(fallback, (m, fallback.size)).copy()
        columns: list[np.ndarray] = []
        for tree in self.forest.trees:
            leaf_idx = tree.leaf_for(q)
            uniq, inverse = np.unique(leaf_idx, return_inverse=True)
            padded = np.full((uniq.size, spt), -1, dtype=np.int64)
            for j, leaf in enumerate(uniq):
                members = tree.leaves[int(leaf)][:spt]
                padded[j, : members.size] = members
            columns.append(padded[inverse])
        return _dedupe_rows(np.concatenate(columns, axis=1))

    # -- the lock-step engine ----------------------------------------------------

    def _search_block(
        self, q: np.ndarray, k: int, config: SearchConfig
    ) -> tuple[np.ndarray, np.ndarray, dict[str, Any]]:
        """Run the lock-step rounds for one query block (no obs side effects)."""
        out_ids = np.full((q.shape[0], k), -1, dtype=np.int32)
        out_dists = np.full((q.shape[0], k), np.inf, dtype=np.float32)
        stats: dict[str, Any] = {
            "queries": 0, "rounds": 0, "expansions": 0,
            "distance_evals": 0, "rerank_evals": 0, "round_expansions": [],
        }
        block = _QUERY_BLOCK
        if self.store is not None and self.store.kind != "sq8":
            # keep the chunk's per-query (M, ksub) ADC tables within budget
            # (sq8 scores by decode-gather and builds no tables)
            lut_bytes = 4 * self.store.subspaces * self.store.ksub
            block = max(64, min(block, _LUT_BYTE_BUDGET // max(1, lut_bytes)))
        for s, e in blockwise_ranges(q.shape[0], block):
            ids, dists, chunk = self._search_chunk(q[s:e], k, config)
            out_ids[s:e] = ids
            out_dists[s:e] = dists
            _merge_stats(stats, chunk)
        return out_ids, out_dists, stats

    def _search_chunk(
        self, q: np.ndarray, k: int, config: SearchConfig
    ) -> tuple[np.ndarray, np.ndarray, dict[str, Any]]:
        x = self._x
        graph = self.graph
        m = q.shape[0]
        n = x.shape[0]
        ef = config.ef
        frontier = min(config.frontier, ef)
        kg = graph.k

        if n >= _ID_CAPACITY:
            raise ConfigurationError(
                f"batched search supports at most {_ID_CAPACITY - 1} points, got {n}"
            )

        # Beam entries are packed into single int64 sort keys:
        #
        #     key = float32_bits(dist) << 32 | expanded_flag << 31 | id
        #
        # Squared distances are non-negative, and the IEEE-754 bit pattern
        # of a non-negative float is monotone in its value - so comparing
        # keys compares (dist, id) lexicographically, exactly the legacy
        # heap's ordering.  One np.partition on the key matrix is then a
        # full select-k merge (no index gathers), and np.sort at the end
        # is the legacy result order.  Empty slots hold _EMPTY_KEY (NaN
        # dist bits), which sorts after every real entry, even +inf.
        orig = np.arange(m)  # live row -> original query row
        qv = q
        beam = np.full((m, ef), _EMPTY_KEY, dtype=np.int64)
        expansions = np.zeros(m, dtype=np.int64)
        out_ids = np.full((m, k), -1, dtype=np.int32)
        out_dists = np.full((m, k), np.inf, dtype=np.float32)
        stats = {"queries": m, "rounds": 0, "expansions": 0,
                 "distance_evals": 0, "rerank_evals": 0, "round_expansions": []}

        # quantized scoring: sq8 stores decode-and-score straight from the
        # code matrix; pq stores go through per-query ADC tables, built
        # once per chunk.  The tables are never copied on live-query
        # compaction - only the `lut_rows` indirection vector shrinks.
        store = self.store
        lut_rows = None
        if store is not None:
            codes = store.codes
            rerank_w = ef if config.rerank == 0 else min(ef, max(k, config.rerank))
            if store.kind == "sq8":
                lo, scale = store.quantizer.lo, store.quantizer.scale

                def score(queries_live, lut_rows, cand, pairs):
                    return sq8_l2_query_gather(
                        codes, lo, scale, queries_live, cand, valid_pairs=pairs
                    )
            else:
                luts = store.luts(q)
                lut_rows = np.arange(m)

                def score(queries_live, lut_rows, cand, pairs):
                    return adc_l2_query_gather(
                        luts, codes, cand, valid_pairs=pairs, lut_rows=lut_rows
                    )
        else:

            def score(queries_live, lut_rows, cand, pairs):
                return sq_l2_query_gather(queries_live, x, cand, valid_pairs=pairs)

        # visited filter: dense boolean matrix when it fits the budget
        # (plain fancy-index scatter/gather), per-query uint64 bitsets
        # beyond that (1 bit per node instead of 1 byte)
        if m * n <= _DENSE_VISITED_BYTES:
            visited = np.zeros((m, n), dtype=bool)

            def mark_visited(rows: np.ndarray, ids: np.ndarray) -> None:
                # flat 1-d scatter/gather: measurably faster than 2-d
                # advanced indexing on the per-round hot path
                visited.reshape(-1)[rows * n + ids] = True

            def is_visited(rows: np.ndarray, ids: np.ndarray) -> np.ndarray:
                return visited.reshape(-1).take(rows * n + ids)
        else:
            visited = np.zeros((m, (n + 63) // 64), dtype=np.uint64)

            def mark_visited(rows: np.ndarray, ids: np.ndarray) -> None:
                bits = np.left_shift(np.uint64(1), (ids & 63).astype(np.uint64))
                np.bitwise_or.at(visited, (rows, ids >> 6), bits)

            def is_visited(rows: np.ndarray, ids: np.ndarray) -> np.ndarray:
                bits = np.left_shift(np.uint64(1), (ids & 63).astype(np.uint64))
                return (visited[rows, ids >> 6] & bits) != 0

        def pack(ids: np.ndarray, dists: np.ndarray) -> np.ndarray:
            """Pack (id, dist) matrices into sort keys.

            Invalid slots carry ``+inf`` distance by construction, so
            their keys sort after every finite entry and are never
            selected, never block termination, and never decode into the
            final output (same role as ``_EMPTY_KEY``).
            """
            key = dists.view(np.uint32).astype(np.int64) << 32
            return key | (ids.astype(np.int64) & _ID_MASK)

        def merge(cand_keys: np.ndarray) -> None:
            """Select-k merge of candidates into every live beam (the same
            schedule as ``KnnState.merge_rows``, on packed keys).

            Rows whose candidates are all at or beyond their current worst
            beam entry cannot change and skip the select-k entirely.
            """
            worst = beam.max(axis=1)
            improving = np.nonzero((cand_keys < worst[:, None]).any(axis=1))[0]
            if improving.size == 0:
                return
            union = np.concatenate([beam[improving], cand_keys[improving]], axis=1)
            beam[improving] = np.partition(union, ef - 1, axis=1)[:, :ef]

        def finalize(rows: np.ndarray) -> None:
            """Write the sorted top-k of the listed live rows to the output
            (ascending distance, id tie-break - the legacy heap order).

            On the quantized path the beam holds approximate ADC
            distances; the top ``rerank_w`` entries are re-scored against
            the full-precision matrix and re-sorted first, so the emitted
            order and distances are exact over the reranked set.
            """
            dest = orig[rows]
            keys = np.sort(beam[rows] & ~_EXPANDED_BIT, axis=1)
            if store is not None:
                cand = keys[:, :rerank_w]
                finite = cand < _INF_KEY  # real entries with finite dist
                ids_w = np.where(finite, cand & _ID_MASK, -1)
                rr, cc = np.nonzero(finite)
                exact = sq_l2_query_gather(
                    q[dest], x, ids_w, valid_pairs=(rr, cc)
                )
                stats["rerank_evals"] += int(rr.size)
                keys = np.sort(pack(ids_w, exact), axis=1)
            keys = keys[:, : min(k, ef)]
            top_d = (keys >> 32).astype(np.uint32).view(np.float32)
            top_i = (keys & _ID_MASK).astype(np.int32)
            found = np.isfinite(top_d)  # empty slots decode to NaN
            cols = np.arange(keys.shape[1])
            out_ids[dest[:, None], cols] = np.where(found, top_i, -1)
            out_dists[dest[:, None], cols] = np.where(found, top_d, np.float32(np.inf))

        # --- seed the beams ---
        seeds = self._seed_matrix(q, config)
        s_rows, s_cols = np.nonzero(seeds >= 0)
        mark_visited(s_rows, seeds[s_rows, s_cols])
        seed_dists = score(q, lut_rows, seeds, (s_rows, s_cols))
        stats["distance_evals"] += int(s_rows.size)
        merge(pack(seeds, seed_dists))

        # --- lock-step rounds ---
        while orig.size:
            # pick each live query's `frontier` nearest unexpanded beam
            # entries (expanded and empty entries are masked out)
            masked = np.where((beam & _EXPANDED_BIT) != 0, _EMPTY_KEY, beam)
            if frontier == 1:
                sel = np.argmin(masked, axis=1)[:, None]
            else:
                sel = np.argpartition(masked, frontier - 1, axis=1)[:, :frontier]
            sel_keys = masked[np.arange(orig.size)[:, None], sel]
            expandable = sel_keys < _INF_KEY  # real entry with finite dist
            live = expandable.any(axis=1) & (expansions < config.max_expansions)
            if not live.all():
                done = np.nonzero(~live)[0]
                finalize(done)
                keep = np.nonzero(live)[0]
                if keep.size == 0:
                    break
                orig, qv, expansions = orig[keep], qv[keep], expansions[keep]
                beam, visited = beam[keep], visited[keep]
                sel, expandable = sel[keep], expandable[keep]
                if lut_rows is not None:
                    lut_rows = lut_rows[keep]

            a = orig.size
            nodes = np.where(expandable, sel_keys[live] & _ID_MASK, -1)
            rr, cc = np.nonzero(expandable)
            beam[rr, sel[rr, cc]] |= _EXPANDED_BIT
            n_expanded = int(rr.size)
            expansions += expandable.sum(axis=1)
            stats["rounds"] += 1
            stats["expansions"] += n_expanded
            stats["round_expansions"].append(n_expanded)

            # gather graph neighbours of the selected nodes: (a, frontier, kg)
            neigh = graph.ids[np.where(nodes >= 0, nodes, 0)]
            neigh = np.where((nodes >= 0)[:, :, None], neigh, -1)
            cand = neigh.reshape(a, frontier * kg)
            if frontier > 1:
                cand = _dedupe_rows(cand)
            fresh = cand >= 0
            safe = np.where(fresh, cand, 0)
            row_grid = np.broadcast_to(np.arange(a)[:, None], safe.shape)
            fresh &= ~is_visited(row_grid, safe)
            rr, cc = np.nonzero(fresh)
            if rr.size:
                mark_visited(rr, cand[rr, cc])
            cand_dists = score(qv, lut_rows, cand, (rr, cc))
            stats["distance_evals"] += int(rr.size)
            merge(pack(cand, cand_dists))

        if orig.size:
            finalize(np.arange(orig.size))
        return out_ids, out_dists, stats

    # -- public API --------------------------------------------------------------

    def search(
        self, queries: np.ndarray, k: int, config: SearchConfig | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Approximate k-NN for each (already metric-prepared) query row.

        Returns ``(ids, dists)`` of shape ``(m, k)``, ascending by
        distance; unfilled slots carry ``-1`` / ``+inf``.  With
        ``config.n_jobs > 1`` the query matrix is sharded across forked
        workers; results (and stats) are identical to the serial run.
        """
        cfg = config or self.config
        q = check_query_matrix(queries, self._x.shape[1], "queries")
        k = check_positive_int(k, "k")
        obs = self.obs
        m = q.shape[0]
        t0 = time.perf_counter()
        if obs is not None:
            obs.hooks.emit(Events.QUERY_BATCH_BEFORE,
                           queries=m, k=k, ef=cfg.ef, n_jobs=cfg.n_jobs)
            span = obs.trace.span("query", queries=m, k=k, ef=cfg.ef)
        else:
            span = None

        def run() -> tuple[np.ndarray, np.ndarray, dict[str, Any]]:
            shards = shard_ranges(m, cfg.n_jobs) if cfg.n_jobs > 1 else []
            if len(shards) <= 1:
                return self._search_block(q, k, cfg)
            parts = map_forked(
                _forked_search_block, (self, q),
                [(s, e, k, cfg) for s, e in shards], cfg.n_jobs,
            )
            ids = np.concatenate([p[0] for p in parts], axis=0)
            dists = np.concatenate([p[1] for p in parts], axis=0)
            stats: dict[str, Any] = {"queries": 0, "rounds": 0, "expansions": 0,
                                     "distance_evals": 0, "rerank_evals": 0,
                                     "round_expansions": []}
            for _, _, part_stats in parts:
                _merge_stats(stats, part_stats)
            return ids, dists, stats

        if span is not None:
            with span as sp:
                ids, dists, stats = run()
                sp.set(rounds=stats["rounds"], expansions=stats["expansions"],
                       round_expansions=list(stats["round_expansions"]))
        else:
            ids, dists, stats = run()
        stats["seconds"] = time.perf_counter() - t0
        self.last_query_stats = stats
        if obs is not None:
            qm = obs.metrics.scoped(QUERY_METRICS_PREFIX)
            qm.counter("batches").inc()
            qm.counter("queries").inc(stats["queries"])
            qm.counter("rounds").inc(stats["rounds"])
            qm.counter("expansions").inc(stats["expansions"])
            qm.counter("distance_evals").inc(stats["distance_evals"])
            qm.counter("rerank_evals").inc(stats["rerank_evals"])
            qm.histogram("batch_seconds").observe(stats["seconds"])
            obs.hooks.emit(Events.QUERY_BATCH_AFTER,
                           queries=m, k=k, ef=cfg.ef, seconds=stats["seconds"],
                           rounds=stats["rounds"], expansions=stats["expansions"],
                           distance_evals=stats["distance_evals"])
        return ids, dists


def _merge_stats(into: dict[str, Any], part: dict[str, Any]) -> None:
    """Aggregate per-block/per-shard work counters (rounds overlap, so the
    per-round expansion lists add elementwise and ``rounds`` is their max)."""
    into["queries"] += part["queries"]
    into["expansions"] += part["expansions"]
    into["distance_evals"] += part["distance_evals"]
    into["rerank_evals"] += part.get("rerank_evals", 0)
    a, b = into["round_expansions"], part["round_expansions"]
    if len(b) > len(a):
        a.extend([0] * (len(b) - len(a)))
    for i, v in enumerate(b):
        a[i] += v
    into["rounds"] = len(a)


class GraphSearchIndex:
    """Graph-guided approximate nearest-neighbour search index.

    Usage::

        index = GraphSearchIndex.build(points, k=16, seed=0)
        ids, dists = index.search(queries, k=10)

    or through the :class:`~repro.baselines.KNNIndex` engine protocol::

        index = GraphSearchIndex().fit(points)
        ids, dists = index.query(queries, k=10)
        index.stats()

    The index stores its points in the *prepared* space of the graph's
    build metric (``graph.meta["metric"]``; see :mod:`repro.core.metric`)
    and transforms incoming queries the same way, so tree routing and
    beam scoring happen in the space the graph was built in.  Queries are
    answered by the batched :class:`BatchedGraphSearch` engine; the
    legacy per-query loop remains available as :meth:`search_legacy`.
    """

    def __init__(self, points: np.ndarray | None = None,
                 graph: KNNGraph | None = None, forest: RPForest | None = None,
                 config: SearchConfig | None = None, *,
                 build_config: BuildConfig | None = None,
                 obs: Observability | None = None) -> None:
        self.config = config or SearchConfig()
        self.obs = obs
        self._build_config = build_config
        self.graph: KNNGraph | None = None
        self.forest: RPForest | None = None
        self._x: np.ndarray | None = None
        self._engine: BatchedGraphSearch | None = None
        self._metric_info: dict = {}
        self.metric = "sqeuclidean"
        if points is not None:
            if graph is None or forest is None:
                raise ConfigurationError(
                    "constructing from points requires graph and forest "
                    "(use GraphSearchIndex.build or fit to create them)"
                )
            self._attach(points, graph, forest)

    def _attach(self, points: np.ndarray, graph: KNNGraph, forest: RPForest,
                *, prepared: bool = False,
                store: QuantizedStore | None = None) -> None:
        x = check_points_matrix(points, "points")
        metric = check_metric(str(graph.meta.get("metric", "sqeuclidean")))
        if metric == "inner_product":
            raise ConfigurationError(
                "inner_product graphs are not supported by graph-guided "
                "search (the build pipeline rejects the metric)"
            )
        self.metric = metric
        if prepared:
            # points are already in prepared space (the persisted form);
            # re-preparing would renormalise cosine data by a norm of
            # 1.0±ulp and break byte-identical load round-trips
            self._x = x
            self._metric_info = {"normalized": True} if metric == "cosine" else {}
        else:
            self._x, self._metric_info = prepare_points(x, metric)
        if graph.n != self._x.shape[0]:
            raise ConfigurationError(
                f"graph has {graph.n} nodes but points has {self._x.shape[0]} rows"
            )
        if store is None and self.config.quantization != "none":
            # codes live in the prepared (kernel) space, same as the graph's
            # edges - fit here so routing, ADC scoring and rerank agree
            store = QuantizedStore.fit(self._x, self.config.quantization, seed=0)
        self.graph = graph
        self.forest = forest
        self._engine = BatchedGraphSearch(
            self._x, graph, forest, self.config, store=store, obs=self.obs
        )

    def _require_fitted(self) -> BatchedGraphSearch:
        if self._engine is None:
            raise ConfigurationError("search() before fit()/build(): no index data")
        return self._engine

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(
        cls,
        points: np.ndarray,
        k: int = 16,
        build_config: BuildConfig | None = None,
        search_config: SearchConfig | None = None,
        seed=None,
        *,
        obs: Observability | None = None,
    ) -> "GraphSearchIndex":
        """Build the K-NN graph (keeping the forest) and wrap it for search."""
        cfg = build_config or BuildConfig(k=k, strategy="tiled", seed=seed)
        builder = WKNNGBuilder(cfg)
        graph = builder.build(points)
        assert builder.last_forest is not None
        return cls(points, graph, builder.last_forest, search_config, obs=obs)

    @classmethod
    def from_parts(
        cls,
        points: np.ndarray,
        graph: KNNGraph,
        forest: RPForest,
        config: SearchConfig | None = None,
        *,
        prepared: bool = False,
        store: QuantizedStore | None = None,
        obs: Observability | None = None,
    ) -> "GraphSearchIndex":
        """Wrap an existing ``(points, graph, forest)`` triple for search.

        With ``prepared=True`` the points are taken as already transformed
        into the graph metric's kernel space and are *not* re-prepared -
        the constructor the mutable index uses to publish a new snapshot
        without renormalising (and therefore without perturbing) the
        stored vectors.  An explicit ``store`` attaches an existing
        quantized tier instead of fitting a fresh one - how the mutable
        index keeps codebooks frozen across insert flips.
        """
        index = cls(config=config, obs=obs)
        index._attach(points, graph, forest, prepared=prepared, store=store)
        return index

    def fit(self, points: np.ndarray) -> "GraphSearchIndex":
        """Engine-protocol ingest: build graph + forest over ``points``."""
        cfg = self._build_config or BuildConfig(k=16, strategy="tiled", seed=0)
        builder = WKNNGBuilder(cfg)
        graph = builder.build(points)
        assert builder.last_forest is not None
        self._attach(points, graph, builder.last_forest)
        return self

    # -- persistence -----------------------------------------------------------

    def save(self, directory) -> None:
        """Persist points, graph (with its metric metadata) and forest.

        The stored points are in prepared space; since metric preparation
        is idempotent for the graph-supported metrics, :meth:`load`
        re-applies it safely.  The search configuration (``ef`` and
        friends) is persisted alongside in ``search_config.json`` so a
        loaded index serves with the same defaults - ``repro serve
        --load-index`` depends on this for byte-identical results.
        """
        import dataclasses
        import json
        from pathlib import Path

        engine = self._require_fitted()
        d = Path(directory)
        d.mkdir(parents=True, exist_ok=True)
        np.save(d / "points.npy", engine._x)
        assert self.graph is not None and self.forest is not None
        self.graph.save(d / "graph.npz")
        self.forest.save(d / "forest.npz")
        if engine.store is not None:
            engine.store.save(d / "quant.npz")
        (d / "search_config.json").write_text(
            json.dumps(dataclasses.asdict(self.config), indent=2)
        )

    @classmethod
    def load(cls, directory, config: SearchConfig | None = None,
             *, obs: Observability | None = None) -> "GraphSearchIndex":
        """Inverse of :meth:`save`.

        The graph's persisted ``meta`` carries the build metric, so the
        restored index scores queries in the same prepared space as the
        original (the cosine-correctness fix depends on this).  An
        explicit ``config`` overrides the persisted search defaults;
        indexes saved before ``search_config.json`` existed load with
        stock defaults.
        """
        import json
        from pathlib import Path

        d = Path(directory)
        if config is None and (d / "search_config.json").exists():
            config = SearchConfig(
                **json.loads((d / "search_config.json").read_text())
            )
        index = cls(config=config, obs=obs)
        store = None
        if index.config.quantization != "none" and (d / "quant.npz").exists():
            store = QuantizedStore.load(d / "quant.npz")
            if store.spec != index.config.quantization:
                store = None  # spec changed since save: refit in _attach
        index._attach(
            np.load(d / "points.npy"),
            KNNGraph.load(d / "graph.npz"),
            RPForest.load(d / "forest.npz"),
            prepared=True,
            store=store,
        )
        return index

    # -- queries -----------------------------------------------------------------

    def _prepare_queries(self, queries: np.ndarray) -> np.ndarray:
        engine = self._require_fitted()
        q = check_query_matrix(queries, engine._x.shape[1], "queries")
        prepared, _ = prepare_points(
            q, self.metric, is_query=True,
            max_norm=self._metric_info.get("max_norm"),
        )
        return prepared

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed points (prepared space)."""
        return self._require_fitted()._x.shape[1]

    @property
    def n(self) -> int:
        """Number of indexed points."""
        return self._require_fitted()._x.shape[0]

    @property
    def store(self) -> QuantizedStore | None:
        """The attached compressed tier (``None`` when serving float32)."""
        return self._engine.store if self._engine is not None else None

    def search(self, queries: np.ndarray, k: int, *,
               ef: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """Approximate k-NN for each query row (batched engine).

        Returns ``(ids, dists)`` of shape ``(m, k)``, ascending by
        distance; ``dists`` are squared L2 in the index's prepared metric
        space, like everywhere in the library.  ``ef`` overrides the
        configured beam width for this call only - the dial the serving
        layer's degradation policy turns under load.
        """
        engine = self._require_fitted()
        q = self._prepare_queries(queries)
        k = check_positive_int(k, "k")
        cfg = self.config
        if ef is not None and ef != cfg.ef:
            from dataclasses import replace

            cfg = replace(cfg, ef=check_positive_int(ef, "ef"))
        return engine.search(q, k, config=cfg)

    def query(self, queries: np.ndarray, k: int, *,
              ef: int | None = None) -> tuple[np.ndarray, np.ndarray]:
        """:class:`~repro.baselines.KNNIndex` protocol alias of :meth:`search`.

        ``ef`` is the protocol-wide per-call quality dial; here it is the
        beam width, exactly as in :meth:`search`.
        """
        return self.search(queries, k, ef=ef)

    def stats(self) -> dict[str, Any]:
        """Work counters of the most recent search (engine protocol)."""
        engine = self._require_fitted()
        out: dict[str, Any] = {"engine": "wknng-graph", "metric": self.metric}
        for key, value in engine.last_query_stats.items():
            if key != "round_expansions":
                out[key] = value
        return out

    def memory_stats(self) -> dict[str, Any]:
        """Bytes held per component, including the compressed tier.

        ``vector_bytes`` is what candidate scoring gathers from each
        round: the quantized codes (+ parameters) when a store is
        attached, the float32 matrix otherwise.  ``reduction`` compares
        the two - the memory gate BENCH_T8 publishes.
        """
        engine = self._require_fitted()
        assert self.graph is not None
        full = int(engine._x.nbytes)
        out: dict[str, Any] = {
            "quantization": self.config.quantization,
            "float32_bytes": full,
            "graph_bytes": int(self.graph.ids.nbytes + self.graph.dists.nbytes),
            "vector_bytes": full,
            "reduction": 1.0,
        }
        if engine.store is not None:
            quant = engine.store.memory_stats()
            out["vector_bytes"] = quant["quantized_bytes"]
            out["code_bytes"] = quant["code_bytes"]
            out["param_bytes"] = quant["param_bytes"]
            out["reduction"] = quant["reduction"]
        return out

    # -- the legacy per-query reference engine -----------------------------------

    def _seed_candidates(self, query: np.ndarray) -> np.ndarray:
        """Entry points: members of the query's leaf in every tree."""
        engine = self._require_fitted()
        seeds: list[np.ndarray] = []
        q = query[None, :]
        assert self.forest is not None
        for tree in self.forest.trees:
            leaf_idx = int(tree.leaf_for(q)[0])
            members = tree.leaves[leaf_idx]
            seeds.append(members[: self.config.seeds_per_tree])
        return np.unique(np.concatenate(seeds)) if seeds else np.arange(
            min(self.config.ef, engine._x.shape[0])
        )

    def _search_one(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        engine = self._require_fitted()
        x = engine._x
        assert self.graph is not None
        cfg = self.config
        seeds = self._seed_candidates(query)
        d = rowwise_sq_norm(x[seeds] - query)
        visited = set(int(s) for s in seeds)
        # beam: max-heap of size ef over (-dist, id); frontier: min-heap
        beam: list[tuple[float, int]] = []
        frontier: list[tuple[float, int]] = []
        for dist, sid in zip(d, seeds):
            heapq.heappush(frontier, (float(dist), int(sid)))
            heapq.heappush(beam, (-float(dist), int(sid)))
        while len(beam) > cfg.ef:
            heapq.heappop(beam)

        expansions = 0
        while frontier and expansions < cfg.max_expansions:
            dist, node = heapq.heappop(frontier)
            worst = -beam[0][0] if len(beam) >= cfg.ef else np.inf
            if dist > worst:
                break  # nearest frontier node cannot improve the beam
            expansions += 1
            neigh = self.graph.neighbors(node)
            fresh = np.array(
                [n for n in neigh if int(n) not in visited], dtype=np.int64
            )
            if fresh.size == 0:
                continue
            visited.update(int(n) for n in fresh)
            nd = rowwise_sq_norm(x[fresh] - query)
            for ndist, nid in zip(nd, fresh):
                worst = -beam[0][0] if len(beam) >= cfg.ef else np.inf
                if ndist < worst or len(beam) < cfg.ef:
                    heapq.heappush(beam, (-float(ndist), int(nid)))
                    if len(beam) > cfg.ef:
                        heapq.heappop(beam)
                    heapq.heappush(frontier, (float(ndist), int(nid)))
        best = sorted((-nd, nid) for nd, nid in beam)
        best = best[:k]
        ids = np.full(k, -1, dtype=np.int32)
        dists = np.full(k, np.inf, dtype=np.float32)
        for i, (nd, nid) in enumerate(best):
            ids[i] = nid
            dists[i] = nd
        return ids, dists

    def search_legacy(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """The pre-batching per-query reference loop (heapq best-first).

        Kept for parity testing and as the single-query baseline in the
        T3 throughput benchmark; with the default ``frontier=1`` the
        batched engine returns identical results on tie-free inputs.
        """
        q = self._prepare_queries(queries)
        k = check_positive_int(k, "k")
        ids = np.empty((q.shape[0], k), dtype=np.int32)
        dists = np.empty((q.shape[0], k), dtype=np.float32)
        for i in range(q.shape[0]):
            ids[i], dists[i] = self._search_one(q[i], k)
        return ids, dists
