"""Similarity search on top of a w-KNNG graph + RP forest.

The paper motivates K-NN graph construction with similarity search: once
the graph exists, unseen queries can be answered by **graph-guided greedy
search** (the idea behind HNSW/NSG-style engines):

1. *entry points*: route the query down each retained RP tree to a leaf
   (:meth:`repro.core.rpforest.RPTree.leaf_for`) and take a handful of
   leaf members as seeds - cheap and already well-located;
2. *best-first expansion*: maintain a beam of the best candidates seen;
   repeatedly expand the nearest unexpanded candidate by scoring its graph
   neighbours, until the beam stops improving;
3. return the top ``k`` of everything scored.

Recall is controlled by the beam width (``ef``), exactly like ``efSearch``
in HNSW - giving the same accuracy/time dial the benchmarks use.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.builder import WKNNGBuilder
from repro.core.config import BuildConfig
from repro.core.graph import KNNGraph
from repro.core.rpforest import RPForest
from repro.errors import ConfigurationError
from repro.utils.validation import check_points_matrix, check_positive_int


@dataclass
class SearchConfig:
    """Query-time parameters.

    Attributes
    ----------
    ef:
        Beam width (candidates kept alive); recall rises with ``ef``.
    seeds_per_tree:
        Entry points sampled from each tree's leaf.
    max_expansions:
        Safety cap on node expansions per query.
    """

    ef: int = 32
    seeds_per_tree: int = 4
    max_expansions: int = 512

    def __post_init__(self) -> None:
        self.ef = check_positive_int(self.ef, "ef")
        self.seeds_per_tree = check_positive_int(self.seeds_per_tree, "seeds_per_tree")
        self.max_expansions = check_positive_int(self.max_expansions, "max_expansions")


class GraphSearchIndex:
    """Graph-guided approximate nearest-neighbour search index.

    Usage::

        index = GraphSearchIndex.build(points, k=16, seed=0)
        ids, dists = index.search(queries, k=10)
    """

    def __init__(self, points: np.ndarray, graph: KNNGraph, forest: RPForest,
                 config: SearchConfig | None = None) -> None:
        self._x = check_points_matrix(points, "points")
        if graph.n != self._x.shape[0]:
            raise ConfigurationError(
                f"graph has {graph.n} nodes but points has {self._x.shape[0]} rows"
            )
        self.graph = graph
        self.forest = forest
        self.config = config or SearchConfig()

    # -- construction ----------------------------------------------------------

    @classmethod
    def build(
        cls,
        points: np.ndarray,
        k: int = 16,
        build_config: BuildConfig | None = None,
        search_config: SearchConfig | None = None,
        seed=None,
    ) -> "GraphSearchIndex":
        """Build the K-NN graph (keeping the forest) and wrap it for search."""
        cfg = build_config or BuildConfig(k=k, strategy="tiled", seed=seed)
        builder = WKNNGBuilder(cfg)
        graph = builder.build(points)
        assert builder.last_forest is not None
        return cls(points, graph, builder.last_forest, search_config)

    # -- persistence -----------------------------------------------------------

    def save(self, directory) -> None:
        """Persist points, graph and forest under a directory.

        The search configuration is runtime state (tuneable per query
        load) and is not persisted.
        """
        from pathlib import Path

        d = Path(directory)
        d.mkdir(parents=True, exist_ok=True)
        np.save(d / "points.npy", self._x)
        self.graph.save(d / "graph.npz")
        self.forest.save(d / "forest.npz")

    @classmethod
    def load(cls, directory, config: SearchConfig | None = None) -> "GraphSearchIndex":
        """Inverse of :meth:`save`."""
        from pathlib import Path

        from repro.core.graph import KNNGraph
        from repro.core.rpforest import RPForest

        d = Path(directory)
        return cls(
            np.load(d / "points.npy"),
            KNNGraph.load(d / "graph.npz"),
            RPForest.load(d / "forest.npz"),
            config,
        )

    # -- queries -----------------------------------------------------------------

    def _seed_candidates(self, query: np.ndarray) -> np.ndarray:
        """Entry points: members of the query's leaf in every tree."""
        seeds: list[np.ndarray] = []
        q = query[None, :]
        for tree in self.forest.trees:
            leaf_idx = int(tree.leaf_for(q)[0])
            members = tree.leaves[leaf_idx]
            seeds.append(members[: self.config.seeds_per_tree])
        return np.unique(np.concatenate(seeds)) if seeds else np.arange(
            min(self.config.ef, self._x.shape[0])
        )

    def _search_one(self, query: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        x = self._x
        cfg = self.config
        seeds = self._seed_candidates(query)
        d = ((x[seeds] - query) ** 2).sum(axis=1)
        visited = set(int(s) for s in seeds)
        # beam: max-heap of size ef over (-dist, id); frontier: min-heap
        beam: list[tuple[float, int]] = []
        frontier: list[tuple[float, int]] = []
        for dist, sid in zip(d, seeds):
            heapq.heappush(frontier, (float(dist), int(sid)))
            heapq.heappush(beam, (-float(dist), int(sid)))
        while len(beam) > cfg.ef:
            heapq.heappop(beam)

        expansions = 0
        while frontier and expansions < cfg.max_expansions:
            dist, node = heapq.heappop(frontier)
            worst = -beam[0][0] if len(beam) >= cfg.ef else np.inf
            if dist > worst:
                break  # nearest frontier node cannot improve the beam
            expansions += 1
            neigh = self.graph.neighbors(node)
            fresh = np.array(
                [n for n in neigh if int(n) not in visited], dtype=np.int64
            )
            if fresh.size == 0:
                continue
            visited.update(int(n) for n in fresh)
            nd = ((x[fresh] - query) ** 2).sum(axis=1)
            for ndist, nid in zip(nd, fresh):
                worst = -beam[0][0] if len(beam) >= cfg.ef else np.inf
                if ndist < worst or len(beam) < cfg.ef:
                    heapq.heappush(beam, (-float(ndist), int(nid)))
                    if len(beam) > cfg.ef:
                        heapq.heappop(beam)
                    heapq.heappush(frontier, (float(ndist), int(nid)))
        best = sorted((-nd, nid) for nd, nid in beam)
        best = best[:k]
        ids = np.full(k, -1, dtype=np.int32)
        dists = np.full(k, np.inf, dtype=np.float32)
        for i, (nd, nid) in enumerate(best):
            ids[i] = nid
            dists[i] = nd
        return ids, dists

    def search(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Approximate k-NN for each query row.

        Returns ``(ids, dists)`` of shape ``(m, k)``, ascending by distance;
        ``dists`` are squared L2 like everywhere in the library.
        """
        q = check_points_matrix(queries, "queries")
        if q.shape[1] != self._x.shape[1]:
            raise ConfigurationError(
                f"query dim {q.shape[1]} != index dim {self._x.shape[1]}"
            )
        k = check_positive_int(k, "k")
        ids = np.empty((q.shape[0], k), dtype=np.int32)
        dists = np.empty((q.shape[0], k), dtype=np.float32)
        for i in range(q.shape[0]):
            ids[i], dists[i] = self._search_one(q[i], k)
        return ids, dists
