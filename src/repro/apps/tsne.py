"""K-NN-graph-accelerated t-SNE.

t-SNE (van der Maaten & Hinton, 2008) embeds high-dimensional points in 2-3
dimensions by matching pairwise affinity distributions.  Its input affinity
matrix is sparse in practice: each point interacts with its ~``3 *
perplexity`` nearest neighbours - which is exactly why fast approximate
K-NN graph construction matters (the paper's motivating use case, as in
Barnes-Hut t-SNE and LargeVis).

The pipeline here:

1. build the K-NN graph with :class:`~repro.core.builder.WKNNGBuilder`
   (``k = 3 * perplexity`` by default);
2. calibrate per-point Gaussian bandwidths to the target perplexity by
   binary search on the entropy (vectorised over all points at once);
3. symmetrise to joint probabilities ``P``;
4. gradient descent on the Kullback-Leibler divergence with the standard
   tricks: early exaggeration, momentum switching, and gains.  The
   repulsive term is computed exactly (O(n^2) per iteration), which is fine
   at the tutorial scales this application targets; the *attractive* term -
   the part that needs the K-NN graph - is sparse.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.builder import WKNNGBuilder
from repro.core.config import BuildConfig
from repro.core.graph import KNNGraph
from repro.errors import ConfigurationError
from repro.utils.rng import RngStream, as_generator
from repro.utils.validation import check_points_matrix

_MACHINE_EPS = np.finfo(np.float64).eps


@dataclass
class TSNEConfig:
    """t-SNE hyper-parameters (defaults follow the reference implementation)."""

    n_components: int = 2
    perplexity: float = 30.0
    n_iter: int = 500
    early_exaggeration: float = 12.0
    exaggeration_iters: int = 250
    learning_rate: float = 200.0
    momentum_early: float = 0.5
    momentum_late: float = 0.8
    knn_k: int | None = None  # default: 3 * perplexity
    seed: RngStream = None
    build: BuildConfig | None = None

    def __post_init__(self) -> None:
        if self.perplexity <= 1.0:
            raise ConfigurationError(f"perplexity must exceed 1, got {self.perplexity}")
        if self.n_components < 1:
            raise ConfigurationError(
                f"n_components must be >= 1, got {self.n_components}"
            )
        if self.n_iter < 1:
            raise ConfigurationError(f"n_iter must be >= 1, got {self.n_iter}")

    def effective_k(self) -> int:
        return self.knn_k if self.knn_k is not None else int(round(3 * self.perplexity))


class TSNE:
    """t-SNE with a w-KNNG affinity stage.

    Usage::

        emb = TSNE(TSNEConfig(perplexity=20, n_iter=300, seed=0)).fit_transform(x)

    After fitting, :attr:`knn_graph` holds the graph used, and
    :attr:`kl_divergence_` the final objective value.
    """

    def __init__(self, config: TSNEConfig | None = None, **kwargs) -> None:
        if config is not None and kwargs:
            raise TypeError("pass either a TSNEConfig or keyword options, not both")
        self.config = config if config is not None else TSNEConfig(**kwargs)
        self.knn_graph: KNNGraph | None = None
        self.embedding_: np.ndarray | None = None
        self.kl_divergence_: float = float("nan")

    # -- affinities ------------------------------------------------------------

    def _conditional_p(self, graph: KNNGraph) -> np.ndarray:
        """Perplexity-calibrated conditional probabilities on the graph edges.

        For each point, binary-search the Gaussian precision ``beta`` so the
        entropy of ``p_{j|i}`` over its k neighbours equals
        ``log(perplexity)``.  All points iterate together (vectorised).
        """
        d = graph.dists.astype(np.float64)  # squared distances, (n, k)
        n, k = d.shape
        target_entropy = np.log(self.config.perplexity)
        beta = np.ones(n)
        beta_min = np.full(n, -np.inf)
        beta_max = np.full(n, np.inf)
        # shift distances per row for numerical stability
        d = d - d[:, :1]
        p = np.empty_like(d)
        for _ in range(64):
            np.exp(-d * beta[:, None], out=p)
            psum = p.sum(axis=1) + _MACHINE_EPS
            # entropy H = log(sum) + beta * <d>
            h = np.log(psum) + beta * (d * p).sum(axis=1) / psum
            diff = h - target_entropy
            if np.all(np.abs(diff) < 1e-5):
                break
            too_high = diff > 0  # entropy too high -> increase beta
            beta_min = np.where(too_high, beta, beta_min)
            beta_max = np.where(too_high, beta_max, beta)
            beta = np.where(
                too_high,
                np.where(np.isinf(beta_max), beta * 2.0, (beta + beta_max) / 2.0),
                np.where(np.isinf(beta_min), beta / 2.0, (beta + beta_min) / 2.0),
            )
        p /= p.sum(axis=1, keepdims=True) + _MACHINE_EPS
        return p

    def _joint_p(self, graph: KNNGraph) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Symmetrised sparse joint probabilities as COO triplets."""
        n, k = graph.ids.shape
        cond = self._conditional_p(graph)
        rows = np.repeat(np.arange(n, dtype=np.int64), k)
        cols = graph.ids.reshape(-1).astype(np.int64)
        vals = cond.reshape(-1)
        valid = cols >= 0
        rows, cols, vals = rows[valid], cols[valid], vals[valid]
        # symmetrise: P = (C + C^T) / 2n, merging duplicate (i, j) entries
        all_rows = np.concatenate([rows, cols])
        all_cols = np.concatenate([cols, rows])
        all_vals = np.concatenate([vals, vals])
        key = all_rows * n + all_cols
        order = np.argsort(key, kind="stable")
        key, all_vals = key[order], all_vals[order]
        uniq, starts = np.unique(key, return_index=True)
        sums = np.add.reduceat(all_vals, starts)
        out_rows = (uniq // n).astype(np.int64)
        out_cols = (uniq % n).astype(np.int64)
        # normalise to a probability distribution over all edges
        p = sums / max(sums.sum(), _MACHINE_EPS)
        return out_rows, out_cols, p

    # -- optimisation -------------------------------------------------------------

    def fit_transform(self, points: np.ndarray) -> np.ndarray:
        """Embed ``points``; returns the ``(n, n_components)`` embedding."""
        x = check_points_matrix(points, "points")
        cfg = self.config
        n = x.shape[0]
        rng = as_generator(cfg.seed)

        build = cfg.build or BuildConfig(
            k=min(cfg.effective_k(), n - 1),
            strategy="tiled",
            n_trees=8,
            leaf_size=max(2 * min(cfg.effective_k(), n - 1) + 2, 32),
            refine_iters=1,
            seed=rng.integers(2**31),
        )
        graph = WKNNGBuilder(build).build(x)
        self.knn_graph = graph

        rows, cols, p = self._joint_p(graph)
        y = rng.standard_normal((n, cfg.n_components)) * 1e-4
        velocity = np.zeros_like(y)
        gains = np.ones_like(y)

        exaggeration = cfg.early_exaggeration
        for it in range(cfg.n_iter):
            if it == cfg.exaggeration_iters:
                exaggeration = 1.0
            grad, kl = _kl_gradient(y, rows, cols, p * exaggeration)
            momentum = (
                cfg.momentum_early if it < cfg.exaggeration_iters else cfg.momentum_late
            )
            same_sign = np.sign(grad) == np.sign(velocity)
            gains = np.where(same_sign, gains * 0.8, gains + 0.2)
            np.maximum(gains, 0.01, out=gains)
            velocity = momentum * velocity - cfg.learning_rate * gains * grad
            y = y + velocity
            y -= y.mean(axis=0, keepdims=True)
        self.kl_divergence_ = float(kl)
        self.embedding_ = y
        return y


def _kl_gradient(
    y: np.ndarray, rows: np.ndarray, cols: np.ndarray, p: np.ndarray
) -> tuple[np.ndarray, float]:
    """Gradient of KL(P || Q) for the t-SNE objective (exact repulsion).

    Attraction runs over the sparse P edges (the part the K-NN graph makes
    cheap); repulsion uses the dense Student-t kernel, computed exactly.
    Returns ``(gradient, kl_value)``.
    """
    # dense student-t kernel (exact): q_num[i, j] = 1 / (1 + |y_i - y_j|^2)
    sq = (y * y).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (y @ y.T)
    np.maximum(d2, 0.0, out=d2)
    q_num = 1.0 / (1.0 + d2)
    np.fill_diagonal(q_num, 0.0)
    z = max(q_num.sum(), _MACHINE_EPS)

    grad = np.zeros_like(y)
    # attraction over sparse edges
    diff = y[rows] - y[cols]
    w_attr = (p * q_num[rows, cols])[:, None] * diff
    np.add.at(grad, rows, w_attr)
    np.add.at(grad, cols, -w_attr)
    # repulsion, dense
    w_rep = (q_num * q_num) / z
    grad -= w_rep.sum(axis=1)[:, None] * y - w_rep @ y

    q_edges = q_num[rows, cols] / z
    kl = float((p * np.log((p + _MACHINE_EPS) / (q_edges + _MACHINE_EPS))).sum())
    return 4.0 * grad, kl
