"""Semi-supervised label propagation over a K-NN graph.

The third classic consumer of K-NN graphs (after similarity search and
t-SNE): given labels for a few points, diffuse them along graph edges to
label everything (Zhu & Ghahramani, 2002).  Implemented as the standard
iteration

.. math::  F^{(t+1)} = \\alpha \\, S F^{(t)} + (1 - \\alpha) Y

with ``S`` the symmetrically-normalised affinity matrix built from the
graph's (symmetrised) edges under a Gaussian kernel, ``Y`` the one-hot
seed labels (clamped each round), and ``alpha`` the diffusion strength.
Everything is sparse: per-iteration cost is O(edges x classes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from repro.core.graph import KNNGraph
from repro.errors import ConfigurationError, DataError


@dataclass
class LabelPropConfig:
    """Diffusion parameters.

    Attributes
    ----------
    alpha:
        Diffusion strength in (0, 1): higher trusts the graph more,
        lower trusts the seeds more.
    max_iters / tol:
        Iteration stops when the label matrix moves less than ``tol``
        (max-abs) or after ``max_iters``.
    kernel_scale:
        Gaussian kernel bandwidth as a multiple of the mean edge
        distance; edges are weighted ``exp(-d^2 / (scale * mean_d^2))``.
    """

    alpha: float = 0.9
    max_iters: int = 100
    tol: float = 1e-4
    kernel_scale: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.max_iters < 1:
            raise ConfigurationError("max_iters must be >= 1")
        if self.kernel_scale <= 0:
            raise ConfigurationError("kernel_scale must be positive")


class LabelPropagation:
    """Propagate seed labels over a :class:`KNNGraph`.

    Usage::

        lp = LabelPropagation(graph)
        labels = lp.fit_predict(seed_labels)    # -1 = unlabelled
        lp.scores_                              # (n, n_classes) soft scores
    """

    def __init__(self, graph: KNNGraph, config: LabelPropConfig | None = None) -> None:
        self.graph = graph
        self.config = config or LabelPropConfig()
        self._s = self._normalized_affinity()
        self.scores_: np.ndarray | None = None
        self.n_iter_: int = 0

    def _normalized_affinity(self) -> sparse.csr_matrix:
        """Symmetrised, Gaussian-weighted, symmetrically-normalised S."""
        return self.graph.gaussian_affinity(self.config.kernel_scale)

    def fit_predict(self, seed_labels: np.ndarray) -> np.ndarray:
        """Diffuse seeds (-1 = unlabelled) and return a full label vector."""
        y = np.asarray(seed_labels)
        if y.shape != (self.graph.n,):
            raise DataError(
                f"seed_labels must have shape ({self.graph.n},), got {y.shape}"
            )
        labelled = y >= 0
        if not labelled.any():
            raise DataError("at least one seed label is required")
        classes = np.unique(y[labelled])
        class_index = {int(c): i for i, c in enumerate(classes)}
        n_classes = classes.shape[0]

        y_onehot = np.zeros((self.graph.n, n_classes))
        for i in np.flatnonzero(labelled):
            y_onehot[i, class_index[int(y[i])]] = 1.0

        cfg = self.config
        f = y_onehot.copy()
        for it in range(cfg.max_iters):
            f_next = cfg.alpha * (self._s @ f) + (1 - cfg.alpha) * y_onehot
            delta = float(np.abs(f_next - f).max())
            f = f_next
            self.n_iter_ = it + 1
            if delta < cfg.tol:
                break
        self.scores_ = f
        out = classes[f.argmax(axis=1)]
        # points completely disconnected from any seed keep -1
        reachable = f.sum(axis=1) > 0
        out = np.where(reachable, out, -1)
        return out
