"""Quality and timing metrics for graphs and experiments."""

from repro.metrics.recall import knn_recall, per_point_recall
from repro.metrics.quality import distance_ratio, edge_overlap
from repro.metrics.clustering import adjusted_rand_index
from repro.metrics.connectivity import (
    connected_components,
    giant_component_fraction,
    min_out_degree,
)
from repro.metrics.timer import Timer, time_call
from repro.metrics.records import ExperimentRecord, RecordSet

__all__ = [
    "adjusted_rand_index",
    "knn_recall",
    "per_point_recall",
    "distance_ratio",
    "edge_overlap",
    "connected_components",
    "giant_component_fraction",
    "min_out_degree",
    "Timer",
    "time_call",
    "ExperimentRecord",
    "RecordSet",
]
