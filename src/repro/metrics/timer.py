"""Lightweight wall-clock timing helpers for the benchmark harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable


class Timer:
    """Context-manager stopwatch accumulating named phases.

    Usage::

        t = Timer()
        with t.phase("build"):
            ...
        with t.phase("search"):
            ...
        t.seconds["build"], t.total
    """

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}

    def phase(self, name: str):
        return _Phase(self, name)

    @property
    def total(self) -> float:
        return float(sum(self.seconds.values()))


@dataclass
class _Phase:
    timer: Timer
    name: str
    _t0: float = field(default=0.0, init=False)

    def __enter__(self) -> "_Phase":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._t0
        self.timer.seconds[self.name] = self.timer.seconds.get(self.name, 0.0) + elapsed


def time_call(fn: Callable[..., Any], *args, repeat: int = 1, **kwargs) -> tuple[float, Any]:
    """Run ``fn`` ``repeat`` times; return (best wall-clock seconds, last result)."""
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    best = float("inf")
    result = None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result
