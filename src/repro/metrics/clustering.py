"""Clustering-quality metrics."""

from __future__ import annotations

import numpy as np

from repro.errors import DataError


def adjusted_rand_index(labels_true, labels_pred) -> float:
    """Adjusted Rand index between two labelings (1.0 = identical).

    The chance-corrected pair-counting agreement (Hubert & Arabie, 1985)
    computed from the contingency table; symmetric in its arguments and
    invariant to label permutation.  Noise markers (e.g. DBSCAN's ``-1``)
    are treated as one more cluster, matching scikit-learn's behaviour
    when comparing DBSCAN labelings directly.
    """
    a = np.asarray(labels_true).ravel()
    b = np.asarray(labels_pred).ravel()
    if a.shape != b.shape:
        raise DataError(
            f"labelings must have matching shapes, got {a.shape} and {b.shape}"
        )
    n = a.size
    if n == 0:
        return 1.0
    _, ai = np.unique(a, return_inverse=True)
    _, bi = np.unique(b, return_inverse=True)
    n_a = int(ai.max()) + 1
    n_b = int(bi.max()) + 1
    contingency = np.bincount(
        ai.astype(np.int64) * n_b + bi.astype(np.int64), minlength=n_a * n_b
    ).reshape(n_a, n_b)

    def comb2(x):
        x = x.astype(np.float64)
        return (x * (x - 1.0) / 2.0).sum()

    sum_ij = comb2(contingency)
    sum_a = comb2(contingency.sum(axis=1))
    sum_b = comb2(contingency.sum(axis=0))
    total = n * (n - 1.0) / 2.0
    expected = sum_a * sum_b / total if total else 0.0
    max_index = (sum_a + sum_b) / 2.0
    if max_index == expected:  # both labelings are a single cluster (or n=1)
        return 1.0
    return float((sum_ij - expected) / (max_index - expected))
