"""Graph-connectivity diagnostics for K-NN graphs.

A K-NN graph that is accurate per-point can still be *globally* broken for
downstream consumers: t-SNE and label propagation need the (undirected)
graph to be connected, and graph-guided search needs every point reachable
from the entry region.  These diagnostics measure that, using a union-find
over the undirected closure (no NetworkX dependency in the hot path).
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import KNNGraph


class UnionFind:
    """Array-based union-find with path halving and union by size."""

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)

    def find(self, i: int) -> int:
        parent = self.parent
        while parent[i] != i:
            parent[i] = parent[parent[i]]  # path halving
            i = parent[i]
        return int(i)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; True if they were distinct."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        return True

    def n_components(self) -> int:
        roots = {self.find(i) for i in range(self.parent.shape[0])}
        return len(roots)

    def component_sizes(self) -> np.ndarray:
        roots = np.array([self.find(i) for i in range(self.parent.shape[0])])
        _, counts = np.unique(roots, return_counts=True)
        return np.sort(counts)[::-1]


def connected_components(graph: KNNGraph) -> np.ndarray:
    """Sizes of the undirected connected components, descending.

    A healthy K-NN graph of a connected data distribution has one giant
    component; isolated islands mean the forest/refinement never linked a
    region to the rest.  Components come from the vectorized edge-list
    union-find (:mod:`repro.neighbors.unionfind`) - no per-edge Python
    loop.
    """
    from repro.neighbors.unionfind import connected_components as cc_edges

    edges, _ = graph.to_coo()
    labels = cc_edges(graph.n, edges[0], edges[1])
    _, counts = np.unique(labels, return_counts=True)
    return np.sort(counts)[::-1]


def giant_component_fraction(graph: KNNGraph) -> float:
    """Fraction of points in the largest undirected component (1.0 = connected)."""
    sizes = connected_components(graph)
    return float(sizes[0] / graph.n) if sizes.size else 0.0


def min_out_degree(graph: KNNGraph) -> int:
    """Smallest number of valid neighbours over all points."""
    return int((graph.ids >= 0).sum(axis=1).min())
