"""Graph-quality measures beyond recall.

Recall treats all misses equally; :func:`distance_ratio` measures *how
close* the found neighbours are to optimal, which distinguishes "missed the
5th neighbour, found the 6th" (harmless for t-SNE-style consumers) from
genuinely bad edges.
"""

from __future__ import annotations

import numpy as np

from repro.core.graph import KNNGraph
from repro.errors import DataError


def distance_ratio(approx: KNNGraph, exact: KNNGraph) -> float:
    """Mean ratio of approximate to exact mean-neighbour distance (>= 1).

    Computed on true (non-squared) distances per point; 1.0 means the
    approximate neighbours are exactly as tight as the true ones even if
    the id sets differ.  Points with zero exact distance sum (duplicates)
    are skipped.
    """
    if approx.n != exact.n:
        raise DataError(f"graph sizes differ: {approx.n} vs {exact.n}")
    k = min(approx.k, exact.k)
    a = np.sqrt(np.maximum(approx.dists[:, :k], 0.0))
    e = np.sqrt(np.maximum(exact.dists[:, :k], 0.0))
    a_sum = a.sum(axis=1)
    e_sum = e.sum(axis=1)
    valid = e_sum > 0
    if not valid.any():
        return 1.0
    return float((a_sum[valid] / e_sum[valid]).mean())


def edge_overlap(g1: KNNGraph, g2: KNNGraph) -> float:
    """Fraction of directed edges of ``g1`` also present in ``g2``.

    Unlike recall this is defined between two *approximate* graphs - used
    to verify that different strategies produce (near-)identical graphs for
    the same candidate stream.
    """
    if g1.n != g2.n:
        raise DataError(f"graph sizes differ: {g1.n} vs {g2.n}")
    from repro.metrics.recall import per_point_recall

    k = min(g1.k, g2.k)
    return float(per_point_recall(g2.ids[:, :k], g1.ids[:, :k]).mean())
