"""Recall of approximate K-NN graphs against exact ground truth.

Recall@k is the paper's accuracy measure ("equivalent accuracy of
approximate K-NNG"): the fraction of each point's true k nearest
neighbours that the approximate graph found, averaged over points.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataError


def per_point_recall(approx_ids: np.ndarray, exact_ids: np.ndarray) -> np.ndarray:
    """Per-point recall vector.

    Parameters
    ----------
    approx_ids:
        ``(n, k_a)`` approximate neighbour ids (``-1`` = unfilled slot).
    exact_ids:
        ``(n, k_e)`` exact neighbour ids; recall is measured against the
        first ``min(k_a, k_e)`` exact columns.

    Returns
    -------
    ``(n,)`` float64 vector of ``|approx ∩ exact| / k`` values.

    Notes
    -----
    Fully vectorised: both matrices are row-sorted once and intersected
    with a merge-free membership test via :func:`numpy.searchsorted` -
    O(n * k log k) total.
    """
    approx_ids = np.asarray(approx_ids)
    exact_ids = np.asarray(exact_ids)
    if approx_ids.ndim != 2 or exact_ids.ndim != 2:
        raise DataError("recall expects 2-D (n, k) id matrices")
    if approx_ids.shape[0] != exact_ids.shape[0]:
        raise DataError(
            f"row counts differ: approx {approx_ids.shape[0]} vs exact "
            f"{exact_ids.shape[0]}"
        )
    k = min(approx_ids.shape[1], exact_ids.shape[1])
    if k == 0:
        raise DataError("recall needs at least one neighbour column")
    a = np.sort(approx_ids, axis=1)
    e = np.sort(exact_ids[:, :k], axis=1)
    # for each exact id, binary-search the sorted approx row
    pos = np.clip(_rowwise_searchsorted(a, e), 0, a.shape[1] - 1)
    found = np.take_along_axis(a, pos, axis=1) == e
    return found.sum(axis=1) / float(k)


def _rowwise_searchsorted(a: np.ndarray, e: np.ndarray) -> np.ndarray:
    """Row-wise searchsorted: positions of ``e``'s entries in sorted rows of ``a``.

    Implemented by offsetting each row into a disjoint value range so one
    flat searchsorted handles all rows at once.
    """
    n, ka = a.shape
    span = np.int64(2) ** 40  # far beyond any point index
    offsets = (np.arange(n, dtype=np.int64) * span)[:, None]
    flat_a = (a.astype(np.int64) + offsets).reshape(-1)
    flat_e = (e.astype(np.int64) + offsets).reshape(-1)
    pos = np.searchsorted(flat_a, flat_e)
    return (pos.reshape(e.shape) - np.arange(n)[:, None] * ka).astype(np.int64)


def knn_recall(approx_ids: np.ndarray, exact_ids: np.ndarray) -> float:
    """Mean recall@k over all points (see :func:`per_point_recall`)."""
    return float(per_point_recall(approx_ids, exact_ids).mean())
