"""Structured experiment records: what benchmarks emit and EXPERIMENTS.md cites.

A :class:`RecordSet` is a tiny append-only table of
:class:`ExperimentRecord` rows that can render itself as an aligned text
table (what the bench targets print) or dump to JSON for later analysis.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass
class ExperimentRecord:
    """One measured configuration of one experiment."""

    experiment: str
    params: dict[str, Any] = field(default_factory=dict)
    results: dict[str, Any] = field(default_factory=dict)

    def flat(self) -> dict[str, Any]:
        out: dict[str, Any] = {"experiment": self.experiment}
        out.update(self.params)
        out.update(self.results)
        return out


class RecordSet:
    """An ordered collection of experiment records."""

    def __init__(self, records: Iterable[ExperimentRecord] = ()) -> None:
        self.records: list[ExperimentRecord] = list(records)

    def add(self, experiment: str, params: dict[str, Any], results: dict[str, Any]) -> ExperimentRecord:
        rec = ExperimentRecord(experiment, dict(params), dict(results))
        self.records.append(rec)
        return rec

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def columns(self) -> list[str]:
        cols: list[str] = []
        for rec in self.records:
            for key in rec.flat():
                if key not in cols:
                    cols.append(key)
        return cols

    def to_json(self) -> str:
        return json.dumps([rec.flat() for rec in self.records], indent=2, default=str)

    def to_table(self, float_fmt: str = "{:.4g}") -> str:
        """Render an aligned, pipe-separated text table."""
        cols = self.columns()
        if not cols:
            return "(no records)"

        def fmt(v: Any) -> str:
            if isinstance(v, float):
                return float_fmt.format(v)
            return str(v)

        rows = [[fmt(rec.flat().get(c, "")) for c in cols] for rec in self.records]
        widths = [
            max(len(c), *(len(r[i]) for r in rows)) if rows else len(c)
            for i, c in enumerate(cols)
        ]
        def line(cells: list[str]) -> str:
            return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

        sep = "-+-".join("-" * w for w in widths)
        return "\n".join([line(cols), sep] + [line(r) for r in rows])
