"""Warp-centric exact brute-force KNNG kernel (the GPU-Flat reference).

The exact counterpart of FAISS's ``IndexFlat`` on the simulator: one warp
per query point, the database streamed in shared-memory tiles (each block
stages a tile cooperatively, then its warps score the tile against their
query), candidates bulk-merged into the query's list with the same tiled
inserter the w-KNNG tiled strategy uses.

This is the cost *ceiling* every approximate method is judged against;
running it on the simulator grounds the analytic
:func:`repro.bench.costmodel.bruteforce_cycles` formula with event-level
counts (asserted in the tests).
"""

from __future__ import annotations

import numpy as np

from repro.simt.config import DeviceConfig
from repro.simt.device import Device
from repro.simt.memory import GlobalBuffer
from repro.simt.warp import WarpContext
from repro.simt_kernels.device_fns import TiledInserter
from repro.kernels.knn_state import EMPTY_ID, KnnState
from repro.utils.validation import check_k_fits, check_points_matrix


def bruteforce_kernel(
    ctx: WarpContext,
    xbuf: GlobalBuffer,
    dist_buf: GlobalBuffer,
    id_buf: GlobalBuffer,
    n: int,
    dim: int,
    k: int,
    queries_per_block: int,
):
    """Exact all-pairs scan: block stages database tiles, warps own queries.

    Geometry: block ``b`` serves queries ``b * queries_per_block + warp``;
    the database is processed in tiles of ``warp_size`` points staged into
    shared memory once per block (reuse factor = warps per block x
    warp_size lanes).
    """
    w = ctx.warp_size
    lane = ctx.lane_id
    query = ctx.block_id * queries_per_block + ctx.warp_id
    active_query = query < n
    stride = dim + 1  # padded against bank conflicts
    tile_coords = ctx.shared("bf_tile", (w * stride,), np.float32)
    tile_ids = ctx.shared("bf_ids", (w,), np.int64)

    inserter = None
    if active_query:
        inserter = TiledInserter(
            ctx, dist_buf, id_buf, query, k, tile_name=f"bf_q{ctx.warp_id}"
        )
        xq = []
        for c in range(0, dim, w):
            mask = (c + lane) < dim
            xq.append(ctx.load(xbuf, query * dim + c + lane, mask))

    for t0 in range(0, n, w):
        tile_len = min(w, n - t0)
        # --- cooperative staging: warps split the tile's rows --------------
        for row in range(ctx.warp_id, tile_len, ctx.block_warps):
            pid = t0 + row
            ctx.shared_store(tile_ids, np.full(w, row), np.int64(pid),
                             lane == 0)
            for c in range(0, dim, w):
                mask = (c + lane) < dim
                vals = ctx.load(xbuf, pid * dim + c + lane, mask)
                ctx.shared_store(tile_coords, row * stride + c + lane, vals, mask)
        yield ctx.barrier()

        if active_query:
            # --- lane-parallel distances to the staged tile -----------------
            jmask = (lane < tile_len) & ((t0 + lane) != query)
            safe_j = np.where(lane < tile_len, lane, 0)
            acc = np.zeros(w, dtype=np.float64)
            for c in range(dim):
                xq_c = ctx.shfl(xq[c // w], c % w)
                xj_c = ctx.shared_load(tile_coords, safe_j * stride + c, jmask)
                diff = np.where(jmask, xq_c.astype(np.float64) - xj_c, 0.0)
                acc += diff * diff
                ctx.alu(2)
            cand_ids = ctx.shared_load(tile_ids, safe_j, jmask)
            inserter.offer_vector(acc, cand_ids, jmask)
        yield ctx.barrier()  # tile reuse: all warps done before restaging

    if inserter is not None:
        inserter.flush()


def bruteforce_knng_simt(
    points: np.ndarray,
    k: int,
    device: Device | None = None,
    queries_per_block: int = 4,
) -> tuple[KnnState, Device]:
    """Run the exact kernel over all points; returns ``(state, device)``."""
    x = check_points_matrix(points, "points")
    n, dim = x.shape
    check_k_fits(k, n)
    device = device or Device(DeviceConfig())
    if k > device.config.warp_size:
        raise ValueError(f"k={k} exceeds warp_size={device.config.warp_size}")
    xbuf = device.to_device(x.reshape(-1), "points", const=True)
    dist_buf = device.empty((n * k,), np.float32, "bf_dists", fill=np.inf)
    id_buf = device.empty((n * k,), np.int32, "bf_ids", fill=EMPTY_ID)
    blocks = (n + queries_per_block - 1) // queries_per_block
    device.launch(
        bruteforce_kernel,
        grid_blocks=blocks,
        block_warps=queries_per_block,
        args=(xbuf, dist_buf, id_buf, n, dim, k, queries_per_block),
    )
    state = KnnState(n, k)
    state.dists[...] = dist_buf.to_host().reshape(n, k)
    state.ids[...] = id_buf.to_host().reshape(n, k)
    return state, device
