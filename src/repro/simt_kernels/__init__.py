"""Warp-centric w-KNNG kernels executed on the SIMT simulator.

These are instruction-level implementations of the paper's three
strategies, written against :class:`repro.simt.warp.WarpContext` exactly as
the CUDA kernels would be written against warp intrinsics:

* one warp owns one *query* point of a leaf and iterates over the leaf's
  other members (``leaf_kernels``);
* distances are accumulated lane-parallel over dimension chunks of
  ``warp_size`` coordinates;
* insertion into the global-memory k-NN list follows the strategy's
  discipline (per-point lock / packed-word CAS / shared tile + warp
  bitonic bulk merge).

The simulator interprets every warp operation in Python, so this layer is
used at small scale: for correctness cross-checks against the vectorised
backend (both must produce the same graphs) and for the microarchitecture
metrics of experiment F6 (global transactions, shared traffic, atomics,
divergence per strategy and dimensionality).

Limitations (documented, deliberate): warps execute cooperatively, so
*cross-warp* lock/CAS contention never materialises inside the simulator -
contention is accounted analytically from the vectorised backend's
attempt/retry counters instead (see ``repro.bench.costmodel``).
"""

from repro.simt_kernels.pipeline import build_knng_simt, simt_leaf_metrics
from repro.simt_kernels.bruteforce_kernel import bruteforce_knng_simt
from repro.simt_kernels.adc_kernels import adc_topk_simt

__all__ = [
    "build_knng_simt",
    "simt_leaf_metrics",
    "bruteforce_knng_simt",
    "adc_topk_simt",
]
