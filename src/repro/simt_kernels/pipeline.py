"""End-to-end w-KNNG construction on the SIMT simulator backend.

Same pipeline as the vectorised builder (forest -> leaf all-pairs ->
refinement), with the two kernel phases executed warp-by-warp on
:class:`repro.simt.device.Device`.  RP-forest construction and refinement
candidate *generation* stay on the host, as they do in the paper (tree
construction is a preprocessing step; the kernels are the contribution).

Use :func:`build_knng_simt` through
``WKNNGBuilder(BuildConfig(backend="simt"))``; use :func:`simt_leaf_metrics`
to collect per-strategy microarchitecture counters for one leaf workload
(experiment F6).
"""

from __future__ import annotations

import numpy as np

from repro.core.config import BuildConfig
from repro.core.graph import KNNGraph
from repro.core.refine import RefineState, local_join_candidates
from repro.core.rpforest import build_forest
from repro.errors import ConfigurationError
from repro.kernels.knn_state import EMPTY_ID, KnnState
from repro.simt.atomics import EMPTY_PACKED, unpack_dist_id
from repro.simt.config import DeviceConfig
from repro.simt.device import Device
from repro.simt.metrics import KernelMetrics
from repro.simt_kernels import leaf_kernels, pairs_kernels
from repro.utils.arrays import segment_lengths
from repro.utils.rng import as_generator, spawn_streams
from repro.utils.validation import check_points_matrix


class _DeviceLists:
    """Strategy-appropriate device-resident k-NN list buffers."""

    def __init__(self, device: Device, n: int, k: int, strategy: str) -> None:
        self.strategy = strategy
        self.n, self.k = n, k
        if strategy == "atomic":
            self.packed = device.empty(
                (n * k,), np.uint64, "knn_packed", fill=np.uint64(EMPTY_PACKED)
            )
        else:
            self.dists = device.empty((n * k,), np.float32, "knn_dists", fill=np.inf)
            self.ids = device.empty((n * k,), np.int32, "knn_ids", fill=EMPTY_ID)
            if strategy == "baseline":
                self.locks = device.empty((n,), np.int32, "knn_locks")

    def to_state(self) -> KnnState:
        """Copy the device lists back into a host KnnState."""
        state = KnnState(self.n, self.k)
        if self.strategy == "atomic":
            dists, ids = unpack_dist_id(self.packed.to_host())
            state.dists[...] = dists.reshape(self.n, self.k)
            state.ids[...] = ids.reshape(self.n, self.k)
        else:
            state.dists[...] = self.dists.to_host().reshape(self.n, self.k)
            state.ids[...] = self.ids.to_host().reshape(self.n, self.k)
        return state


def _launch_leaf(
    device: Device,
    lists: _DeviceLists,
    xbuf,
    leaf: np.ndarray,
    dim: int,
    k: int,
) -> None:
    leaf_len = int(leaf.shape[0])
    if leaf_len < 2:
        return
    leaf_buf = device.to_device(leaf.astype(np.int64), "leaf", const=True)
    if lists.strategy == "baseline":
        device.launch(
            leaf_kernels.leaf_kernel_baseline,
            grid_blocks=leaf_len,
            block_warps=1,
            args=(xbuf, lists.dists, lists.ids, lists.locks, leaf_buf, leaf_len, dim, k),
        )
    elif lists.strategy == "atomic":
        device.launch(
            leaf_kernels.leaf_kernel_atomic,
            grid_blocks=leaf_len,
            block_warps=1,
            args=(xbuf, lists.packed, leaf_buf, leaf_len, dim, k),
        )
    else:
        device.launch(
            leaf_kernels.leaf_kernel_tiled,
            grid_blocks=1,
            block_warps=leaf_len,
            args=(xbuf, lists.dists, lists.ids, leaf_buf, leaf_len, dim, k),
        )


def _launch_pairs(
    device: Device,
    lists: _DeviceLists,
    xbuf,
    rows: np.ndarray,
    cols: np.ndarray,
    dim: int,
    k: int,
) -> None:
    order = np.argsort(rows, kind="stable")
    srows, scols = rows[order], cols[order]
    urows, starts, counts = segment_lengths(srows)
    n_groups = int(urows.size)
    if n_groups == 0:
        return
    rows_buf = device.to_device(urows.astype(np.int64), "ref_rows", const=True)
    cols_buf = device.to_device(scols.astype(np.int64), "ref_cols", const=True)
    starts_buf = device.to_device(starts.astype(np.int64), "ref_starts", const=True)
    counts_buf = device.to_device(counts.astype(np.int64), "ref_counts", const=True)
    if lists.strategy == "baseline":
        device.launch(
            pairs_kernels.pairs_kernel_baseline,
            grid_blocks=n_groups,
            block_warps=1,
            args=(
                xbuf, lists.dists, lists.ids, lists.locks,
                rows_buf, cols_buf, starts_buf, counts_buf, n_groups, dim, k,
            ),
        )
    elif lists.strategy == "atomic":
        device.launch(
            pairs_kernels.pairs_kernel_atomic,
            grid_blocks=n_groups,
            block_warps=1,
            args=(
                xbuf, lists.packed,
                rows_buf, cols_buf, starts_buf, counts_buf, n_groups, dim, k,
            ),
        )
    else:
        device.launch(
            pairs_kernels.pairs_kernel_tiled,
            grid_blocks=n_groups,
            block_warps=1,
            args=(
                xbuf, lists.dists, lists.ids,
                rows_buf, cols_buf, starts_buf, counts_buf, n_groups, dim, k,
            ),
        )


def build_knng_simt(points: np.ndarray, config: BuildConfig,
                    device: Device | None = None, obs=None):
    """Run the full w-KNNG pipeline on the simulator.

    Returns ``(KNNGraph, BuildReport)``; the graph's ``meta["simt_metrics"]``
    holds the accumulated :class:`~repro.simt.metrics.KernelMetrics` dict and
    ``meta["estimated_cycles"]`` the cost-model total.  The report's
    ``counters`` are the device metrics (the simt analogue of the
    vectorised backend's op counters); an explicit
    :class:`~repro.obs.Observability` additionally exposes every simulated
    kernel launch through the ``kernel_dispatch`` hooks.
    """
    from repro.core.builder import BuildReport  # local: avoid import cycle
    from repro.obs import Observability
    from repro.simt.metrics import METRICS_PREFIX as SIMT_PREFIX

    x = check_points_matrix(points, "points")
    n, dim = x.shape
    obs = obs if obs is not None else Observability()
    device = device or Device(DeviceConfig())
    if device.obs is None:
        device.obs = obs
    if config.k > device.config.warp_size:
        raise ConfigurationError(
            f"the simt backend requires k <= warp_size "
            f"({device.config.warp_size}), got k={config.k}"
        )
    forest_rng, refine_rng = spawn_streams(config.seed, 2)
    counters_before = BuildReport.counters_snapshot(obs, SIMT_PREFIX)

    with obs.trace.span("build", backend="simt", n=n, dim=dim, k=config.k,
                        strategy=config.strategy):
        with obs.trace.span("forest"):
            forest = build_forest(x, config.n_trees, config.leaf_size,
                                  forest_rng, obs=obs)
            sizes = forest.leaf_sizes()
            obs.metrics.gauge("forest/n_leaves").set(float(sizes.size))
            obs.metrics.gauge("forest/mean_leaf_size").set(float(sizes.mean()))
            obs.metrics.gauge("forest/max_leaf_size").set(float(sizes.max()))

        with obs.trace.span("leaf_pairs"):
            # the point matrix is kernel input only: const skips conflict
            # tracking (it is the hot gather path under the sanitizer)
            xbuf = device.to_device(x.reshape(-1), "points", const=True)
            lists = _DeviceLists(device, n, config.k, config.strategy)
            for _ti, leaf in forest.iter_leaves():
                _launch_leaf(device, lists, xbuf, leaf, dim, config.k)

        with obs.trace.span("refine"):
            rng = as_generator(refine_rng)
            sample = config.effective_refine_sample()
            refine_state = RefineState()
            for round_idx in range(config.refine_iters):
                with obs.trace.span(f"round-{round_idx}") as round_span:
                    state = lists.to_state()
                    rows, cols = local_join_candidates(
                        state, refine_state, rng, sample)
                    refine_state.prev_ids = state.ids.copy()
                    refine_state.rounds_run += 1
                    if rows.size == 0:
                        round_span.set(converged=True)
                        break
                    before = lists.to_state().filled_counts().sum()
                    _launch_pairs(device, lists, xbuf, rows, cols, dim, config.k)
                    inserted = int(lists.to_state().filled_counts().sum() - before)
                    round_span.set(inserted=inserted,
                                   candidates=int(rows.size))
                    obs.metrics.counter("refine/candidate_pairs").inc(int(rows.size))
                    obs.metrics.counter("refine/insertions").inc(inserted)

        with obs.trace.span("finalize"):
            state = lists.to_state()
            ids, dists = state.sorted_arrays()

    device.metrics.emit(obs.metrics, prefix=SIMT_PREFIX)
    report = BuildReport.from_obs(
        obs, counters_prefix=SIMT_PREFIX, counters_baseline=counters_before,
        metric=config.metric, strategy=config.strategy,
        parallel={"n_jobs": 1, "workers": 1},
    )
    meta = {
        "algorithm": "w-knng",
        "strategy": config.strategy,
        "backend": "simt",
        "config": config,
        "simt_metrics": device.metrics.as_dict(),
        "estimated_cycles": device.metrics.estimated_cycles(device.config),
        "report": report.as_dict(),
    }
    if device.sanitizer is not None:
        # raise mode would have aborted the build at the first finding, so
        # this summary is the report-mode record of what wksan saw
        meta["sanitizer"] = device.sanitizer.report().as_dict()
    graph = KNNGraph(
        ids=ids,
        dists=dists,
        meta=meta,
        report=report,
    )
    return graph, report


def simt_leaf_metrics(
    x: np.ndarray,
    leaf: np.ndarray,
    k: int,
    strategy: str,
    device_config: DeviceConfig | None = None,
) -> KernelMetrics:
    """Run one leaf all-pairs kernel and return its metric counters.

    The F6 bench sweeps this over strategies and dimensionalities to show
    *why* the atomic/tiled crossover happens (transactions vs atomics).
    """
    x = check_points_matrix(x, "points")
    device = Device(device_config or DeviceConfig())
    xbuf = device.to_device(x.reshape(-1), "points")
    lists = _DeviceLists(device, x.shape[0], k, strategy)
    _launch_leaf(device, lists, xbuf, np.asarray(leaf, dtype=np.int64), x.shape[1], k)
    return device.metrics.copy()
