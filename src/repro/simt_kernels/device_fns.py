"""Device functions shared by the warp-centric kernels.

Each function takes the warp context plus device buffers and mirrors one
``__device__`` function of the CUDA implementation.  All memory traffic
flows through the context so the simulator's counters see it.
"""

from __future__ import annotations

import numpy as np

from repro.simt.atomics import pack_dist_id
from repro.simt.intrinsics import warp_bitonic_sort, warp_sorted_merge_max
from repro.simt.memory import GlobalBuffer
from repro.simt.warp import WarpContext


def load_scalar(ctx: WarpContext, buf: GlobalBuffer, index: int) -> float:
    """Single-lane load + warp broadcast (a scalar read done CUDA-style)."""
    vec = ctx.load(buf, np.full(ctx.warp_size, index), ctx.lane_id == 0)
    return ctx.shfl(vec, 0)[0]


def distance_direct(
    ctx: WarpContext,
    xbuf: GlobalBuffer,
    i: int,
    j: int,
    dim: int,
    xi_chunks: list[np.ndarray] | None = None,
) -> float:
    """Squared L2 between points ``i`` and ``j`` (direct schedule).

    Lanes accumulate over dimension chunks of ``warp_size`` coordinates;
    the query point's chunks can be passed in (``xi_chunks``) so the warp
    loads them once per leaf instead of once per pair - registers cache the
    query, global memory streams the candidate (the baseline/atomic traffic
    pattern).
    """
    w = ctx.warp_size
    lane = ctx.lane_id
    acc = np.zeros(w, dtype=np.float64)
    n_chunks = (dim + w - 1) // w
    for c in range(n_chunks):
        base = c * w
        mask = (base + lane) < dim
        if xi_chunks is not None:
            xi = xi_chunks[c]
        else:
            xi = ctx.load(xbuf, i * dim + base + lane, mask)
        xj = ctx.load(xbuf, j * dim + base + lane, mask)
        diff = np.where(mask, xi.astype(np.float64) - xj, 0.0)
        acc += diff * diff
        ctx.alu(2)
    return float(ctx.reduce_sum(acc))


def load_point_chunks(
    ctx: WarpContext, xbuf: GlobalBuffer, i: int, dim: int
) -> list[np.ndarray]:
    """Load a point's coordinates into per-chunk warp registers."""
    w = ctx.warp_size
    lane = ctx.lane_id
    chunks = []
    for c in range((dim + w - 1) // w):
        base = c * w
        mask = (base + lane) < dim
        chunks.append(ctx.load(xbuf, i * dim + base + lane, mask))
    return chunks


# --------------------------------------------------------------------------
# insertion disciplines
# --------------------------------------------------------------------------


def insert_baseline(
    ctx: WarpContext,
    dist_buf: GlobalBuffer,
    id_buf: GlobalBuffer,
    lock_buf: GlobalBuffer,
    row: int,
    k: int,
    cand_dist: float,
    cand_id: int,
) -> bool:
    """Lock-protected scan-and-replace (the baseline discipline).

    Returns True if the candidate entered the list.  The lock is taken and
    released through :meth:`~repro.simt.warp.WarpContext.lock_acquire` /
    :meth:`~repro.simt.warp.WarpContext.lock_release` - both ``atomicExch``
    operations.  A plain store release would race with another warp's
    acquire exchange on the same lock word (and on hardware lacks the fence
    the critical section needs); the cost model has always charged two
    atomics per insert for exactly this protocol
    (:mod:`repro.bench.costmodel`).  Within the cooperative simulator the
    acquire succeeds on the first try (see package docstring), but the
    operations are still issued so their cost is counted and the wksan
    sanitizer can order the critical sections.
    """
    lane = ctx.lane_id
    slot_mask = lane < k
    if not ctx.lock_acquire(lock_buf, row):  # pragma: no cover - no contention
        raise RuntimeError("simulated lock unexpectedly contended")
    # scan (membership + maximum in one pass over the k slots)
    dists = ctx.load(dist_buf, row * k + lane, slot_mask)
    ids = ctx.load(id_buf, row * k + lane, slot_mask)
    if ctx.any(ids == cand_id, slot_mask):
        ctx.lock_release(lock_buf, row)
        return False
    max_val, max_lane = ctx.argmax_lane(dists, slot_mask)
    accepted = ctx.branch(np.full(ctx.warp_size, cand_dist < max_val), slot_mask)
    if accepted:
        at = np.full(ctx.warp_size, row * k + max_lane)
        ctx.store(dist_buf, at, np.float32(cand_dist), lane == 0)
        ctx.store(id_buf, at, np.int32(cand_id), lane == 0)
    ctx.lock_release(lock_buf, row)
    return accepted


def insert_atomic(
    ctx: WarpContext,
    packed_buf: GlobalBuffer,
    row: int,
    k: int,
    cand_dist: float,
    cand_id: int,
) -> bool:
    """Lock-free packed-word CAS insertion (the atomic discipline).

    The warp scans the ``k`` packed (distance, id) words, finds the
    maximum, quick-rejects, then CASes the max slot.  Within the
    cooperative simulator the CAS always succeeds first try; retry traffic
    is accounted analytically elsewhere.
    """
    lane = ctx.lane_id
    slot_mask = lane < k
    cand_packed = int(pack_dist_id(np.float32(cand_dist), np.int32(cand_id)))
    while True:
        words = ctx.load(packed_buf, row * k + lane, slot_mask)
        # membership scan on the low 32 bits (the id field)
        slot_ids = (words & np.uint64(0xFFFFFFFF)).astype(np.int64)
        slot_ids = np.where(slot_ids >= 2**31, slot_ids - 2**32, slot_ids)
        ctx.alu(1)
        if ctx.any(slot_ids == cand_id, slot_mask):
            return False
        # uint64 argmax: packed words order by distance (see atomics module)
        masked = np.where(slot_mask, words, 0)
        ctx.alu(2 * int(np.log2(ctx.warp_size)))  # warp max-reduction
        max_lane = int(np.argmax(masked))
        max_word = int(masked[max_lane])
        if cand_packed >= max_word:
            ctx.alu(1)
            return False
        old = ctx.atomic_cas(
            packed_buf,
            np.full(ctx.warp_size, row * k + max_lane),
            np.uint64(max_word),
            np.uint64(cand_packed),
            lane == 0,
        )
        if int(ctx.shfl(old, 0)[0]) == max_word:
            return True
        # pragma: no cover - unreachable in the cooperative simulator


class TiledInserter:
    """Shared-memory candidate tile + warp bitonic bulk merge.

    One inserter serves one warp processing one query row: candidates
    accumulate into a shared-memory tile of ``warp_size`` entries; a full
    tile (or an explicit flush) sorts the tile in-register and merges it
    into the row's *sorted* global list with
    :func:`~repro.simt.intrinsics.warp_sorted_merge_max`, touching global
    memory once per tile instead of once per candidate.
    """

    def __init__(
        self,
        ctx: WarpContext,
        dist_buf: GlobalBuffer,
        id_buf: GlobalBuffer,
        row: int,
        k: int,
        tile_name: str,
    ) -> None:
        self.ctx = ctx
        self.dist_buf = dist_buf
        self.id_buf = id_buf
        self.row = row
        self.k = k
        w = ctx.warp_size
        self._tile_d = ctx.shared(f"{tile_name}_d", (w,), np.float32)
        self._tile_i = ctx.shared(f"{tile_name}_i", (w,), np.int32)
        self._fill = 0

    def offer(self, cand_dist: float, cand_id: int) -> None:
        """Append one candidate to the tile, flushing when full."""
        ctx = self.ctx
        at = np.full(ctx.warp_size, self._fill)
        ctx.shared_store(self._tile_d, at, np.float32(cand_dist), ctx.lane_id == 0)
        ctx.shared_store(self._tile_i, at, np.int32(cand_id), ctx.lane_id == 0)
        self._fill += 1
        if self._fill == ctx.warp_size:
            self.flush()

    def offer_vector(self, cand_dists: np.ndarray, cand_ids: np.ndarray, mask: np.ndarray) -> None:
        """Append a whole warp-vector of candidates (one per active lane).

        Inactive lanes contribute padding (+inf) so the tile stays dense.
        This is the fast path used by the tiled leaf kernel, where lanes
        hold distances to ``warp_size`` different candidates at once.
        """
        ctx = self.ctx
        if self._fill != 0:
            self.flush()
        lane = ctx.lane_id
        d = np.where(mask, cand_dists.astype(np.float32), np.float32(np.inf))
        i = np.where(mask, cand_ids.astype(np.int32), np.int32(-1))
        ctx.shared_store(self._tile_d, lane, d)
        ctx.shared_store(self._tile_i, lane, i)
        self._fill = ctx.warp_size
        self.flush()

    def flush(self) -> None:
        """Sort the tile and bulk-merge it into the row's global list."""
        if self._fill == 0:
            return
        ctx = self.ctx
        lane = ctx.lane_id
        w = ctx.warp_size
        valid = lane < self._fill
        # load only the populated prefix: lanes past _fill would read tile
        # words no warp ever stored this round (uninitialized __shared__ on
        # real hardware; flagged by the wksan sanitizer)
        tile_d = ctx.shared_load(self._tile_d, lane, valid)
        tile_i = ctx.shared_load(self._tile_i, lane, valid)
        tile_d = np.where(valid, tile_d, np.float32(np.inf))
        tile_i = np.where(valid, tile_i, np.int32(-1))
        tile_d, tile_i = warp_bitonic_sort(ctx, tile_d, tile_i)
        slot_mask = lane < self.k
        base = self.row * self.k
        cur_d = ctx.load(self.dist_buf, base + lane, slot_mask)
        cur_i = ctx.load(self.id_buf, base + lane, slot_mask)
        # pad the register image beyond k with +inf so the merge is a clean
        # "keep the w smallest of 2w" (list rows are stored sorted)
        cur_d = np.where(slot_mask, cur_d, np.float32(np.inf))
        cur_i = np.where(slot_mask, cur_i, np.int32(-1))
        # drop tile entries already present in the list (the membership scan
        # every discipline performs; one O(k) compare per tile entry)
        ctx.alu(self.k)
        present = np.isin(tile_i, cur_i[slot_mask & (cur_i >= 0)])
        tile_d = np.where(present, np.float32(np.inf), tile_d)
        merged_d, merged_i = warp_sorted_merge_max(ctx, cur_d, cur_i, tile_d, tile_i)
        ctx.store(self.dist_buf, base + lane, merged_d, slot_mask)
        ctx.store(self.id_buf, base + lane, merged_i, slot_mask)
        self._fill = 0
