"""Leaf all-pairs kernels (one launch per RP-forest leaf).

Geometry
--------
* **baseline / atomic** (direct schedule): one warp per leaf member ``i``;
  the warp caches its point in registers, streams members ``j > i`` from
  global memory, computes each *unordered* pair once and inserts the
  candidate into **both** endpoints' lists - the scattered concurrent
  writes their lock/CAS synchronisation exists to make safe.  Global
  traffic per pair: one point read.
* **tiled**: one *block* per leaf with one warp per member.  The block
  first stages the whole leaf's coordinates into shared memory
  (cooperatively, coalesced), synchronises, then each warp computes
  lane-parallel distances to tiles of ``warp_size`` candidates from shared
  memory and bulk-merges each tile into its global list.  Global traffic
  per pair: ~``2/leaf_len`` of a point read - the reuse that wins at high
  dimensionality.

The shared-memory coordinate matrix uses a padded row stride (``dim + 1``)
to break the systematic bank conflicts a power-of-two stride would cause -
the standard CUDA idiom.
"""

from __future__ import annotations

import numpy as np

from repro.simt.memory import GlobalBuffer
from repro.simt.warp import WarpContext
from repro.simt_kernels.device_fns import (
    TiledInserter,
    distance_direct,
    insert_atomic,
    insert_baseline,
    load_point_chunks,
    load_scalar,
)


def leaf_kernel_baseline(
    ctx: WarpContext,
    xbuf: GlobalBuffer,
    dist_buf: GlobalBuffer,
    id_buf: GlobalBuffer,
    lock_buf: GlobalBuffer,
    leaf_buf: GlobalBuffer,
    leaf_len: int,
    dim: int,
    k: int,
) -> None:
    """Direct distances + lock-protected scan-and-replace insertion."""
    w_id = ctx.warp_id_global
    if w_id >= leaf_len:
        return
    i = int(load_scalar(ctx, leaf_buf, w_id))
    xi = load_point_chunks(ctx, xbuf, i, dim)
    for j_local in range(w_id + 1, leaf_len):
        j = int(load_scalar(ctx, leaf_buf, j_local))
        dist = distance_direct(ctx, xbuf, i, j, dim, xi)
        insert_baseline(ctx, dist_buf, id_buf, lock_buf, i, k, dist, j)
        insert_baseline(ctx, dist_buf, id_buf, lock_buf, j, k, dist, i)


def leaf_kernel_atomic(
    ctx: WarpContext,
    xbuf: GlobalBuffer,
    packed_buf: GlobalBuffer,
    leaf_buf: GlobalBuffer,
    leaf_len: int,
    dim: int,
    k: int,
) -> None:
    """Direct distances + lock-free packed CAS insertion."""
    w_id = ctx.warp_id_global
    if w_id >= leaf_len:
        return
    i = int(load_scalar(ctx, leaf_buf, w_id))
    xi = load_point_chunks(ctx, xbuf, i, dim)
    for j_local in range(w_id + 1, leaf_len):
        j = int(load_scalar(ctx, leaf_buf, j_local))
        dist = distance_direct(ctx, xbuf, i, j, dim, xi)
        insert_atomic(ctx, packed_buf, i, k, dist, j)
        insert_atomic(ctx, packed_buf, j, k, dist, i)


def leaf_kernel_tiled(
    ctx: WarpContext,
    xbuf: GlobalBuffer,
    dist_buf: GlobalBuffer,
    id_buf: GlobalBuffer,
    leaf_buf: GlobalBuffer,
    leaf_len: int,
    dim: int,
    k: int,
):
    """Shared-staged distances + tile bulk-merge insertion (generator)."""
    w = ctx.warp_size
    lane = ctx.lane_id
    w_id = ctx.warp_id  # one block per leaf: warp id == leaf member index
    stride = dim + 1  # padded to break bank conflicts
    coords = ctx.shared("leaf_coords", (leaf_len * stride,), np.float32)
    leaf_ids = ctx.shared("leaf_ids", (leaf_len,), np.int64)

    # --- cooperative staging: warp w loads member w's coordinates ----------
    if w_id < leaf_len:
        i = int(load_scalar(ctx, leaf_buf, w_id))
        ctx.shared_store(
            leaf_ids, np.full(w, w_id), np.int64(i), lane == 0
        )
        for c in range(0, dim, w):
            mask = (c + lane) < dim
            vals = ctx.load(xbuf, i * dim + c + lane, mask)
            ctx.shared_store(coords, w_id * stride + c + lane, vals, mask)
    yield ctx.barrier()

    if w_id >= leaf_len:
        return
    my_id = int(ctx.shfl(ctx.shared_load(leaf_ids, np.full(w, w_id), lane == 0), 0)[0])
    inserter = TiledInserter(
        ctx, dist_buf, id_buf, my_id, k, tile_name=f"tile_w{w_id}"
    )
    # --- lane-parallel distance tiles ---------------------------------------
    for j0 in range(0, leaf_len, w):
        lane_j = j0 + lane
        jmask = (lane_j < leaf_len) & (lane_j != w_id)
        safe_j = np.where(lane_j < leaf_len, lane_j, 0)
        acc = np.zeros(w, dtype=np.float64)
        for c in range(dim):
            xi_c = ctx.shared_load(coords, np.full(w, w_id * stride + c), lane == 0)
            xi_c = ctx.shfl(xi_c, 0)
            xj_c = ctx.shared_load(coords, safe_j * stride + c, jmask)
            diff = np.where(jmask, xi_c.astype(np.float64) - xj_c, 0.0)
            acc += diff * diff
            ctx.alu(2)
        cand_ids = ctx.shared_load(leaf_ids, safe_j, jmask)
        inserter.offer_vector(acc, cand_ids, jmask)
    inserter.flush()
