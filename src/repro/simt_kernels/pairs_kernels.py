"""Refinement (explicit candidate-pair) kernels.

The host groups the neighbour-of-neighbour candidate pairs by query row
(the same grouping the GPU implementation gets for free by assigning one
warp per point); each warp then walks its row's candidate group: direct
distance, then the strategy's insertion discipline.
"""

from __future__ import annotations

from repro.simt.memory import GlobalBuffer
from repro.simt.warp import WarpContext
from repro.simt_kernels.device_fns import (
    TiledInserter,
    distance_direct,
    insert_atomic,
    insert_baseline,
    load_point_chunks,
    load_scalar,
)


def _walk_group(ctx, xbuf, rows_buf, cols_buf, starts_buf, counts_buf, dim):
    """Common prologue: resolve this warp's row and candidate range."""
    g = ctx.warp_id_global
    row = int(load_scalar(ctx, rows_buf, g))
    start = int(load_scalar(ctx, starts_buf, g))
    count = int(load_scalar(ctx, counts_buf, g))
    xi = load_point_chunks(ctx, xbuf, row, dim)
    return row, start, count, xi


def pairs_kernel_baseline(
    ctx: WarpContext,
    xbuf: GlobalBuffer,
    dist_buf: GlobalBuffer,
    id_buf: GlobalBuffer,
    lock_buf: GlobalBuffer,
    rows_buf: GlobalBuffer,
    cols_buf: GlobalBuffer,
    starts_buf: GlobalBuffer,
    counts_buf: GlobalBuffer,
    n_groups: int,
    dim: int,
    k: int,
) -> None:
    if ctx.warp_id_global >= n_groups:
        return
    row, start, count, xi = _walk_group(
        ctx, xbuf, rows_buf, cols_buf, starts_buf, counts_buf, dim
    )
    for p in range(start, start + count):
        j = int(load_scalar(ctx, cols_buf, p))
        dist = distance_direct(ctx, xbuf, row, j, dim, xi)
        insert_baseline(ctx, dist_buf, id_buf, lock_buf, row, k, dist, j)


def pairs_kernel_atomic(
    ctx: WarpContext,
    xbuf: GlobalBuffer,
    packed_buf: GlobalBuffer,
    rows_buf: GlobalBuffer,
    cols_buf: GlobalBuffer,
    starts_buf: GlobalBuffer,
    counts_buf: GlobalBuffer,
    n_groups: int,
    dim: int,
    k: int,
) -> None:
    if ctx.warp_id_global >= n_groups:
        return
    row, start, count, xi = _walk_group(
        ctx, xbuf, rows_buf, cols_buf, starts_buf, counts_buf, dim
    )
    for p in range(start, start + count):
        j = int(load_scalar(ctx, cols_buf, p))
        dist = distance_direct(ctx, xbuf, row, j, dim, xi)
        insert_atomic(ctx, packed_buf, row, k, dist, j)


def pairs_kernel_tiled(
    ctx: WarpContext,
    xbuf: GlobalBuffer,
    dist_buf: GlobalBuffer,
    id_buf: GlobalBuffer,
    rows_buf: GlobalBuffer,
    cols_buf: GlobalBuffer,
    starts_buf: GlobalBuffer,
    counts_buf: GlobalBuffer,
    n_groups: int,
    dim: int,
    k: int,
) -> None:
    if ctx.warp_id_global >= n_groups:
        return
    row, start, count, xi = _walk_group(
        ctx, xbuf, rows_buf, cols_buf, starts_buf, counts_buf, dim
    )
    inserter = TiledInserter(ctx, dist_buf, id_buf, row, k, tile_name="pairs_tile")
    for p in range(start, start + count):
        j = int(load_scalar(ctx, cols_buf, p))
        dist = distance_direct(ctx, xbuf, row, j, dim, xi)
        inserter.offer(dist, j)
    inserter.flush()
