"""Warp-centric asymmetric-distance (ADC) scan kernel.

The quantized counterpart of :mod:`repro.simt_kernels.bruteforce_kernel`:
the database is a ``(n, M)`` uint8 code matrix (see
:mod:`repro.core.quant`) and each query carries a pre-computed
``(M, ksub)`` lookup table of partial squared distances.  This is the
classic GPU PQ-scan schedule (FAISS's ``pq_scan`` / IVFPQ interleaved
kernels):

* each warp owns one query and stages that query's **entire LUT into its
  own shared-memory region** once - after which every candidate distance
  is ``M`` shared-memory gathers and adds, no global float traffic at
  all;
* the code matrix streams from global memory in ``warp_size`` candidate
  tiles, one candidate per lane, ``M`` bytes per candidate instead of
  ``4 * dim`` - the bandwidth ratio that makes ADC win on memory-bound
  scans;
* candidates bulk-merge into the query's top-k through the same
  :class:`~repro.simt_kernels.device_fns.TiledInserter` the exact
  kernels use.

Race-freedom by construction (certified under ``WKNN_SANITIZE=1`` in
CI): LUT regions are per-warp (name-scoped by ``warp_id``), so no two
warps ever touch the same shared words; every load/store is masked to
live lanes and in-bounds via clamped indices.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.knn_state import EMPTY_ID
from repro.simt.config import DeviceConfig
from repro.simt.device import Device
from repro.simt.memory import GlobalBuffer
from repro.simt.warp import WarpContext
from repro.simt_kernels.device_fns import TiledInserter
from repro.utils.validation import check_positive_int


def adc_scan_kernel(
    ctx: WarpContext,
    lut_buf: GlobalBuffer,
    code_buf: GlobalBuffer,
    dist_buf: GlobalBuffer,
    id_buf: GlobalBuffer,
    m_queries: int,
    n: int,
    n_sub: int,
    ksub: int,
    k: int,
    queries_per_block: int,
):
    """Quantized brute-force scan: one warp per query, LUT in shared memory.

    Geometry mirrors the exact kernel: block ``b`` serves queries
    ``b * queries_per_block + warp``.  Phase 1 stages the query's
    ``n_sub * ksub`` LUT words into the warp's private shared region
    (lane-strided, masked); phase 2 streams the code matrix in
    ``warp_size``-candidate tiles, each lane accumulating its candidate's
    distance by gathering one LUT word per sub-space.
    """
    w = ctx.warp_size
    lane = ctx.lane_id
    query = ctx.block_id * queries_per_block + ctx.warp_id
    active = query < m_queries  # tail-block warps still reach every barrier
    lut_words = n_sub * ksub
    lut = ctx.shared(f"adc_lut_q{ctx.warp_id}", (lut_words,), np.float32)

    # --- phase 1: stage this query's LUT into the warp's shared region ----
    if active:
        for off in range(0, lut_words, w):
            mask = (off + lane) < lut_words
            idx = np.where(mask, off + lane, 0)
            vals = ctx.load(lut_buf, query * lut_words + idx, mask)
            ctx.shared_store(lut, idx, vals, mask)
    yield ctx.barrier()  # all warps rendezvous before the scan phase

    # --- phase 2: stream candidate codes, gather-accumulate per lane ------
    if not active:
        return
    inserter = TiledInserter(
        ctx, dist_buf, id_buf, query, k, tile_name=f"adc_q{ctx.warp_id}"
    )
    for t0 in range(0, n, w):
        cand = t0 + lane
        mask = cand < n
        safe = np.where(mask, cand, 0)
        acc = np.zeros(w, dtype=np.float64)
        for m in range(n_sub):
            code = ctx.load(code_buf, safe * n_sub + m, mask)
            at = m * ksub + np.where(mask, code, 0)
            part = ctx.shared_load(lut, at, mask)
            acc += np.where(mask, part.astype(np.float64), 0.0)
            ctx.alu(1)
        inserter.offer_vector(acc, safe, mask)
    inserter.flush()


def adc_topk_simt(
    luts: np.ndarray,
    codes: np.ndarray,
    k: int,
    device: Device | None = None,
    queries_per_block: int = 4,
) -> tuple[np.ndarray, np.ndarray, Device]:
    """Exact top-k over quantized codes by ADC distance, on the simulator.

    Parameters
    ----------
    luts:
        ``(m_queries, M, ksub)`` float32 per-query lookup tables
        (:meth:`repro.core.quant.QuantizedStore.luts`).
    codes:
        ``(n, M)`` uint8 code matrix.
    k:
        Neighbours per query (must fit the warp width).

    Returns
    -------
    ``(ids, dists, device)`` - ``(m, k)`` int32 ids (``EMPTY_ID`` padded)
    and float32 ADC distances, sorted ascending, plus the device whose
    counters profiled the run.
    """
    luts = np.ascontiguousarray(luts, dtype=np.float32)
    codes = np.ascontiguousarray(codes)
    if luts.ndim != 3:
        raise ValueError(f"luts must be (m, M, ksub), got shape {luts.shape}")
    if codes.ndim != 2 or codes.shape[1] != luts.shape[1]:
        raise ValueError(
            f"codes shape {codes.shape} does not match luts sub-spaces "
            f"{luts.shape[1]}"
        )
    m_queries, n_sub, ksub = luts.shape
    n = codes.shape[0]
    k = check_positive_int(k, "k")
    device = device or Device(DeviceConfig())
    if k > device.config.warp_size:
        raise ValueError(f"k={k} exceeds warp_size={device.config.warp_size}")
    lut_buf = device.to_device(luts.reshape(-1), "adc_luts", const=True)
    code_buf = device.to_device(
        codes.astype(np.int32).reshape(-1), "adc_codes", const=True
    )
    dist_buf = device.empty((m_queries * k,), np.float32, "adc_dists", fill=np.inf)
    id_buf = device.empty((m_queries * k,), np.int32, "adc_ids", fill=EMPTY_ID)
    blocks = (m_queries + queries_per_block - 1) // queries_per_block
    device.launch(
        adc_scan_kernel,
        grid_blocks=blocks,
        block_warps=queries_per_block,
        args=(lut_buf, code_buf, dist_buf, id_buf,
              m_queries, n, n_sub, ksub, k, queries_per_block),
    )
    ids = id_buf.to_host().reshape(m_queries, k)
    dists = dist_buf.to_host().reshape(m_queries, k)
    return ids, dists, device
