"""The unified ``SearchClient`` surface of the serving stack.

Every way of answering online K-NN queries - the in-process micro-batching
:class:`~repro.serve.server.KNNServer`, the sharded multi-replica
:class:`~repro.serve.cluster.ClusterClient`, and the zero-infrastructure
:class:`DirectClient` below - speaks the same protocol:

* ``submit(query, k, *, ef=None, deadline_ms=None) -> Future`` - async
  submission; the future resolves to a :class:`SearchResult` or raises one
  of the :mod:`repro.errors` serve exceptions;
* ``query(...) -> SearchResult`` - the blocking convenience wrapper;
* ``stats()`` - a flat-ish dict of serving counters;
* ``close()`` - release whatever the client holds (threads, processes);
* ``dim`` / ``default_ef`` - what load generators need to shape traffic.

Benchmarks, load generators and examples consume only this surface, so a
single-process server and a sharded cluster are interchangeable behind it
- the point of the redesign.

:class:`SearchResult` replaces the historical ad-hoc ``(ids, dists)``
tuples and per-implementation result classes; ``QueryResult`` remains as
an alias for one release.
"""

from __future__ import annotations

import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Protocol, runtime_checkable

import numpy as np

from repro.errors import DeadlineExceeded, ServerClosed
from repro.utils.validation import check_positive_int, check_query_vector


@dataclass(frozen=True)
class SearchResult:
    """One resolved search request.

    Attributes
    ----------
    ids / dists:
        ``(k,)`` arrays, ascending distance (the engine's contract);
        unfilled slots carry ``-1`` / ``+inf``.
    served_ef:
        The beam width actually served (lower than requested under
        shedding).
    from_cache:
        The answer came from the result cache without touching an engine.
    shard_fanout:
        How many index shards contributed to the answer (1 for
        single-index serving).
    latency_ms:
        Submit-to-resolve wall time.
    batch_size:
        How many requests shared the engine call (0 for cache hits).
    epoch:
        Index epoch the answer was computed against (0 for static
        indexes; mutable indexes bump it on every insert/delete/compact
        flip, so a client can correlate answers with index versions).
    """

    ids: np.ndarray
    dists: np.ndarray
    served_ef: int
    from_cache: bool = False
    shard_fanout: int = 1
    latency_ms: float = 0.0
    batch_size: int = 1
    epoch: int = 0

    @property
    def ef_used(self) -> int:
        """Deprecated alias of :attr:`served_ef` (pre-redesign name)."""
        return self.served_ef

    @property
    def cached(self) -> bool:
        """Deprecated alias of :attr:`from_cache` (pre-redesign name)."""
        return self.from_cache


@runtime_checkable
class SearchClient(Protocol):
    """What every serving front-end implements (see the module docstring).

    ``query`` takes one query *vector* and returns one
    :class:`SearchResult`; batching (if any) is an implementation detail
    behind the protocol.
    """

    def submit(
        self,
        query: np.ndarray,
        k: int | None = None,
        *,
        ef: int | None = None,
        deadline_ms: float | None = None,
    ) -> Future: ...

    def query(
        self,
        query: np.ndarray,
        k: int | None = None,
        *,
        ef: int | None = None,
        deadline_ms: float | None = None,
        timeout: float | None = None,
    ) -> SearchResult: ...

    def stats(self) -> dict[str, Any]: ...

    def close(self) -> None: ...

    @property
    def dim(self) -> int: ...

    @property
    def default_ef(self) -> int: ...


class DirectClient:
    """:class:`SearchClient` over an in-process index - no queue, no threads.

    The degenerate implementation of the protocol: every ``query`` is one
    synchronous engine call on the calling thread.  Useful as the
    benchmark baseline (what does the serving envelope cost?) and for
    tests that want protocol-shaped results without a server lifecycle.

    The index must expose ``search(queries, k, *, ef=None)`` over a fixed
    ``dim`` - :class:`~repro.apps.search.GraphSearchIndex` is the
    intended engine.
    """

    def __init__(
        self,
        index: Any,
        *,
        default_k: int = 10,
        ef: int | None = None,
    ) -> None:
        self.index = index
        self._dim = int(index.dim)
        self._default_k = check_positive_int(default_k, "default_k")
        if ef is None:
            ef = int(getattr(getattr(index, "config", None), "ef", 32))
        self._ef = check_positive_int(ef, "ef")
        self._closed = False
        self._queries = 0

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def default_ef(self) -> int:
        return self._ef

    def query(
        self,
        query: np.ndarray,
        k: int | None = None,
        *,
        ef: int | None = None,
        deadline_ms: float | None = None,
        timeout: float | None = None,
    ) -> SearchResult:
        if self._closed:
            raise ServerClosed("query() on a closed DirectClient")
        q = check_query_vector(query, self._dim, "query")
        k = self._default_k if k is None else check_positive_int(k, "k")
        ef = self._ef if ef is None else check_positive_int(ef, "ef")
        t0 = time.monotonic()
        # pin one view for the call: against a mutable index this is the
        # epoch-stamped snapshot, so the reported epoch is exactly the
        # graph version that produced the answer
        engine = getattr(self.index, "snapshot", None)
        if engine is None or callable(engine):
            engine = self.index
        ids, dists = engine.search(q[None, :], k, ef=ef)
        latency_ms = (time.monotonic() - t0) * 1000.0
        self._queries += 1
        if deadline_ms is not None and latency_ms > deadline_ms:
            # same discipline as the server: never a late success
            raise DeadlineExceeded(
                f"direct call took {latency_ms:.1f}ms against a "
                f"{deadline_ms:.1f}ms deadline"
            )
        return SearchResult(
            ids=ids[0], dists=dists[0], served_ef=ef, from_cache=False,
            shard_fanout=1, latency_ms=latency_ms, batch_size=1,
            epoch=int(getattr(engine, "epoch", 0)),
        )

    def submit(
        self,
        query: np.ndarray,
        k: int | None = None,
        *,
        ef: int | None = None,
        deadline_ms: float | None = None,
    ) -> Future:
        """Protocol-shaped async submit (executes synchronously)."""
        fut: Future = Future()
        try:
            fut.set_result(self.query(query, k, ef=ef, deadline_ms=deadline_ms))
        except Exception as exc:  # noqa: BLE001 - deliver through the future
            fut.set_exception(exc)
        return fut

    def stats(self) -> dict[str, Any]:
        return {
            "engine": "direct-client",
            "queries": self._queries,
            "index": self.index.stats(),
        }

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "DirectClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
