"""The micro-batching scheduler: batcher thread + execution worker pool.

One daemon *batcher* thread owns the admission queue's consumer side: it
blocks on :meth:`~repro.serve.queue.AdmissionQueue.take_batch`, which
hands it coalesced micro-batches (flush on ``max_batch`` or
``max_wait_s``, whichever first), and dispatches each batch to a small
:class:`~concurrent.futures.ThreadPoolExecutor` of *workers* that run the
server's execute callback (the engine call).  Separating the two means
batch *formation* never stalls behind batch *execution*: while a worker
scores one batch, the batcher is already coalescing the next - the
pipelining that keeps the engine fed at full batch width under load.

In-flight work is bounded by a semaphore of ``n_workers + 1`` permits
(the executing batches plus the one being formed).  Without that bound
the batcher would drain the admission queue into the executor's
*unbounded* internal queue as fast as clients submit, the admission
queue would never fill, and backpressure / queue-depth shedding would
never engage - overload would just become invisible unbounded queueing
one layer down.

The scheduler is engine-agnostic: it moves :class:`Request` objects and
calls ``execute(batch)``; deadlines, caching, degradation and metrics all
live in the server's execute callback.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.serve.queue import AdmissionQueue


@dataclass
class Request:
    """One in-flight query request.

    ``deadline`` is absolute :func:`time.monotonic` time (or ``None`` for
    no deadline); ``ef`` is the *requested* (full-quality) beam width -
    the shed policy may execute it lower.  The ``future`` resolves to a
    :class:`~repro.serve.server.QueryResult` or raises one of the
    :mod:`repro.errors` serve exceptions.
    """

    query: np.ndarray
    k: int
    ef: int
    deadline: float | None
    submitted: float
    future: Future = field(default_factory=Future)
    cache_key: bytes | None = None

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now > self.deadline


class MicroBatcher:
    """Drains an :class:`AdmissionQueue` into an execute callback.

    Parameters
    ----------
    queue:
        The admission queue to consume.
    execute:
        ``execute(batch: list[Request]) -> None``; must resolve every
        request's future (success or exception).  Exceptions escaping the
        callback are caught and propagated to every unresolved future in
        the batch, so one poisoned batch cannot wedge clients.
    max_batch / max_wait_s:
        The coalescing rule (see :meth:`AdmissionQueue.take_batch`).
    n_workers:
        Size of the execution pool.  ``1`` serialises engine calls
        (deterministic, and the BLAS underneath already uses the cores);
        larger values overlap batches at the cost of engine-level metric
        races when an :class:`~repro.obs.Observability` is shared.
    """

    def __init__(
        self,
        queue: AdmissionQueue,
        execute: Callable[[list[Request]], None],
        *,
        max_batch: int,
        max_wait_s: float,
        n_workers: int = 1,
    ) -> None:
        self._queue = queue
        self._execute = execute
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self.n_workers = int(n_workers)
        self._pool: ThreadPoolExecutor | None = None
        self._thread: threading.Thread | None = None
        # bounds in-flight batches: n_workers executing + 1 forming
        self._slots = threading.BoundedSemaphore(self.n_workers + 1)
        #: completed flush count (includes empty shutdown flushes)
        self.flushes = 0

    # -- lifecycle -------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        if self.running:
            raise RuntimeError("batcher already running")
        self._pool = ThreadPoolExecutor(
            max_workers=self.n_workers, thread_name_prefix="serve-worker"
        )
        self._thread = threading.Thread(
            target=self._loop, name="serve-batcher", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float | None = None) -> None:
        """Stop the loop and wait for in-flight batches to finish.

        The queue must already be closed; any still-queued requests are
        flushed through ``execute`` first (the graceful drain), so a
        shutdown with an empty queue is exactly one empty flush.
        """
        thread, pool = self._thread, self._pool
        if thread is not None:
            thread.join(timeout=timeout)
            self._thread = None
        if pool is not None:
            pool.shutdown(wait=True)
            self._pool = None

    # -- the batcher loop ------------------------------------------------------

    def _loop(self) -> None:
        while True:
            # holding a slot before forming keeps total in-flight batches
            # bounded; when every worker is busy the admission queue backs
            # up and offer() starts rejecting - real backpressure
            self._slots.acquire()
            dispatched = False
            try:
                batch = self._queue.take_batch(self.max_batch, self.max_wait_s)
                self.flushes += 1
                if not batch:
                    # closed and drained: the empty flush on shutdown
                    return
                pool = self._pool
                assert pool is not None
                pool.submit(self._run_batch, batch)
                dispatched = True
            finally:
                if not dispatched:
                    self._slots.release()

    def _run_batch(self, batch: list[Request]) -> None:
        try:
            self._execute(batch)
        except BaseException as exc:  # noqa: BLE001 - must reach the clients
            for req in batch:
                if not req.future.done():
                    req.future.set_exception(exc)
        finally:
            self._slots.release()

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def fail_all(batch: list[Request], exc: BaseException) -> None:
        """Resolve every unresolved future in ``batch`` with ``exc``."""
        for req in batch:
            if not req.future.done():
                req.future.set_exception(exc)


def resolve(future: Future, value: Any) -> None:
    """Set a future's result, ignoring the already-resolved race."""
    if not future.done():
        future.set_result(value)
