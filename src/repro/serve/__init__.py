"""``repro.serve``: the online micro-batching query service.

The traffic layer between concurrent clients and the batched graph-search
engine.  Individual ``(query_vector, k, ef, deadline)`` requests are
admitted through a bounded queue, coalesced into micro-batches (flush on
``max_batch`` or ``max_wait_ms``), executed on a
:class:`~repro.apps.search.GraphSearchIndex` by a worker pool, and
resolved through per-request futures - with admission backpressure
(:class:`~repro.errors.ServerOverloaded`), deadline enforcement
(:class:`~repro.errors.DeadlineExceeded`), ``ef``-shedding degradation
under sustained load, and an optional LRU result cache.

Quickstart::

    from repro.apps.search import GraphSearchIndex
    from repro.serve import KNNServer, ServeConfig

    index = GraphSearchIndex.build(points, k=16)
    with KNNServer(index, ServeConfig(max_batch=64, max_wait_ms=2.0)) as srv:
        fut = srv.submit(query_vec, k=10, deadline_ms=50.0)
        result = fut.result()      # QueryResult(ids, dists, ...)

Architecture, tuning guidance and SLO methodology: ``docs/serving.md``.
"""

from repro.errors import (
    DeadlineExceeded,
    ServeError,
    ServerClosed,
    ServerOverloaded,
)
from repro.serve.cache import ResultCache
from repro.serve.degrade import DegradationController, ShedPolicy
from repro.serve.loadgen import LoadReport, closed_loop, open_loop, recall_against
from repro.serve.queue import AdmissionQueue
from repro.serve.scheduler import MicroBatcher, Request
from repro.serve.server import (
    SERVE_METRICS_PREFIX,
    KNNServer,
    QueryResult,
    ServeConfig,
)

__all__ = [
    "KNNServer",
    "ServeConfig",
    "QueryResult",
    "SERVE_METRICS_PREFIX",
    "AdmissionQueue",
    "MicroBatcher",
    "Request",
    "ResultCache",
    "ShedPolicy",
    "DegradationController",
    "LoadReport",
    "closed_loop",
    "open_loop",
    "recall_against",
    "ServeError",
    "ServerOverloaded",
    "ServerClosed",
    "DeadlineExceeded",
]
