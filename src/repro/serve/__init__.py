"""``repro.serve``: the online query service, single-node and sharded.

The traffic layer between concurrent clients and the batched graph-search
engine.  Individual ``(query_vector, k, ef, deadline)`` requests are
admitted through a bounded queue, coalesced into micro-batches (flush on
``max_batch`` or ``max_wait_ms``), executed by a worker pool, and
resolved through per-request futures - with admission backpressure
(:class:`~repro.errors.ServerOverloaded`), deadline enforcement
(:class:`~repro.errors.DeadlineExceeded`), ``ef``-shedding degradation
under sustained load, and an optional LRU result cache.

Every serving frontend implements the same :class:`SearchClient`
protocol and returns :class:`SearchResult`, so they interchange freely:

* :class:`KNNServer` - one :class:`~repro.apps.search.GraphSearchIndex`,
  one process, the full batching/backpressure envelope;
* :class:`ClusterClient` - the dataset partitioned across ``S`` index
  shards with ``R`` replica workers each, health-aware scatter-gather
  routing and a packed-key merge (see :mod:`repro.serve.cluster`);
* :class:`DirectClient` - a thin synchronous adapter over a bare index,
  the no-envelope baseline the serving benchmarks compare against.

Quickstart::

    from repro.apps.search import GraphSearchIndex
    from repro.serve import AdmissionPolicy, KNNServer, ServeConfig

    index = GraphSearchIndex.build(points, k=16)
    cfg = ServeConfig(admission=AdmissionPolicy(max_batch=64, max_wait_ms=2.0))
    with KNNServer(index, cfg) as srv:
        fut = srv.submit(query_vec, k=10, deadline_ms=50.0)
        result = fut.result()      # SearchResult(ids, dists, ...)

Sharded serving::

    from repro.serve import ClusterClient, ClusterConfig

    with ClusterClient.build(points, config=ClusterConfig(
            n_shards=4, n_replicas=2)) as cluster:
        result = cluster.query(query_vec, k=10)

Architecture, tuning guidance and SLO methodology: ``docs/serving.md``
and ``docs/cluster.md``.
"""

from repro.errors import (
    ClusterError,
    DeadlineExceeded,
    ReplicaUnavailable,
    ServeError,
    ServerClosed,
    ServerOverloaded,
    ShardUnavailable,
)
from repro.serve.cache import ResultCache
from repro.serve.client import DirectClient, SearchClient, SearchResult
from repro.serve.cluster import (
    CLUSTER_METRICS_PREFIX,
    ClusterClient,
    ClusterConfig,
    ShardRouter,
    merge_topk,
)
from repro.serve.degrade import DegradationController, ShedPolicy
from repro.serve.loadgen import (
    ChurnReport,
    LoadReport,
    churn_loop,
    closed_loop,
    open_loop,
    recall_against,
)
from repro.serve.queue import AdmissionQueue
from repro.serve.scheduler import MicroBatcher, Request
from repro.serve.server import (
    SERVE_METRICS_PREFIX,
    AdmissionPolicy,
    CachePolicy,
    DeadlinePolicy,
    KNNServer,
    QuantizationPolicy,
    QueryResult,
    ServeConfig,
)

__all__ = [
    "SearchClient",
    "SearchResult",
    "DirectClient",
    "KNNServer",
    "ServeConfig",
    "AdmissionPolicy",
    "DeadlinePolicy",
    "CachePolicy",
    "QuantizationPolicy",
    "QueryResult",
    "SERVE_METRICS_PREFIX",
    "ClusterClient",
    "ClusterConfig",
    "ShardRouter",
    "merge_topk",
    "CLUSTER_METRICS_PREFIX",
    "AdmissionQueue",
    "MicroBatcher",
    "Request",
    "ResultCache",
    "ShedPolicy",
    "DegradationController",
    "LoadReport",
    "ChurnReport",
    "closed_loop",
    "open_loop",
    "churn_loop",
    "recall_against",
    "ServeError",
    "ServerOverloaded",
    "ServerClosed",
    "DeadlineExceeded",
    "ClusterError",
    "ReplicaUnavailable",
    "ShardUnavailable",
]
