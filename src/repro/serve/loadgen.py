"""Closed- and open-loop load generators for any ``SearchClient``.

The generators drive the :class:`~repro.serve.client.SearchClient`
protocol only (``submit``/``dim``/``default_ef``), so the same harness
measures a single-process :class:`~repro.serve.server.KNNServer`, a
sharded :class:`~repro.serve.cluster.ClusterClient` or the in-process
:class:`~repro.serve.client.DirectClient` baseline unchanged.

Two canonical traffic shapes drive every serving benchmark:

* **closed loop** - a fixed number of concurrent clients, each submitting
  its next request only after the previous response arrives.  Concurrency
  is bounded, so the server is never overloaded; this measures peak
  *sustainable* throughput and the latency/batching trade.
* **open loop** - requests arrive on a wall-clock schedule at a target
  rate regardless of completions (how real traffic behaves).  Offered
  load can exceed capacity, which is exactly the regime admission
  control, deadlines and shedding exist for.

Both return a :class:`LoadReport` with throughput, latency percentiles
and the shed/reject/timeout accounting the SLO gates assert on.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import DeadlineExceeded, ServeError, ServerOverloaded
from repro.serve.client import SearchClient
from repro.utils.validation import check_positive_int, check_query_matrix


@dataclass
class LoadReport:
    """Outcome accounting of one load-generation run."""

    mode: str
    requests: int = 0            #: submit attempts
    ok: int = 0                  #: successful responses
    rejected: int = 0            #: ServerOverloaded at admission
    timeouts: int = 0            #: DeadlineExceeded (queued or late)
    errors: int = 0              #: anything else
    cached: int = 0              #: ok responses served from cache
    shed_served: int = 0         #: ok responses at degraded ef
    deadline_violations: int = 0  #: ok responses later than their deadline
    requested_ef: int = 0        #: the full-quality ef this run asked for
    wall_seconds: float = 0.0
    latencies_ms: list[float] = field(default_factory=list)
    #: request index -> result ids (when collected, for recall-under-load)
    ids: dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def throughput_qps(self) -> float:
        return self.ok / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def offered_qps(self) -> float:
        return self.requests / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def percentile_ms(self, p: float) -> float:
        if not self.latencies_ms:
            return 0.0
        lat = sorted(self.latencies_ms)
        return lat[min(len(lat) - 1, int(round(p * (len(lat) - 1))))]

    def latency_summary(self) -> dict[str, float]:
        return {"p50": self.percentile_ms(0.50),
                "p95": self.percentile_ms(0.95),
                "p99": self.percentile_ms(0.99),
                "mean": (sum(self.latencies_ms) / len(self.latencies_ms)
                         if self.latencies_ms else 0.0)}

    def as_dict(self) -> dict[str, Any]:
        return {
            "mode": self.mode, "requests": self.requests, "ok": self.ok,
            "rejected": self.rejected, "timeouts": self.timeouts,
            "errors": self.errors, "cached": self.cached,
            "shed_served": self.shed_served,
            "deadline_violations": self.deadline_violations,
            "wall_seconds": self.wall_seconds,
            "throughput_qps": self.throughput_qps,
            "offered_qps": self.offered_qps,
            "latency_ms": self.latency_summary(),
        }


def _record_outcome(report: LoadReport, lock: threading.Lock, idx: int,
                    fut, deadline_ms: float | None, collect_ids: bool,
                    wait_timeout: float) -> None:
    """Wait for one future and fold its outcome into the report."""
    try:
        res = fut.result(timeout=wait_timeout)
    except DeadlineExceeded:
        with lock:
            report.timeouts += 1
        return
    except ServeError:
        with lock:
            report.errors += 1
        return
    except Exception:
        with lock:
            report.errors += 1
        return
    with lock:
        report.ok += 1
        report.latencies_ms.append(res.latency_ms)
        if res.from_cache:
            report.cached += 1
        if not res.from_cache and res.served_ef < report.requested_ef:
            report.shed_served += 1
        if deadline_ms is not None and res.latency_ms > deadline_ms:
            report.deadline_violations += 1
        if collect_ids:
            report.ids[idx] = res.ids


def closed_loop(
    client: SearchClient,
    queries: np.ndarray,
    k: int,
    *,
    clients: int = 8,
    repeat: int = 1,
    ef: int | None = None,
    deadline_ms: float | None = None,
    collect_ids: bool = True,
    wait_timeout: float = 120.0,
) -> LoadReport:
    """Fixed-concurrency load: each client waits for its response.

    The query matrix is dealt round-robin to ``clients`` threads and
    cycled ``repeat`` times; request index ``i`` always carries query
    ``queries[i % len(queries)]``, so collected ids line up with ground
    truth rows for recall-under-load.
    """
    q = check_query_matrix(queries, client.dim, "queries")
    clients = check_positive_int(clients, "clients")
    report = LoadReport(
        mode="closed",
        requested_ef=ef if ef is not None else client.default_ef,
    )
    lock = threading.Lock()
    total = q.shape[0] * repeat

    def run_client(worker: int) -> None:
        for i in range(worker, total, clients):
            try:
                fut = client.submit(q[i % q.shape[0]], k, ef=ef,
                                    deadline_ms=deadline_ms)
            except ServerOverloaded:
                with lock:
                    report.requests += 1
                    report.rejected += 1
                continue
            with lock:
                report.requests += 1
            _record_outcome(report, lock, i % q.shape[0], fut, deadline_ms,
                            collect_ids, wait_timeout)

    t0 = time.monotonic()
    threads = [threading.Thread(target=run_client, args=(w,), daemon=True)
               for w in range(clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    report.wall_seconds = time.monotonic() - t0
    return report


def open_loop(
    client: SearchClient,
    queries: np.ndarray,
    k: int,
    *,
    rate_qps: float,
    duration_s: float,
    ef: int | None = None,
    deadline_ms: float | None = None,
    collect_ids: bool = False,
    seed: int = 0,
    wait_timeout: float = 120.0,
) -> LoadReport:
    """Arrival-scheduled load at ``rate_qps`` for ``duration_s`` seconds.

    A dispatcher thread submits on schedule without waiting for
    completions (unbounded virtual clients); rejected submissions count
    but do not slow the arrival process - offered load stays at the
    target rate even when the server is saturated, which is what makes
    the overload regime observable.
    """
    if rate_qps <= 0:
        raise ValueError(f"rate_qps must be > 0, got {rate_qps}")
    q = check_query_matrix(queries, client.dim, "queries")
    rng = np.random.default_rng(seed)
    order = rng.permutation(q.shape[0])
    report = LoadReport(
        mode="open",
        requested_ef=ef if ef is not None else client.default_ef,
    )
    lock = threading.Lock()
    interval = 1.0 / rate_qps
    pending: list[tuple[int, Any]] = []

    t0 = time.monotonic()
    next_at = t0
    i = 0
    while True:
        now = time.monotonic()
        if now - t0 >= duration_s:
            break
        if now < next_at:
            time.sleep(min(next_at - now, 0.005))
            continue
        next_at += interval
        qi = int(order[i % order.size])
        i += 1
        report.requests += 1
        try:
            fut = client.submit(q[qi], k, ef=ef, deadline_ms=deadline_ms)
        except ServerOverloaded:
            report.rejected += 1
            continue
        pending.append((qi, fut))
    dispatch_wall = time.monotonic() - t0

    for qi, fut in pending:
        _record_outcome(report, lock, qi, fut, deadline_ms, collect_ids,
                        wait_timeout)
    report.wall_seconds = max(dispatch_wall, time.monotonic() - t0)
    return report


@dataclass
class ChurnReport:
    """Outcome accounting of one mutation (churn) run.

    The epoch bookkeeping is what the T7 benchmark's staleness assertions
    consume: :attr:`deleted_at` maps every external id the loop deleted
    to the epoch at which that deletion was *published*, so a response
    stamped with epoch ``e`` may never contain an id whose
    ``deleted_at`` is ``<= e``.
    """

    ops: int = 0                 #: mutation batches applied
    inserted: int = 0            #: points inserted
    deleted: int = 0             #: points tombstoned/compacted away
    errors: int = 0              #: mutation calls that raised
    wall_seconds: float = 0.0
    start_epoch: int = 0
    end_epoch: int = 0
    #: external id -> epoch at which its insertion was published
    inserted_at: dict[int, int] = field(default_factory=dict)
    #: external id -> epoch at which its deletion was published
    deleted_at: dict[int, int] = field(default_factory=dict)

    @property
    def flips(self) -> int:
        return self.end_epoch - self.start_epoch

    @property
    def ops_per_sec(self) -> float:
        return self.ops / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "ops": self.ops, "inserted": self.inserted,
            "deleted": self.deleted, "errors": self.errors,
            "wall_seconds": self.wall_seconds, "flips": self.flips,
            "start_epoch": self.start_epoch, "end_epoch": self.end_epoch,
            "ops_per_sec": self.ops_per_sec,
        }


def churn_loop(
    index: Any,
    insert_pool: np.ndarray,
    *,
    ops_per_sec: float,
    duration_s: float,
    batch_size: int = 32,
    delete_fraction: float = 0.5,
    protect: set[int] | None = None,
    min_live: int = 64,
    seed: int = 0,
    stop: threading.Event | None = None,
    report: ChurnReport | None = None,
) -> ChurnReport:
    """Drive sustained insert/delete mutations against a mutable index.

    Runs in the *calling* thread (wrap in ``threading.Thread`` to churn
    underneath a concurrent query load).  Each scheduled op is one batch:
    with probability ``delete_fraction`` a delete of ``batch_size`` live
    ids sampled uniformly (never from ``protect`` - the ids ground truth
    is pinned to), otherwise an insert of ``batch_size`` rows cycled from
    ``insert_pool``.  Deletes are skipped while fewer than ``min_live``
    unprotected points remain.

    ``index`` is a :class:`~repro.core.mutable.MutableIndex` (anything
    with ``insert``/``delete``/``live_ids``/``epoch`` works).  ``stop``
    ends the loop early.  An explicit ``report`` is filled *in place* as
    the loop runs, so a concurrent observer (the T7 benchmark's probe
    thread) can consult :attr:`ChurnReport.deleted_at` live instead of
    waiting for the loop to return.
    """
    if ops_per_sec <= 0:
        raise ValueError(f"ops_per_sec must be > 0, got {ops_per_sec}")
    if not 0.0 <= delete_fraction <= 1.0:
        raise ValueError(
            f"delete_fraction must lie in [0, 1], got {delete_fraction}"
        )
    pool = np.asarray(insert_pool, dtype=np.float32)
    protect = protect or set()
    rng = np.random.default_rng(seed)
    if report is None:
        report = ChurnReport()
    report.start_epoch = int(index.epoch)
    interval = 1.0 / ops_per_sec
    pool_pos = 0

    t0 = time.monotonic()
    next_at = t0
    while (stop is None or not stop.is_set()) \
            and time.monotonic() - t0 < duration_s:
        now = time.monotonic()
        if now < next_at:
            time.sleep(min(next_at - now, 0.005))
            continue
        next_at += interval
        try:
            if rng.random() < delete_fraction:
                live = index.live_ids()
                candidates = live[~np.isin(live, list(protect))] \
                    if protect else live
                if candidates.size < max(min_live, batch_size):
                    continue  # too few victims; wait for inserts
                victims = rng.choice(
                    candidates, size=batch_size, replace=False
                )
                index.delete(victims)
                epoch = int(index.epoch)
                for v in victims:
                    report.deleted_at[int(v)] = epoch
                report.deleted += int(victims.size)
            else:
                batch = pool[
                    (pool_pos + np.arange(batch_size)) % pool.shape[0]
                ]
                pool_pos = (pool_pos + batch_size) % pool.shape[0]
                # perturb recycled pool rows so every insert is a novel
                # point (re-inserting identical vectors would make
                # "nearest neighbour" ground truth degenerate)
                batch = batch + rng.normal(
                    0.0, 1e-3, size=batch.shape
                ).astype(np.float32)
                new_ids = index.insert(batch)
                epoch = int(index.epoch)
                for v in new_ids:
                    report.inserted_at[int(v)] = epoch
                report.inserted += int(new_ids.size)
            report.ops += 1
        except Exception:
            report.errors += 1
    report.wall_seconds = time.monotonic() - t0
    report.end_epoch = int(index.epoch)
    return report


def recall_against(report: LoadReport, gt_ids: np.ndarray, k: int) -> float:
    """Recall@k of the collected response ids vs ground-truth rows.

    Only answered requests participate (the recall-under-load figure is
    about the quality of what *was* served).  Returns 0.0 when nothing
    was collected.
    """
    if not report.ids:
        return 0.0
    hits = 0
    for qi, ids in report.ids.items():
        hits += np.intersect1d(ids[ids >= 0], gt_ids[qi][:k]).size
    return hits / (len(report.ids) * k)
