"""Graceful degradation: shed beam width (``ef``) under sustained load.

The accuracy/latency dial of graph-guided search is the beam width - the
same ``ef`` knob the offline benchmarks sweep.  Under overload the right
move is not to queue without bound (latency explodes) nor to reject
everything above capacity (throughput is left on the table), but to serve
*slightly less accurate* answers faster: exactly the build-time strategy
crossover's trade, applied at query time.

:class:`DegradationController` watches the admission-queue depth at every
flush.  Sustained depth above the high-water fraction raises the shed
level (each level multiplies ``ef`` by ``factor``); sustained depth below
the low-water fraction lowers it again.  Hysteresis (consecutive-flush
counts in both directions) keeps the level from flapping on bursty
arrivals.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ShedPolicy:
    """Tuning knobs of the degradation controller.

    Attributes
    ----------
    enabled:
        Master switch; when off, ``effective_ef`` is the identity.
    high_water / low_water:
        Queue fill fractions (of the admission limit) that count as
        pressure / relief.  ``0.5 / 0.125`` means: start shedding when the
        queue is half full, recover below one eighth.
    step_up_after / step_down_after:
        Consecutive flush observations required before moving one level
        (the hysteresis).  Recovery is deliberately slower than shedding.
    factor:
        Per-level ``ef`` multiplier (level ``L`` serves at
        ``ef * factor**L``).
    min_ef:
        Accuracy floor: shedding never drives ``ef`` below this.
    max_level:
        Cap on the shed level.
    """

    enabled: bool = True
    high_water: float = 0.5
    low_water: float = 0.125
    step_up_after: int = 2
    step_down_after: int = 4
    factor: float = 0.5
    min_ef: int = 8
    max_level: int = 3

    def __post_init__(self) -> None:
        if not 0.0 < self.low_water < self.high_water <= 1.0:
            raise ValueError(
                f"need 0 < low_water < high_water <= 1, got "
                f"{self.low_water} / {self.high_water}"
            )
        if self.factor <= 0.0 or self.factor >= 1.0:
            raise ValueError(f"factor must be in (0, 1), got {self.factor}")


class DegradationController:
    """Queue-pressure observer that maps sustained growth to a shed level."""

    def __init__(self, policy: ShedPolicy | None = None) -> None:
        self.policy = policy or ShedPolicy()
        self.level = 0
        self._above = 0
        self._below = 0
        #: total number of level changes (exported as a counter)
        self.transitions = 0

    def observe(self, depth: int, limit: int) -> int:
        """Feed one queue-depth observation; returns the (new) shed level."""
        p = self.policy
        if not p.enabled:
            return 0
        fill = depth / max(1, limit)
        if fill >= p.high_water:
            self._above += 1
            self._below = 0
            if self._above >= p.step_up_after and self.level < p.max_level:
                self.level += 1
                self._above = 0
                self.transitions += 1
        elif fill <= p.low_water:
            self._below += 1
            self._above = 0
            if self._below >= p.step_down_after and self.level > 0:
                self.level -= 1
                self._below = 0
                self.transitions += 1
        else:
            self._above = 0
            self._below = 0
        return self.level

    def effective_ef(self, ef: int) -> int:
        """The beam width to serve at under the current shed level."""
        p = self.policy
        if not p.enabled or self.level == 0:
            return ef
        shed = int(ef * (p.factor ** self.level))
        return max(min(p.min_ef, ef), shed)

    @property
    def shedding(self) -> bool:
        return self.level > 0
