"""Bounded admission queue with micro-batch draining.

The queue is the server's backpressure point: :meth:`AdmissionQueue.offer`
refuses new work once ``limit`` requests are waiting (the caller turns
that into :class:`~repro.errors.ServerOverloaded`), and
:meth:`AdmissionQueue.take_batch` is the batcher thread's coalescing
primitive - it blocks for the first request, then keeps gathering until
either ``max_batch`` requests are in hand or ``max_wait_s`` has elapsed
since the batch opened, whichever comes first.  That "flush on size or
age" rule is the whole micro-batching idea: one early request never waits
longer than ``max_wait_s``, and a burst is drained at full batch width.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any


class AdmissionQueue:
    """Thread-safe bounded FIFO of pending requests.

    All waiting is condition-based; there is no polling.  ``limit`` is the
    hard admission cap (the high-water mark): ``offer`` returns ``False``
    at or beyond it and the caller rejects the request.
    """

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"queue limit must be >= 1, got {limit}")
        self.limit = int(limit)
        self._items: deque[Any] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    # -- producer side ---------------------------------------------------------

    def offer(self, item: Any) -> bool:
        """Enqueue ``item``; ``False`` if the queue is full or closed."""
        with self._lock:
            if self._closed or len(self._items) >= self.limit:
                return False
            self._items.append(item)
            self._not_empty.notify()
            return True

    # -- consumer side ---------------------------------------------------------

    def take_batch(self, max_batch: int, max_wait_s: float) -> list[Any]:
        """Blockingly gather the next micro-batch.

        Waits for at least one item (or close), then collects more until
        ``max_batch`` items are gathered or ``max_wait_s`` has passed
        since the *first* item of this batch was taken.  Returns an empty
        list only when the queue is closed and drained - the batcher's
        shutdown signal.
        """
        batch: list[Any] = []
        with self._lock:
            while not self._items and not self._closed:
                self._not_empty.wait()
            if not self._items and self._closed:
                return batch
            batch.append(self._items.popleft())
            flush_at = time.monotonic() + max_wait_s
            while len(batch) < max_batch:
                while self._items and len(batch) < max_batch:
                    batch.append(self._items.popleft())
                if len(batch) >= max_batch:
                    break
                remaining = flush_at - time.monotonic()
                if remaining <= 0 or self._closed:
                    break
                self._not_empty.wait(timeout=remaining)
        return batch

    def drain(self) -> list[Any]:
        """Remove and return everything currently queued."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
            return items

    # -- lifecycle / introspection ---------------------------------------------

    def close(self) -> None:
        """Stop admitting; wake any blocked consumer."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    def depth(self) -> int:
        """Current number of queued requests (the queue-depth gauge)."""
        with self._lock:
            return len(self._items)

    def __len__(self) -> int:
        return self.depth()
